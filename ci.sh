#!/usr/bin/env bash
# The repository's CI gate, runnable locally and from the GitHub Actions
# workflow (.github/workflows/ci.yml): release build, the full workspace
# test suite (unit, integration, chaos and property tests), the guardlint
# static-analysis pass (repo-specific safety/determinism/telemetry
# invariants; exemptions live in Lint.toml), clippy with warnings promoted
# to errors, a telemetry-export smoke check, and rustdoc with warnings
# denied.
#
# All dependencies are vendored (vendor/*), so the build never touches a
# registry; --offline makes that a hard guarantee rather than an accident.
#
# Usage: ./ci.sh [stage]
#   stage ∈ {build, test, lint, guardcheck, clippy, telemetry, journeys,
#   ha, fleet, fleetobs, analytics, poison, docs}; no argument runs all.
#   `tsan` (nightly-only ThreadSanitizer pass) runs only when requested
#   explicitly and skips gracefully without a nightly toolchain.
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"
want() { [ "$stage" = all ] || [ "$stage" = "$1" ]; }

if want build; then
  echo "==> cargo build --release"
  cargo build --release --workspace --offline
fi

if want test; then
  echo "==> cargo test"
  cargo test -q --workspace --offline
fi

if want lint; then
  echo "==> guardlint --deny (L1–L7 workspace invariants)"
  # Inside GitHub Actions, emit ::error annotations so findings land on
  # the PR diff lines; locally, the plain file:line form.
  cargo run -q --offline -p guardlint -- --deny ${GITHUB_ACTIONS:+--github}
fi

if want guardcheck; then
  echo "==> guardcheck (deterministic interleaving model checker)"
  # The five harnesses run the real Counter/Histogram/Tracer/TokenBucket/
  # CheckpointStore/StopFlag types under the modeled scheduler
  # (guardcheck::sync resolves to the model under --cfg guardcheck) and
  # print per-harness schedule/state counts; the aggregate test enforces
  # ≥ 10 000 distinct schedules with zero counterexamples, and the
  # mutation test proves a demoted Release store is caught with a
  # replayable trace. Wall-clock budget: 300 s (locally ~tens of seconds;
  # `timeout` makes overrun a hard failure, not a hung job).
  RUSTFLAGS="--cfg guardcheck" timeout 300 \
    cargo test -q --offline -p guardcheck --test harnesses -- --nocapture
fi

if [ "$stage" = tsan ]; then
  echo "==> ThreadSanitizer (nightly-only, optional)"
  if rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    # Advisory cross-check of the model checker's verdicts on the real
    # atomics. std stays uninstrumented (no -Zbuild-std offline), so the
    # ABI-mismatch override is required and tsan cannot see std's internal
    # synchronization — warnings rooted entirely in library/std frames are
    # expected false positives. Opt-in, never part of `all`.
    RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
      cargo +nightly test -q --offline -p guardcheck --lib ||
      echo "tsan: reported issues (advisory stage; see output above)"
  else
    echo "tsan: no nightly toolchain installed; skipping (the guardcheck"
    echo "      model checker stage remains the primary concurrency gate)"
  fi
fi

if want clippy; then
  echo "==> cargo clippy -D warnings"
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

if want telemetry; then
  echo "==> telemetry smoke (BENCH_obs export + validation)"
  mkdir -p target/obs-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --obs-only --obs-out target/obs-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    target/obs-smoke/BENCH_obs.json target/obs-smoke/BENCH_obs_trace.jsonl
fi

if want journeys; then
  echo "==> journey smoke (BENCH_journeys export + validation)"
  mkdir -p target/journeys-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --journeys-only --obs-out target/journeys-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --journeys target/journeys-smoke/BENCH_journeys.json \
    target/journeys-smoke/BENCH_journeys_trace.json
fi

if want ha; then
  echo "==> high-availability smoke (BENCH_failover export + validation)"
  mkdir -p target/ha-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --ha-only --obs-out target/ha-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --ha target/ha-smoke/BENCH_failover.json
fi

if want fleet; then
  echo "==> anycast-fleet smoke (BENCH_fleet export + validation)"
  mkdir -p target/fleet-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --fleet-only --obs-out target/fleet-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --fleet target/fleet-smoke/BENCH_fleet.json
fi

if want fleetobs; then
  echo "==> fleet-observability smoke (BENCH_fleetobs export + validation)"
  mkdir -p target/fleetobs-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --fleetobs-only --obs-out target/fleetobs-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --fleetobs target/fleetobs-smoke/BENCH_fleetobs.json \
    target/fleetobs-smoke/BENCH_fleetobs_trace.jsonl
fi

if want analytics; then
  echo "==> traffic-analytics smoke (feature tests + BENCH_analytics export + validation)"
  cargo test -q --offline -p dnsguard --features traffic-analytics
  cargo test -q --offline -p bench --features traffic-analytics analytics
  mkdir -p target/analytics-smoke
  cargo run --release --offline -p bench --features traffic-analytics \
    --bin all_experiments -- --analytics-only --obs-out target/analytics-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --analytics target/analytics-smoke/BENCH_analytics.json
fi

if want poison; then
  echo "==> cache-poisoning smoke (BENCH_poison export + validation)"
  mkdir -p target/poison-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --poison-only --obs-out target/poison-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --poison target/poison-smoke/BENCH_poison.json
fi

if want docs; then
  echo "==> cargo doc -D warnings"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline
fi

echo "==> CI green ($stage)"
