#!/usr/bin/env bash
# The repository's CI gate, runnable locally and from the GitHub Actions
# workflow (.github/workflows/ci.yml): release build, the full workspace
# test suite (unit, integration, chaos and property tests), the guardlint
# static-analysis pass (repo-specific safety/determinism/telemetry
# invariants; exemptions live in Lint.toml), clippy with warnings promoted
# to errors, a telemetry-export smoke check, and rustdoc with warnings
# denied.
#
# All dependencies are vendored (vendor/*), so the build never touches a
# registry; --offline makes that a hard guarantee rather than an accident.
#
# Usage: ./ci.sh [stage]
#   stage ∈ {build, test, lint, clippy, telemetry, journeys, ha, fleet,
#   fleetobs, analytics, poison, docs}; no argument runs all.
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"
want() { [ "$stage" = all ] || [ "$stage" = "$1" ]; }

if want build; then
  echo "==> cargo build --release"
  cargo build --release --workspace --offline
fi

if want test; then
  echo "==> cargo test"
  cargo test -q --workspace --offline
fi

if want lint; then
  echo "==> guardlint --deny (L1–L5 workspace invariants)"
  cargo run -q --offline -p guardlint -- --deny
fi

if want clippy; then
  echo "==> cargo clippy -D warnings"
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

if want telemetry; then
  echo "==> telemetry smoke (BENCH_obs export + validation)"
  mkdir -p target/obs-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --obs-only --obs-out target/obs-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    target/obs-smoke/BENCH_obs.json target/obs-smoke/BENCH_obs_trace.jsonl
fi

if want journeys; then
  echo "==> journey smoke (BENCH_journeys export + validation)"
  mkdir -p target/journeys-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --journeys-only --obs-out target/journeys-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --journeys target/journeys-smoke/BENCH_journeys.json \
    target/journeys-smoke/BENCH_journeys_trace.json
fi

if want ha; then
  echo "==> high-availability smoke (BENCH_failover export + validation)"
  mkdir -p target/ha-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --ha-only --obs-out target/ha-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --ha target/ha-smoke/BENCH_failover.json
fi

if want fleet; then
  echo "==> anycast-fleet smoke (BENCH_fleet export + validation)"
  mkdir -p target/fleet-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --fleet-only --obs-out target/fleet-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --fleet target/fleet-smoke/BENCH_fleet.json
fi

if want fleetobs; then
  echo "==> fleet-observability smoke (BENCH_fleetobs export + validation)"
  mkdir -p target/fleetobs-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --fleetobs-only --obs-out target/fleetobs-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --fleetobs target/fleetobs-smoke/BENCH_fleetobs.json \
    target/fleetobs-smoke/BENCH_fleetobs_trace.jsonl
fi

if want analytics; then
  echo "==> traffic-analytics smoke (feature tests + BENCH_analytics export + validation)"
  cargo test -q --offline -p dnsguard --features traffic-analytics
  cargo test -q --offline -p bench --features traffic-analytics analytics
  mkdir -p target/analytics-smoke
  cargo run --release --offline -p bench --features traffic-analytics \
    --bin all_experiments -- --analytics-only --obs-out target/analytics-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --analytics target/analytics-smoke/BENCH_analytics.json
fi

if want poison; then
  echo "==> cache-poisoning smoke (BENCH_poison export + validation)"
  mkdir -p target/poison-smoke
  cargo run --release --offline -p bench --bin all_experiments -- \
    --poison-only --obs-out target/poison-smoke
  cargo run --release --offline -p bench --bin telemetry_check -- \
    --poison target/poison-smoke/BENCH_poison.json
fi

if want docs; then
  echo "==> cargo doc -D warnings"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline
fi

echo "==> CI green ($stage)"
