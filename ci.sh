#!/usr/bin/env bash
# The repository's CI gate, runnable locally and from the GitHub Actions
# workflow (.github/workflows/ci.yml): release build, the full workspace
# test suite (unit, integration, chaos and property tests), and clippy
# with warnings promoted to errors.
#
# All dependencies are vendored (vendor/*), so the build never touches a
# registry; --offline makes that a hard guarantee rather than an accident.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> CI green"
