//! The traffic-amplification (reflection) attack: requests are small, DNS
//! answers can be big, and the response goes to whoever the source address
//! names — a third-party victim (section I, attack strategy 2).

use netsim::engine::{Context, Node};
use netsim::metrics::TrafficMeter;
use netsim::packet::Packet;

/// A victim host that just measures what lands on it.
#[derive(Debug, Default)]
pub struct Victim {
    /// Bytes/packets received, by direction (only `rx` is meaningful).
    pub traffic: TrafficMeter,
    /// Packets received.
    pub packets: u64,
}

impl Victim {
    /// A fresh victim.
    pub fn new() -> Self {
        Victim::default()
    }

    /// Bandwidth consumed over `elapsed`, in bits per second.
    pub fn inbound_bps(&self, elapsed: netsim::time::SimTime) -> f64 {
        if elapsed == netsim::time::SimTime::ZERO {
            return 0.0;
        }
        self.traffic.bytes_in as f64 * 8.0 / elapsed.as_secs_f64()
    }
}

impl Node for Victim {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
        self.packets += 1;
        self.traffic.rx(pkt.wire_size());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
    use dnswire::record::Record;
    use netsim::engine::{CpuConfig, Simulator};
    use netsim::time::SimTime;
    use server::authoritative::Authority;
    use server::nodes::AuthNode;
    use server::zone::ZoneBuilder;
    use std::net::Ipv4Addr;

    /// An unguarded ANS with a fat TXT record amplifies spoofed requests
    /// onto the victim by several ×; the paper cites up to 10×.
    #[test]
    fn unguarded_ans_amplifies_onto_victim() {
        let ans_ip = Ipv4Addr::new(192, 0, 2, 53);
        let victim_ip = Ipv4Addr::new(203, 0, 113, 9);
        // A name with a fat RRset: 30 addresses ≈ 480 bytes of answer for a
        // ~50-byte request.
        let mut builder = ZoneBuilder::new("foo.com".parse().unwrap());
        for i in 0..30u8 {
            builder = builder.record(Record::a(
                "big.foo.com".parse().unwrap(),
                Ipv4Addr::new(10, 10, 10, i),
                3600,
            ));
        }
        let zone = builder.build();

        let mut sim = Simulator::new(5);
        sim.add_node(
            ans_ip,
            CpuConfig::unbounded(),
            AuthNode::new(ans_ip, Authority::new(vec![zone])),
        );
        let victim = sim.add_node(victim_ip, CpuConfig::unbounded(), Victim::new());
        sim.add_node(
            Ipv4Addr::new(66, 6, 6, 6),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: ans_ip,
                rate: 10_000.0,
                sources: SourceStrategy::Fixed(victim_ip),
                payload: AttackPayload::PlainQuery("big.foo.com".parse().unwrap()),
                duration: Some(SimTime::from_millis(100)),
            }),
        );
        sim.run_until(SimTime::from_millis(200));
        let v = sim.node_ref::<Victim>(victim).unwrap();
        assert!(v.packets > 500, "victim bombarded: {} packets", v.packets);
        // Request ≈ 57 B on the wire; response ≈ 500+ B → factor > 5.
        let per_packet = v.traffic.bytes_in as f64 / v.packets as f64;
        assert!(per_packet > 400.0, "response size {per_packet}");
    }
}
