//! Low-and-slow botnet workload: many real sources, each below every
//! per-source threshold.
//!
//! The complement of the spoofed flood and the flash crowd: thousands of
//! compromised hosts each query at a trickle — individually indistinguishable
//! from legitimate clients (Rate-Limiter2 never trips), collectively a
//! flood. What gives it away is exactly what the traffic-analytics layer
//! measures: the distinct-source count surges past any plausible resolver
//! population while per-source repeat rates stay near 1 and the source
//! distribution is uniform (maximal entropy) — no real client population
//! is that even. The discriminator labels the onset `spoof_flood`
//! (population anomaly), never `flash_crowd`.
//!
//! Open-loop with the same tick pacing as [`crate::flood::SpoofedFlood`];
//! emission round-robins the pool so per-source rates are exactly uniform,
//! and exact per-source counts are kept as bench ground truth.

use dnswire::message::Message;
use dnswire::name::Name;
use dnswire::types::RrType;
use netsim::engine::{Context, Node};
use netsim::packet::{Endpoint, Packet, DNS_PORT};
use netsim::time::SimTime;
use std::net::Ipv4Addr;

/// Configuration of the botnet.
#[derive(Debug, Clone)]
pub struct BotnetConfig {
    /// Target (the guard's public address, usually).
    pub target: Ipv4Addr,
    /// First bot address; bots are `source_base .. +source_count`.
    pub source_base: Ipv4Addr,
    /// Number of bots.
    pub source_count: u32,
    /// Per-bot packets per second (kept low — the point of the attack).
    pub per_source_rate: f64,
    /// Queried name.
    pub qname: Name,
    /// Stop after this much simulated time (None = run forever).
    pub duration: Option<SimTime>,
}

/// The botnet node: one simulator node round-robining the whole pool.
pub struct BotnetLowRate {
    config: BotnetConfig,
    started: SimTime,
    sent: u64,
    next: u32,
    /// Exact datagrams sent per bot — the bench's ground truth.
    per_source: Vec<u64>,
}

/// Batch period, matching the flood generators.
const TICK: SimTime = SimTime::from_micros(100);

impl BotnetLowRate {
    /// Creates the botnet node.
    pub fn new(config: BotnetConfig) -> Self {
        BotnetLowRate {
            per_source: vec![0; config.source_count.max(1) as usize],
            config,
            started: SimTime::ZERO,
            sent: 0,
            next: 0,
        }
    }

    /// Packets sent so far (aggregate).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Exact datagrams sent per bot.
    pub fn per_source(&self) -> &[u64] {
        &self.per_source
    }

    /// The aggregate rate: `source_count × per_source_rate`.
    pub fn aggregate_rate(&self) -> f64 {
        f64::from(self.config.source_count) * self.config.per_source_rate
    }

    /// The address of bot `idx` (0-based).
    pub fn source_addr(&self, idx: usize) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.config.source_base).wrapping_add(idx as u32))
    }
}

impl Node for BotnetLowRate {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started = ctx.now();
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if let Some(d) = self.config.duration {
            if ctx.now().saturating_sub(self.started) >= d {
                return;
            }
        }
        let elapsed = ctx.now().saturating_sub(self.started);
        let due = (elapsed.as_secs_f64() * self.aggregate_rate()) as u64;
        let batch = due.saturating_sub(self.sent).min(1_000);
        for _ in 0..batch {
            self.sent += 1;
            let idx = (self.next % self.config.source_count.max(1)) as usize;
            self.next = self.next.wrapping_add(1);
            self.per_source[idx] += 1;
            let src = Endpoint::new(self.source_addr(idx), 1024 + (idx % 50_000) as u16);
            let txid = (self.sent % 0xFFFF) as u16;
            let q = Message::iterative_query(txid, self.config.qname.clone(), RrType::A);
            ctx.send(Packet::udp(src, Endpoint::new(self.config.target, DNS_PORT), q.encode()));
        }
        ctx.set_timer(TICK, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::{CpuConfig, Simulator};

    #[test]
    fn every_bot_stays_below_per_source_rate_but_aggregate_floods() {
        let mut sim = Simulator::new(12);
        let target = Ipv4Addr::new(1, 2, 3, 4);
        struct Sink {
            received: u64,
        }
        impl Node for Sink {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
                self.received += 1;
            }
        }
        let sink = sim.add_node(target, CpuConfig::unbounded(), Sink { received: 0 });
        let bots = sim.add_node(
            Ipv4Addr::new(78, 0, 0, 1),
            CpuConfig::unbounded(),
            BotnetLowRate::new(BotnetConfig {
                target,
                source_base: Ipv4Addr::new(130, 0, 0, 1),
                source_count: 2_000,
                per_source_rate: 4.0,
                qname: "www.foo.com".parse().unwrap(),
                duration: None,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let b = sim.node_ref::<BotnetLowRate>(bots).unwrap();
        // Aggregate ≈ 8000/s — a flood —
        assert!((b.sent() as f64 - 8_000.0).abs() < 300.0, "aggregate {}", b.sent());
        let received = sim.node_ref::<Sink>(sink).unwrap().received;
        assert!(received + 10 >= b.sent(), "delivered {received} of {}", b.sent());
        // — while every bot individually sent ≈ 4 queries.
        assert!(b.per_source().iter().all(|&c| c <= 5), "low and slow per bot");
        assert_eq!(b.per_source().iter().sum::<u64>(), b.sent());
    }
}
