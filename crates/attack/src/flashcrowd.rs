//! Flash-crowd workload: a bounded population of *real* clients whose
//! query volume follows a Zipf popularity curve.
//!
//! This is the legitimate look-alike of a flood — a news event sends a
//! burst of traffic to the zone, but from a fixed set of resolvers whose
//! per-client volume is heavily skewed (a few big ISP resolvers dominate,
//! a long tail queries once in a while). The traffic-analytics
//! discriminator must label this `flash_crowd`, never `spoof_flood`: the
//! source population is bounded, re-queries are common, and the source
//! distribution is far from uniform.
//!
//! The node is open-loop like [`crate::flood::SpoofedFlood`] (same tick
//! pacing) and keeps exact per-source ground truth, so the analytics
//! bench can compare sketch estimates against reality.

use dnswire::message::Message;
use dnswire::name::Name;
use dnswire::types::RrType;
use netsim::engine::{Context, Node};
use netsim::packet::{Endpoint, Packet, DNS_PORT};
use netsim::time::SimTime;
use rand::Rng;
use std::net::Ipv4Addr;

/// Configuration of the crowd.
#[derive(Debug, Clone)]
pub struct FlashCrowdConfig {
    /// Target (the guard's public address, usually).
    pub target: Ipv4Addr,
    /// Aggregate packets per second across the whole crowd.
    pub rate: f64,
    /// First client address; clients are `source_base .. +source_count`.
    pub source_base: Ipv4Addr,
    /// Crowd population size.
    pub source_count: u32,
    /// Zipf exponent: client `k` (1-based by popularity rank) carries
    /// weight `k^-s`. Around `1.0`–`1.3` for realistic resolver skew.
    pub zipf_s: f64,
    /// Queried name (the suddenly-popular record).
    pub qname: Name,
    /// Stop after this much simulated time (None = run forever).
    pub duration: Option<SimTime>,
}

/// The flash-crowd node: one simulator node emitting the whole crowd's
/// queries, each stamped with its client's real source address.
pub struct FlashCrowd {
    config: FlashCrowdConfig,
    started: SimTime,
    sent: u64,
    /// Scaled cumulative Zipf weights; a uniform draw binary-searches this.
    cumulative: Vec<u64>,
    /// Exact datagrams sent per client — the bench's ground truth.
    per_source: Vec<u64>,
}

/// Batch period, matching the flood generators.
const TICK: SimTime = SimTime::from_micros(100);

/// Fixed-point scale for the Zipf weights.
const WEIGHT_SCALE: f64 = 1_000_000.0;

impl FlashCrowd {
    /// Creates the crowd node (precomputes the popularity CDF).
    pub fn new(config: FlashCrowdConfig) -> Self {
        let n = config.source_count.max(1);
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut acc = 0u64;
        for k in 1..=n {
            let w = (WEIGHT_SCALE / f64::from(k).powf(config.zipf_s)).max(1.0) as u64;
            acc += w;
            cumulative.push(acc);
        }
        FlashCrowd {
            per_source: vec![0; n as usize],
            config,
            started: SimTime::ZERO,
            sent: 0,
            cumulative,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Exact datagrams sent per client, indexed by popularity rank.
    pub fn per_source(&self) -> &[u64] {
        &self.per_source
    }

    /// Clients that actually sent at least one query.
    pub fn distinct_used(&self) -> usize {
        self.per_source.iter().filter(|&&c| c > 0).count()
    }

    /// The address of the client at popularity rank `idx` (0-based).
    pub fn source_addr(&self, idx: usize) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.config.source_base).wrapping_add(idx as u32))
    }

    fn pick_source(&mut self, ctx: &mut Context<'_>) -> usize {
        let total = *self.cumulative.last().expect("source_count >= 1");
        let r = ctx.rng().gen::<u64>() % total;
        self.cumulative.partition_point(|&c| c <= r)
    }
}

impl Node for FlashCrowd {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started = ctx.now();
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if let Some(d) = self.config.duration {
            if ctx.now().saturating_sub(self.started) >= d {
                return;
            }
        }
        let elapsed = ctx.now().saturating_sub(self.started);
        let due = (elapsed.as_secs_f64() * self.config.rate) as u64;
        let batch = due.saturating_sub(self.sent).min(1_000);
        for _ in 0..batch {
            self.sent += 1;
            let idx = self.pick_source(ctx);
            self.per_source[idx] += 1;
            let src = Endpoint::new(self.source_addr(idx), 1024 + (idx % 50_000) as u16);
            let txid = (self.sent % 0xFFFF) as u16;
            let q = Message::iterative_query(txid, self.config.qname.clone(), RrType::A);
            ctx.send(Packet::udp(src, Endpoint::new(self.config.target, DNS_PORT), q.encode()));
        }
        ctx.set_timer(TICK, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::{CpuConfig, Simulator};

    #[test]
    fn crowd_is_bounded_zipf_skewed_and_paced() {
        let mut sim = Simulator::new(11);
        let target = Ipv4Addr::new(1, 2, 3, 4);
        struct Sink;
        impl Node for Sink {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        sim.add_node(target, CpuConfig::unbounded(), Sink);
        let crowd = sim.add_node(
            Ipv4Addr::new(77, 0, 0, 1),
            CpuConfig::unbounded(),
            FlashCrowd::new(FlashCrowdConfig {
                target,
                rate: 20_000.0,
                source_base: Ipv4Addr::new(120, 0, 0, 1),
                source_count: 300,
                zipf_s: 1.2,
                qname: "www.foo.com".parse().unwrap(),
                duration: None,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let c = sim.node_ref::<FlashCrowd>(crowd).unwrap();
        assert!((c.sent() as f64 - 20_000.0).abs() < 500.0, "paced: {}", c.sent());
        assert_eq!(c.per_source().iter().sum::<u64>(), c.sent(), "ground truth conserves");
        // Bounded population…
        assert!(c.distinct_used() <= 300);
        assert!(c.distinct_used() > 250, "most of the crowd shows up");
        // …with Zipf skew: rank 1 dwarfs the median client.
        let top = c.per_source()[0];
        let median = {
            let mut v = c.per_source().to_vec();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            top > median * 20,
            "rank-1 client ({top}) should dwarf the median ({median})"
        );
    }
}
