//! Spoofed-source request floods — the attack of Figures 5 and 6.

use dnswire::cookie_ext;
use dnswire::message::Message;
use dnswire::name::Name;
use dnswire::types::RrType;
use netsim::engine::{Context, Node};
use netsim::packet::{Endpoint, Packet, DNS_PORT};
use netsim::time::SimTime;
use rand::Rng;
use std::net::Ipv4Addr;

/// How the attacker chooses the (spoofed) source address of each packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStrategy {
    /// Uniformly random 32-bit addresses (classic spoofed flood).
    Random,
    /// A fixed spoofed address — e.g. a victim for reflection, or a
    /// legitimate LRS whose service the attacker wants degraded.
    Fixed(Ipv4Addr),
    /// Round-robin over a pool of `n` addresses starting at a base
    /// (models a zombie botnet using *real* addresses).
    Pool {
        /// First address of the pool.
        base: Ipv4Addr,
        /// Pool size.
        count: u32,
    },
}

/// What each attack packet contains.
#[derive(Debug, Clone)]
pub enum AttackPayload {
    /// An ordinary query for a name (cookie-less: what a naive flooder
    /// sends).
    PlainQuery(Name),
    /// A message-3-shaped query with a random cookie label: guessing the
    /// 2^32 NS-name cookie space. The label suffix names the target zone.
    CookieLabelGuess {
        /// Label text appended after the hex digits (e.g. `com`).
        zone_suffix: String,
        /// Parent name the label is attached to (root for `PR…com`).
        parent: Name,
    },
    /// A query carrying a random 16-byte extension cookie.
    ExtCookieGuess(Name),
    /// Queries sprayed across the `COOKIE2` subnet: the 1/R_y attack of
    /// section III.G.
    Cookie2Spray {
        /// Queried name.
        qname: Name,
        /// Guarded subnet base.
        subnet_base: Ipv4Addr,
        /// `R_y`.
        range: u32,
    },
}

/// Configuration of the flood.
#[derive(Debug, Clone)]
pub struct FloodConfig {
    /// Target (the guard's public address, usually).
    pub target: Ipv4Addr,
    /// Packets per second.
    pub rate: f64,
    /// Source address strategy.
    pub sources: SourceStrategy,
    /// Payload generator.
    pub payload: AttackPayload,
    /// Stop after this much simulated time (None = run forever).
    pub duration: Option<SimTime>,
}

/// The flooding attacker node. Open loop: it never waits for anything.
pub struct SpoofedFlood {
    config: FloodConfig,
    sent: u64,
    started: SimTime,
    pool_next: u32,
    /// Responses that came back to an address this node actually owns
    /// (only meaningful for `SourceStrategy::Pool` / `Fixed` where the
    /// simulator routes those addresses here).
    pub responses_seen: u64,
}

/// Batch period: the flood emits `rate × 100 µs` packets per tick, keeping
/// event counts manageable at 250 K req/s.
const TICK: SimTime = SimTime::from_micros(100);

impl SpoofedFlood {
    /// Creates the flood node.
    pub fn new(config: FloodConfig) -> Self {
        SpoofedFlood {
            config,
            sent: 0,
            started: SimTime::ZERO,
            pool_next: 0,
            responses_seen: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn build_packet(&mut self, ctx: &mut Context<'_>) -> Packet {
        let txid = (self.sent % 0xFFFF) as u16;
        let random_ip: u32 = ctx.rng().gen();
        let src_ip = match self.config.sources {
            SourceStrategy::Random => Ipv4Addr::from(random_ip),
            SourceStrategy::Fixed(ip) => ip,
            SourceStrategy::Pool { base, count } => {
                let ip = Ipv4Addr::from(u32::from(base) + self.pool_next % count.max(1));
                self.pool_next = self.pool_next.wrapping_add(1);
                ip
            }
        };
        let src = Endpoint::new(src_ip, 1024 + (self.sent % 50_000) as u16);

        let (dst_ip, payload) = match &self.config.payload {
            AttackPayload::PlainQuery(name) => (
                self.config.target,
                Message::iterative_query(txid, name.clone(), RrType::A).encode(),
            ),
            AttackPayload::CookieLabelGuess { zone_suffix, parent } => {
                let guess: u32 = ctx.rng().gen();
                let label = format!("PR{guess:08x}{zone_suffix}");
                let name = parent
                    .child(label.as_bytes())
                    .unwrap_or_else(|_| parent.clone());
                (
                    self.config.target,
                    Message::iterative_query(txid, name, RrType::A).encode(),
                )
            }
            AttackPayload::ExtCookieGuess(name) => {
                let mut msg = Message::iterative_query(txid, name.clone(), RrType::A);
                let guess: [u8; 16] = ctx.rng().gen();
                cookie_ext::attach_cookie(&mut msg, guess, 0);
                (self.config.target, msg.encode())
            }
            AttackPayload::Cookie2Spray {
                qname,
                subnet_base,
                range,
            } => {
                let y: u32 = ctx.rng().gen_range(0..*range);
                let dst = Ipv4Addr::from(u32::from(*subnet_base) + 1 + y);
                (
                    dst,
                    Message::iterative_query(txid, qname.clone(), RrType::A).encode(),
                )
            }
        };
        Packet::udp(src, Endpoint::new(dst_ip, DNS_PORT), payload)
    }
}

impl Node for SpoofedFlood {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started = ctx.now();
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if let Some(d) = self.config.duration {
            if ctx.now().saturating_sub(self.started) >= d {
                return;
            }
        }
        // How many packets should have been sent by now?
        let elapsed = ctx.now().saturating_sub(self.started);
        let due = (elapsed.as_secs_f64() * self.config.rate) as u64;
        let batch = due.saturating_sub(self.sent).min(1_000);
        for _ in 0..batch {
            self.sent += 1;
            let pkt = self.build_packet(ctx);
            ctx.send(pkt);
        }
        ctx.set_timer(TICK, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
        self.responses_seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::{CpuConfig, Simulator};

    struct Sink {
        received: u64,
        distinct_sources: std::collections::HashSet<Ipv4Addr>,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            self.received += 1;
            self.distinct_sources.insert(pkt.src.ip);
        }
    }

    #[test]
    fn flood_hits_configured_rate() {
        let mut sim = Simulator::new(1);
        let target = Ipv4Addr::new(1, 2, 3, 4);
        let sink = sim.add_node(
            target,
            CpuConfig::unbounded(),
            Sink {
                received: 0,
                distinct_sources: Default::default(),
            },
        );
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 1),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target,
                rate: 50_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::PlainQuery("www.foo.com".parse().unwrap()),
                duration: Some(SimTime::from_millis(100)),
            }),
        );
        sim.run_until(SimTime::from_millis(200));
        let sink_state = sim.node_ref::<Sink>(sink).unwrap();
        assert!(
            (4_500..=5_200).contains(&sink_state.received),
            "received {}",
            sink_state.received
        );
        assert!(
            sink_state.distinct_sources.len() as u64 > sink_state.received / 2,
            "sources look random"
        );
    }

    #[test]
    fn fixed_source_spoofs_one_victim() {
        let mut sim = Simulator::new(2);
        let target = Ipv4Addr::new(1, 2, 3, 4);
        let victim = Ipv4Addr::new(9, 9, 9, 9);
        let sink = sim.add_node(
            target,
            CpuConfig::unbounded(),
            Sink {
                received: 0,
                distinct_sources: Default::default(),
            },
        );
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 2),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target,
                rate: 10_000.0,
                sources: SourceStrategy::Fixed(victim),
                payload: AttackPayload::PlainQuery("x.y".parse().unwrap()),
                duration: Some(SimTime::from_millis(10)),
            }),
        );
        sim.run_until(SimTime::from_millis(20));
        let sink_state = sim.node_ref::<Sink>(sink).unwrap();
        assert!(sink_state.received > 50);
        assert_eq!(sink_state.distinct_sources.len(), 1);
        assert!(sink_state.distinct_sources.contains(&victim));
    }

    #[test]
    fn cookie2_spray_stays_in_subnet() {
        let mut sim = Simulator::new(3);
        let base = Ipv4Addr::new(198, 51, 100, 0);
        struct SubnetSink {
            base: u32,
            range: u32,
            received: u64,
        }
        impl Node for SubnetSink {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                let host = u32::from(pkt.dst.ip) - self.base;
                assert!(host >= 1 && host <= self.range, "dst {} outside range", pkt.dst);
                self.received += 1;
            }
        }
        let sink = sim.add_node(
            Ipv4Addr::new(198, 51, 100, 1),
            CpuConfig::unbounded(),
            SubnetSink {
                base: u32::from(base),
                range: 254,
                received: 0,
            },
        );
        sim.add_subnet(base, 24, sink);
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 3),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: Ipv4Addr::new(198, 51, 100, 1),
                rate: 10_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::Cookie2Spray {
                    qname: "www.foo.com".parse().unwrap(),
                    subnet_base: base,
                    range: 254,
                },
                duration: Some(SimTime::from_millis(20)),
            }),
        );
        sim.run_until(SimTime::from_millis(40));
        assert!(sim.node_ref::<SubnetSink>(sink).unwrap().received > 100);
    }
}
