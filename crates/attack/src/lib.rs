//! Attack workload generators for the DNS Guard evaluation — the
//! adversaries of section III.G, as simulator nodes:
//!
//! * [`flood`] — open-loop spoofed floods with pluggable payloads: plain
//!   queries, NS-name cookie guesses, extension-cookie guesses, and the
//!   `COOKIE2` subnet spray (the 1/R_y attack);
//! * [`amplification`] — the reflection attack and its measuring victim;
//! * [`flashcrowd`] — a bounded population of real clients with Zipf
//!   popularity: the legitimate surge the spoof-vs-flash-crowd
//!   discriminator must *not* label as spoofing;
//! * [`botnet`] — many real sources each at a trickle: individually
//!   innocuous, collectively a flood, detectable only as a
//!   source-population anomaly.
//!
//! Non-spoofed ("zombie") floods reuse [`flood::SourceStrategy::Pool`]:
//! real addresses at high rates, which is exactly what Rate-Limiter2
//! throttles.

#![forbid(unsafe_code)]

pub mod amplification;
pub mod botnet;
pub mod flashcrowd;
pub mod flood;
pub mod poison;
pub mod prober;

pub use amplification::Victim;
pub use botnet::{BotnetConfig, BotnetLowRate};
pub use flashcrowd::{FlashCrowd, FlashCrowdConfig};
pub use flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
pub use poison::{
    DerandConfig, FragPoisonConfig, FragPoisoner, KaminskyAttack, KaminskyConfig,
    PortDerandomizer, PortKnowledge,
};
pub use prober::{FeedbackProber, ProberConfig};

#[cfg(test)]
mod guard_attack_tests {
    //! Attack-vs-guard integration: the claims of section III.G, executed.

    use crate::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
    use dnsguard::classify::AuthorityClassifier;
    use dnsguard::config::{GuardConfig, SchemeMode};
    use dnsguard::guard::RemoteGuard;
    use netsim::engine::{CpuConfig, Simulator};
    use netsim::time::SimTime;
    use server::authoritative::Authority;
    use server::nodes::AuthNode;
    use server::zone::paper_hierarchy;
    use std::net::Ipv4Addr;

    const PUB: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const PRIV: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);
    const SUBNET: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 0);

    fn guarded(seed: u64, zone_idx: usize, mode: SchemeMode) -> (Simulator, netsim::NodeId, netsim::NodeId) {
        let (root, com, foo) = paper_hierarchy();
        let zone = [root, com, foo][zone_idx].clone();
        let authority = Authority::new(vec![zone]);
        let mut sim = Simulator::new(seed);
        let config = GuardConfig {
            subnet_base: SUBNET,
            ..GuardConfig::new(PUB, PRIV)
        }
        .with_mode(mode);
        let guard = sim.add_node(
            PUB,
            CpuConfig::unbounded(),
            RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
        );
        sim.add_subnet(SUBNET, 24, guard);
        let ans = sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority));
        (sim, guard, ans)
    }

    #[test]
    fn random_ns_cookie_guesses_blocked_at_2_32_rate() {
        let (mut sim, guard, ans) = guarded(1, 0, SchemeMode::DnsBased);
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 1),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: PUB,
                rate: 100_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::CookieLabelGuess {
                    zone_suffix: "com".into(),
                    parent: dnswire::Name::root(),
                },
                duration: Some(SimTime::from_millis(200)),
            }),
        );
        sim.run_until(SimTime::from_millis(300));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.stats().ns_cookie_invalid > 15_000);
        assert_eq!(g.stats().ns_cookie_valid, 0, "2^32 space: ~0 of 20K guesses pass");
        assert_eq!(sim.node_ref::<AuthNode>(ans).unwrap().total_queries(), 0);
    }

    #[test]
    fn ext_cookie_guesses_blocked_at_2_128_rate() {
        let (mut sim, guard, ans) = guarded(2, 2, SchemeMode::ModifiedOnly);
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 2),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: PUB,
                rate: 100_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::ExtCookieGuess("www.foo.com".parse().unwrap()),
                duration: Some(SimTime::from_millis(200)),
            }),
        );
        sim.run_until(SimTime::from_millis(300));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.stats().ext_invalid > 15_000);
        assert_eq!(g.stats().ext_valid, 0);
        assert_eq!(sim.node_ref::<AuthNode>(ans).unwrap().total_queries(), 0);
    }

    #[test]
    fn cookie2_spray_succeeds_at_one_over_ry() {
        // Section III.G: "1/R_y of the attack requests will have a correct
        // cookie value... This is the worst false negative ratio."
        let (mut sim, guard, _ans) = guarded(3, 2, SchemeMode::DnsBased);
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 3),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: PUB,
                rate: 250_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::Cookie2Spray {
                    qname: "www.foo.com".parse().unwrap(),
                    subnet_base: SUBNET,
                    range: 254,
                },
                duration: Some(SimTime::from_millis(200)),
            }),
        );
        sim.run_until(SimTime::from_millis(300));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        let seen = g.stats().cookie2_valid + g.stats().cookie2_invalid;
        assert!(seen > 25_000, "spray arrived: {seen}");
        let hit_rate = g.stats().cookie2_valid as f64 / seen as f64;
        let expected = 1.0 / 254.0;
        assert!(
            (hit_rate - expected).abs() < expected, // within ±100% of 1/254
            "hit rate {hit_rate:.5} vs expected {expected:.5}"
        );
    }

    #[test]
    fn zombie_flood_throttled_by_rate_limiter2() {
        // A zombie with a real address and the correct cookie still gets
        // per-host limited by Rate-Limiter2 ("not much damage can be done").
        let (root, _, _) = paper_hierarchy();
        let authority = Authority::new(vec![root]);
        let mut sim = Simulator::new(4);
        let mut config = GuardConfig {
            subnet_base: SUBNET,
            ..GuardConfig::new(PUB, PRIV)
        }
        .with_mode(SchemeMode::DnsBased);
        config.rl2_per_source_rate = 100.0; // the "nominal, very low" rate
        let guard = sim.add_node(
            PUB,
            CpuConfig::unbounded(),
            RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
        );
        sim.add_subnet(SUBNET, 24, guard);
        let ans = sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority));

        let zombie_ip = Ipv4Addr::new(44, 0, 0, 1);
        struct CookieZombie {
            me: Ipv4Addr,
            cookie_hex: String,
            sent: u64,
        }
        impl netsim::engine::Node for CookieZombie {
            fn on_start(&mut self, ctx: &mut netsim::engine::Context<'_>) {
                ctx.set_timer(SimTime::ZERO, 0);
            }
            fn on_timer(&mut self, ctx: &mut netsim::engine::Context<'_>, _t: u64) {
                for _ in 0..50 {
                    self.sent += 1;
                    let name: dnswire::Name =
                        format!("PR{}com", self.cookie_hex).parse().unwrap();
                    let q = dnswire::Message::iterative_query(
                        (self.sent % 65535) as u16,
                        name,
                        dnswire::RrType::A,
                    );
                    ctx.send(netsim::Packet::udp(
                        netsim::Endpoint::new(self.me, 2000),
                        netsim::Endpoint::new(PUB, 53),
                        q.encode(),
                    ));
                }
                ctx.set_timer(SimTime::from_millis(1), 0); // 50K req/s
            }
            fn on_packet(&mut self, _ctx: &mut netsim::engine::Context<'_>, _p: netsim::Packet) {}
        }
        let cookie_hex = sim
            .node_ref::<RemoteGuard>(guard)
            .unwrap()
            .cookie_factory()
            .generate(zombie_ip)
            .ns_label_suffix();
        sim.add_node(
            zombie_ip,
            CpuConfig::unbounded(),
            CookieZombie {
                me: zombie_ip,
                cookie_hex,
                sent: 0,
            },
        );
        sim.run_until(SimTime::from_secs(1));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.stats().rl2_dropped > 30_000, "rl2 dropped {}", g.stats().rl2_dropped);
        let served = sim.node_ref::<AuthNode>(ans).unwrap().total_queries();
        assert!(served < 300, "ANS saw only the nominal rate: {served}");
    }

    #[test]
    fn reflection_bounded_by_rate_limiter1() {
        // A spoofed flood tries to use the guard as a reflector against the
        // addresses it spoofs; Rate-Limiter1's global budget caps the
        // response volume no matter how fast the flood.
        let (mut sim, guard, _ans) = guarded(5, 0, SchemeMode::DnsBased);
        sim.add_node(
            Ipv4Addr::new(66, 0, 0, 5),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: PUB,
                rate: 200_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::PlainQuery("www.foo.com".parse().unwrap()),
                duration: Some(SimTime::from_secs(1)),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        // Default global budget: 10K/s. Responses sent ≈ fabricated NS count.
        assert!(g.stats().rl1_dropped > 150_000, "rl1 dropped {}", g.stats().rl1_dropped);
        assert!(
            g.stats().fabricated_ns_sent < 15_000,
            "responses bounded: {}",
            g.stats().fabricated_ns_sent
        );
        // And what *is* reflected amplifies < 1.5× per the DNS-based bound.
        assert!(g.traffic_unverified.amplification() < 1.5);
    }
}
