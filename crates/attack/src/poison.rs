//! Off-path cache-poisoning adversaries — the other half of the spoofing
//! threat model: instead of flooding the server, the attacker spoofs the
//! *server* to the resolver and races the legitimate answer.
//!
//! Three adversaries, each driven through the simulator with exact ground
//! truth (the bench reads [`RecursiveResolver::poison_check`] after every
//! race, something a real attacker can only probe for):
//!
//! * [`KaminskyAttack`] — forces cache misses on never-before-seen
//!   subdomains (`miss<r>.victim.com`) and floods forged responses with
//!   uniformly-guessed txids during the authoritative round trip. Each
//!   race is an independent Bernoulli trial with per-guess probability
//!   `1/65536 × 1/ports`, so measured success must track
//!   `1 − (1 − 1/65536)^G` when the port is known.
//! * [`PortDerandomizer`] — the "Security of Patched DNS" observation that
//!   sequential ephemeral ports defeat the port patch: the attacker owns a
//!   zone, so the resolver *tells* it the current port when it queries;
//!   the next query's port is `observed + step` and the race runs with
//!   [`PortKnowledge::Exact`].
//! * [`FragPoisoner`] — "Fragmentation Considered Poisonous": when the
//!   response exceeds the path MTU, all query entropy (txid, port, 0x20
//!   casing) lives in the first fragment; an attacker who plants a
//!   spoofed *second* fragment (see `Simulator::plant_fragment`) replaces
//!   trailing records without guessing anything. This node only pulls the
//!   trigger — sends queries for the oversized RRset — while the harness
//!   plants the crafted tail built by [`craft_evil_tail`].
//!
//! [`RecursiveResolver::poison_check`]: server::recursive::RecursiveResolver::poison_check

use dnswire::message::Message;
use dnswire::name::Name;
use dnswire::record::Record;
use dnswire::types::RrType;
use netsim::engine::{Context, Node};
use netsim::packet::{Endpoint, Packet, DNS_PORT};
use netsim::time::SimTime;
use rand::Rng;
use std::net::Ipv4Addr;

/// Batch period of the forged-response pump (same open-loop discipline as
/// [`crate::flood::SpoofedFlood`]).
const TICK: SimTime = SimTime::from_micros(100);

/// What the off-path attacker knows about the resolver's query source
/// port. This is the single quantity the port defenses manipulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKnowledge {
    /// The port is known exactly — a fixed-port resolver, or a sequential
    /// one after derandomization. Search space: 2^16 txids.
    Exact(u16),
    /// The attacker only knows the pool and sprays it uniformly. Search
    /// space: 2^16 × `range`.
    Range {
        /// Lowest port of the resolver's pool.
        base: u16,
        /// Pool size.
        range: u16,
    },
}

/// The forced-miss query name of race `race`: `miss<race>.<zone>`,
/// all-lowercase (the attacker does not know any 0x20 casing).
pub fn miss_name(zone: &Name, race: u32) -> Name {
    zone.child(format!("miss{race}").as_bytes())
        .expect("race label fits")
}

/// The poison target of race `race`: `target<race>.<zone>`, carried in the
/// additional section of every forgery. Distinct per race so races are
/// independent trials without cache flushes between them.
pub fn target_name(zone: &Name, race: u32) -> Name {
    zone.child(format!("target{race}").as_bytes())
        .expect("race label fits")
}

/// Splices the attacker's address into the tail of a legitimate response
/// wire: returns `wire[mtu..]` with the final A-record rdata (the last
/// four bytes of the message) replaced by `evil`. Everything the resolver
/// validates — txid, port, question casing, section counts — sits below
/// `mtu`, in the first fragment the attacker never has to forge.
pub fn craft_evil_tail(response_wire: &[u8], mtu: usize, evil: Ipv4Addr) -> Vec<u8> {
    assert!(
        response_wire.len() > mtu + 4,
        "response ({} bytes) must overflow the MTU ({mtu}) by a full A rdata",
        response_wire.len()
    );
    let mut tail = response_wire[mtu..].to_vec();
    let n = tail.len();
    tail[n - 4..].copy_from_slice(&evil.octets());
    tail
}

/// One armed guessing race: a pre-encoded forgery whose txid bytes are
/// patched per packet.
struct ForgeRace {
    wire: Vec<u8>,
    armed_at: SimTime,
    ports: PortKnowledge,
}

/// Open-loop forged-response pump shared by the Kaminsky and
/// port-derandomizing adversaries: spoofs `spoof_server:53` and emits
/// `rate` forgeries per second at `resolver:<guessed port>` for `window`
/// simulated time, txid drawn uniformly **with replacement** — the
/// birthday model the analytic bound assumes.
struct Forger {
    spoof_server: Ipv4Addr,
    resolver: Ipv4Addr,
    evil: Ipv4Addr,
    rate: f64,
    window: SimTime,
    race: Option<ForgeRace>,
    sent_this_race: u64,
    total_sent: u64,
}

impl Forger {
    fn new(spoof_server: Ipv4Addr, resolver: Ipv4Addr, evil: Ipv4Addr, rate: f64, window: SimTime) -> Self {
        Forger {
            spoof_server,
            resolver,
            evil,
            rate,
            window,
            race: None,
            sent_this_race: 0,
            total_sent: 0,
        }
    }

    /// Arms a race: forgeries for `qname` (answer section) carrying the
    /// poison `target` (additional section) start flowing at `armed_at`.
    fn arm(&mut self, qname: Name, target: Name, armed_at: SimTime, ports: PortKnowledge) {
        let q = Message::query(0, qname.clone(), RrType::A);
        let mut r = q.response();
        r.answers.push(Record::a(qname, self.evil, 600));
        r.additionals.push(Record::a(target, self.evil, 600));
        self.race = Some(ForgeRace {
            wire: r.encode(),
            armed_at,
            ports,
        });
        self.sent_this_race = 0;
    }

    fn active(&self) -> bool {
        self.race.is_some()
    }

    fn pump(&mut self, ctx: &mut Context<'_>) {
        let Some(race) = &self.race else { return };
        let now = ctx.now();
        if now < race.armed_at {
            return;
        }
        let elapsed = now.saturating_sub(race.armed_at);
        if elapsed >= self.window {
            self.race = None;
            return;
        }
        let due = (elapsed.as_secs_f64() * self.rate) as u64;
        let batch = due.saturating_sub(self.sent_this_race).min(1_000);
        for _ in 0..batch {
            let txid: u16 = ctx.rng().gen();
            let port = match race.ports {
                PortKnowledge::Exact(p) => p,
                PortKnowledge::Range { base, range } => {
                    base.wrapping_add(ctx.rng().gen_range(0..range.max(1)))
                }
            };
            let mut wire = race.wire.clone();
            wire[0] = (txid >> 8) as u8;
            wire[1] = txid as u8;
            ctx.send(Packet::udp(
                Endpoint::new(self.spoof_server, DNS_PORT),
                Endpoint::new(self.resolver, port),
                wire,
            ));
        }
        self.sent_this_race += batch;
        self.total_sent += batch;
    }
}

// ---- Kaminsky ----------------------------------------------------------

/// Configuration of [`KaminskyAttack`].
#[derive(Debug, Clone)]
pub struct KaminskyConfig {
    /// The attacker's real address (it is an ordinary resolver client).
    pub attacker: Ipv4Addr,
    /// The victim recursive resolver.
    pub resolver: Ipv4Addr,
    /// The authoritative server whose address the forgeries spoof.
    pub spoof_server: Ipv4Addr,
    /// Zone under attack; race names are minted beneath it.
    pub victim_zone: Name,
    /// Address planted in forged answer/additional records.
    pub evil: Ipv4Addr,
    /// Forged responses per second during each race window.
    pub forge_rate: f64,
    /// Number of independent races (each on a fresh miss/target name).
    pub races: u32,
    /// Time between race starts. Must exceed `arm_delay + window` so races
    /// never overlap.
    pub race_period: SimTime,
    /// Delay between sending the forced-miss query and opening the forged
    /// flood (covers client→resolver→authority propagation).
    pub arm_delay: SimTime,
    /// Duration of each forged flood — the attacker's estimate of the
    /// authoritative round-trip it is racing.
    pub window: SimTime,
    /// Port knowledge the attacker races with.
    pub ports: PortKnowledge,
}

/// The Kaminsky cache-poisoning adversary: force a miss, race the answer.
pub struct KaminskyAttack {
    config: KaminskyConfig,
    forger: Forger,
    next_race: u32,
    /// Forced-miss client queries sent.
    pub queries_sent: u64,
    /// Responses the resolver sent back to our client queries.
    pub responses_seen: u64,
}

impl KaminskyAttack {
    /// Creates the attacker node.
    pub fn new(config: KaminskyConfig) -> Self {
        let forger = Forger::new(
            config.spoof_server,
            config.resolver,
            config.evil,
            config.forge_rate,
            config.window,
        );
        KaminskyAttack {
            config,
            forger,
            next_race: 0,
            queries_sent: 0,
            responses_seen: 0,
        }
    }

    /// Total forged responses emitted.
    pub fn forged_sent(&self) -> u64 {
        self.forger.total_sent
    }

    /// Races launched so far.
    pub fn races_launched(&self) -> u32 {
        self.next_race
    }
}

impl Node for KaminskyAttack {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        let now = ctx.now();
        if self.next_race < self.config.races
            && now >= self.config.race_period * u64::from(self.next_race)
        {
            let r = self.next_race;
            self.next_race += 1;
            let miss = miss_name(&self.config.victim_zone, r);
            let q = Message::query(0x4000 ^ (r as u16), miss.clone(), RrType::A);
            ctx.send(Packet::udp(
                Endpoint::new(self.config.attacker, 30_000 + (r % 30_000) as u16),
                Endpoint::new(self.config.resolver, DNS_PORT),
                q.encode(),
            ));
            self.queries_sent += 1;
            self.forger.arm(
                miss,
                target_name(&self.config.victim_zone, r),
                now + self.config.arm_delay,
                self.config.ports,
            );
        }
        self.forger.pump(ctx);
        if self.next_race < self.config.races || self.forger.active() {
            ctx.set_timer(TICK, 0);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
        self.responses_seen += 1;
    }
}

// ---- Port derandomizer -------------------------------------------------

/// Configuration of [`PortDerandomizer`].
#[derive(Debug, Clone)]
pub struct DerandConfig {
    /// The attacker's real address — it is both a resolver client and the
    /// delegated name server for `probe_zone`.
    pub attacker: Ipv4Addr,
    /// A zone the attacker controls (delegated to `attacker` in the world
    /// the harness builds); resolving any name under it makes the resolver
    /// reveal its current source port to the attacker.
    pub probe_zone: Name,
    /// The victim recursive resolver.
    pub resolver: Ipv4Addr,
    /// Authoritative server the forgeries spoof.
    pub spoof_server: Ipv4Addr,
    /// Zone under attack.
    pub victim_zone: Name,
    /// Address planted in forged records.
    pub evil: Ipv4Addr,
    /// Forged responses per second during each race.
    pub forge_rate: f64,
    /// Number of probe-then-race rounds.
    pub races: u32,
    /// Time between rounds (round `r` starts at `(r + 1) × race_period`;
    /// period 0 is the cache-priming warmup).
    pub race_period: SimTime,
    /// Duration of each forged flood.
    pub window: SimTime,
    /// Predicted port distance from the observed probe port — 1 for a
    /// sequential allocator.
    pub port_step: u16,
}

/// The "Security of Patched DNS" adversary: probe the resolver's port via
/// an attacker-owned zone, predict the next port of a sequential
/// allocator, then run the Kaminsky race with the port known.
pub struct PortDerandomizer {
    config: DerandConfig,
    forger: Forger,
    next_race: u32,
    awaiting_probe: Option<u32>,
    /// Iterative queries for `probe_zone` observed (and answered).
    pub probes_seen: u64,
    /// The most recent source port the resolver revealed.
    pub last_observed_port: Option<u16>,
    /// Client queries sent (warmup + probes + forced misses).
    pub queries_sent: u64,
    /// Responses the resolver sent back to our client queries.
    pub responses_seen: u64,
}

impl PortDerandomizer {
    /// Creates the attacker node.
    pub fn new(config: DerandConfig) -> Self {
        let forger = Forger::new(
            config.spoof_server,
            config.resolver,
            config.evil,
            config.forge_rate,
            config.window,
        );
        PortDerandomizer {
            config,
            forger,
            next_race: 0,
            awaiting_probe: None,
            probes_seen: 0,
            last_observed_port: None,
            queries_sent: 0,
            responses_seen: 0,
        }
    }

    /// Total forged responses emitted.
    pub fn forged_sent(&self) -> u64 {
        self.forger.total_sent
    }

    fn send_client_query(&mut self, ctx: &mut Context<'_>, txid: u16, name: Name, sport: u16) {
        let q = Message::query(txid, name, RrType::A);
        ctx.send(Packet::udp(
            Endpoint::new(self.config.attacker, sport),
            Endpoint::new(self.config.resolver, DNS_PORT),
            q.encode(),
        ));
        self.queries_sent += 1;
    }
}

impl Node for PortDerandomizer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Warmup: prime the victim-zone delegation in the resolver's cache
        // so each later forced-miss query goes straight to the victim's
        // name server from exactly one freshly-allocated port.
        let warm = self
            .config
            .victim_zone
            .child(b"www")
            .expect("warmup label fits");
        self.send_client_query(ctx, 0x7757, warm, 28_000);
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        let now = ctx.now();
        if self.next_race < self.config.races
            && now >= self.config.race_period * u64::from(self.next_race + 1)
        {
            let r = self.next_race;
            self.next_race += 1;
            let probe = self
                .config
                .probe_zone
                .child(format!("probe{r}").as_bytes())
                .expect("probe label fits");
            self.send_client_query(ctx, 0x6000 ^ (r as u16), probe, 29_000 + (r % 1000) as u16);
            self.awaiting_probe = Some(r);
        }
        self.forger.pump(ctx);
        if self.next_race < self.config.races || self.forger.active() || self.awaiting_probe.is_some()
        {
            ctx.set_timer(TICK, 0);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let Ok(msg) = Message::decode(&pkt.payload) else {
            return;
        };
        if msg.header.response {
            self.responses_seen += 1;
            return;
        }
        // An iterative query from the resolver for our own zone: the
        // resolver just told us its current source port.
        let Some(q) = msg.question() else { return };
        if !q.name.is_subdomain_of(&self.config.probe_zone) {
            return;
        }
        self.probes_seen += 1;
        self.last_observed_port = Some(pkt.src.port);
        // Answer honestly (echoing the exact question casing, so even a
        // 0x20 resolver accepts) — we are this zone's real server.
        let mut resp = msg.response();
        resp.answers.push(Record::a(q.name.clone(), self.config.attacker, 600));
        ctx.send(Packet::udp(
            Endpoint::new(self.config.attacker, DNS_PORT),
            pkt.src,
            resp.encode(),
        ));
        if let Some(r) = self.awaiting_probe.take() {
            let predicted = pkt.src.port.wrapping_add(self.config.port_step);
            let miss = miss_name(&self.config.victim_zone, r);
            self.send_client_query(
                ctx,
                0x5000 ^ (r as u16),
                miss.clone(),
                31_000 + (r % 1000) as u16,
            );
            self.forger.arm(
                miss,
                target_name(&self.config.victim_zone, r),
                ctx.now(),
                PortKnowledge::Exact(predicted),
            );
        }
    }
}

// ---- Fragmentation poisoner --------------------------------------------

/// Configuration of [`FragPoisoner`].
#[derive(Debug, Clone)]
pub struct FragPoisonConfig {
    /// The attacker's real address (an ordinary resolver client).
    pub attacker: Ipv4Addr,
    /// The victim recursive resolver.
    pub resolver: Ipv4Addr,
    /// A name whose legitimate response overflows the path MTU.
    pub qname: Name,
    /// Trigger queries to send.
    pub trials: u32,
    /// Spacing between trigger queries.
    pub trial_period: SimTime,
}

/// The fragmentation-poisoning trigger: queries for an oversized RRset so
/// the authoritative response fragments in flight, where the
/// harness-planted second fragment (see [`craft_evil_tail`]) replaces its
/// tail. No guessing happens here — that is the point of the attack.
pub struct FragPoisoner {
    config: FragPoisonConfig,
    sent: u32,
    /// Responses the resolver sent back to our trigger queries.
    pub responses_seen: u64,
}

impl FragPoisoner {
    /// Creates the trigger node.
    pub fn new(config: FragPoisonConfig) -> Self {
        FragPoisoner {
            config,
            sent: 0,
            responses_seen: 0,
        }
    }

    /// Trigger queries sent so far.
    pub fn sent(&self) -> u32 {
        self.sent
    }
}

impl Node for FragPoisoner {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimTime::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if self.sent >= self.config.trials {
            return;
        }
        let q = Message::query(
            0x3000 ^ (self.sent as u16),
            self.config.qname.clone(),
            RrType::A,
        );
        ctx.send(Packet::udp(
            Endpoint::new(self.config.attacker, 32_000 + (self.sent % 1000) as u16),
            Endpoint::new(self.config.resolver, DNS_PORT),
            q.encode(),
        ));
        self.sent += 1;
        if self.sent < self.config.trials {
            ctx.set_timer(self.config.trial_period, 0);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
        self.responses_seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::rdata::RData;
    use netsim::engine::{CpuConfig, FragSub, Simulator};
    use netsim::NodeId;
    use server::authoritative::Authority;
    use server::hardening::{PortMode, ResolverHardening};
    use server::nodes::AuthNode;
    use server::recursive::{RecursiveResolver, ResolverConfig};
    use server::zone::{Zone, ZoneBuilder};

    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
    const ROOT_NS: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const VICTIM_NS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
    const ATTACKER: Ipv4Addr = Ipv4Addr::new(66, 0, 0, 1);
    const EVIL: Ipv4Addr = Ipv4Addr::new(66, 66, 66, 66);
    const WWW: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 80);

    fn victim() -> Name {
        "victim.com".parse().unwrap()
    }

    fn root_zone() -> Zone {
        ZoneBuilder::new(Name::root())
            .ttl(600)
            .ns("ns.root".parse().unwrap(), ROOT_NS)
            .delegate(victim(), "ns.victim.com".parse().unwrap(), VICTIM_NS)
            .delegate(
                "attacker.net".parse().unwrap(),
                "ns.attacker.net".parse().unwrap(),
                ATTACKER,
            )
            .build()
    }

    fn victim_zone() -> Zone {
        let mut b = ZoneBuilder::new(victim())
            .ttl(600)
            .ns("ns.victim.com".parse().unwrap(), VICTIM_NS)
            .a("www.victim.com".parse().unwrap(), WWW);
        for i in 0..24u8 {
            b = b.a("big.victim.com".parse().unwrap(), Ipv4Addr::new(192, 0, 2, 100 + i));
        }
        b.build()
    }

    /// Root + victim NS + resolver, with the victim link slowed so the
    /// authoritative round trip is `victim_rtt` — the race window.
    fn world(
        seed: u64,
        hardening: ResolverHardening,
        victim_rtt: SimTime,
    ) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let _root = sim.add_node(
            ROOT_NS,
            CpuConfig::unbounded(),
            AuthNode::new(ROOT_NS, Authority::new(vec![root_zone()])),
        );
        let victim_ns = sim.add_node(
            VICTIM_NS,
            CpuConfig::unbounded(),
            AuthNode::new(VICTIM_NS, Authority::new(vec![victim_zone()])),
        );
        let mut cfg = ResolverConfig::new(RESOLVER, vec![ROOT_NS]);
        cfg.timeout = victim_rtt * 4;
        cfg.hardening = hardening;
        let lrs = sim.add_node(RESOLVER, CpuConfig::unbounded(), RecursiveResolver::new(cfg));
        sim.connect_rtt(victim_ns, lrs, victim_rtt);
        (sim, lrs, victim_ns)
    }

    fn poisoned_races(sim: &mut Simulator, lrs: NodeId, races: u32) -> u32 {
        let now = sim.now();
        let r = sim.node_mut::<RecursiveResolver>(lrs).unwrap();
        (0..races)
            .filter(|&i| r.poison_check(now, &target_name(&victim(), i), RrType::A, &[]))
            .count() as u32
    }

    #[test]
    fn kaminsky_poisons_undefended_fixed_port_resolver() {
        // Fixed port 53, no defenses: entropy is the 16-bit txid alone.
        // G = 1M/s × 80 ms = 80K guesses/race → p ≈ 0.70 per race.
        let (mut sim, lrs, _) = world(41, ResolverHardening::default(), SimTime::from_millis(100));
        let atk = sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            KaminskyAttack::new(KaminskyConfig {
                attacker: ATTACKER,
                resolver: RESOLVER,
                spoof_server: VICTIM_NS,
                victim_zone: victim(),
                evil: EVIL,
                forge_rate: 1_000_000.0,
                races: 3,
                race_period: SimTime::from_millis(150),
                arm_delay: SimTime::from_micros(500),
                window: SimTime::from_millis(80),
                ports: PortKnowledge::Exact(DNS_PORT),
            }),
        );
        sim.run_until(SimTime::from_millis(600));
        let forged = sim.node_ref::<KaminskyAttack>(atk).unwrap().forged_sent();
        assert!(forged > 200_000, "flood ran: {forged}");
        let wins = poisoned_races(&mut sim, lrs, 3);
        assert!(wins >= 1, "≥1 of 3 races at p≈0.7 each must land (got {wins})");
        let stats = sim.node_ref::<RecursiveResolver>(lrs).unwrap().stats();
        assert!(stats.poison_successes >= 1);
        assert!(stats.poison_attempts >= 1, "lost races leave mismatch tracks");
    }

    #[test]
    fn kaminsky_blanked_by_full_hardening_stack() {
        let (mut sim, lrs, _) = world(42, ResolverHardening::full(), SimTime::from_millis(60));
        let atk = sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            KaminskyAttack::new(KaminskyConfig {
                attacker: ATTACKER,
                resolver: RESOLVER,
                spoof_server: VICTIM_NS,
                victim_zone: victim(),
                evil: EVIL,
                forge_rate: 400_000.0,
                races: 2,
                race_period: SimTime::from_millis(100),
                arm_delay: SimTime::from_micros(500),
                window: SimTime::from_millis(40),
                ports: PortKnowledge::Range {
                    base: 32768,
                    range: 16384,
                },
            }),
        );
        sim.run_until(SimTime::from_millis(400));
        assert!(sim.node_ref::<KaminskyAttack>(atk).unwrap().forged_sent() > 20_000);
        assert_eq!(poisoned_races(&mut sim, lrs, 2), 0, "full stack: no race lands");
        assert_eq!(
            sim.node_ref::<RecursiveResolver>(lrs).unwrap().stats().poison_successes,
            0
        );
    }

    #[test]
    fn derandomizer_observes_sequential_ports_and_poisons() {
        // Sequential ephemeral ports: the probe reveals port P, the next
        // query uses P+1, and the race degenerates to the fixed-port case.
        let hardening = ResolverHardening {
            port_mode: PortMode::Sequential { base: 40_000 },
            ..ResolverHardening::default()
        };
        let (mut sim, lrs, _) = world(43, hardening, SimTime::from_millis(100));
        let atk = sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            PortDerandomizer::new(DerandConfig {
                attacker: ATTACKER,
                probe_zone: "attacker.net".parse().unwrap(),
                resolver: RESOLVER,
                spoof_server: VICTIM_NS,
                victim_zone: victim(),
                evil: EVIL,
                forge_rate: 1_000_000.0,
                races: 3,
                race_period: SimTime::from_millis(150),
                window: SimTime::from_millis(80),
                port_step: 1,
            }),
        );
        sim.run_until(SimTime::from_millis(700));
        let a = sim.node_ref::<PortDerandomizer>(atk).unwrap();
        assert!(a.probes_seen >= 3, "probes answered: {}", a.probes_seen);
        let observed = a.last_observed_port.expect("resolver revealed a port");
        assert!((40_000..50_000).contains(&observed), "sequential pool port: {observed}");
        assert!(a.forged_sent() > 200_000);
        let wins = poisoned_races(&mut sim, lrs, 3);
        assert!(wins >= 1, "derandomized race must land like fixed-port (got {wins})");
    }

    #[test]
    fn derandomizer_defeated_by_randomized_ports() {
        // Same attacker, but keyed-random ports: the P+1 prediction is
        // wrong and forgeries land on closed ports.
        let hardening = ResolverHardening {
            port_mode: PortMode::Randomized {
                base: 32768,
                range: 16384,
            },
            ..ResolverHardening::default()
        };
        let (mut sim, lrs, _) = world(44, hardening, SimTime::from_millis(60));
        sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            PortDerandomizer::new(DerandConfig {
                attacker: ATTACKER,
                probe_zone: "attacker.net".parse().unwrap(),
                resolver: RESOLVER,
                spoof_server: VICTIM_NS,
                victim_zone: victim(),
                evil: EVIL,
                forge_rate: 300_000.0,
                races: 2,
                race_period: SimTime::from_millis(100),
                window: SimTime::from_millis(40),
                port_step: 1,
            }),
        );
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(poisoned_races(&mut sim, lrs, 2), 0);
    }

    /// The exact wire the victim's name server will emit for the
    /// oversized query (tail bytes past the MTU are txid-independent).
    fn big_response_wire() -> Vec<u8> {
        let q = Message::iterative_query(0, "big.victim.com".parse().unwrap(), RrType::A);
        let (resp, _) = Authority::new(vec![victim_zone()]).answer(&q);
        resp.encode()
    }

    #[test]
    fn fragment_substitution_poisons_undefended_resolver() {
        let (mut sim, lrs, victim_ns) =
            world(45, ResolverHardening::default(), SimTime::from_millis(2));
        let mtu = 300;
        let wire = big_response_wire();
        assert!(wire.len() > mtu + 4, "big RRset overflows MTU: {}", wire.len());
        sim.set_link_mtu(victim_ns, lrs, mtu);
        sim.plant_fragment(
            lrs,
            FragSub {
                src: VICTIM_NS,
                offset: mtu,
                payload: craft_evil_tail(&wire, mtu, EVIL),
            },
        );
        let atk = sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            FragPoisoner::new(FragPoisonConfig {
                attacker: ATTACKER,
                resolver: RESOLVER,
                qname: "big.victim.com".parse().unwrap(),
                trials: 1,
                trial_period: SimTime::from_millis(50),
            }),
        );
        sim.run_until(SimTime::from_millis(100));
        assert!(sim.node_ref::<FragPoisoner>(atk).unwrap().responses_seen >= 1);
        assert!(sim.fault_stats().fragmented >= 1);
        assert!(sim.fault_stats().frag_substituted >= 1);
        let legit: Vec<RData> = (0..24u8)
            .map(|i| RData::A(Ipv4Addr::new(192, 0, 2, 100 + i)))
            .collect();
        let now = sim.now();
        let r = sim.node_mut::<RecursiveResolver>(lrs).unwrap();
        assert!(
            r.poison_check(now, &"big.victim.com".parse().unwrap(), RrType::A, &legit),
            "evil tail record must be cached — no guessing required"
        );
    }

    #[test]
    fn fragment_rejection_defeats_substitution_via_tcp() {
        let hardening = ResolverHardening {
            reject_fragmented: true,
            ..ResolverHardening::default()
        };
        let (mut sim, lrs, victim_ns) = world(46, hardening, SimTime::from_millis(2));
        let mtu = 300;
        let wire = big_response_wire();
        sim.set_link_mtu(victim_ns, lrs, mtu);
        sim.plant_fragment(
            lrs,
            FragSub {
                src: VICTIM_NS,
                offset: mtu,
                payload: craft_evil_tail(&wire, mtu, EVIL),
            },
        );
        let atk = sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            FragPoisoner::new(FragPoisonConfig {
                attacker: ATTACKER,
                resolver: RESOLVER,
                qname: "big.victim.com".parse().unwrap(),
                trials: 1,
                trial_period: SimTime::from_millis(50),
            }),
        );
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.node_ref::<FragPoisoner>(atk).unwrap().responses_seen >= 1);
        let legit: Vec<RData> = (0..24u8)
            .map(|i| RData::A(Ipv4Addr::new(192, 0, 2, 100 + i)))
            .collect();
        let now = sim.now();
        let stats = sim.node_ref::<RecursiveResolver>(lrs).unwrap().stats();
        assert!(stats.frag_rejected >= 1, "reassembled answer discarded");
        assert!(stats.tcp_fallbacks >= 1, "re-queried over TCP");
        let r = sim.node_mut::<RecursiveResolver>(lrs).unwrap();
        assert!(
            !r.poison_check(now, &"big.victim.com".parse().unwrap(), RrType::A, &legit),
            "TCP path carries the genuine RRset only"
        );
    }

    #[test]
    fn craft_evil_tail_replaces_only_final_rdata() {
        let wire = big_response_wire();
        let mtu = 300;
        let tail = craft_evil_tail(&wire, mtu, EVIL);
        assert_eq!(tail.len(), wire.len() - mtu);
        assert_eq!(&tail[tail.len() - 4..], &EVIL.octets());
        assert_eq!(&tail[..tail.len() - 4], &wire[mtu..wire.len() - 4]);
    }
}
