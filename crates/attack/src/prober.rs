//! The feedback-probing attack of section III.G: "send an attack request
//! to the ANS with a guessed y value. While the attack traffic is going on,
//! the attacker does a normal DNS query to the ANS to probe its performance
//! and see if the guessed value is correct."
//!
//! The prober alternates per-candidate bursts (spoofing the victim's
//! address at one `COOKIE2` destination) with timing probes from its own
//! real address. A correct guess loads the ANS and slows the probe;
//! Rate-Limiter2 exists precisely to erase that signal.

use dnswire::message::Message;
use dnswire::types::RrType;
use netsim::engine::{Context, Node};
use netsim::packet::{Endpoint, Packet, DNS_PORT};
use netsim::time::SimTime;
use std::net::Ipv4Addr;

/// Configuration of the prober.
#[derive(Debug, Clone)]
pub struct ProberConfig {
    /// The attacker's own (real) address, used for probes.
    pub attacker: Ipv4Addr,
    /// The victim address being spoofed in the guess bursts.
    pub victim: Ipv4Addr,
    /// Guard public address (probes go here).
    pub guard: Ipv4Addr,
    /// Guard `COOKIE2` subnet base (guess bursts go here).
    pub subnet_base: Ipv4Addr,
    /// Candidate `y` values to test.
    pub candidates: Vec<u32>,
    /// Burst rate during each candidate's window, req/s.
    pub burst_rate: f64,
    /// Length of each candidate's burst window.
    pub burst_len: SimTime,
    /// Probes sent per candidate (averaged).
    pub probes_per_candidate: u32,
}

/// Per-candidate measurement.
#[derive(Debug, Clone)]
pub struct CandidateResult {
    /// The `y` value tested.
    pub y: u32,
    /// Mean probe latency observed during this candidate's burst.
    pub mean_probe_latency: SimTime,
    /// Probes that timed out entirely.
    pub probe_timeouts: u32,
}

enum Phase {
    /// Obtain the attacker's own (legitimate) cookie NS name, so probes
    /// traverse the guard *to the ANS* and sense its load.
    Setup,
    Bursting { candidate: usize, sent: u64, started: SimTime },
    Done,
}

/// The feedback prober node.
pub struct FeedbackProber {
    config: ProberConfig,
    phase: Phase,
    probe_seq: u16,
    /// The attacker's own cookie NS name (learned in setup); queries for it
    /// are verified by the guard and forwarded to the ANS.
    probe_name: Option<dnswire::Name>,
    outstanding_probe: Option<(u16, SimTime)>,
    latencies: Vec<(usize, SimTime)>,
    timeouts: Vec<u32>,
    /// Results, filled as candidates complete.
    pub results: Vec<CandidateResult>,
}

const TAG_TICK: u64 = 1;
/// Probe-timeout tags carry the probe sequence number in the upper bits so
/// a stale timer from an already-answered probe is ignored.
const TAG_PROBE_BASE: u64 = 1 << 32;
const PROBE_TIMEOUT: SimTime = SimTime::from_millis(30);

impl FeedbackProber {
    /// Creates the prober; it starts with the first candidate at t=0.
    pub fn new(config: ProberConfig) -> Self {
        let n = config.candidates.len();
        FeedbackProber {
            config,
            phase: Phase::Setup,
            probe_seq: 0,
            probe_name: None,
            outstanding_probe: None,
            latencies: Vec::new(),
            timeouts: vec![0; n],
            results: Vec::new(),
        }
    }

    /// Whether all candidates have been measured.
    pub fn finished(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// The candidate whose probes were slowest — the attacker's best guess.
    pub fn best_guess(&self) -> Option<u32> {
        self.results
            .iter()
            .max_by_key(|r| (r.probe_timeouts, r.mean_probe_latency))
            .map(|r| r.y)
    }

    fn send_probe(&mut self, ctx: &mut Context<'_>) {
        self.probe_seq = self.probe_seq.wrapping_add(1).max(1);
        let qname = self
            .probe_name
            .clone()
            .unwrap_or_else(|| "www.foo.com".parse().expect("static"));
        let q = Message::iterative_query(self.probe_seq, qname, RrType::A);
        ctx.send(Packet::udp(
            Endpoint::new(self.config.attacker, 7000),
            Endpoint::new(self.config.guard, DNS_PORT),
            q.encode(),
        ));
        self.outstanding_probe = Some((self.probe_seq, ctx.now()));
        ctx.set_timer(PROBE_TIMEOUT, TAG_PROBE_BASE | self.probe_seq as u64);
    }

    fn finish_candidate(&mut self, ctx: &mut Context<'_>, candidate: usize) {
        let samples: Vec<SimTime> = self
            .latencies
            .iter()
            .filter(|(c, _)| *c == candidate)
            .map(|(_, l)| *l)
            .collect();
        let mean = if samples.is_empty() {
            PROBE_TIMEOUT
        } else {
            samples.iter().copied().sum::<SimTime>() / samples.len() as u64
        };
        self.results.push(CandidateResult {
            y: self.config.candidates[candidate],
            mean_probe_latency: mean,
            probe_timeouts: self.timeouts[candidate],
        });
        let next = candidate + 1;
        if next >= self.config.candidates.len() {
            self.phase = Phase::Done;
        } else {
            self.phase = Phase::Bursting {
                candidate: next,
                sent: 0,
                started: ctx.now(),
            };
            ctx.set_timer(SimTime::ZERO, TAG_TICK);
        }
    }
}

impl Node for FeedbackProber {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Setup: a plain query earns the attacker its own cookie NS name.
        self.send_probe(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TAG_TICK => {
                let Phase::Bursting { candidate, sent, started } = &mut self.phase else {
                    return;
                };
                let candidate = *candidate;
                let elapsed = ctx.now().saturating_sub(*started);
                if elapsed >= self.config.burst_len {
                    self.finish_candidate(ctx, candidate);
                    return;
                }
                // Emit the due portion of the burst, spoofed as the victim.
                let due = (elapsed.as_secs_f64() * self.config.burst_rate) as u64;
                let batch = due.saturating_sub(*sent).min(500);
                *sent += batch;
                let y = self.config.candidates[candidate];
                let dst = Ipv4Addr::from(u32::from(self.config.subnet_base) + 1 + y);
                for i in 0..batch {
                    let q = Message::iterative_query(
                        (i % 65_535) as u16,
                        "www.foo.com".parse().expect("static"),
                        RrType::A,
                    );
                    ctx.send(Packet::udp(
                        Endpoint::new(self.config.victim, 6000),
                        Endpoint::new(dst, DNS_PORT),
                        q.encode(),
                    ));
                }
                ctx.set_timer(SimTime::from_micros(100), TAG_TICK);
            }
            tag if tag & TAG_PROBE_BASE != 0 => {
                let seq = (tag & 0xFFFF) as u16;
                if matches!(self.outstanding_probe, Some((s, _)) if s == seq) {
                    self.outstanding_probe = None;
                    if let Phase::Bursting { candidate, .. } = self.phase {
                        self.timeouts[candidate] += 1;
                    }
                    self.send_probe(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let Ok(msg) = Message::decode(&pkt.payload) else {
            return;
        };
        let Some((want, sent_at)) = self.outstanding_probe else {
            return;
        };
        if msg.header.id != want {
            return;
        }
        self.outstanding_probe = None;
        match self.phase {
            Phase::Setup => {
                // Learn the fabricated NS name from the guard's referral.
                if let Some(ns) = msg
                    .authorities
                    .iter()
                    .find_map(|r| match &r.rdata {
                        dnswire::RData::Ns(n) => Some(n.clone()),
                        _ => None,
                    })
                {
                    self.probe_name = Some(ns);
                    self.phase = Phase::Bursting {
                        candidate: 0,
                        sent: 0,
                        started: ctx.now(),
                    };
                    ctx.set_timer(SimTime::ZERO, TAG_TICK);
                }
                self.send_probe(ctx);
            }
            Phase::Bursting { candidate, .. } => {
                self.latencies.push((candidate, ctx.now() - sent_at));
                self.send_probe(ctx);
            }
            Phase::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsguard::classify::AuthorityClassifier;
    use dnsguard::config::{GuardConfig, SchemeMode};
    use dnsguard::guard::RemoteGuard;
    use netsim::engine::{CpuConfig, Simulator};
    use server::authoritative::Authority;
    use server::nodes::{AuthNode, ServerCosts};
    use server::zone::paper_hierarchy;

    const PUB: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const PRIV: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);
    const SUBNET: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 0);
    const VICTIM: Ipv4Addr = Ipv4Addr::new(44, 1, 1, 1);

    /// Builds the probing scenario; returns (sim, guard, prober, correct_y).
    fn scenario(seed: u64, rl2_rate: f64) -> (Simulator, netsim::NodeId, netsim::NodeId, u32) {
        let (_, _, foo) = paper_hierarchy();
        let authority = Authority::new(vec![foo]);
        let mut sim = Simulator::new(seed);
        let mut config = GuardConfig {
            subnet_base: SUBNET,
            ..GuardConfig::new(PUB, PRIV)
        }
        .with_mode(SchemeMode::DnsBased);
        config.rl2_per_source_rate = rl2_rate;
        config.rl1_global_rate = 1e12;
        config.rl1_per_source_rate = 1e12;
        let guard_node = RemoteGuard::new(config, AuthorityClassifier::new(authority.clone()));
        // The correct COOKIE2 offset for the victim (what the attacker is
        // hunting for). Recover it by asking the factory directly.
        let correct_addr = {
            // generate_subnet_offset with the public-address exclusion:
            // reproduce via the guard's own encode path by probing.
            let y = guard_node
                .cookie_factory()
                .generate_subnet_offset(VICTIM, 253);
            // public addr offset is 3 (198.41.0.4 = base+1+3): mirror the
            // guard's skip logic.
            if y >= 3 {
                y + 1
            } else {
                y
            }
        };
        let guard = sim.add_node(PUB, CpuConfig::default(), guard_node);
        sim.add_subnet(SUBNET, 24, guard);
        sim.add_node(
            PRIV,
            CpuConfig::default(),
            AuthNode::with_costs(PRIV, authority, ServerCosts::bind9()),
        );
        // Candidates: a few wrong guesses plus the correct one.
        let candidates = vec![7, 42, correct_addr, 99, 123];
        let prober_ip = Ipv4Addr::new(66, 0, 0, 7);
        let prober = sim.add_node(
            prober_ip,
            CpuConfig::unbounded(),
            FeedbackProber::new(ProberConfig {
                attacker: prober_ip,
                victim: VICTIM,
                guard: PUB,
                subnet_base: SUBNET,
                candidates,
                burst_rate: 100_000.0,
                burst_len: SimTime::from_millis(100),
                probes_per_candidate: 8,
            }),
        );
        (sim, guard, prober, correct_addr)
    }

    #[test]
    fn open_rate_limiter_leaks_the_guess_through_timing() {
        // With Rate-Limiter2 wide open, the correct guess floods the BIND
        // ANS and the attacker's probes slow down measurably.
        let (mut sim, _guard, prober, correct) = scenario(1, 1e12);
        sim.run_until(SimTime::from_secs(2));
        let p = sim.node_ref::<FeedbackProber>(prober).unwrap();
        assert!(p.finished());
        assert_eq!(
            p.best_guess(),
            Some(correct),
            "timing side channel identifies the correct y: {:?}",
            p.results
        );
    }

    #[test]
    fn rate_limiter2_hides_the_signal() {
        // With the nominal per-host rate, even the correct guess cannot
        // load the ANS, so the probe timing carries no signal strong enough
        // to stand out: the correct candidate's latency stays within 2x of
        // the slowest wrong candidate (no reliable oracle).
        let (mut sim, guard, prober, correct) = scenario(2, 100.0);
        sim.run_until(SimTime::from_secs(2));
        let p = sim.node_ref::<FeedbackProber>(prober).unwrap();
        assert!(p.finished());
        let correct_row = p.results.iter().find(|r| r.y == correct).unwrap();
        let worst_wrong = p
            .results
            .iter()
            .filter(|r| r.y != correct)
            .map(|r| r.mean_probe_latency)
            .max()
            .unwrap();
        assert!(
            correct_row.mean_probe_latency <= worst_wrong * 2,
            "RL2 should flatten the timing contrast: correct {} vs wrong max {}",
            correct_row.mean_probe_latency,
            worst_wrong
        );
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.stats().rl2_dropped > 1_000, "the correct-y flood was throttled");
    }
}
