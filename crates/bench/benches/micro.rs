//! Criterion micro-benchmarks for the guard's hot paths: cookie
//! computation/verification (the paper's "cookie checker... sustains large
//! attack rates"), wire encode/decode, the rate limiters, and the
//! observability recording overhead (disabled vs enabled).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnswire::message::Message;
use dnswire::record::Record;
use dnswire::types::RrType;
use guardhash::cookie::CookieFactory;
use guardhash::md5::md5;
use netsim::time::SimTime;
use netsim::tokenbucket::TokenBucket;
use std::net::Ipv4Addr;

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    // The paper's exact input shape: 80 bytes (4-byte IP + 76-byte key).
    let input = [0x5Au8; 80];
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.bench_function("digest_80B", |b| b.iter(|| md5(black_box(&input))));
    g.finish();
}

fn bench_cookie(c: &mut Criterion) {
    let mut g = c.benchmark_group("cookie");
    let factory = CookieFactory::from_seed(2006);
    let ip = Ipv4Addr::new(192, 0, 2, 53);
    let cookie = factory.generate(ip);
    let suffix = cookie.ns_label_suffix();

    g.bench_function("generate", |b| b.iter(|| factory.generate(black_box(ip))));
    g.bench_function("verify_full", |b| {
        b.iter(|| factory.verify(black_box(ip), black_box(&cookie)))
    });
    g.bench_function("verify_ns_suffix", |b| {
        b.iter(|| factory.verify_ns_suffix(black_box(ip), black_box(&suffix)))
    });
    g.bench_function("verify_reject", |b| {
        let wrong = factory.generate(Ipv4Addr::new(1, 1, 1, 1));
        b.iter(|| factory.verify(black_box(ip), black_box(&wrong)))
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let query = Message::iterative_query(7, "www.foo.com".parse().unwrap(), RrType::A);
    let mut referral = query.response();
    referral
        .authorities
        .push(Record::ns("com".parse().unwrap(), "a.gtld-servers.net".parse().unwrap(), 172_800));
    referral.additionals.push(Record::a(
        "a.gtld-servers.net".parse().unwrap(),
        Ipv4Addr::new(192, 5, 6, 30),
        172_800,
    ));
    let query_wire = query.encode();
    let referral_wire = referral.encode();

    g.bench_function("encode_query", |b| b.iter(|| black_box(&query).encode()));
    g.bench_function("encode_referral", |b| b.iter(|| black_box(&referral).encode()));
    g.bench_function("decode_query", |b| b.iter(|| Message::decode(black_box(&query_wire))));
    g.bench_function("decode_referral", |b| {
        b.iter(|| Message::decode(black_box(&referral_wire)))
    });
    g.finish();
}

fn bench_ratelimit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ratelimit");
    g.bench_function("token_bucket_take", |b| {
        let mut tb = TokenBucket::new(1e9, 1e6);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            tb.try_take(SimTime::from_nanos(t))
        })
    });
    g.bench_function("source_limiter_admit", |b| {
        let mut rl = dnsguard::ratelimit::SourceRateLimiter::new(1e9, 1e6);
        let mut t = 0u64;
        let mut ip = 0u32;
        b.iter(|| {
            t += 1_000;
            ip = ip.wrapping_add(0x01000193);
            rl.admit(SimTime::from_nanos(t), Ipv4Addr::from(ip % 4096))
        })
    });
    g.finish();
}

/// The observability recording overhead on the guard's per-datagram path:
/// the same plain-query packet driven through a full `RemoteGuard` node
/// with telemetry detached (counters only, tracer off) vs attached
/// (registry-adopted counters plus Info-level trace events into the ring).
/// The disabled/enabled delta is the cost the obs layer adds per datagram.
fn bench_obs_overhead(c: &mut Criterion) {
    use dnsguard::classify::AuthorityClassifier;
    use dnsguard::config::GuardConfig;
    use dnsguard::guard::RemoteGuard;
    use netsim::engine::{Context, CpuConfig, Node, NodeId, Simulator};
    use netsim::packet::{Endpoint, Packet, DNS_PORT};
    use obs::trace::{Level, Value};
    use obs::Obs;
    use server::authoritative::Authority;
    use server::zone::paper_hierarchy;

    /// Swallows the guard's replies.
    struct Blackhole;
    impl Node for Blackhole {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
    }

    let pub_addr = Ipv4Addr::new(198, 41, 0, 4);
    let attacker = Ipv4Addr::new(66, 0, 0, 9);
    let build = |attach: bool| -> (Simulator, NodeId, Obs) {
        let (root, _, _) = paper_hierarchy();
        let mut config = GuardConfig::new(pub_addr, Ipv4Addr::new(10, 99, 0, 1));
        // Open limiters: a closed bucket would flip the bench onto the
        // drop path after its budget drains.
        config.rl1_global_rate = 1e12;
        config.rl1_per_source_rate = 1e12;
        config.rl2_per_source_rate = 1e12;
        let mut sim = Simulator::new(7);
        let guard = sim.add_node(
            pub_addr,
            CpuConfig::unbounded(),
            RemoteGuard::new(config, AuthorityClassifier::new(Authority::new(vec![root]))),
        );
        let atk = sim.add_node(attacker, CpuConfig::unbounded(), Blackhole);
        let obs = Obs::new();
        if attach {
            obs.tracer.set_default_level(Level::Info);
            sim.attach_obs(&obs);
            sim.node_mut::<RemoteGuard>(guard).unwrap().attach_obs(&obs);
        }
        (sim, atk, obs)
    };
    let query = Message::iterative_query(9, "www.foo.com".parse().unwrap(), RrType::A);
    let pkt = Packet::udp(
        Endpoint::new(attacker, 1024),
        Endpoint::new(pub_addr, DNS_PORT),
        query.encode(),
    );

    let mut g = c.benchmark_group("obs_overhead");
    for (label, attach) in [("guard_datagram_disabled", false), ("guard_datagram_enabled", true)] {
        let (mut sim, atk, _obs) = build(attach);
        let pkt = pkt.clone();
        g.bench_function(label, |b| {
            b.iter(|| {
                sim.inject(atk, black_box(pkt.clone()));
                sim.run();
            })
        });
    }

    // The raw recording primitives, for attribution of the delta above.
    let obs = Obs::new();
    let counter = obs.registry.counter("bench", "hits", &[("scheme", "dns_based")]);
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let t_off = obs.tracer.component("bench");
    g.bench_function("trace_event_off", |b| {
        b.iter(|| t_off.event(1, "grant", &[("src", Value::Ip(attacker))]))
    });
    obs.tracer.set_default_level(Level::Info);
    let t_on = obs.tracer.component("bench2");
    g.bench_function("trace_event_on", |b| {
        b.iter(|| t_on.event(1, "grant", &[("src", Value::Ip(attacker))]))
    });
    // The same event carrying the journey correlation id: the per-event
    // cost of making a decision point stitchable into a causal timeline.
    g.bench_function("trace_event_on_with_qid", |b| {
        b.iter(|| {
            t_on.event(1, "grant", &[("src", Value::Ip(attacker)), ("qid", Value::U64(42))])
        })
    });
    g.finish();
}

/// Stage-profiling overhead budget: the same per-datagram path as
/// `bench_obs_overhead`, but compiled with the guard's `stage-profiling`
/// feature — once with the profiler unarmed (no clock injected: one branch
/// per datagram) and once armed with an `Instant`-based clock (1-in-8
/// sampled stage laps). Beyond the criterion timings, this bench enforces
/// the budget itself: best-of-N mean per-datagram cost when armed must
/// stay within 5 % of unarmed, or the bench panics (ci runs it with
/// `--features stage-profiling`).
///
/// Without the feature this is a no-op so `--all-targets` builds stay
/// green in the default configuration.
fn bench_stage_profiling(c: &mut Criterion) {
    #[cfg(not(feature = "stage-profiling"))]
    let _ = c;
    #[cfg(feature = "stage-profiling")]
    {
        use dnsguard::classify::AuthorityClassifier;
        use dnsguard::config::GuardConfig;
        use dnsguard::guard::RemoteGuard;
        use netsim::engine::{Context, CpuConfig, Node, NodeId, Simulator};
        use netsim::packet::{Endpoint, Packet, DNS_PORT};
        use std::sync::Arc;
        use std::time::Instant;

        struct Blackhole;
        impl Node for Blackhole {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }

        let pub_addr = Ipv4Addr::new(198, 41, 0, 4);
        let client = Ipv4Addr::new(66, 0, 0, 9);
        let build = |armed: bool| -> (Simulator, NodeId) {
            let (root, _, _) = server::zone::paper_hierarchy();
            let mut config = GuardConfig::new(pub_addr, Ipv4Addr::new(10, 99, 0, 1));
            config.rl1_global_rate = 1e12;
            config.rl1_per_source_rate = 1e12;
            config.rl2_per_source_rate = 1e12;
            let mut sim = Simulator::new(7);
            let guard = sim.add_node(
                pub_addr,
                CpuConfig::unbounded(),
                RemoteGuard::new(
                    config,
                    AuthorityClassifier::new(server::authoritative::Authority::new(vec![root])),
                ),
            );
            let atk = sim.add_node(client, CpuConfig::unbounded(), Blackhole);
            if armed {
                let started = Instant::now();
                sim.node_mut::<RemoteGuard>(guard)
                    .unwrap()
                    .set_stage_clock(Arc::new(move || started.elapsed().as_nanos() as u64));
            }
            (sim, atk)
        };
        let query = Message::iterative_query(9, "www.foo.com".parse().unwrap(), RrType::A);
        let pkt = Packet::udp(
            Endpoint::new(client, 1024),
            Endpoint::new(pub_addr, DNS_PORT),
            query.encode(),
        );

        let mut g = c.benchmark_group("stage_profiling");
        for (label, armed) in [("guard_datagram_unarmed", false), ("guard_datagram_armed", true)] {
            let (mut sim, atk) = build(armed);
            let pkt = pkt.clone();
            g.bench_function(label, |b| {
                b.iter(|| {
                    sim.inject(atk, black_box(pkt.clone()));
                    sim.run();
                })
            });
        }
        g.finish();

        // The budget gate: best-of-N mean per-datagram wall time, armed vs
        // unarmed. Best-of-N discards scheduler noise; the 5 % bound is the
        // acceptance criterion, the small absolute floor keeps sub-µs
        // timer jitter from flaking the gate. Trials are interleaved
        // (unarmed, armed, unarmed, ...) so a load spike on a shared box
        // degrades both arms rather than biasing one, and kept short
        // (~2 ms) so each arm gets many chances at a preemption-free
        // minimum inside one scheduler quantum.
        const TRIALS: usize = 32;
        const DATAGRAMS: u32 = 1_000;
        let trial = |sim: &mut Simulator, atk: NodeId| -> f64 {
            let t0 = Instant::now();
            for _ in 0..DATAGRAMS {
                sim.inject(atk, pkt.clone());
                sim.run();
            }
            t0.elapsed().as_nanos() as f64 / DATAGRAMS as f64
        };
        let (mut sim_u, atk_u) = build(false);
        let (mut sim_a, atk_a) = build(true);
        let (mut unarmed, mut armed) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..TRIALS {
            unarmed = unarmed.min(trial(&mut sim_u, atk_u));
            armed = armed.min(trial(&mut sim_a, atk_a));
        }
        let budget = unarmed * 1.05 + 50.0;
        assert!(
            armed <= budget,
            "stage profiling overhead out of budget: armed {armed:.1} ns/datagram \
             vs unarmed {unarmed:.1} ns/datagram (budget {budget:.1} ns)"
        );
        println!(
            "stage-profiling budget OK: unarmed {unarmed:.1} ns/datagram, \
             armed {armed:.1} ns/datagram (≤ {budget:.1})"
        );
    }
}

/// Traffic-analytics overhead budget: the same per-datagram path as
/// `bench_obs_overhead`, but compiled with the guard's `traffic-analytics`
/// feature — once with the sketch pipeline disabled at runtime (one branch
/// per datagram) and once enabled (SipHash + count-min/top-K/HLL writes
/// per datagram, estimate derivation every 256th). The datagrams cycle
/// through 64 distinct sources so the top-K takes its eviction path, not
/// just the same-entry fast path. Beyond the criterion timings, the bench
/// enforces the budget itself: best-of-N mean per-datagram cost with
/// analytics enabled must stay within 5 % of disabled, or the bench panics
/// (ci runs it with `--features traffic-analytics`).
///
/// Without the feature this is a no-op so `--all-targets` builds stay
/// green in the default configuration.
fn bench_traffic_analytics(c: &mut Criterion) {
    #[cfg(not(feature = "traffic-analytics"))]
    let _ = c;
    #[cfg(feature = "traffic-analytics")]
    {
        use dnsguard::classify::AuthorityClassifier;
        use dnsguard::config::GuardConfig;
        use dnsguard::guard::RemoteGuard;
        use netsim::engine::{Context, CpuConfig, Node, NodeId, Simulator};
        use netsim::packet::{Endpoint, Packet, DNS_PORT};
        use std::time::Instant;

        struct Blackhole;
        impl Node for Blackhole {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }

        let pub_addr = Ipv4Addr::new(198, 41, 0, 4);
        let client = Ipv4Addr::new(66, 0, 0, 9);
        let build = |enabled: bool| -> (Simulator, NodeId) {
            let (root, _, _) = server::zone::paper_hierarchy();
            let mut config = GuardConfig::new(pub_addr, Ipv4Addr::new(10, 99, 0, 1));
            config.rl1_global_rate = 1e12;
            config.rl1_per_source_rate = 1e12;
            config.rl2_per_source_rate = 1e12;
            let mut sim = Simulator::new(7);
            let guard = sim.add_node(
                pub_addr,
                CpuConfig::unbounded(),
                RemoteGuard::new(
                    config,
                    AuthorityClassifier::new(server::authoritative::Authority::new(vec![root])),
                ),
            );
            let atk = sim.add_node(client, CpuConfig::unbounded(), Blackhole);
            if !enabled {
                sim.node_mut::<RemoteGuard>(guard)
                    .unwrap()
                    .set_analytics_enabled(false);
            }
            (sim, atk)
        };
        // 64 distinct sources against a top-K capacity of 16: the sketch
        // update constantly churns the replacement path.
        let query = Message::iterative_query(9, "www.foo.com".parse().unwrap(), RrType::A);
        let pkts: Vec<Packet> = (0..64u8)
            .map(|i| {
                Packet::udp(
                    Endpoint::new(Ipv4Addr::new(66, 0, 1, i), 1024),
                    Endpoint::new(pub_addr, DNS_PORT),
                    query.encode(),
                )
            })
            .collect();

        let mut g = c.benchmark_group("traffic_analytics");
        for (label, enabled) in [("guard_datagram_disabled", false), ("guard_datagram_enabled", true)]
        {
            let (mut sim, atk) = build(enabled);
            let pkts = pkts.clone();
            let mut i = 0usize;
            g.bench_function(label, |b| {
                b.iter(|| {
                    i = (i + 1) % pkts.len();
                    sim.inject(atk, black_box(pkts[i].clone()));
                    sim.run();
                })
            });
        }
        g.finish();

        // The budget gate: best-of-N mean per-datagram wall time, enabled
        // vs disabled, interleaved trials — same methodology as the
        // stage-profiling gate above.
        const TRIALS: usize = 32;
        const DATAGRAMS: u32 = 1_000;
        let trial = |sim: &mut Simulator, atk: NodeId| -> f64 {
            let t0 = Instant::now();
            for n in 0..DATAGRAMS {
                sim.inject(atk, pkts[n as usize % pkts.len()].clone());
                sim.run();
            }
            t0.elapsed().as_nanos() as f64 / DATAGRAMS as f64
        };
        let (mut sim_off, atk_off) = build(false);
        let (mut sim_on, atk_on) = build(true);
        let (mut disabled, mut enabled) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..TRIALS {
            disabled = disabled.min(trial(&mut sim_off, atk_off));
            enabled = enabled.min(trial(&mut sim_on, atk_on));
        }
        let budget = disabled * 1.05 + 50.0;
        assert!(
            enabled <= budget,
            "traffic analytics overhead out of budget: enabled {enabled:.1} ns/datagram \
             vs disabled {disabled:.1} ns/datagram (budget {budget:.1} ns)"
        );
        println!(
            "traffic-analytics budget OK: disabled {disabled:.1} ns/datagram, \
             enabled {enabled:.1} ns/datagram (≤ {budget:.1})"
        );
    }
}

/// Journey reassembly throughput: stitching one cold-start world's drained
/// trace (fabricated-NS handshakes, forwards, relays) back into causal
/// timelines. This is the offline half of the tracing cost — it runs at
/// export time, never on the datagram path.
fn bench_journey_assembly(c: &mut Criterion) {
    use netsim::time::SimTime;
    use obs::journey::JourneyReport;
    use obs::trace::Level;
    use obs::Obs;

    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    let mut world = bench::worlds::guarded_world(bench::worlds::WorldParams::new(41));
    world
        .sim
        .node_mut::<dnsguard::guard::RemoteGuard>(world.guard)
        .unwrap()
        .attach_obs(&obs);
    bench::worlds::attach_lrs(
        &mut world.sim,
        bench::worlds::LrsParams {
            ip: Ipv4Addr::new(10, 0, 1, 1),
            mode: server::simclient::CookieMode::Plain,
            cookie_cache: false,
            concurrency: 4,
            wait: SimTime::from_millis(50),
            pace: SimTime::from_millis(1),
            per_packet_cost: SimTime::ZERO,
        },
    );
    world.sim.run_until(SimTime::from_millis(400));
    let (events, _) = obs.tracer.drain();

    let mut g = c.benchmark_group("journey_assembly");
    g.bench_function("assemble_cold_start_trace", |b| {
        b.iter(|| JourneyReport::assemble(black_box(&events)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_md5,
    bench_cookie,
    bench_wire,
    bench_ratelimit,
    bench_obs_overhead,
    bench_stage_profiling,
    bench_traffic_analytics,
    bench_journey_assembly
);
criterion_main!(benches);
