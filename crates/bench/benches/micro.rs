//! Criterion micro-benchmarks for the guard's hot paths: cookie
//! computation/verification (the paper's "cookie checker... sustains large
//! attack rates"), wire encode/decode, and the rate limiters.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnswire::message::Message;
use dnswire::record::Record;
use dnswire::types::RrType;
use guardhash::cookie::CookieFactory;
use guardhash::md5::md5;
use netsim::time::SimTime;
use netsim::tokenbucket::TokenBucket;
use std::net::Ipv4Addr;

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    // The paper's exact input shape: 80 bytes (4-byte IP + 76-byte key).
    let input = [0x5Au8; 80];
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.bench_function("digest_80B", |b| b.iter(|| md5(black_box(&input))));
    g.finish();
}

fn bench_cookie(c: &mut Criterion) {
    let mut g = c.benchmark_group("cookie");
    let factory = CookieFactory::from_seed(2006);
    let ip = Ipv4Addr::new(192, 0, 2, 53);
    let cookie = factory.generate(ip);
    let suffix = cookie.ns_label_suffix();

    g.bench_function("generate", |b| b.iter(|| factory.generate(black_box(ip))));
    g.bench_function("verify_full", |b| {
        b.iter(|| factory.verify(black_box(ip), black_box(&cookie)))
    });
    g.bench_function("verify_ns_suffix", |b| {
        b.iter(|| factory.verify_ns_suffix(black_box(ip), black_box(&suffix)))
    });
    g.bench_function("verify_reject", |b| {
        let wrong = factory.generate(Ipv4Addr::new(1, 1, 1, 1));
        b.iter(|| factory.verify(black_box(ip), black_box(&wrong)))
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let query = Message::iterative_query(7, "www.foo.com".parse().unwrap(), RrType::A);
    let mut referral = query.response();
    referral
        .authorities
        .push(Record::ns("com".parse().unwrap(), "a.gtld-servers.net".parse().unwrap(), 172_800));
    referral.additionals.push(Record::a(
        "a.gtld-servers.net".parse().unwrap(),
        Ipv4Addr::new(192, 5, 6, 30),
        172_800,
    ));
    let query_wire = query.encode();
    let referral_wire = referral.encode();

    g.bench_function("encode_query", |b| b.iter(|| black_box(&query).encode()));
    g.bench_function("encode_referral", |b| b.iter(|| black_box(&referral).encode()));
    g.bench_function("decode_query", |b| b.iter(|| Message::decode(black_box(&query_wire))));
    g.bench_function("decode_referral", |b| {
        b.iter(|| Message::decode(black_box(&referral_wire)))
    });
    g.finish();
}

fn bench_ratelimit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ratelimit");
    g.bench_function("token_bucket_take", |b| {
        let mut tb = TokenBucket::new(1e9, 1e6);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            tb.try_take(SimTime::from_nanos(t))
        })
    });
    g.bench_function("source_limiter_admit", |b| {
        let mut rl = dnsguard::ratelimit::SourceRateLimiter::new(1e9, 1e6);
        let mut t = 0u64;
        let mut ip = 0u32;
        b.iter(|| {
            t += 1_000;
            ip = ip.wrapping_add(0x01000193);
            rl.admit(SimTime::from_nanos(t), Ipv4Addr::from(ip % 4096))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_md5, bench_cookie, bench_wire, bench_ratelimit);
criterion_main!(benches);
