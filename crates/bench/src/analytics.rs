//! The traffic-analytics experiment behind `BENCH_analytics.json`: can the
//! guard's streaming sketches tell a spoofed flood from a flash crowd?
//!
//! Three adversarial workloads and a clean baseline drive one guard each,
//! with the alert engine evaluated on a fixed cadence over the registry
//! (exactly what a live deployment's telemetry loop does):
//!
//! 1. **baseline** — a small crowd at 2 K req/s: both analytics rules must
//!    stay silent (the rate floor alone keeps them quiet);
//! 2. **spoof flood** — 50 K req/s from uniformly random spoofed /32s:
//!    the source population explodes, per-source repeats stay at 1, and
//!    entropy is maximal — `spoof_flood` must fire and `flash_crowd` must
//!    not;
//! 3. **flash crowd** — 20 K req/s from a bounded 300-resolver population
//!    with Zipf(1.2) popularity: bounded cardinality, heavy re-querying,
//!    skewed distribution — `flash_crowd` must fire and `spoof_flood`
//!    must not;
//! 4. **botnet** — 3 000 real bots at 4 req/s each: every bot is below any
//!    per-source threshold, but the population surge at onset reads as
//!    `spoof_flood` (a source-population anomaly), never `flash_crowd`.
//!
//! A fifth leg checks the *mergeable* half of the design: two disjoint
//! crowds drive two independent guards, their cumulative sketches are
//! merged through [`FleetAggregator::merged_sketch`], and the fleet-wide
//! estimates are compared against the generators' exact per-source ground
//! truth — total conserved exactly, distinct sources within the HLL's
//! documented ±20 % bound, and every true top talker present in the merged
//! top-K with its count inside the space-saving error bracket
//! (`guaranteed ≤ truth ≤ count`).
//!
//! Only built with the `traffic-analytics` feature (the sketches compile
//! out of the guard otherwise). Run via `cargo run --release -p bench
//! --features traffic-analytics --bin all_experiments -- --analytics-only`;
//! the document lands in `BENCH_analytics.json`.
//!
//! [`FleetAggregator::merged_sketch`]: obs::fleet::FleetAggregator::merged_sketch

use crate::worlds::{guarded_world, GuardedWorld, WorldParams, PUB};
use attack::botnet::{BotnetConfig, BotnetLowRate};
use attack::flashcrowd::{FlashCrowd, FlashCrowdConfig};
use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use dnsguard::guard::RemoteGuard;
use netsim::engine::CpuConfig;
use netsim::time::SimTime;
use obs::alert::{AlertConfig, AlertEngine};
use obs::fleet::{FleetAggregator, FleetAlertConfig};
use obs::trace::Level;
use obs::Obs;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Alert-evaluation cadence: wide enough to smooth generator tick bursts,
/// narrow enough to catch the botnet's onset window.
const EVAL_MS: u64 = 100;

/// How many true top talkers the merge leg must find in the merged top-K.
const TOP_CHECK: usize = 3;

/// One scenario's world: a guarded topology with telemetry attached and a
/// per-node alert engine evaluated over its registry.
struct ScenarioWorld {
    w: GuardedWorld,
    obs: Obs,
    engine: AlertEngine,
}

fn scenario_world(seed: u64) -> ScenarioWorld {
    // Unbounded guard CPU: the experiment measures the *population*
    // signals, so every emitted datagram must reach the sketch.
    let mut w = guarded_world(WorldParams {
        guard_cpu: CpuConfig::unbounded(),
        ..WorldParams::new(seed)
    });
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    w.sim
        .node_mut::<RemoteGuard>(w.guard)
        .unwrap()
        .attach_obs(&obs);
    let mut engine = AlertEngine::new(AlertConfig::default());
    engine.attach_obs(&obs);
    ScenarioWorld { w, obs, engine }
}

/// Advances the world to `to_ms`, evaluating the alert rules every
/// [`EVAL_MS`] against a fresh registry snapshot.
fn run_evaluated(sw: &mut ScenarioWorld, to_ms: u64) {
    let mut ms = 0u64;
    while ms < to_ms {
        ms += EVAL_MS;
        sw.w.sim.run_until(SimTime::from_millis(ms));
        let samples = sw.obs.registry.snapshot();
        sw.engine.evaluate(sw.w.sim.now().as_nanos(), &samples);
    }
}

/// Outcome of one traffic scenario.
pub struct ScenarioOutcome {
    /// Scenario name (the JSON key).
    pub name: &'static str,
    /// Datagrams the guard ingested.
    pub datagrams: u64,
    /// Final HLL distinct-source estimate.
    pub distinct: f64,
    /// Final normalized source entropy.
    pub entropy_norm: f64,
    /// Final top-talker traffic share.
    pub top_share: f64,
    /// Whether `spoof_flood` fired at least once.
    pub spoof_flood_fired: bool,
    /// Whether `flash_crowd` fired at least once.
    pub flash_crowd_fired: bool,
    /// Every rule that fired, in first-fire order.
    pub fired_rules: Vec<&'static str>,
    /// The final analytics snapshot document.
    pub analytics_json: String,
    /// The alert engine's transcript document.
    pub alerts_json: String,
}

fn finish(name: &'static str, sw: ScenarioWorld) -> ScenarioOutcome {
    let g = sw.w.sim.node_ref::<RemoteGuard>(sw.w.guard).unwrap();
    let snap = g.analytics_snapshot();
    let fired = sw.engine.fired_rules();
    ScenarioOutcome {
        name,
        datagrams: g.stats().udp_datagrams,
        distinct: snap.distinct,
        entropy_norm: snap.entropy_norm,
        top_share: snap.top_share,
        spoof_flood_fired: fired.contains(&"spoof_flood"),
        flash_crowd_fired: fired.contains(&"flash_crowd"),
        fired_rules: fired,
        analytics_json: snap.to_json(),
        alerts_json: sw.engine.alerts_json(),
    }
}

fn qname() -> dnswire::name::Name {
    "www.foo.com".parse().expect("static qname")
}

/// Clean baseline: a small bounded crowd below the analytics rate floor.
pub fn run_baseline(seed: u64) -> ScenarioOutcome {
    let mut sw = scenario_world(seed);
    sw.w.sim.add_node(
        Ipv4Addr::new(80, 0, 0, 1),
        CpuConfig::unbounded(),
        FlashCrowd::new(FlashCrowdConfig {
            target: PUB,
            rate: 2_000.0,
            source_base: Ipv4Addr::new(110, 0, 0, 1),
            source_count: 120,
            zipf_s: 1.1,
            qname: qname(),
            duration: None,
        }),
    );
    run_evaluated(&mut sw, 1_000);
    finish("baseline", sw)
}

/// Random-spoof flood: unbounded source population, repeat rate ≈ 1.
pub fn run_spoof_flood(seed: u64) -> ScenarioOutcome {
    let mut sw = scenario_world(seed);
    sw.w.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 1),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 50_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::PlainQuery(qname()),
            duration: None,
        }),
    );
    run_evaluated(&mut sw, 1_000);
    finish("spoof_flood", sw)
}

/// Flash crowd: bounded Zipf population re-querying a hot name.
pub fn run_flash_crowd(seed: u64) -> ScenarioOutcome {
    let mut sw = scenario_world(seed);
    sw.w.sim.add_node(
        Ipv4Addr::new(77, 0, 0, 1),
        CpuConfig::unbounded(),
        FlashCrowd::new(FlashCrowdConfig {
            target: PUB,
            rate: 20_000.0,
            source_base: Ipv4Addr::new(120, 0, 0, 1),
            source_count: 300,
            zipf_s: 1.2,
            qname: qname(),
            duration: None,
        }),
    );
    // Two seconds: the first evaluation windows absorb the crowd's onset
    // (the whole population appearing at once is a new-source burst); the
    // steady-state windows after it are what must read as a crowd.
    run_evaluated(&mut sw, 2_000);
    finish("flash_crowd", sw)
}

/// Low-and-slow botnet: per-bot innocuous, collectively a flood.
pub fn run_botnet(seed: u64) -> ScenarioOutcome {
    let mut sw = scenario_world(seed);
    sw.w.sim.add_node(
        Ipv4Addr::new(78, 0, 0, 1),
        CpuConfig::unbounded(),
        BotnetLowRate::new(BotnetConfig {
            target: PUB,
            source_base: Ipv4Addr::new(130, 0, 0, 1),
            source_count: 3_000,
            per_source_rate: 4.0,
            qname: qname(),
            duration: None,
        }),
    );
    run_evaluated(&mut sw, 1_000);
    finish("botnet", sw)
}

/// Outcome of the two-site sketch-merge leg.
pub struct MergeOutcome {
    /// Datagrams the two generators emitted (exact ground truth).
    pub sent: u64,
    /// The merged sketch's total (must equal `sent`).
    pub merged_total: u64,
    /// Per-site sketch totals.
    pub site_totals: (u64, u64),
    /// Exact distinct sources across both disjoint pools.
    pub distinct_truth: u64,
    /// The merged HLL estimate.
    pub merged_distinct: f64,
    /// Relative cardinality error in percent.
    pub distinct_err_pct: f64,
    /// True top talkers the check looked for.
    pub top_expected: usize,
    /// How many were present in the merged top-K report.
    pub top_found: usize,
    /// Whether every found talker's count sat inside
    /// `guaranteed ≤ truth ≤ count`.
    pub top_bounds_ok: bool,
    /// The merged analytics snapshot document.
    pub merged_json: String,
}

/// Runs one site: a guard fed by one crowd, returning the guard's
/// cumulative sketch plus the generator's exact per-source counts.
fn merge_site(seed: u64, config: FlashCrowdConfig) -> (obs::sketch::TrafficSketch, Vec<u64>, u64) {
    let mut w = guarded_world(WorldParams {
        guard_cpu: CpuConfig::unbounded(),
        ..WorldParams::new(seed)
    });
    let crowd = w.sim.add_node(
        Ipv4Addr::new(81, 0, 0, 1),
        CpuConfig::unbounded(),
        FlashCrowd::new(config),
    );
    // 200 ms past the generator cutoff: every emitted datagram lands.
    w.sim.run_until(SimTime::from_millis(1_200));
    let c = w.sim.node_ref::<FlashCrowd>(crowd).unwrap();
    let per_source = c.per_source().to_vec();
    let sent = c.sent();
    let sketch = w.sim.node_ref::<RemoteGuard>(w.guard).unwrap().analytics_sketch();
    (sketch, per_source, sent)
}

/// Two disjoint crowds through two guards, merged fleet-side and checked
/// against exact ground truth.
pub fn run_merge(seed: u64) -> MergeOutcome {
    let base_a = Ipv4Addr::new(120, 0, 0, 1);
    let base_b = Ipv4Addr::new(140, 0, 0, 1);
    let (sketch_a, per_a, sent_a) = merge_site(
        seed,
        FlashCrowdConfig {
            target: PUB,
            rate: 20_000.0,
            source_base: base_a,
            source_count: 300,
            zipf_s: 1.2,
            qname: qname(),
            duration: Some(SimTime::from_secs(1)),
        },
    );
    let (sketch_b, per_b, sent_b) = merge_site(
        seed + 1,
        FlashCrowdConfig {
            target: PUB,
            rate: 10_000.0,
            source_base: base_b,
            source_count: 250,
            zipf_s: 1.0,
            qname: qname(),
            duration: Some(SimTime::from_secs(1)),
        },
    );

    let site_totals = (sketch_a.total(), sketch_b.total());
    let mut agg = FleetAggregator::new(FleetAlertConfig::default());
    let node_a = agg.register_node("site-a", 0);
    let node_b = agg.register_node("site-b", 0);
    agg.observe_sketch(node_a, sketch_a);
    agg.observe_sketch(node_b, sketch_b);
    let merged = agg.merged_sketch();

    // Exact union ground truth: the pools are disjoint by construction.
    let mut truth: Vec<(u32, u64)> = Vec::new();
    for (base, per) in [(base_a, &per_a), (base_b, &per_b)] {
        for (i, &count) in per.iter().enumerate() {
            if count > 0 {
                truth.push((u32::from(base).wrapping_add(i as u32), count));
            }
        }
    }
    let distinct_truth = truth.len() as u64;
    truth.sort_by_key(|&(_, count)| std::cmp::Reverse(count));

    let merged_distinct = merged.distinct();
    let distinct_err_pct =
        (merged_distinct - distinct_truth as f64).abs() / distinct_truth as f64 * 100.0;

    let report = merged.top_sources();
    let top_expected = TOP_CHECK.min(truth.len());
    let mut top_found = 0usize;
    let mut top_bounds_ok = true;
    for &(ip, true_count) in truth.iter().take(top_expected) {
        match report.iter().find(|e| e.ip == ip) {
            Some(e) => {
                top_found += 1;
                if !(e.guaranteed() <= true_count && true_count <= e.count) {
                    top_bounds_ok = false;
                }
            }
            None => top_bounds_ok = false,
        }
    }

    MergeOutcome {
        sent: sent_a + sent_b,
        merged_total: merged.total(),
        site_totals,
        distinct_truth,
        merged_distinct,
        distinct_err_pct,
        top_expected,
        top_found,
        top_bounds_ok,
        merged_json: merged.snapshot().to_json(),
    }
}

/// The full experiment: four scenarios plus the merge leg.
pub struct AnalyticsRun {
    /// The composed `BENCH_analytics.json` document.
    pub summary_json: String,
    /// The clean baseline (both rules silent).
    pub baseline: ScenarioOutcome,
    /// The random-spoof flood (`spoof_flood` fires).
    pub flood: ScenarioOutcome,
    /// The Zipf crowd (`flash_crowd` fires).
    pub crowd: ScenarioOutcome,
    /// The botnet (`spoof_flood` fires at onset).
    pub botnet: ScenarioOutcome,
    /// The two-site sketch-merge leg.
    pub merge: MergeOutcome,
    /// Whether every scenario's rule verdict matched its design.
    pub discriminator_ok: bool,
}

fn scenario_json(o: &ScenarioOutcome) -> String {
    let mut out = format!(
        "{{\"name\":\"{}\",\"datagrams\":{},\"distinct\":{:.1},\
         \"entropy_norm\":{:.4},\"top_share\":{:.4},\
         \"spoof_flood_fired\":{},\"flash_crowd_fired\":{},\"fired_rules\":[",
        o.name,
        o.datagrams,
        o.distinct,
        o.entropy_norm,
        o.top_share,
        o.spoof_flood_fired,
        o.flash_crowd_fired,
    );
    for (i, r) in o.fired_rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str(&format!(
        "],\"analytics\":{},\"alerts\":{}}}",
        o.analytics_json, o.alerts_json
    ));
    out
}

fn merge_json(m: &MergeOutcome) -> String {
    format!(
        "{{\"sites\":2,\"sent\":{},\"merged_total\":{},\"site_totals\":[{},{}],\
         \"distinct_truth\":{},\"merged_distinct\":{:.1},\"distinct_err_pct\":{:.2},\
         \"top_expected\":{},\"top_found\":{},\"top_bounds_ok\":{},\
         \"merged_analytics\":{}}}",
        m.sent,
        m.merged_total,
        m.site_totals.0,
        m.site_totals.1,
        m.distinct_truth,
        m.merged_distinct,
        m.distinct_err_pct,
        m.top_expected,
        m.top_found,
        m.top_bounds_ok,
        m.merged_json,
    )
}

/// Runs everything and composes the export document.
pub fn run_all(seed: u64) -> AnalyticsRun {
    let baseline = run_baseline(seed);
    let flood = run_spoof_flood(seed + 1);
    let crowd = run_flash_crowd(seed + 2);
    let botnet = run_botnet(seed + 3);
    let merge = run_merge(seed + 4);
    let discriminator_ok = !baseline.spoof_flood_fired
        && !baseline.flash_crowd_fired
        && flood.spoof_flood_fired
        && !flood.flash_crowd_fired
        && crowd.flash_crowd_fired
        && !crowd.spoof_flood_fired
        && botnet.spoof_flood_fired
        && !botnet.flash_crowd_fired;
    let summary_json = format!(
        "{{\"experiment\":\"analytics\",\"seed\":{seed},\
         \"discriminator_ok\":{discriminator_ok},\
         \"baseline\":{},\"spoof_flood\":{},\"flash_crowd\":{},\"botnet\":{},\
         \"fleet_merge\":{}}}",
        scenario_json(&baseline),
        scenario_json(&flood),
        scenario_json(&crowd),
        scenario_json(&botnet),
        merge_json(&merge),
    );
    AnalyticsRun {
        summary_json,
        baseline,
        flood,
        crowd,
        botnet,
        merge,
        discriminator_ok,
    }
}

/// Runs the experiment with the default seed and writes
/// `BENCH_analytics.json` under `dir`.
pub fn export_to(dir: &Path) -> std::io::Result<(AnalyticsRun, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_all(2006);
    let summary = dir.join("BENCH_analytics.json");
    std::fs::write(&summary, &run.summary_json)?;
    Ok((run, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::validate_json;

    #[test]
    fn discriminator_and_merge_meet_the_acceptance_bar() {
        let run = run_all(2006);
        assert!(
            !run.baseline.spoof_flood_fired && !run.baseline.flash_crowd_fired,
            "clean baseline must keep both analytics rules silent: {:?}",
            run.baseline.fired_rules
        );
        assert!(
            run.flood.spoof_flood_fired,
            "random-spoof flood must read as spoofing: {:?}",
            run.flood.fired_rules
        );
        assert!(
            !run.flood.flash_crowd_fired,
            "an unbounded population is no crowd: {:?}",
            run.flood.fired_rules
        );
        assert!(
            run.crowd.flash_crowd_fired && !run.crowd.spoof_flood_fired,
            "the Zipf crowd must read as a crowd, never spoofing: {:?}",
            run.crowd.fired_rules
        );
        assert!(
            run.botnet.spoof_flood_fired && !run.botnet.flash_crowd_fired,
            "the botnet's population surge must read as spoofing: {:?}",
            run.botnet.fired_rules
        );
        assert!(run.discriminator_ok);

        // The merge leg: exactness where the design promises it, the
        // documented estimator bounds where it doesn't.
        assert_eq!(
            run.merge.merged_total, run.merge.sent,
            "merged total must conserve the stream exactly"
        );
        assert!(
            run.merge.distinct_err_pct <= 20.0,
            "merged cardinality outside the documented ±20% bound: \
             {:.1} vs {} ({:.2}%)",
            run.merge.merged_distinct,
            run.merge.distinct_truth,
            run.merge.distinct_err_pct
        );
        assert_eq!(
            run.merge.top_found, run.merge.top_expected,
            "every true top talker must appear in the merged top-K"
        );
        assert!(run.merge.top_bounds_ok, "guaranteed ≤ truth ≤ count must hold");

        validate_json(&run.summary_json)
            .unwrap_or_else(|off| panic!("BENCH_analytics.json invalid at byte {off}"));
        assert!(run.summary_json.contains("\"experiment\":\"analytics\""));
        assert!(run.summary_json.contains("\"discriminator_ok\":true"));
        assert!(run.summary_json.contains("\"top_bounds_ok\":true"));
    }
}
