//! Ablations of the guard's design choices (the knobs DESIGN.md calls
//! out): the `COOKIE2` range R_y, Rate-Limiter1's reflection budget, SYN
//! cookies at the TCP proxy, and the activation threshold.
//!
//! Run: `cargo run --release -p bench --bin ablations`

use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use bench::report::render_table;
use bench::worlds::{attach_flood, attach_lrs, guarded_world, LrsParams, WorldParams, ZoneSel, PUB, SUBNET};
use dnsguard::config::SchemeMode;
use dnsguard::guard::RemoteGuard;
use netsim::engine::CpuConfig;
use netsim::tcp::{Flags, Segment, TcpHost};
use netsim::time::SimTime;
use server::simclient::CookieMode;
use std::net::Ipv4Addr;

/// Ablation 1 — `COOKIE2` range: the worst-case false-negative rate is
/// 1/R_y (section III.G); sweep R_y and measure the spray's hit rate.
fn ablate_cookie2_range() {
    println!("Ablation 1 — COOKIE2 subnet range R_y vs false-negative rate");
    let mut rows = Vec::new();
    for range in [16u32, 64, 254, 1024, 4096] {
        let mut p = WorldParams::new(21);
        p.zone = ZoneSel::Foo;
        p.mode = SchemeMode::DnsBased;
        let mut world = guarded_world(p);
        world
            .sim
            .node_mut::<RemoteGuard>(world.guard)
            .unwrap()
            .config_mut()
            .subnet_range = range;
        // Widen the routed subnet for the bigger ranges.
        world.sim.add_subnet(SUBNET, 16, world.guard);
        world.sim.add_node(
            Ipv4Addr::new(66, 0, 0, 21),
            CpuConfig::unbounded(),
            SpoofedFlood::new(FloodConfig {
                target: PUB,
                rate: 200_000.0,
                sources: SourceStrategy::Random,
                payload: AttackPayload::Cookie2Spray {
                    qname: "www.foo.com".parse().unwrap(),
                    subnet_base: SUBNET,
                    range,
                },
                duration: Some(SimTime::from_millis(500)),
            }),
        );
        world.sim.run_until(SimTime::from_millis(600));
        let g = world.sim.node_ref::<RemoteGuard>(world.guard).unwrap();
        let seen = g.stats().cookie2_valid + g.stats().cookie2_invalid;
        let rate = g.stats().cookie2_valid as f64 / seen.max(1) as f64;
        rows.push(vec![
            range.to_string(),
            format!("{:.5}", rate),
            format!("{:.5}", 1.0 / range as f64),
        ]);
    }
    println!(
        "{}",
        render_table("", &["R_y", "measured hit rate", "predicted 1/R_y"], &rows)
    );
}

/// Ablation 2 — Rate-Limiter1's global budget: reflected bytes under a
/// fixed 100K req/s spoofed flood.
fn ablate_rl1() {
    println!("Ablation 2 — Rate-Limiter1 budget vs reflected traffic (100K spoofed req/s)");
    let mut rows = Vec::new();
    for (label, budget) in [("off", 1e12), ("100K/s", 1e5), ("10K/s (default)", 1e4), ("1K/s", 1e3)] {
        let mut p = WorldParams::new(22);
        p.zone = ZoneSel::Root;
        p.mode = SchemeMode::DnsBased;
        p.open_limiters = false;
        let mut world = guarded_world(p);
        {
            let g = world.sim.node_mut::<RemoteGuard>(world.guard).unwrap();
            // The limiter itself is rebuilt via a fresh guard config; since
            // rates are fixed at construction we rebuild the limiter by
            // constructing the world with open limiters and relying on the
            // global bucket only. Simplest honest route: construct a new
            // limiter in place.
            *g = RemoteGuard::new(
                {
                    let mut c = g.config_mut().clone();
                    c.rl1_global_rate = budget;
                    c.rl1_per_source_rate = budget;
                    c
                },
                dnsguard::classify::AuthorityClassifier::new(
                    server::authoritative::Authority::new(vec![server::zone::paper_hierarchy().0]),
                ),
            );
        }
        attach_flood(&mut world.sim, Ipv4Addr::new(66, 0, 0, 22), 100_000.0);
        world.sim.run_until(SimTime::from_secs(1));
        let g = world.sim.node_ref::<RemoteGuard>(world.guard).unwrap();
        rows.push(vec![
            label.to_string(),
            g.stats().fabricated_ns_sent.to_string(),
            format!("{}", g.traffic_unverified.bytes_out),
            format!("{:.2}x", g.traffic_unverified.amplification()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "",
            &["RL1 budget", "cookie responses", "bytes reflected", "amplification"],
            &rows,
        )
    );
}

/// Ablation 3 — SYN cookies: listener state under a 10K-SYN flood, with
/// the stateless SYN-cookie handshake vs a classic stateful accept.
fn ablate_syn_cookies() {
    println!("Ablation 3 — SYN cookies vs stateful accept under a 10K-SYN flood");
    let mut rows = Vec::new();
    for (label, cookies) in [("SYN cookies", true), ("stateful accept", false)] {
        let mut host = TcpHost::new(23);
        host.listen(53);
        if cookies {
            host.enable_syn_cookies();
        }
        let mut out = Vec::new();
        for i in 0..10_000u32 {
            let syn = Segment {
                flags: Flags {
                    syn: true,
                    ack: false,
                    fin: false,
                    rst: false,
                },
                seq: i,
                ack: 0,
                data: vec![],
            };
            let pkt = netsim::Packet::tcp(
                netsim::Endpoint::new(Ipv4Addr::from(0x0A00_0000 + i), 1024),
                netsim::Endpoint::new(Ipv4Addr::new(1, 2, 3, 4), 53),
                syn.encode(),
            );
            host.on_segment(&pkt, &mut out);
            out.clear();
        }
        rows.push(vec![label.to_string(), host.conn_count().to_string()]);
    }
    println!(
        "{}",
        render_table("", &["handshake", "half-open state held"], &rows)
    );
}

/// Ablation 4 — activation threshold: CPU spent on spoof detection when
/// there is no attack, for always-on vs threshold-gated guards.
fn ablate_activation() {
    println!("Ablation 4 — activation threshold (no attack, 2K req/s legitimate load)");
    let mut rows = Vec::new();
    for (label, threshold) in [("always on", 0.0), ("threshold 14K", 14_000.0)] {
        let mut p = WorldParams::new(24);
        p.zone = ZoneSel::Foo;
        p.mode = SchemeMode::DnsBased;
        p.activation_threshold = threshold;
        p.ans_costs = server::nodes::ServerCosts::bind9();
        let mut world = guarded_world(p);
        let lrs = attach_lrs(
            &mut world.sim,
            LrsParams {
                ip: Ipv4Addr::new(10, 0, 9, 1),
                mode: CookieMode::Plain,
                cookie_cache: true,
                concurrency: 20,
                wait: SimTime::from_millis(100),
                pace: SimTime::from_millis(10),
                per_packet_cost: SimTime::ZERO,
            },
        );
        world.sim.run_until(SimTime::from_millis(500));
        world.sim.reset_cpu_stats(world.guard);
        let before = world
            .sim
            .node_ref::<server::simclient::LrsSimulator>(lrs)
            .unwrap()
            .stats
            .completed;
        let window = SimTime::from_secs(1);
        world.sim.run_for(window);
        let after = world
            .sim
            .node_ref::<server::simclient::LrsSimulator>(lrs)
            .unwrap()
            .stats
            .completed;
        let cpu = world.sim.cpu_stats(world.guard).utilization(window);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", (after - before) as f64 / window.as_secs_f64()),
            format!("{:.2}%", cpu * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table("", &["guard", "legit rps", "guard CPU"], &rows)
    );
    println!(
        "The threshold-gated guard forwards without cookie work in peacetime,\n\
         which is the paper's 'enable spoof detection only when the input rate\n\
         exceeds a threshold' recommendation."
    );
}

fn main() {
    ablate_cookie2_range();
    ablate_rl1();
    ablate_syn_cookies();
    ablate_activation();
}
