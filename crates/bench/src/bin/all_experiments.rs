//! Runs every table and figure of the paper's evaluation in sequence.
//! This is the command behind `EXPERIMENTS.md`.
//!
//! Flags:
//!
//! * `--obs` — additionally run the instrumented telemetry scenario and
//!   write `BENCH_obs.json` + `BENCH_obs_trace.jsonl`;
//! * `--obs-only` — run only the telemetry scenario;
//! * `--journeys` — additionally run the query-journey experiment and
//!   write `BENCH_journeys.json` + `BENCH_journeys_trace.json`;
//! * `--journeys-only` — run only the journey experiment;
//! * `--ha` — additionally run the high-availability experiment
//!   (crash failover, checkpoint-age sweep, shed-tier sweep) and write
//!   `BENCH_failover.json`;
//! * `--ha-only` — run only the high-availability experiment;
//! * `--fleet` — additionally run the anycast-fleet experiment
//!   (catchment shift under per-site MD5 vs shared SipHash cookies,
//!   rotation mid-shift) and write `BENCH_fleet.json`;
//! * `--fleet-only` — run only the anycast-fleet experiment;
//! * `--fleetobs` — additionally run the fleet-observability experiment
//!   (cross-node journey stitching through a catchment shift with clock
//!   skew, fleet alert rules through a site crash) and write
//!   `BENCH_fleetobs.json` + `BENCH_fleetobs_trace.jsonl`;
//! * `--fleetobs-only` — run only the fleet-observability experiment;
//! * `--analytics` — additionally run the traffic-analytics experiment
//!   (spoof-vs-flash-crowd discriminator over the guard's streaming
//!   sketches, two-site sketch merge vs ground truth) and write
//!   `BENCH_analytics.json`; requires building with
//!   `--features traffic-analytics`;
//! * `--analytics-only` — run only the traffic-analytics experiment;
//! * `--poison` — additionally run the cache-poisoning experiment
//!   (Kaminsky defense × bandwidth success table vs the analytic
//!   birthday model, port derandomization, fragment substitution,
//!   clean-baseline alert silence) and write `BENCH_poison.json`;
//! * `--poison-only` — run only the cache-poisoning experiment;
//! * `--obs-out <dir>` — output directory for the exported files
//!   (default `.`).

use bench::experiments::*;
use bench::report::{kreq, ms, pct, render_table};
use std::path::PathBuf;
use std::process::exit;

fn run_obs_export(out_dir: &std::path::Path) {
    println!("== Telemetry export (obs) ==");
    let (run, snapshot, trace) = match bench::obs_export::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs export failed: {e}");
            exit(1);
        }
    };
    println!(
        "wrote {} ({} bytes) and {} ({} events, {} dropped)",
        snapshot.display(),
        run.snapshot_json.len(),
        trace.display(),
        run.events,
        run.dropped,
    );
    println!("event kinds: {:?}", run.kind_counts);
    let missing = run.missing_kinds();
    if !missing.is_empty() {
        eprintln!("missing required event kinds: {missing:?}");
        exit(1);
    }
}

fn run_journeys_export(out_dir: &std::path::Path) {
    println!("== Query journeys & alerting ==");
    let (run, summary, trace) = match bench::journeys::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("journeys export failed: {e}");
            exit(1);
        }
    };
    println!(
        "wrote {} ({} bytes) and {} ({} bytes)",
        summary.display(),
        run.summary_json.len(),
        trace.display(),
        run.chrome_trace_json.len(),
    );
    let mut failed = false;
    for s in &run.schemes {
        let (total, hs, guard, ans) = s.mean_attribution_ns();
        println!(
            "{:>8}: {} journeys / {} client tx (coverage {:.3}), extra RTT {}, \
             mean total {:.1}us (handshake {:.1}us, guard {:.1}us, ans {:.1}us)",
            s.scheme,
            s.report.complete.len(),
            s.client_completed,
            s.reconstruction(),
            s.extra_rtt_mode(),
            total as f64 / 1e3,
            hs as f64 / 1e3,
            guard as f64 / 1e3,
            ans as f64 / 1e3,
        );
        if s.reconstruction() < 0.99 || s.report.orphan_stages > 0 {
            eprintln!("{}: reconstruction below the acceptance bar", s.scheme);
            failed = true;
        }
    }
    println!(
        "   chaos: {} journeys / {} client tx (coverage {:.3}), alerts fired: {:?}, \
         clean baseline silent: {}",
        run.chaos.report.complete.len(),
        run.chaos.client_completed,
        run.chaos.reconstruction(),
        run.chaos.fired_rules,
        run.baseline_silent,
    );
    if run.chaos.reconstruction() < 0.99 || run.chaos.report.orphan_stages > 0 {
        eprintln!("chaos: reconstruction below the acceptance bar");
        failed = true;
    }
    if !run.chaos.fired_rules.contains(&"spoof_surge")
        || !run.chaos.fired_rules.contains(&"ans_down")
        || !run.baseline_silent
    {
        eprintln!("alerting acceptance failed: {:?}", run.chaos.fired_rules);
        failed = true;
    }
    if failed {
        exit(1);
    }
}

fn run_ha_export(out_dir: &std::path::Path) {
    println!("== High availability: failover, checkpoints, admission ==");
    let (run, summary) = match bench::failover::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failover export failed: {e}");
            exit(1);
        }
    };
    println!("wrote {} ({} bytes)", summary.display(), run.summary_json.len());
    println!(
        "   crash: took_over={}, {}/{} clients continued, takeover after {} us, \
         spoofed_to_ans={}, shed={}, alerts fired: {:?}",
        run.crash.took_over,
        run.crash.continued,
        run.crash.clients,
        run.crash
            .takeover_after_crash_nanos
            .map(|n| (n / 1_000).to_string())
            .unwrap_or_else(|| "?".to_string()),
        run.crash.spoofed_to_ans,
        run.crash.standby_shed,
        run.crash.fired_rules,
    );
    for p in &run.sweep {
        println!(
            "   checkpoint interval {:>9}: age at restore {:>9}, restores {}, \
             stale fwd/stash {}/{}, post-restore completed {}",
            p.interval_nanos
                .map(|n| format!("{} ms", n / 1_000_000))
                .unwrap_or_else(|| "none".to_string()),
            p.age_at_restore_nanos
                .map(|n| format!("{} ms", n / 1_000_000))
                .unwrap_or_else(|| "cold".to_string()),
            p.restores,
            p.stale_fwd,
            p.stale_stash,
            p.post_restore_completed,
        );
    }
    for p in &run.shed {
        println!(
            "   flood {:>7.0} req/s: peak tier {:>6}, shed {:>6}, verified completed {:>4}, \
             amplification {:.3}",
            p.attack_rate,
            p.peak_tier,
            p.shed,
            p.verified_completed,
            p.amplification_milli as f64 / 1000.0,
        );
    }
    println!("   clean HA baseline silent: {}", run.baseline_silent);

    let mut failed = false;
    if !run.crash.took_over {
        eprintln!("failover acceptance failed: standby never took over");
        failed = true;
    }
    if (run.crash.continued as f64) < run.crash.clients as f64 * 0.99 {
        eprintln!(
            "failover acceptance failed: only {}/{} verified clients continued",
            run.crash.continued, run.crash.clients
        );
        failed = true;
    }
    if run.crash.spoofed_to_ans != 0 {
        eprintln!(
            "failover acceptance failed: {} spoofed queries reached the ANS",
            run.crash.spoofed_to_ans
        );
        failed = true;
    }
    for rule in ["failover_triggered", "checkpoint_lag", "admission_shedding"] {
        if !run.crash.fired_rules.contains(&rule) {
            eprintln!("failover acceptance failed: {rule} never fired");
            failed = true;
        }
    }
    if !run.baseline_silent {
        eprintln!("failover acceptance failed: clean HA baseline raised alerts");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

fn run_fleet_export(out_dir: &std::path::Path) {
    println!("== Anycast fleet: catchment shift, cookie interop ==");
    let (run, summary) = match bench::fleet::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet export failed: {e}");
            exit(1);
        }
    };
    println!("wrote {} ({} bytes)", summary.display(), run.summary_json.len());
    for (label, o) in [
        ("md5 per site", &run.md5_per_site),
        ("shared siphash", &run.shared_siphash),
        ("rotation mid-shift", &run.rotation_mid_shift),
    ] {
        println!(
            "   {label:>18}: {}/{} shifted clients continued, re-handshakes {}, \
             cookie2 invalid {}, rl1 dropped {}, spoofed_to_ans {}, alerts fired: {:?}",
            o.continued,
            o.shifted,
            o.re_handshakes,
            o.cookie2_invalid,
            o.rl1_dropped,
            o.spoofed_to_ans,
            o.fired_rules,
        );
    }
    println!("   clean fleet baseline silent: {}", run.baseline_silent);

    let mut failed = false;
    let shared = &run.shared_siphash;
    if (shared.continued as f64) < shared.shifted as f64 * 0.95 {
        eprintln!(
            "fleet acceptance failed: only {}/{} shifted clients continued under shared cookies",
            shared.continued, shared.shifted
        );
        failed = true;
    }
    if shared.re_handshakes != 0 {
        eprintln!(
            "fleet acceptance failed: {} re-handshakes despite interoperable cookies",
            shared.re_handshakes
        );
        failed = true;
    }
    if shared.amplification_milli > 1_600 {
        eprintln!(
            "fleet acceptance failed: amplification {} breaks the paper bound",
            shared.amplification_milli
        );
        failed = true;
    }
    if run.md5_per_site.re_handshakes == 0
        || !run.md5_per_site.fired_rules.contains(&"handshake_storm")
    {
        eprintln!("fleet acceptance failed: the MD5 baseline must show the storm");
        failed = true;
    }
    let rot = &run.rotation_mid_shift;
    if rot.re_handshakes != 0 || (rot.continued as f64) < rot.shifted as f64 * 0.95 {
        eprintln!("fleet acceptance failed: rotation mid-shift dropped verified clients");
        failed = true;
    }
    for o in [&run.md5_per_site, shared, rot] {
        if o.spoofed_to_ans != 0 {
            eprintln!(
                "fleet acceptance failed: {} spoofed queries reached an ANS",
                o.spoofed_to_ans
            );
            failed = true;
        }
    }
    if !run.baseline_silent {
        eprintln!("fleet acceptance failed: clean fleet baseline raised alerts");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

fn run_fleetobs_export(out_dir: &std::path::Path) {
    println!("== Fleet observability: cross-node stitching, fleet rules ==");
    let (run, summary, trace) = match bench::fleetobs::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleetobs export failed: {e}");
            exit(1);
        }
    };
    println!("wrote {} ({} bytes)", summary.display(), run.summary_json.len());
    println!("wrote {} ({} bytes)", trace.display(), run.trace_jsonl.len());
    let o = &run.chaos;
    println!(
        "   {}/{} straddling joiners stitched across both sites, \
         {} journeys complete, max inter-site hop {:.1} ms",
        o.spanning_stitched,
        o.spanning_expected,
        o.journeys_complete,
        o.max_inter_site_ns as f64 / 1e6,
    );
    println!(
        "   attribution exact: {}, site B held silent after crash: {}, \
         fleet rules fired: {:?}",
        o.attribution_exact, o.node_b_silent, o.fired_rules,
    );
    println!("   clean two-site baseline silent: {}", run.baseline_silent);

    let mut failed = false;
    if o.spanning_expected < o.joiners {
        eprintln!(
            "fleetobs acceptance failed: only {}/{} joiners were challenged by site A",
            o.spanning_expected, o.joiners
        );
        failed = true;
    }
    if o.spanning_stitched != o.spanning_expected {
        eprintln!(
            "fleetobs acceptance failed: {}/{} straddling joiners stitched",
            o.spanning_stitched, o.spanning_expected
        );
        failed = true;
    }
    if !o.attribution_exact || !o.inter_site_positive {
        eprintln!(
            "fleetobs acceptance failed: stage attribution must sum exactly \
             and cross-node hops must carry time"
        );
        failed = true;
    }
    for rule in ["fleet_spoof_surge", "site_rate_skew", "node_silent"] {
        if !o.fired_rules.contains(&rule) {
            eprintln!("fleetobs acceptance failed: rule {rule} never fired");
            failed = true;
        }
    }
    if !o.node_b_silent {
        eprintln!("fleetobs acceptance failed: crashed site B not held silent");
        failed = true;
    }
    if !run.baseline_silent {
        eprintln!("fleetobs acceptance failed: clean two-site baseline raised alerts");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

#[cfg(feature = "traffic-analytics")]
fn run_analytics_export(out_dir: &std::path::Path) {
    println!("== Traffic analytics: spoof vs flash crowd, sketch merge ==");
    let (run, summary) = match bench::analytics::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analytics export failed: {e}");
            exit(1);
        }
    };
    println!("wrote {} ({} bytes)", summary.display(), run.summary_json.len());
    for o in [&run.baseline, &run.flood, &run.crowd, &run.botnet] {
        println!(
            "   {:>12}: {:>6} datagrams, distinct ~{:.0}, entropy_norm {:.3}, \
             top_share {:.3}, spoof_flood={}, flash_crowd={}",
            o.name,
            o.datagrams,
            o.distinct,
            o.entropy_norm,
            o.top_share,
            o.spoof_flood_fired,
            o.flash_crowd_fired,
        );
    }
    let m = &run.merge;
    println!(
        "   fleet merge: total {}/{} conserved, distinct {:.0} vs {} ({:.2}% err), \
         top talkers {}/{} found, bounds ok: {}",
        m.merged_total,
        m.sent,
        m.merged_distinct,
        m.distinct_truth,
        m.distinct_err_pct,
        m.top_found,
        m.top_expected,
        m.top_bounds_ok,
    );

    let mut failed = false;
    if !run.discriminator_ok {
        eprintln!("analytics acceptance failed: a scenario got the wrong verdict");
        failed = true;
    }
    if m.merged_total != m.sent {
        eprintln!(
            "analytics acceptance failed: merged total {} != {} emitted",
            m.merged_total, m.sent
        );
        failed = true;
    }
    if m.distinct_err_pct > 20.0 {
        eprintln!(
            "analytics acceptance failed: merged cardinality {:.2}% off truth (bound 20%)",
            m.distinct_err_pct
        );
        failed = true;
    }
    if m.top_found != m.top_expected || !m.top_bounds_ok {
        eprintln!("analytics acceptance failed: merged top-K misses a true top talker");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

#[cfg(not(feature = "traffic-analytics"))]
fn run_analytics_export(_out_dir: &std::path::Path) {
    eprintln!(
        "the analytics experiment needs the sketches compiled in: \
         rebuild with --features traffic-analytics"
    );
    exit(1);
}

fn run_poison_export(out_dir: &std::path::Path) {
    println!("== Cache poisoning: adversary suite vs unilateral hardening ==");
    let (run, summary) = match bench::poison::export_to(out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("poison export failed: {e}");
            exit(1);
        }
    };
    println!(
        "{:<13} {:>9} {:>6} {:>5} {:>11} {:>12} {:>9} {:>9}",
        "defense", "rate/s", "races", "wins", "measured_p", "predicted_p", "forged", "attempts"
    );
    for c in &run.cells {
        println!(
            "{:<13} {:>9.0} {:>6} {:>5} {:>11.4} {:>12.3e} {:>9} {:>9}",
            c.defense, c.rate, c.races, c.wins, c.measured_p, c.predicted_p, c.forged,
            c.poison_attempts,
        );
    }
    println!(
        "derand: sequential ports {}/{} races poisoned, keyed-random {}/{} \
         ({} probes answered)",
        run.derand.sequential_wins,
        run.derand.races,
        run.derand.randomized_wins,
        run.derand.races,
        run.derand.probes_answered,
    );
    println!(
        "frag: undefended poisoned = {}, reject_fragmented poisoned = {} \
         ({} spliced, {} rejected, {} TCP fallbacks)",
        run.frag.undefended_poisoned,
        run.frag.hardened_poisoned,
        run.frag.substituted,
        run.frag.frag_rejected,
        run.frag.tcp_fallbacks,
    );
    println!("baseline fired rules: {:?}", run.baseline_fired);
    println!("wrote {} ({} bytes)", summary.display(), run.summary_json.len());
    if !run.table_ok {
        eprintln!(
            "poison acceptance failed: the success table is off the analytic \
             model or a hardened cell was poisoned"
        );
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs_only = args.iter().any(|a| a == "--obs-only");
    let obs = obs_only || args.iter().any(|a| a == "--obs");
    let journeys_only = args.iter().any(|a| a == "--journeys-only");
    let journeys = journeys_only || args.iter().any(|a| a == "--journeys");
    let ha_only = args.iter().any(|a| a == "--ha-only");
    let ha = ha_only || args.iter().any(|a| a == "--ha");
    let fleet_only = args.iter().any(|a| a == "--fleet-only");
    let fleet = fleet_only || args.iter().any(|a| a == "--fleet");
    let fleetobs_only = args.iter().any(|a| a == "--fleetobs-only");
    let fleetobs = fleetobs_only || args.iter().any(|a| a == "--fleetobs");
    let analytics_only = args.iter().any(|a| a == "--analytics-only");
    let analytics = analytics_only || args.iter().any(|a| a == "--analytics");
    let poison_only = args.iter().any(|a| a == "--poison-only");
    let poison = poison_only || args.iter().any(|a| a == "--poison");
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--obs-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    if obs_only
        || journeys_only
        || ha_only
        || fleet_only
        || fleetobs_only
        || analytics_only
        || poison_only
    {
        if obs_only {
            run_obs_export(&out_dir);
        }
        if journeys_only {
            run_journeys_export(&out_dir);
        }
        if ha_only {
            run_ha_export(&out_dir);
        }
        if fleet_only {
            run_fleet_export(&out_dir);
        }
        if fleetobs_only {
            run_fleetobs_export(&out_dir);
        }
        if analytics_only {
            run_analytics_export(&out_dir);
        }
        if poison_only {
            run_poison_export(&out_dir);
        }
        return;
    }
    println!("== DNS Guard reproduction: full evaluation ==\n");

    // Table I.
    let t1 = table1_comparison();
    let rows: Vec<Vec<String>> = t1
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                format!("{:.1}", r.worst_latency_rtt),
                format!("{:.1}", r.best_latency_rtt),
                r.cookie_range.to_string(),
                format!("{:.0}%", (r.amplification - 1.0) * 100.0),
                r.deployment.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table I — scheme comparison (measured)",
            &["Scheme", "Worst RTTs", "Best RTTs", "Range", "Amp", "Deployment"],
            &rows,
        )
    );

    // Table II.
    let t2 = table2_latency();
    let rows: Vec<Vec<String>> = t2
        .iter()
        .map(|r| vec![r.scheme.label().to_string(), ms(r.miss_ms), ms(r.hit_ms)])
        .collect();
    println!(
        "{}",
        render_table(
            "Table II — request latency (ms), RTT 10.9 ms",
            &["Scheme", "Cache miss", "Cache hit"],
            &rows,
        )
    );

    // Table III.
    let t3 = table3_throughput();
    let rows: Vec<Vec<String>> = t3
        .iter()
        .map(|r| vec![r.scheme.label().to_string(), kreq(r.miss), kreq(r.hit)])
        .collect();
    println!(
        "{}",
        render_table(
            "Table III — guard throughput (req/s)",
            &["Scheme", "Cache miss", "Cache hit"],
            &rows,
        )
    );

    // Figure 5.
    let rates5: Vec<f64> = (0..=8).map(|i| i as f64 * 2_000.0).collect();
    let f5_on = fig5_bind_attack(true, &rates5);
    let f5_off = fig5_bind_attack(false, &rates5);
    let rows: Vec<Vec<String>> = f5_on
        .iter()
        .zip(f5_off.iter())
        .map(|(e, d)| {
            vec![
                format!("{:.0}K", e.attack_rate / 1_000.0),
                format!("{:.0}", e.legit_throughput),
                format!("{:.0}", d.legit_throughput),
                pct(e.ans_cpu),
                pct(d.ans_cpu),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 5 — BIND under attack (legit rps / ANS CPU; on vs off)",
            &["Attack", "Legit on", "Legit off", "CPU on", "CPU off"],
            &rows,
        )
    );

    // Figure 6.
    let rates6: Vec<f64> = (0..=10).map(|i| i as f64 * 25_000.0).collect();
    let f6_on = fig6_guard_attack(true, &rates6);
    let f6_off = fig6_guard_attack(false, &rates6);
    let rows: Vec<Vec<String>> = f6_on
        .iter()
        .zip(f6_off.iter())
        .map(|(e, d)| {
            vec![
                format!("{:.0}K", e.attack_rate / 1_000.0),
                kreq(e.legit_throughput),
                kreq(d.legit_throughput),
                pct(e.guard_cpu),
                pct(d.guard_cpu),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 6 — guard under attack (legit req/s / guard CPU; on vs off)",
            &["Attack", "Legit on", "Legit off", "CPU on", "CPU off"],
            &rows,
        )
    );

    // Figure 7.
    let concs = [1u32, 10, 20, 50, 100, 500, 1_000, 3_000, 6_000];
    let f7a = fig7a_tcp_concurrency(&concs);
    let rows: Vec<Vec<String>> = f7a
        .iter()
        .map(|p| vec![p.concurrency.to_string(), kreq(p.throughput)])
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 7(a) — TCP proxy throughput vs concurrency",
            &["Concurrent", "Throughput"],
            &rows,
        )
    );
    let rates7: Vec<f64> = (0..=5).map(|i| i as f64 * 50_000.0).collect();
    let f7b = fig7b_tcp_under_attack(&rates7);
    let rows: Vec<Vec<String>> = f7b
        .iter()
        .map(|p| vec![format!("{:.0}K", p.attack_rate / 1_000.0), kreq(p.throughput)])
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 7(b) — TCP proxy under UDP attack (50 concurrent)",
            &["Attack", "Throughput"],
            &rows,
        )
    );

    if obs {
        run_obs_export(&out_dir);
    }
    if journeys {
        run_journeys_export(&out_dir);
    }
    if ha {
        run_ha_export(&out_dir);
    }
    if fleet {
        run_fleet_export(&out_dir);
    }
    if fleetobs {
        run_fleetobs_export(&out_dir);
    }
    if analytics {
        run_analytics_export(&out_dir);
    }
    if poison {
        run_poison_export(&out_dir);
    }
}
