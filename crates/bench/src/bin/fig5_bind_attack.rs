//! Regenerates Figure 5: throughput of legitimate requests (a) and ANS CPU
//! utilisation (b) for a BIND-9-cost ANS under a spoofed flood, with the
//! guard enabled (activation threshold 14 K req/s) and disabled.

use bench::experiments::fig5_bind_attack;
use bench::report::{pct, render_table};

fn main() {
    let rates: Vec<f64> = (0..=8).map(|i| i as f64 * 2_000.0).collect();
    let enabled = fig5_bind_attack(true, &rates);
    let disabled = fig5_bind_attack(false, &rates);

    let table: Vec<Vec<String>> = enabled
        .iter()
        .zip(disabled.iter())
        .map(|(e, d)| {
            vec![
                format!("{:.0}K", e.attack_rate / 1_000.0),
                format!("{:.0}", e.legit_throughput),
                format!("{:.0}", d.legit_throughput),
                pct(e.ans_cpu),
                pct(d.ans_cpu),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 5 — BIND ANS under attack (2 legit LRSs at ~1K req/s each; threshold 14K)",
            &[
                "Attack",
                "Legit rps (on)",
                "Legit rps (off)",
                "ANS CPU (on)",
                "ANS CPU (off)",
            ],
            &table,
        )
    );
    println!(
        "Paper shape: protection off collapses past 12K attack (2s BIND timer); \
         protection on engages at >12K, holds ~1.5K legit and drops ANS CPU."
    );
}
