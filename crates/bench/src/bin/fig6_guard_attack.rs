//! Regenerates Figure 6: throughput of legitimate requests (a) and guard
//! CPU utilisation (b) as a spoofed flood ramps to 250 K req/s, with spoof
//! detection enabled (modified-DNS scheme) and disabled (pure forwarding).

use bench::experiments::fig6_guard_attack;
use bench::report::{kreq, pct, render_table};

fn main() {
    let rates: Vec<f64> = (0..=10).map(|i| i as f64 * 25_000.0).collect();
    let enabled = fig6_guard_attack(true, &rates);
    let disabled = fig6_guard_attack(false, &rates);

    let table: Vec<Vec<String>> = enabled
        .iter()
        .zip(disabled.iter())
        .map(|(e, d)| {
            vec![
                format!("{:.0}K", e.attack_rate / 1_000.0),
                kreq(e.legit_throughput),
                kreq(d.legit_throughput),
                pct(e.guard_cpu),
                pct(d.guard_cpu),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 6 — guard under attack (legit LRS saturates the 110K ANS; modified DNS)",
            &[
                "Attack",
                "Legit (on)",
                "Legit (off)",
                "Guard CPU (on)",
                "Guard CPU (off)",
            ],
            &table,
        )
    );
    println!(
        "Paper shape: protection off decays linearly to ~0 at 110K attack; \
         protection on holds ≥100K to 200K attack and ~80K at 250K, \
         spoof-detection CPU overhead 15–25%."
    );
}
