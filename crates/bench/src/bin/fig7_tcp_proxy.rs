//! Regenerates Figure 7: (a) TCP proxy throughput vs number of concurrent
//! requests; (b) proxy throughput (50 concurrent) vs UDP attack rate.

use bench::experiments::{fig7a_tcp_concurrency, fig7b_tcp_under_attack};
use bench::report::{kreq, render_table};

fn main() {
    let concurrencies = [1u32, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 4_000, 6_000];
    let a = fig7a_tcp_concurrency(&concurrencies);
    let table_a: Vec<Vec<String>> = a
        .iter()
        .map(|p| vec![p.concurrency.to_string(), kreq(p.throughput)])
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 7(a) — TCP proxy throughput vs concurrent requests",
            &["Concurrent", "Throughput"],
            &table_a,
        )
    );
    println!("Paper shape: ~22K req/s around 20 concurrent, ~11K at 6000.\n");

    let rates: Vec<f64> = (0..=10).map(|i| i as f64 * 25_000.0).collect();
    let b = fig7b_tcp_under_attack(&rates);
    let table_b: Vec<Vec<String>> = b
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}K", p.attack_rate / 1_000.0),
                kreq(p.throughput),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 7(b) — TCP proxy throughput under UDP attack (50 concurrent)",
            &["Attack", "Throughput"],
            &table_b,
        )
    );
    println!("Paper shape: linear decay from ~22K to ~10K req/s at 250K attack.");
}
