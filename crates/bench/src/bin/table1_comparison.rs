//! Regenerates Table I: the scheme comparison. Latency columns are
//! measured (Table II worlds, divided by RTT); amplification is measured at
//! the guard's unverified-traffic meter; ranges and deployment sides are
//! properties of the encodings.

use bench::experiments::table1_comparison;
use bench::report::render_table;

fn main() {
    let rows = table1_comparison();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                format!("{:.1}", r.worst_latency_rtt),
                format!("{:.1}", r.best_latency_rtt),
                r.cookie_range.to_string(),
                format!("{:.0}%", (r.amplification - 1.0) * 100.0),
                r.deployment.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table I — comparison among spoof detection schemes (measured)",
            &[
                "Scheme",
                "Worst RTTs",
                "Best RTTs",
                "Cookie range",
                "Amplification",
                "Deployment",
            ],
            &table,
        )
    );
    println!(
        "Paper reference: worst 2/3/3/2 RTT, best 1/1/3/1 RTT, \
         amplification <50%/<50%/0/0, deployment ANS/ANS/ANS/both."
    );
}
