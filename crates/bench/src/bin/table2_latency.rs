//! Regenerates Table II: average DNS request latency per scheme over a
//! 10.9 ms-RTT path, cache miss vs cache hit.

use bench::experiments::{table2_latency, Scheme};
use bench::report::{ms, render_table};

fn main() {
    let rows = table2_latency();
    let paper_miss = [21.0, 32.1, 34.5, 22.4];
    let paper_hit = [11.1, 11.3, 33.7, 10.8];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(Scheme::ALL.iter().enumerate())
        .map(|(r, (i, _))| {
            vec![
                r.scheme.label().to_string(),
                ms(r.miss_ms),
                ms(paper_miss[i]),
                ms(r.hit_ms),
                ms(paper_hit[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table II — average DNS request latency (ms), RTT = 10.9 ms",
            &["Scheme", "Miss (ours)", "Miss (paper)", "Hit (ours)", "Hit (paper)"],
            &table,
        )
    );
}
