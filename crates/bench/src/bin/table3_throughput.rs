//! Regenerates Table III: guard throughput (req/s) per scheme at CPU
//! saturation, cache miss vs cache hit, against the 110 K req/s ANS
//! simulator.

use bench::experiments::{table3_throughput, Scheme};
use bench::report::{kreq, render_table};

fn main() {
    let rows = table3_throughput();
    let paper_miss = [84_200.0, 60_100.0, 22_700.0, 84_300.0];
    let paper_hit = [110_100.0, 109_700.0, 22_700.0, 110_300.0];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(Scheme::ALL.iter().enumerate())
        .map(|(r, (i, _))| {
            vec![
                r.scheme.label().to_string(),
                kreq(r.miss),
                kreq(paper_miss[i]),
                kreq(r.hit),
                kreq(paper_hit[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table III — guard throughput (req/s), CPU-saturated",
            &["Scheme", "Miss (ours)", "Miss (paper)", "Hit (ours)", "Hit (paper)"],
            &table,
        )
    );
}
