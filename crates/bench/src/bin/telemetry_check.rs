//! CI telemetry smoke checker: validates that an exported `BENCH_obs.json`
//! snapshot and its JSONL event trace parse as JSON and contain the metric
//! keys and decision-event kinds the observability layer promises.
//!
//! Run: `telemetry_check <BENCH_obs.json> <trace.jsonl>`; exits non-zero
//! with a diagnostic on the first problem found.
//!
//! With `--journeys <BENCH_journeys.json> <chrome_trace.json>` it instead
//! validates the query-journey export: the per-scheme summary (every scheme
//! present, histogram quantiles, the alert schema) and the chrome
//! `trace_event` document.
//!
//! With `--ha <BENCH_failover.json>` it validates the high-availability
//! export: the crash-failover outcome (takeover, client continuity, the
//! HA alert rules), the checkpoint-age sweep, and the shed-tier sweep.
//!
//! With `--fleet <BENCH_fleet.json>` it validates the anycast-fleet
//! export: both cookie regimes under the catchment shift, the
//! rotation-mid-shift run, and the fleet alert rules.
//!
//! With `--fleetobs <BENCH_fleetobs.json> <BENCH_fleetobs_trace.jsonl>`
//! it validates the fleet-observability export: 100 % cross-node journey
//! stitching with exact stage attribution, the three fleet rules, the
//! collector's own telemetry, and the collector trace (every
//! [`STITCH_KINDS`] kind present).
//!
//! With `--analytics <BENCH_analytics.json>` it validates the
//! traffic-analytics export: all four scenario verdicts (clean baseline
//! silent, `spoof_flood` on the random-spoof flood and the botnet,
//! `flash_crowd` on the Zipf crowd), the sketch fields behind each
//! verdict, and the two-site fleet-merge leg's accuracy bar.
//!
//! With `--poison <BENCH_poison.json>` it validates the cache-poisoning
//! export: the defense × bandwidth success table (undefended ≥ 0.5,
//! hardened cells blank), the port-derandomization and fragmentation
//! legs, the silent clean baseline, and the overall `table_ok` verdict.
//!
//! [`STITCH_KINDS`]: obs::fleet::STITCH_KINDS

use bench::journeys::SCHEMES;
use bench::obs_export::REQUIRED_KINDS;
use obs::export::{validate_json, validate_jsonl};
use obs::fleet::STITCH_KINDS;
use std::process::exit;

/// Substrings the snapshot document must contain: the experiment header,
/// one metric per instrumented component, the labelled guard families,
/// and the time-series block.
const SNAPSHOT_KEYS: &[&str] = &[
    "\"experiment\":\"obs_export\"",
    "\"component\":\"guard\"",
    "\"component\":\"netsim\"",
    "\"component\":\"authoritative\"",
    "\"name\":\"verify\"",
    "\"name\":\"rl_dropped\"",
    "\"name\":\"evicted\"",
    "\"name\":\"queries\"",
    "\"kind\":\"histogram\"",
    "\"timeseries\"",
];

/// Substrings the journey summary must contain: per-journey attribution
/// fields, histogram quantiles, and the alert schema (rule + since in the
/// active set, fired-rule list, silent clean baseline).
const JOURNEY_KEYS: &[&str] = &[
    "\"experiment\":\"journeys\"",
    "\"reconstruction\":",
    "\"extra_rtt\":",
    "\"mean_handshake_ns\":",
    "\"mean_guard_ns\":",
    "\"mean_ans_ns\":",
    "\"p50\":",
    "\"p95\":",
    "\"p99\":",
    "\"chaos\":",
    "\"fired_rules\":",
    "\"alerts\":",
    "\"history\":",
    "\"baseline_silent\":true",
];

/// Substrings the failover summary must contain: the crash outcome, the
/// three HA alert rules, both sweeps, and the silent clean baseline.
const HA_KEYS: &[&str] = &[
    "\"experiment\":\"failover\"",
    "\"crash\":",
    "\"took_over\":true",
    "\"spoofed_to_ans\":0",
    "\"failover_triggered\"",
    "\"checkpoint_lag\"",
    "\"admission_shedding\"",
    "\"checkpoint_sweep\":",
    "\"age_at_restore_nanos\":",
    "\"shed_sweep\":",
    "\"peak_tier\":",
    "\"amplification_milli\":",
    "\"baseline_silent\":true",
];

/// Substrings the fleet summary must contain: both cookie regimes, the
/// shift/storm outcome fields, the two fleet alert rules, and the silent
/// clean baseline.
const FLEET_KEYS: &[&str] = &[
    "\"experiment\":\"fleet\"",
    "\"md5_per_site\":",
    "\"shared_siphash\":",
    "\"rotation_mid_shift\":",
    "\"re_handshakes\":",
    "\"cookie2_invalid\":",
    "\"rl1_dropped\":",
    "\"amplification_milli\":",
    "\"spoofed_to_ans\":0",
    "\"fleet_keys_applied\":",
    "\"catchment_shift\"",
    "\"handshake_storm\"",
    "\"baseline_silent\":true",
];

/// Substrings the fleet-observability summary must contain: the total
/// stitching bar, exact attribution, the fleet rule names, the merged
/// fleet snapshot, the collector's own metrics, and the silent clean
/// baseline.
const FLEETOBS_KEYS: &[&str] = &[
    "\"experiment\":\"fleetobs\"",
    "\"spanning_expected\":",
    "\"spanning_stitched\":",
    "\"stitch_ratio_pct\":100",
    "\"attribution_exact\":true",
    "\"inter_site_positive\":true",
    "\"node_silent\":true",
    "\"fleet_spoof_surge\"",
    "\"site_rate_skew\"",
    "\"merged\":",
    "\"collector\":",
    "\"component\":\"fleet\"",
    "\"name\":\"stitched_journeys\"",
    "\"name\":\"nodes_reporting\"",
    "\"fired_rules\":",
    "\"alerts\":",
    "\"baseline_silent\":true",
];

/// Substrings the traffic-analytics summary must contain: the global
/// discriminator verdict, all four scenarios with their sketch readings
/// and rule outcomes, and the fleet-merge accuracy bar.
const ANALYTICS_KEYS: &[&str] = &[
    "\"experiment\":\"analytics\"",
    "\"discriminator_ok\":true",
    "\"baseline\":",
    "\"spoof_flood\":",
    "\"flash_crowd\":",
    "\"botnet\":",
    "\"fleet_merge\":",
    "\"spoof_flood_fired\":",
    "\"flash_crowd_fired\":",
    "\"entropy_norm\":",
    "\"top_share\":",
    "\"top_sources\":",
    "\"distinct_err_pct\":",
    "\"top_bounds_ok\":true",
    "\"merged_total\":",
];

/// Substrings the cache-poisoning summary must contain: every defense
/// row of the success table, the analytic-model column, the derand and
/// fragmentation legs, the alert outcome, and the overall verdict.
const POISON_KEYS: &[&str] = &[
    "\"experiment\":\"poison\"",
    "\"table\":",
    "\"defense\":\"none\"",
    "\"defense\":\"random_ports\"",
    "\"defense\":\"case_0x20\"",
    "\"defense\":\"anomaly_gate\"",
    "\"defense\":\"full_stack\"",
    "\"measured_p\":",
    "\"predicted_p\":",
    "\"poison_attempts\":",
    "\"gate_trips\":",
    "\"alert_fired\":true",
    "\"derand\":",
    "\"sequential_wins\":",
    "\"randomized_wins\":0",
    "\"frag\":",
    "\"undefended_poisoned\":true",
    "\"hardened_poisoned\":false",
    "\"baseline_fired\":[]",
    "\"table_ok\":true",
];

/// Substrings a chrome `trace_event` document must contain.
const CHROME_KEYS: &[&str] = &[
    "\"traceEvents\":",
    "\"ph\":\"X\"",
    "\"pid\":",
    "\"tid\":",
    "\"displayTimeUnit\"",
];

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("telemetry_check: read {path}: {e}");
        exit(1);
    })
}

fn require_json(path: &str, doc: &str) {
    if let Err(off) = validate_json(doc) {
        eprintln!("telemetry_check: {path} is not valid JSON (byte {off})");
        exit(1);
    }
}

fn require_keys(path: &str, doc: &str, keys: &[&str]) {
    for key in keys {
        if !doc.contains(key) {
            eprintln!("telemetry_check: {path} missing expected key {key}");
            exit(1);
        }
    }
}

fn check_journeys(summary_path: &str, chrome_path: &str) {
    let summary = read(summary_path);
    require_json(summary_path, &summary);
    require_keys(summary_path, &summary, JOURNEY_KEYS);
    for scheme in SCHEMES {
        let needle = format!("\"{scheme}\":{{");
        if !summary.contains(&needle) {
            eprintln!("telemetry_check: {summary_path} missing scheme {scheme}");
            exit(1);
        }
    }

    let chrome = read(chrome_path);
    require_json(chrome_path, &chrome);
    require_keys(chrome_path, &chrome, CHROME_KEYS);

    println!(
        "journeys OK: {} ({} bytes), {} ({} bytes)",
        summary_path,
        summary.len(),
        chrome_path,
        chrome.len(),
    );
}

fn check_ha(summary_path: &str) {
    let summary = read(summary_path);
    require_json(summary_path, &summary);
    require_keys(summary_path, &summary, HA_KEYS);
    println!("failover OK: {} ({} bytes)", summary_path, summary.len());
}

fn check_fleet(summary_path: &str) {
    let summary = read(summary_path);
    require_json(summary_path, &summary);
    require_keys(summary_path, &summary, FLEET_KEYS);
    println!("fleet OK: {} ({} bytes)", summary_path, summary.len());
}

fn check_fleetobs(summary_path: &str, trace_path: &str) {
    let summary = read(summary_path);
    require_json(summary_path, &summary);
    require_keys(summary_path, &summary, FLEETOBS_KEYS);

    let trace = read(trace_path);
    if let Err((ln, off)) = validate_jsonl(&trace) {
        eprintln!("telemetry_check: {trace_path} line {ln} is not valid JSON (byte {off})");
        exit(1);
    }
    for kind in STITCH_KINDS {
        let needle = format!("\"kind\":\"{kind}\"");
        if !trace.contains(&needle) {
            eprintln!("telemetry_check: {trace_path} has no \"{kind}\" event");
            exit(1);
        }
    }

    println!(
        "fleetobs OK: {} ({} bytes), {} ({} lines)",
        summary_path,
        summary.len(),
        trace_path,
        trace.lines().count(),
    );
}

fn check_analytics(summary_path: &str) {
    let summary = read(summary_path);
    require_json(summary_path, &summary);
    require_keys(summary_path, &summary, ANALYTICS_KEYS);
    println!("analytics OK: {} ({} bytes)", summary_path, summary.len());
}

fn check_poison(summary_path: &str) {
    let summary = read(summary_path);
    require_json(summary_path, &summary);
    require_keys(summary_path, &summary, POISON_KEYS);
    println!("poison OK: {} ({} bytes)", summary_path, summary.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--ha") {
        let Some(summary) = args.get(1) else {
            eprintln!("usage: telemetry_check --ha <BENCH_failover.json>");
            exit(2);
        };
        check_ha(summary);
        return;
    }
    if args.first().map(String::as_str) == Some("--fleet") {
        let Some(summary) = args.get(1) else {
            eprintln!("usage: telemetry_check --fleet <BENCH_fleet.json>");
            exit(2);
        };
        check_fleet(summary);
        return;
    }
    if args.first().map(String::as_str) == Some("--fleetobs") {
        let (Some(summary), Some(trace)) = (args.get(1), args.get(2)) else {
            eprintln!(
                "usage: telemetry_check --fleetobs <BENCH_fleetobs.json> \
                 <BENCH_fleetobs_trace.jsonl>"
            );
            exit(2);
        };
        check_fleetobs(summary, trace);
        return;
    }
    if args.first().map(String::as_str) == Some("--analytics") {
        let Some(summary) = args.get(1) else {
            eprintln!("usage: telemetry_check --analytics <BENCH_analytics.json>");
            exit(2);
        };
        check_analytics(summary);
        return;
    }
    if args.first().map(String::as_str) == Some("--poison") {
        let Some(summary) = args.get(1) else {
            eprintln!("usage: telemetry_check --poison <BENCH_poison.json>");
            exit(2);
        };
        check_poison(summary);
        return;
    }
    if args.first().map(String::as_str) == Some("--journeys") {
        let (Some(summary), Some(chrome)) = (args.get(1), args.get(2)) else {
            eprintln!("usage: telemetry_check --journeys <BENCH_journeys.json> <chrome_trace.json>");
            exit(2);
        };
        check_journeys(summary, chrome);
        return;
    }
    let (Some(snapshot_path), Some(trace_path)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: telemetry_check <BENCH_obs.json> <trace.jsonl>\n\
             \x20      telemetry_check --journeys <BENCH_journeys.json> <chrome_trace.json>\n\
             \x20      telemetry_check --ha <BENCH_failover.json>\n\
             \x20      telemetry_check --fleet <BENCH_fleet.json>\n\
             \x20      telemetry_check --fleetobs <BENCH_fleetobs.json> <BENCH_fleetobs_trace.jsonl>\n\
             \x20      telemetry_check --analytics <BENCH_analytics.json>\n\
             \x20      telemetry_check --poison <BENCH_poison.json>"
        );
        exit(2);
    };

    let snapshot = read(snapshot_path);
    require_json(snapshot_path, &snapshot);
    require_keys(snapshot_path, &snapshot, SNAPSHOT_KEYS);

    let trace = read(trace_path);
    if let Err((ln, off)) = validate_jsonl(&trace) {
        eprintln!("telemetry_check: {trace_path} line {ln} is not valid JSON (byte {off})");
        exit(1);
    }
    for kind in REQUIRED_KINDS {
        let needle = format!("\"kind\":\"{kind}\"");
        if !trace.contains(&needle) {
            eprintln!("telemetry_check: {trace_path} has no \"{kind}\" event");
            exit(1);
        }
    }

    println!(
        "telemetry OK: {} ({} bytes), {} ({} lines)",
        snapshot_path,
        snapshot.len(),
        trace_path,
        trace.lines().count(),
    );
}
