//! CI telemetry smoke checker: validates that an exported `BENCH_obs.json`
//! snapshot and its JSONL event trace parse as JSON and contain the metric
//! keys and decision-event kinds the observability layer promises.
//!
//! Run: `telemetry_check <BENCH_obs.json> <trace.jsonl>`; exits non-zero
//! with a diagnostic on the first problem found.

use bench::obs_export::REQUIRED_KINDS;
use obs::export::{validate_json, validate_jsonl};
use std::process::exit;

/// Substrings the snapshot document must contain: the experiment header,
/// one metric per instrumented component, the labelled guard families,
/// and the time-series block.
const SNAPSHOT_KEYS: &[&str] = &[
    "\"experiment\":\"obs_export\"",
    "\"component\":\"guard\"",
    "\"component\":\"netsim\"",
    "\"component\":\"authoritative\"",
    "\"name\":\"verify\"",
    "\"name\":\"rl_dropped\"",
    "\"name\":\"evicted\"",
    "\"name\":\"queries\"",
    "\"kind\":\"histogram\"",
    "\"timeseries\"",
];

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("telemetry_check: read {path}: {e}");
        exit(1);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(snapshot_path), Some(trace_path)) = (args.next(), args.next()) else {
        eprintln!("usage: telemetry_check <BENCH_obs.json> <trace.jsonl>");
        exit(2);
    };

    let snapshot = read(&snapshot_path);
    if let Err(off) = validate_json(&snapshot) {
        eprintln!("telemetry_check: {snapshot_path} is not valid JSON (byte {off})");
        exit(1);
    }
    for key in SNAPSHOT_KEYS {
        if !snapshot.contains(key) {
            eprintln!("telemetry_check: {snapshot_path} missing expected key {key}");
            exit(1);
        }
    }

    let trace = read(&trace_path);
    if let Err((ln, off)) = validate_jsonl(&trace) {
        eprintln!("telemetry_check: {trace_path} line {ln} is not valid JSON (byte {off})");
        exit(1);
    }
    for kind in REQUIRED_KINDS {
        let needle = format!("\"kind\":\"{kind}\"");
        if !trace.contains(&needle) {
            eprintln!("telemetry_check: {trace_path} has no \"{kind}\" event");
            exit(1);
        }
    }

    println!(
        "telemetry OK: {} ({} bytes), {} ({} lines)",
        snapshot_path,
        snapshot.len(),
        trace_path,
        trace.lines().count(),
    );
}
