//! The paper's evaluation, experiment by experiment. Each function rebuilds
//! its world from scratch, runs it, and returns the same rows/series the
//! paper reports. The binaries in `src/bin/` print them.

use crate::worlds::{
    attach_flood, attach_lrs, guarded_world, measure_throughput, GuardedWorld, LrsParams,
    WorldParams, ZoneSel,
};
use dnsguard::config::SchemeMode;
use dnsguard::guard::RemoteGuard;
use netsim::engine::CpuConfig;
use netsim::time::SimTime;
use serde::Serialize;
use server::nodes::ServerCosts;
use server::simclient::{CookieMode, LrsSimulator};
use std::net::Ipv4Addr;

/// The four scheme columns of Tables II and III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scheme {
    /// DNS-based, NS-name variant (guard on a referral zone).
    NsName,
    /// DNS-based, fabricated NS name + IP variant (terminal zone).
    Fabricated,
    /// TCP redirection through the proxy.
    Tcp,
    /// Modified DNS (cookie extension).
    Modified,
}

impl Scheme {
    /// All four, in the paper's column order.
    pub const ALL: [Scheme; 4] = [Scheme::NsName, Scheme::Fabricated, Scheme::Tcp, Scheme::Modified];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::NsName => "NS Name",
            Scheme::Fabricated => "Fabricated NS Name/IP",
            Scheme::Tcp => "TCP-based",
            Scheme::Modified => "Modified DNS",
        }
    }

    fn world_params(self, seed: u64) -> WorldParams {
        let mut p = WorldParams::new(seed);
        match self {
            Scheme::NsName => {
                p.zone = ZoneSel::Root;
                p.mode = SchemeMode::DnsBased;
            }
            Scheme::Fabricated => {
                p.zone = ZoneSel::Foo;
                p.mode = SchemeMode::DnsBased;
            }
            Scheme::Tcp => {
                p.zone = ZoneSel::Foo;
                p.mode = SchemeMode::TcpBased;
            }
            Scheme::Modified => {
                p.zone = ZoneSel::Foo;
                p.mode = SchemeMode::ModifiedOnly;
            }
        }
        p
    }

    fn lrs_mode(self) -> CookieMode {
        match self {
            Scheme::Modified => CookieMode::Extension,
            _ => CookieMode::Plain,
        }
    }
}

// ---------------------------------------------------------------------------
// Table II — request latency
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyRow {
    /// Scheme column.
    pub scheme: Scheme,
    /// First-access latency, ms (cache miss).
    pub miss_ms: f64,
    /// Subsequent-access latency, ms (cache hit).
    pub hit_ms: f64,
}

/// Reproduces Table II: mean request latency over a 10.9 ms-RTT Internet
/// path, cache miss (first access) vs cache hit (cookie cached).
pub fn table2_latency() -> Vec<LatencyRow> {
    let rtt = SimTime::from_micros(10_900);
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let GuardedWorld { mut sim, guard, ans: _ } = guarded_world(scheme.world_params(2));
            let lrs_ip = Ipv4Addr::new(10, 0, 0, 11);
            let lrs = attach_lrs(
                &mut sim,
                LrsParams {
                    ip: lrs_ip,
                    mode: scheme.lrs_mode(),
                    cookie_cache: true,
                    concurrency: 1,
                    wait: SimTime::from_millis(200),
                    pace: SimTime::from_millis(5),
                    per_packet_cost: SimTime::ZERO,
                },
            );
            // The Internet path between LRS and guard.
            sim.connect_rtt(lrs, guard, rtt);
            sim.run_until(SimTime::from_secs(2));
            let node = sim.node_ref::<LrsSimulator>(lrs).expect("lrs");
            let latencies = &node.latencies;
            assert!(latencies.len() >= 5, "scheme {scheme:?}: too few samples");
            // The single cache-miss request (the first) is the slowest; all
            // cache-hit requests cluster at the median. (For the TCP scheme
            // every request costs the same, so miss ≈ hit.)
            let miss_ms = latencies.quantile(1.0).expect("samples").as_millis_f64();
            let hit_ms = latencies.quantile(0.5).expect("samples").as_millis_f64();
            LatencyRow {
                scheme,
                miss_ms,
                hit_ms,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table III — guard throughput without attack
// ---------------------------------------------------------------------------

/// One row of Table III.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Scheme column.
    pub scheme: Scheme,
    /// Throughput with cookie caching disabled (every request repeats the
    /// whole exchange), req/s.
    pub miss: f64,
    /// Throughput with cookies cached, req/s.
    pub hit: f64,
}

/// Reproduces Table III: guard throughput at CPU saturation, driven by
/// closed-loop LRS simulators against the 110 K req/s ANS simulator.
pub fn table3_throughput() -> Vec<ThroughputRow> {
    let run = |scheme: Scheme, cache: bool| -> f64 {
        let GuardedWorld { mut sim, .. } = guarded_world(scheme.world_params(3));
        // Paper: three LRS machines drive the guard. TCP needs enough
        // in-flight requests to saturate (each costs ~44 µs of guard CPU
        // across ~2.4 ms of RTT legs) but not so many that the connection
        // table dominates.
        let (clients_n, conc) = if scheme == Scheme::Tcp { (2, 50) } else { (3, 64) };
        let clients: Vec<_> = (0..clients_n)
            .map(|i| {
                attach_lrs(
                    &mut sim,
                    LrsParams {
                        ip: Ipv4Addr::new(10, 0, 1, i as u8 + 1),
                        mode: scheme.lrs_mode(),
                        cookie_cache: cache,
                        ..LrsParams::closed_loop(Ipv4Addr::new(10, 0, 1, i as u8 + 1), conc)
                    },
                )
            })
            .collect();
        measure_throughput(
            &mut sim,
            &clients,
            SimTime::from_millis(300),
            SimTime::from_secs(1),
        )
    };
    Scheme::ALL
        .iter()
        .map(|&scheme| ThroughputRow {
            scheme,
            miss: run(scheme, false),
            hit: run(scheme, true),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 5 — BIND throughput and CPU under attack
// ---------------------------------------------------------------------------

/// One point of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Point {
    /// Attack rate, req/s.
    pub attack_rate: f64,
    /// Legitimate throughput (both LRSs), req/s.
    pub legit_throughput: f64,
    /// ANS (BIND) CPU utilisation over the window.
    pub ans_cpu: f64,
}

/// Reproduces Figure 5: a BIND-9-cost ANS with two 1 K req/s legitimate
/// LRSs (one on UDP cookies, one TCP-redirected) under a spoofed flood,
/// with the guard enabled (activation threshold 14 K req/s) or disabled.
pub fn fig5_bind_attack(protected: bool, attack_rates: &[f64]) -> Vec<Fig5Point> {
    attack_rates
        .iter()
        .map(|&attack_rate| {
            let mut p = WorldParams::new(5);
            p.zone = ZoneSel::Foo;
            p.mode = SchemeMode::DnsBased;
            p.ans_costs = ServerCosts::bind9();
            p.activation_threshold = if protected { 14_000.0 } else { f64::INFINITY };
            p.open_limiters = true;
            let GuardedWorld { mut sim, guard, ans } = guarded_world(p);

            // LRS1: UDP cookies. 10 slots paced at 10 ms ≈ 1 K req/s
            // offered; BIND's 2 s retry timer on losses.
            let lrs1_ip = Ipv4Addr::new(10, 0, 2, 1);
            let lrs1 = attach_lrs(
                &mut sim,
                LrsParams {
                    ip: lrs1_ip,
                    mode: CookieMode::Plain,
                    cookie_cache: true,
                    concurrency: 10,
                    wait: SimTime::from_secs(2),
                    pace: SimTime::from_millis(10),
                    per_packet_cost: SimTime::ZERO,
                },
            );
            // LRS2: TCP-redirected; its TCP stack caps it at ~0.5 K req/s
            // (client-side cost 0.2 ms per packet ≈ 2 ms per TCP request).
            let lrs2_ip = Ipv4Addr::new(10, 0, 2, 2);
            let lrs2 = attach_lrs(
                &mut sim,
                LrsParams {
                    ip: lrs2_ip,
                    mode: CookieMode::Plain,
                    cookie_cache: false,
                    concurrency: 10,
                    wait: SimTime::from_secs(2),
                    pace: SimTime::from_millis(10),
                    per_packet_cost: SimTime::from_micros(200),
                },
            );
            sim.node_mut::<RemoteGuard>(guard)
                .expect("guard")
                .config_mut()
                .tcp_redirect_sources
                .push(lrs2_ip);

            if attack_rate > 0.0 {
                attach_flood(&mut sim, Ipv4Addr::new(66, 5, 0, 1), attack_rate);
            }

            // Warm up past activation windows and one BIND timer period.
            sim.run_until(SimTime::from_secs(3));
            sim.reset_cpu_stats(ans);
            let before: u64 = [lrs1, lrs2]
                .iter()
                .map(|&c| sim.node_ref::<LrsSimulator>(c).expect("lrs").stats.completed)
                .sum();
            let window = SimTime::from_secs(3);
            sim.run_for(window);
            let after: u64 = [lrs1, lrs2]
                .iter()
                .map(|&c| sim.node_ref::<LrsSimulator>(c).expect("lrs").stats.completed)
                .sum();
            let ans_cpu = sim.cpu_stats(ans).utilization(window);
            Fig5Point {
                attack_rate,
                legit_throughput: (after - before) as f64 / window.as_secs_f64(),
                ans_cpu,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6 — guard throughput and CPU under attack
// ---------------------------------------------------------------------------

/// One point of Figure 6.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Point {
    /// Attack rate, req/s.
    pub attack_rate: f64,
    /// Legitimate throughput, req/s.
    pub legit_throughput: f64,
    /// Guard CPU utilisation.
    pub guard_cpu: f64,
}

/// Reproduces Figure 6: a cookie-holding LRS saturates the ANS through the
/// guard while a spoofed flood ramps to 250 K req/s; guard spoof detection
/// on (modified-DNS scheme) vs off (pure forwarding).
pub fn fig6_guard_attack(protected: bool, attack_rates: &[f64]) -> Vec<Fig6Point> {
    attack_rates
        .iter()
        .map(|&attack_rate| {
            let mut p = WorldParams::new(6);
            p.zone = ZoneSel::Foo;
            p.mode = SchemeMode::ModifiedOnly;
            p.activation_threshold = if protected { 0.0 } else { f64::INFINITY };
            // A deep (kernel-buffer-like) ANS queue: once the flood pushes
            // queueing delay past the LRS's 10 ms wait, every legitimate
            // request is counted lost even if eventually served — the
            // paper's collapse mechanism.
            p.ans_cpu = CpuConfig {
                max_backlog: SimTime::from_millis(50),
            };
            // Rate limiters stay at their realistic defaults here:
            // Rate-Limiter1's 10 K/s global grant budget is what keeps the
            // flood's cookie-less requests cheap to shed, and Rate-Limiter2's
            // default (200 K/s per host) never throttles the ~110 K legit.
            p.open_limiters = false;
            let GuardedWorld { mut sim, guard, ans: _ } = guarded_world(p);

            let lrs_ip = Ipv4Addr::new(10, 0, 3, 1);
            let lrs = attach_lrs(
                &mut sim,
                LrsParams {
                    ip: lrs_ip,
                    mode: CookieMode::Extension,
                    cookie_cache: true,
                    concurrency: 256,
                    wait: SimTime::from_millis(10),
                    pace: SimTime::ZERO,
                    per_packet_cost: SimTime::ZERO,
                },
            );
            if attack_rate > 0.0 {
                attach_flood(&mut sim, Ipv4Addr::new(66, 6, 0, 1), attack_rate);
            }

            sim.run_until(SimTime::from_millis(500));
            sim.reset_cpu_stats(guard);
            let before = sim.node_ref::<LrsSimulator>(lrs).expect("lrs").stats.completed;
            let window = SimTime::from_secs(1);
            sim.run_for(window);
            let after = sim.node_ref::<LrsSimulator>(lrs).expect("lrs").stats.completed;
            Fig6Point {
                attack_rate,
                legit_throughput: (after - before) as f64 / window.as_secs_f64(),
                guard_cpu: sim.cpu_stats(guard).utilization(window),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 7 — TCP proxy
// ---------------------------------------------------------------------------

/// One point of Figure 7(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig7aPoint {
    /// Concurrent requests maintained.
    pub concurrency: u32,
    /// Proxy throughput, req/s.
    pub throughput: f64,
}

/// Reproduces Figure 7(a): kernel-level TCP proxy throughput as the number
/// of concurrent requests grows (connection-table overhead eventually
/// halves it).
pub fn fig7a_tcp_concurrency(concurrencies: &[u32]) -> Vec<Fig7aPoint> {
    concurrencies
        .iter()
        .map(|&concurrency| {
            let mut p = WorldParams::new(7);
            p.zone = ZoneSel::Foo;
            p.mode = SchemeMode::TcpBased;
            p.guard_cpu = CpuConfig {
                max_backlog: SimTime::from_secs(2),
            };
            let GuardedWorld { mut sim, .. } = guarded_world(p);
            let lrs = attach_lrs(
                &mut sim,
                LrsParams {
                    ip: Ipv4Addr::new(10, 0, 4, 1),
                    mode: CookieMode::Plain,
                    cookie_cache: false,
                    concurrency,
                    wait: SimTime::from_secs(4),
                    pace: SimTime::ZERO,
                    per_packet_cost: SimTime::ZERO,
                },
            );
            let throughput = measure_throughput(
                &mut sim,
                &[lrs],
                SimTime::from_millis(1_500),
                SimTime::from_secs(1),
            );
            Fig7aPoint {
                concurrency,
                throughput,
            }
        })
        .collect()
}

/// One point of Figure 7(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig7bPoint {
    /// UDP attack rate, req/s.
    pub attack_rate: f64,
    /// TCP proxy throughput with 50 concurrent requests, req/s.
    pub throughput: f64,
}

/// Reproduces Figure 7(b): proxy throughput (50 concurrent TCP requests)
/// while a UDP flood competes for the guard CPU.
pub fn fig7b_tcp_under_attack(attack_rates: &[f64]) -> Vec<Fig7bPoint> {
    attack_rates
        .iter()
        .map(|&attack_rate| {
            let mut p = WorldParams::new(8);
            p.zone = ZoneSel::Foo;
            p.mode = SchemeMode::TcpBased;
            p.guard_cpu = CpuConfig {
                max_backlog: SimTime::from_millis(50),
            };
            let GuardedWorld { mut sim, .. } = guarded_world(p);
            let lrs = attach_lrs(
                &mut sim,
                LrsParams {
                    ip: Ipv4Addr::new(10, 0, 5, 1),
                    mode: CookieMode::Plain,
                    cookie_cache: false,
                    concurrency: 50,
                    wait: SimTime::from_millis(200),
                    pace: SimTime::ZERO,
                    per_packet_cost: SimTime::ZERO,
                },
            );
            if attack_rate > 0.0 {
                attach_flood(&mut sim, Ipv4Addr::new(66, 7, 0, 1), attack_rate);
            }
            let throughput = measure_throughput(
                &mut sim,
                &[lrs],
                SimTime::from_millis(500),
                SimTime::from_secs(1),
            );
            Fig7bPoint {
                attack_rate,
                throughput,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table I — scheme comparison (measured columns)
// ---------------------------------------------------------------------------

/// One row of Table I, with the measurable columns measured.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Scheme label.
    pub scheme: &'static str,
    /// Worst-case latency in RTTs (measured: first access / RTT).
    pub worst_latency_rtt: f64,
    /// Best-case latency in RTTs (measured: cached access / RTT).
    pub best_latency_rtt: f64,
    /// Cookie range (analytic, from the encoding).
    pub cookie_range: &'static str,
    /// Measured traffic amplification toward unverified sources.
    pub amplification: f64,
    /// Deployment sides needing a guard (analytic).
    pub deployment: &'static str,
}

/// Reproduces Table I: the per-scheme comparison. Latency columns are
/// measured from the Table II worlds (divided by the RTT), amplification is
/// measured at the guard; range and deployment are properties of the
/// encodings.
pub fn table1_comparison() -> Vec<ComparisonRow> {
    let latency = table2_latency();
    let rtt_ms = 10.9;
    let find = |s: Scheme| latency.iter().find(|r| r.scheme == s).expect("scheme row");

    // Measure amplification per scheme with caching off (all first
    // contacts — the unverified path).
    let amp = |scheme: Scheme| -> f64 {
        let GuardedWorld { mut sim, guard, .. } = guarded_world(scheme.world_params(9));
        let _ = attach_lrs(
            &mut sim,
            LrsParams {
                ip: Ipv4Addr::new(10, 0, 6, 1),
                mode: scheme.lrs_mode(),
                cookie_cache: false,
                concurrency: 4,
                wait: SimTime::from_millis(50),
                pace: SimTime::ZERO,
                per_packet_cost: SimTime::ZERO,
            },
        );
        sim.run_until(SimTime::from_millis(200));
        sim.node_ref::<RemoteGuard>(guard)
            .expect("guard")
            .traffic_unverified
            .amplification()
    };

    vec![
        ComparisonRow {
            scheme: "DNS-based / NS name",
            worst_latency_rtt: find(Scheme::NsName).miss_ms / rtt_ms,
            best_latency_rtt: find(Scheme::NsName).hit_ms / rtt_ms,
            cookie_range: "2^32",
            amplification: amp(Scheme::NsName),
            deployment: "ANS side only",
        },
        ComparisonRow {
            scheme: "DNS-based / fabricated NS+IP",
            worst_latency_rtt: find(Scheme::Fabricated).miss_ms / rtt_ms,
            best_latency_rtt: find(Scheme::Fabricated).hit_ms / rtt_ms,
            cookie_range: "2^32 and R_y<=2^24",
            amplification: amp(Scheme::Fabricated),
            deployment: "ANS side only",
        },
        ComparisonRow {
            scheme: "TCP-based",
            worst_latency_rtt: find(Scheme::Tcp).miss_ms / rtt_ms,
            best_latency_rtt: find(Scheme::Tcp).hit_ms / rtt_ms,
            cookie_range: "2^32 (ISN)",
            amplification: amp(Scheme::Tcp),
            deployment: "ANS side only",
        },
        ComparisonRow {
            scheme: "Modified DNS",
            worst_latency_rtt: find(Scheme::Modified).miss_ms / rtt_ms,
            best_latency_rtt: find(Scheme::Modified).hit_ms / rtt_ms,
            cookie_range: "2^128",
            amplification: amp(Scheme::Modified),
            deployment: "LRS and ANS side",
        },
    ]
}
