//! The high-availability experiment behind `BENCH_failover.json`: a
//! primary–standby guard pair crash-tested mid-attack, a checkpoint-age
//! sweep over crash-restart recovery, and a shed-tier sweep of the
//! admission controller under increasing flood pressure.
//!
//! Run via `cargo run --release -p bench --bin all_experiments -- --ha`
//! (or `--ha-only`); the composed document lands in `BENCH_failover.json`.
//!
//! Three scenarios:
//!
//! * **Crash mid-attack** — ten cookie-verified clients plus a
//!   cookie-guessing flood and a plain-query flood; the primary crashes at
//!   400 ms; the standby must declare it dead via missed heartbeats, claim
//!   the guarded address, and keep serving the verified clients from the
//!   replicated cookie/grant state — no fresh cookie round-trip. The
//!   alert transcript must show `failover_triggered`, `checkpoint_lag`,
//!   and `admission_shedding`, and no spoofed query may reach the ANS
//!   across the transition.
//! * **Checkpoint-age sweep** — a single guard checkpointing on a cadence
//!   crashes and restarts from its last snapshot; the sweep varies the
//!   cadence (plus a no-checkpoint cold restart) and reports snapshot age
//!   at restore, stale entries dropped, and post-restore completions.
//! * **Shed-tier sweep** — flood rates from zero to far past Rate-Limiter1
//!   capacity; reports the pressure tier reached, requests shed, verified
//!   completions, and the unverified amplification ratio (paper bound:
//!   ≤ 1.5, asserted at ≤ 1.6).

use crate::worlds::{attach_flood, attach_lrs, LrsParams, PRIV, PUB, SUBNET};
use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use dnsguard::checkpoint::shared_store;
use dnsguard::classify::AuthorityClassifier;
use dnsguard::config::{GuardConfig, SchemeMode};
use dnsguard::guard::RemoteGuard;
use dnsguard::{AdmissionConfig, HaConfig, PressureTier};
use netsim::engine::{CpuConfig, NodeId, Simulator};
use netsim::time::SimTime;
use obs::alert::{AlertConfig, AlertEngine};
use obs::trace::Level;
use obs::Obs;
use server::authoritative::Authority;
use server::nodes::{AuthNode, ServerCosts};
use server::simclient::{CookieMode, LrsSimulator};
use server::zone::paper_hierarchy;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// The primary guard's replication address.
pub const REPL_PRIMARY: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 2);
/// The standby guard's replication address.
pub const REPL_STANDBY: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 3);

/// Handles into a primary–standby world.
pub struct HaWorld {
    /// The simulator.
    pub sim: Simulator,
    /// The primary guard (owns [`PUB`] and the `COOKIE2` subnet at start).
    pub primary: NodeId,
    /// The standby guard (reachable only at [`REPL_STANDBY`] until
    /// takeover).
    pub standby: NodeId,
    /// The ANS node.
    pub ans: NodeId,
}

/// Builds the HA topology: primary at the public address, standby fed over
/// the replication channel, both with admission control, the `foo.com`
/// zone behind them (terminal answers → fabricated-NS + `COOKIE2` path).
///
/// Default rate limiters stay in place so floods genuinely saturate RL1.
pub fn ha_world(seed: u64) -> HaWorld {
    let (_, _, foo_com) = paper_hierarchy();
    let authority = Authority::new(vec![foo_com]);
    let mut sim = Simulator::new(seed);

    let base = GuardConfig {
        subnet_base: SUBNET,
        ..GuardConfig::new(PUB, PRIV)
    }
    .with_mode(SchemeMode::DnsBased)
    .with_admission(AdmissionConfig::default());
    let interval = SimTime::from_millis(20);
    let primary_cfg = base
        .clone()
        .with_ha(HaConfig::primary(REPL_PRIMARY, REPL_STANDBY).with_interval(interval));
    let standby_cfg =
        base.with_ha(HaConfig::standby(REPL_STANDBY, REPL_PRIMARY).with_interval(interval));

    let cpu = CpuConfig {
        max_backlog: SimTime::from_millis(5),
    };
    let primary = sim.add_node(
        PUB,
        cpu,
        RemoteGuard::new(primary_cfg, AuthorityClassifier::new(authority.clone())),
    );
    sim.add_subnet(SUBNET, 24, primary);
    sim.add_address(REPL_PRIMARY, primary);
    let standby = sim.add_node(
        REPL_STANDBY,
        cpu,
        RemoteGuard::new(standby_cfg, AuthorityClassifier::new(authority.clone())),
    );
    let ans = sim.add_node(
        PRIV,
        cpu,
        AuthNode::with_costs(PRIV, authority, ServerCosts::ans_simulator()),
    );
    HaWorld {
        sim,
        primary,
        standby,
        ans,
    }
}

fn ha_clients(sim: &mut Simulator, n: u8) -> Vec<NodeId> {
    // Concurrency 1 so a crashed primary costs each client at most one
    // consecutive timeout — two would invalidate the cached cookie and
    // force the fresh handshake the failover is supposed to avoid.
    (1..=n)
        .map(|c| {
            attach_lrs(
                sim,
                LrsParams {
                    ip: Ipv4Addr::new(10, 0, c, 1),
                    mode: CookieMode::Plain,
                    cookie_cache: true,
                    concurrency: 1,
                    wait: SimTime::from_millis(150),
                    pace: SimTime::from_millis(5),
                    per_packet_cost: SimTime::ZERO,
                },
            )
        })
        .collect()
}

fn completions(sim: &Simulator, clients: &[NodeId]) -> Vec<u64> {
    clients
        .iter()
        .map(|&c| sim.node_ref::<LrsSimulator>(c).expect("lrs node").stats.completed)
        .collect()
}

/// The crash-mid-attack outcome.
pub struct CrashFailover {
    /// Verified clients in the world.
    pub clients: usize,
    /// Clients that completed at least one transaction between the crash
    /// and the end of the flood — i.e. continued through the takeover on
    /// their cached cookies while shedding was in force.
    pub continued: usize,
    /// Whether the standby claimed the guarded address.
    pub took_over: bool,
    /// Nanoseconds from the crash to the `failover_triggered` alert.
    pub takeover_after_crash_nanos: Option<u64>,
    /// Transactions completed after the crash (all clients).
    pub post_crash_completed: u64,
    /// Queries that reached the ANS without a guard forwarding them, plus
    /// unverified plain-forwards — must be zero.
    pub spoofed_to_ans: u64,
    /// Unverified requests shed by the standby's admission controller.
    pub standby_shed: u64,
    /// Rules that fired at least once, in first-fire order.
    pub fired_rules: Vec<&'static str>,
    /// The alert engine's final transcript document.
    pub alerts_json: String,
}

/// Crash-mid-attack: warm ten verified clients, light up a cookie-guessing
/// flood and a plain-query flood, crash the primary at 400 ms, and let the
/// standby detect, take over, and shed its way through the rest.
pub fn run_crash_failover(seed: u64) -> CrashFailover {
    let mut w = ha_world(seed);

    // Observe the *standby*: it owns the interesting half of the story
    // (heartbeat age, takeover, post-takeover shedding). The primary is
    // read via its stats snapshot instead of the registry.
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    w.sim.attach_obs(&obs);
    w.sim
        .node_mut::<RemoteGuard>(w.standby)
        .unwrap()
        .attach_obs(&obs);
    let mut engine = AlertEngine::new(AlertConfig::default());
    engine.attach_obs(&obs);
    let engine = obs::alert::shared(engine);
    w.sim
        .attach_alert_engine(engine.clone(), obs.registry.clone(), SimTime::from_millis(10));

    let clients = ha_clients(&mut w.sim, 10);
    w.sim.run_until(SimTime::from_millis(300));

    // The 2⁻³² cookie-label guess flood (invalid verifies) ...
    w.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 66),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 4_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::CookieLabelGuess {
                zone_suffix: "com".to_string(),
                parent: ".".parse().expect("root name"),
            },
            duration: Some(SimTime::from_millis(900)),
        }),
    );
    // ... plus a plain-query flood far past RL1 capacity, so the admission
    // controller escalates and sheds.
    w.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 67),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 30_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::PlainQuery("www.foo.com".parse().expect("static name")),
            duration: Some(SimTime::from_millis(800)),
        }),
    );

    let crash_at = SimTime::from_millis(400);
    w.sim.run_until(crash_at);
    let at_crash = completions(&w.sim, &clients);
    w.sim.crash(w.primary);
    // Floods end at 1100/1200 ms; measure continuation while they rage.
    w.sim.run_until(SimTime::from_millis(1_200));
    let at_flood_end = completions(&w.sim, &clients);
    w.sim.run_until(SimTime::from_millis(1_500));
    let at_end = completions(&w.sim, &clients);

    let p_stats = w.sim.node_ref::<RemoteGuard>(w.primary).unwrap().stats();
    let standby = w.sim.node_ref::<RemoteGuard>(w.standby).unwrap();
    let took_over = standby.has_taken_over();
    let s_stats = standby.stats();
    let ans_total = w.sim.node_ref::<AuthNode>(w.ans).unwrap().total_queries();
    // Everything the ANS saw must be accounted for by a guard's forwarder,
    // and nothing unverified may have been plain-forwarded to it.
    let forwarded = p_stats.forwarded + s_stats.forwarded;
    let spoofed_to_ans = ans_total.saturating_sub(forwarded)
        + p_stats.plain_forwarded
        + s_stats.plain_forwarded;

    let continued = at_flood_end
        .iter()
        .zip(&at_crash)
        .filter(|(end, start)| end > start)
        .count();
    let post_crash_completed: u64 =
        at_end.iter().sum::<u64>() - at_crash.iter().sum::<u64>();

    let guard = engine.lock();
    let takeover_after_crash_nanos = guard
        .history()
        .iter()
        .find(|t| t.rule == "failover_triggered" && t.firing)
        .map(|t| t.t_nanos.saturating_sub(crash_at.as_nanos()));
    CrashFailover {
        clients: clients.len(),
        continued,
        took_over,
        takeover_after_crash_nanos,
        post_crash_completed,
        spoofed_to_ans,
        standby_shed: s_stats.admission_shed,
        fired_rules: guard.fired_rules(),
        alerts_json: guard.alerts_json(),
    }
}

/// One point of the checkpoint-age sweep.
pub struct AgePoint {
    /// Checkpoint cadence (`None` = no checkpointing; cold restart).
    pub interval_nanos: Option<u64>,
    /// Snapshot age at the moment of restore.
    pub age_at_restore_nanos: Option<u64>,
    /// Restores performed by the fresh guard (1 when a snapshot existed).
    pub restores: u64,
    /// Checkpointed forward-table entries dropped as past-deadline.
    pub stale_fwd: u64,
    /// Checkpointed stash entries dropped as expired.
    pub stale_stash: u64,
    /// Client completions after the restart.
    pub post_restore_completed: u64,
}

fn run_age_point(seed: u64, interval: Option<SimTime>) -> AgePoint {
    let (_, _, foo_com) = paper_hierarchy();
    let authority = Authority::new(vec![foo_com]);
    let mut sim = Simulator::new(seed);
    let mut config = GuardConfig {
        subnet_base: SUBNET,
        ..GuardConfig::new(PUB, PRIV)
    }
    .with_mode(SchemeMode::DnsBased);
    if let Some(i) = interval {
        config = config.with_checkpoint_interval(i);
    }
    let cpu = CpuConfig {
        max_backlog: SimTime::from_millis(5),
    };
    let guard_id = sim.add_node(
        PUB,
        cpu,
        RemoteGuard::new(config.clone(), AuthorityClassifier::new(authority.clone())),
    );
    sim.add_subnet(SUBNET, 24, guard_id);
    sim.add_node(
        PRIV,
        cpu,
        AuthNode::with_costs(PRIV, authority.clone(), ServerCosts::ans_simulator()),
    );
    let store = shared_store();
    sim.node_mut::<RemoteGuard>(guard_id)
        .unwrap()
        .attach_checkpoint_store(store.clone());

    let clients: Vec<NodeId> = (1..=5u8)
        .map(|c| {
            attach_lrs(
                &mut sim,
                LrsParams {
                    ip: Ipv4Addr::new(10, 0, c, 1),
                    mode: CookieMode::Plain,
                    cookie_cache: true,
                    concurrency: 2,
                    wait: SimTime::from_millis(80),
                    pace: SimTime::from_millis(2),
                    per_packet_cost: SimTime::ZERO,
                },
            )
        })
        .collect();

    // Crash off the housekeeping grid so snapshot ages differ by cadence.
    sim.run_until(SimTime::from_millis(530));
    let before: u64 = completions(&sim, &clients).iter().sum();
    sim.crash(guard_id);
    let cp = store.lock().latest_cloned();
    let restore_at = SimTime::from_millis(560);
    sim.run_until(restore_at);
    let fresh = match &cp {
        Some(cp) => RemoteGuard::restore_from_checkpoint(
            config.clone(),
            AuthorityClassifier::new(authority.clone()),
            cp,
            restore_at,
        ),
        None => RemoteGuard::new(config.clone(), AuthorityClassifier::new(authority)),
    };
    sim.restart_with(guard_id, fresh);
    sim.node_mut::<RemoteGuard>(guard_id)
        .unwrap()
        .attach_checkpoint_store(store.clone());
    sim.run_until(SimTime::from_millis(1_000));

    let after: u64 = completions(&sim, &clients).iter().sum();
    let stats = sim.node_ref::<RemoteGuard>(guard_id).unwrap().stats();
    AgePoint {
        interval_nanos: interval.map(|i| i.as_nanos()),
        age_at_restore_nanos: cp
            .as_ref()
            .map(|c| restore_at.as_nanos().saturating_sub(c.taken_at_nanos)),
        restores: stats.restores,
        stale_fwd: stats.restore_stale_fwd,
        stale_stash: stats.restore_stale_stash,
        post_restore_completed: after.saturating_sub(before),
    }
}

/// Sweeps checkpoint cadence (100 ms, 300 ms, none) over a crash-restart.
pub fn run_checkpoint_age_sweep(seed: u64) -> Vec<AgePoint> {
    [
        Some(SimTime::from_millis(100)),
        Some(SimTime::from_millis(300)),
        None,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, interval)| run_age_point(seed + i as u64, interval))
    .collect()
}

/// One point of the shed-tier sweep.
pub struct ShedPoint {
    /// Plain-query flood rate (req/s).
    pub attack_rate: f64,
    /// The highest pressure tier observed during the flood.
    pub peak_tier: &'static str,
    /// Unverified requests shed by the admission controller.
    pub shed: u64,
    /// Verified-client completions during the flood window.
    pub verified_completed: u64,
    /// Unverified amplification ratio × 1000 (paper bound ≤ 1500).
    pub amplification_milli: u64,
}

fn run_shed_point(seed: u64, rate: f64) -> ShedPoint {
    // Root zone: referral answers → the NS-label cookie variant, the world
    // the paper's amplification bound (< 1.5) was measured in.
    let (root, _, _) = paper_hierarchy();
    let authority = Authority::new(vec![root]);
    let mut sim = Simulator::new(seed);
    let config = GuardConfig {
        subnet_base: SUBNET,
        ..GuardConfig::new(PUB, PRIV)
    }
    .with_mode(SchemeMode::DnsBased)
    .with_admission(AdmissionConfig::default());
    let cpu = CpuConfig {
        max_backlog: SimTime::from_millis(5),
    };
    let guard_id = sim.add_node(
        PUB,
        cpu,
        RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
    );
    sim.add_subnet(SUBNET, 24, guard_id);
    sim.add_node(
        PRIV,
        cpu,
        AuthNode::with_costs(PRIV, authority, ServerCosts::ans_simulator()),
    );
    let clients: Vec<NodeId> = (1..=3u8)
        .map(|c| {
            attach_lrs(
                &mut sim,
                LrsParams {
                    ip: Ipv4Addr::new(10, 0, c, 1),
                    mode: CookieMode::Plain,
                    cookie_cache: true,
                    concurrency: 2,
                    wait: SimTime::from_millis(60),
                    pace: SimTime::from_millis(2),
                    per_packet_cost: SimTime::ZERO,
                },
            )
        })
        .collect();

    sim.run_until(SimTime::from_millis(300));
    let before: u64 = completions(&sim, &clients).iter().sum();
    if rate > 0.0 {
        attach_flood(&mut sim, Ipv4Addr::new(66, 0, 0, 66), rate);
    }
    // Shedding starves RL1 of rejects, so the tier oscillates around the
    // threshold by design; sample each window and keep the peak.
    let mut peak = PressureTier::Normal;
    for step in 1..=7u64 {
        sim.run_until(SimTime::from_millis(300 + step * 100));
        peak = peak.max(sim.node_ref::<RemoteGuard>(guard_id).unwrap().admission_tier());
    }
    let after: u64 = completions(&sim, &clients).iter().sum();
    let guard = sim.node_ref::<RemoteGuard>(guard_id).unwrap();
    let amp = guard.traffic_unverified.amplification();
    ShedPoint {
        attack_rate: rate,
        peak_tier: peak.name(),
        shed: guard.stats().admission_shed,
        verified_completed: after.saturating_sub(before),
        amplification_milli: (amp * 1000.0) as u64,
    }
}

/// Sweeps flood rate across the admission tiers: quiet, below RL1
/// capacity, just past the Surge threshold, and deep into Shed.
pub fn run_shed_sweep(seed: u64) -> Vec<ShedPoint> {
    [0.0, 5_000.0, 13_000.0, 60_000.0]
        .into_iter()
        .enumerate()
        .map(|(i, rate)| run_shed_point(seed + i as u64, rate))
        .collect()
}

/// Runs the clean HA baseline (pair + admission + clients, no faults) and
/// returns whether the alert engine stayed silent.
pub fn ha_baseline_is_silent(seed: u64, duration: SimTime) -> bool {
    let mut w = ha_world(seed);
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    w.sim
        .node_mut::<RemoteGuard>(w.standby)
        .unwrap()
        .attach_obs(&obs);
    let engine = obs::alert::shared(AlertEngine::new(AlertConfig::default()));
    w.sim
        .attach_alert_engine(engine.clone(), obs.registry.clone(), SimTime::from_millis(10));
    ha_clients(&mut w.sim, 3);
    w.sim.run_until(duration);
    let silent = engine.lock().is_silent();
    silent
}

/// The full experiment: crash failover, checkpoint-age sweep, shed-tier
/// sweep, clean baseline.
pub struct FailoverRun {
    /// The composed `BENCH_failover.json` document.
    pub summary_json: String,
    /// The crash-mid-attack outcome.
    pub crash: CrashFailover,
    /// The checkpoint-age sweep.
    pub sweep: Vec<AgePoint>,
    /// The shed-tier sweep.
    pub shed: Vec<ShedPoint>,
    /// Whether the clean HA baseline stayed alert-free.
    pub baseline_silent: bool,
}

/// Runs everything and composes the export document.
pub fn run_all(seed: u64) -> FailoverRun {
    let crash = run_crash_failover(seed);
    let sweep = run_checkpoint_age_sweep(seed + 100);
    let shed = run_shed_sweep(seed + 200);
    let baseline_silent = ha_baseline_is_silent(seed + 300, SimTime::from_millis(600));

    let mut out = format!(
        "{{\"experiment\":\"failover\",\"seed\":{seed},\"crash\":{{\
         \"clients\":{},\"continued\":{},\"took_over\":{},\
         \"takeover_after_crash_nanos\":{},\"post_crash_completed\":{},\
         \"spoofed_to_ans\":{},\"standby_shed\":{},\"fired_rules\":[",
        crash.clients,
        crash.continued,
        crash.took_over,
        crash
            .takeover_after_crash_nanos
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_string()),
        crash.post_crash_completed,
        crash.spoofed_to_ans,
        crash.standby_shed,
    );
    for (i, r) in crash.fired_rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str(&format!("],\"alerts\":{}}},\"checkpoint_sweep\":[", crash.alerts_json));
    for (i, p) in sweep.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"interval_nanos\":{},\"age_at_restore_nanos\":{},\
             \"restores\":{},\"stale_fwd\":{},\"stale_stash\":{},\
             \"post_restore_completed\":{}}}",
            p.interval_nanos.map(|n| n.to_string()).unwrap_or_else(|| "null".to_string()),
            p.age_at_restore_nanos
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.restores,
            p.stale_fwd,
            p.stale_stash,
            p.post_restore_completed,
        ));
    }
    out.push_str("],\"shed_sweep\":[");
    for (i, p) in shed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"attack_rate\":{},\"peak_tier\":\"{}\",\"shed\":{},\
             \"verified_completed\":{},\"amplification_milli\":{}}}",
            p.attack_rate, p.peak_tier, p.shed, p.verified_completed, p.amplification_milli,
        ));
    }
    out.push_str(&format!("],\"baseline_silent\":{baseline_silent}}}"));

    FailoverRun {
        summary_json: out,
        crash,
        sweep,
        shed,
        baseline_silent,
    }
}

/// Runs the experiment with the default seed and writes
/// `BENCH_failover.json` under `dir`.
pub fn export_to(dir: &Path) -> std::io::Result<(FailoverRun, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_all(2006);
    let summary = dir.join("BENCH_failover.json");
    std::fs::write(&summary, &run.summary_json)?;
    Ok((run, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::validate_json;

    #[test]
    fn crash_failover_keeps_verified_clients_alive() {
        let c = run_crash_failover(41);
        assert!(c.took_over, "standby must claim the guarded address");
        assert!(
            c.continued as f64 / c.clients as f64 >= 0.99,
            "only {}/{} verified clients continued through the takeover",
            c.continued,
            c.clients
        );
        assert_eq!(
            c.spoofed_to_ans, 0,
            "no spoofed query may reach the ANS across the transition"
        );
        for rule in ["failover_triggered", "checkpoint_lag", "admission_shedding", "spoof_surge"] {
            assert!(
                c.fired_rules.contains(&rule),
                "{rule} must fire; fired: {:?}",
                c.fired_rules
            );
        }
        let takeover = c.takeover_after_crash_nanos.expect("takeover alert fired");
        // Detection bound: miss threshold (3) × interval (20 ms), plus one
        // interval of phase slack and the 10 ms alert cadence.
        assert!(
            takeover <= SimTime::from_millis(100).as_nanos(),
            "takeover after {takeover} ns exceeds the heartbeat budget"
        );
        assert!(c.standby_shed > 0, "the standby must shed under flood");
        validate_json(&c.alerts_json).unwrap();
    }

    #[test]
    fn checkpoint_sweep_restores_and_cold_restart_does_not() {
        let sweep = run_checkpoint_age_sweep(43);
        assert_eq!(sweep.len(), 3);
        let fast = &sweep[0];
        let slow = &sweep[1];
        let cold = &sweep[2];
        assert_eq!(fast.restores, 1, "cadenced guard restores from snapshot");
        assert_eq!(slow.restores, 1);
        assert_eq!(cold.restores, 0, "no checkpoint → cold restart");
        assert!(cold.age_at_restore_nanos.is_none());
        let fa = fast.age_at_restore_nanos.unwrap();
        let sa = slow.age_at_restore_nanos.unwrap();
        assert!(
            fa < sa,
            "tighter cadence must yield a younger snapshot ({fa} vs {sa})"
        );
        for p in &sweep {
            assert!(
                p.post_restore_completed > 0,
                "clients recover after restart (interval {:?})",
                p.interval_nanos
            );
        }
    }

    #[test]
    fn shed_sweep_escalates_and_keeps_amplification_bounded() {
        let shed = run_shed_sweep(47);
        assert_eq!(shed[0].peak_tier, "normal");
        assert_eq!(shed[0].shed, 0, "no flood, nothing shed");
        let top = shed.last().unwrap();
        assert_eq!(top.peak_tier, "shed", "60k req/s must reach Shed");
        assert!(top.shed > 1_000, "Shed tier must drop the flood");
        assert!(
            top.verified_completed > 0,
            "verified clients complete even at Shed"
        );
        // The paper's bound speaks about flood traffic; the rate-0 point's
        // "unverified" volume is a handful of handshakes, not a flood.
        for p in shed.iter().filter(|p| p.attack_rate > 0.0) {
            assert!(
                p.amplification_milli <= 1_600,
                "amplification {} at rate {} breaks the paper bound",
                p.amplification_milli,
                p.attack_rate
            );
        }
    }

    #[test]
    fn ha_baseline_fires_nothing() {
        assert!(ha_baseline_is_silent(53, SimTime::from_millis(600)));
    }

    #[test]
    fn export_is_valid_json() {
        let run = run_all(11);
        validate_json(&run.summary_json)
            .unwrap_or_else(|off| panic!("BENCH_failover.json invalid at byte {off}"));
        assert!(run.summary_json.contains("\"checkpoint_sweep\""));
        assert!(run.summary_json.contains("\"shed_sweep\""));
        assert!(run.baseline_silent);
    }
}
