//! The anycast-fleet experiment behind `BENCH_fleet.json`: two guard
//! sites fronting the same public address, a BGP catchment shift moving
//! half the verified clients from site A to site B mid-flood, and the
//! handshake-storm amplitude measured under two cookie regimes:
//!
//! * **MD5 per site** — the paper's vendor construction with an
//!   independent secret at each site. A shifted client's cached cookie is
//!   gibberish at the new site: every one of them re-handshakes at once,
//!   Rate-Limiter1 (shared with the flood) drops a chunk of the storm, and
//!   previously-verified clients stall — the failure mode that keeps
//!   single-key vendor cookies out of anycast deployments.
//! * **Shared SipHash-2-4** — the interoperable draft-sury-toorop cookie
//!   with one fleet-wide secret distributed over the authenticated
//!   replication channel. The shifted clients' cookies verify at site B
//!   on arrival: zero re-handshakes, no RL pressure, service continues.
//!
//! A third scenario rotates the fleet key *during* the shift: the pushed
//! key state carries the previous epoch, so the grace window is
//! fleet-wide and no verified client is dropped.
//!
//! Run via `cargo run --release -p bench --bin all_experiments -- --fleet`
//! (or `--fleet-only`); the document lands in `BENCH_fleet.json`.

use crate::worlds::{attach_lrs, LrsParams, PUB, SUBNET};
use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use dnsguard::classify::AuthorityClassifier;
use dnsguard::config::{GuardConfig, SchemeMode};
use dnsguard::guard::RemoteGuard;
use dnsguard::FleetConfig;
use guardhash::cookie::CookieAlg;
use netsim::engine::{CpuConfig, FaultPlan, NodeId, Simulator};
use netsim::time::SimTime;
use obs::alert::{AlertConfig, AlertEngine, SharedAlertEngine};
use obs::trace::Level;
use obs::Obs;
use server::authoritative::Authority;
use server::nodes::{AuthNode, ServerCosts};
use server::simclient::{CookieMode, LrsSimulator};
use server::zone::paper_hierarchy;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Site A's (the key master's) replication address.
pub const SITE_A: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 2);
/// Site B's (the member's) replication address.
pub const SITE_B: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 3);
/// Site A's private ANS.
pub const ANS_A: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 11);
/// Site B's private ANS.
pub const ANS_B: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 12);

/// Number of verified workload clients.
const CLIENTS: u8 = 40;
/// Fraction of source addresses the mid-flood catchment shift moves.
const SHIFT_FRACTION: f64 = 0.55;

/// Handles into a two-site anycast world.
pub struct FleetWorld {
    /// The simulator.
    pub sim: Simulator,
    /// Site A: owns the route for [`PUB`] and the `COOKIE2` subnet.
    pub site_a: NodeId,
    /// Site B: receives only catchment-shifted traffic.
    pub site_b: NodeId,
    /// Site A's ANS node.
    pub ans_a: NodeId,
    /// Site B's ANS node.
    pub ans_b: NodeId,
}

/// Builds the two-site topology. Both guards advertise [`PUB`]; the
/// simulator's routing table sends it to site A (the "normal" BGP
/// catchment), and a [`FaultPlan::catchment_shift`] later moves a subset
/// of sources to site B. Each site forwards to its own ANS.
///
/// `shared` selects the cookie regime: one SipHash-2-4 secret distributed
/// by the fleet channel, or the paper's MD5 with an independent secret per
/// site.
pub fn fleet_world(seed: u64, shared: bool) -> FleetWorld {
    let (_, _, foo_com) = paper_hierarchy();
    let authority = Authority::new(vec![foo_com]);
    let mut sim = Simulator::new(seed);

    let base = |ans: Ipv4Addr| {
        let mut c = GuardConfig {
            subnet_base: SUBNET,
            ..GuardConfig::new(PUB, ans)
        }
        .with_mode(SchemeMode::DnsBased);
        // Tight global cookie budget: the re-handshake storm and the flood
        // compete for it, which is exactly the paper's reflector bound
        // turning a routing event into a denial of verified service.
        c.rl1_global_rate = 120.0;
        c
    };
    let interval = SimTime::from_millis(20);
    let (a_cfg, b_cfg) = if shared {
        (
            base(ANS_A)
                .with_cookie_alg(CookieAlg::SipHash24)
                .with_fleet(FleetConfig::master(SITE_A, vec![SITE_B]).with_interval(interval)),
            base(ANS_B)
                .with_cookie_alg(CookieAlg::SipHash24)
                .with_fleet(FleetConfig::member(SITE_B, SITE_A).with_interval(interval)),
        )
    } else {
        let mut b = base(ANS_B);
        b.key_seed = 4242; // Independent vendor secret at each site.
        (base(ANS_A), b)
    };

    let cpu = CpuConfig {
        max_backlog: SimTime::from_millis(5),
    };
    let site_a = sim.add_node(
        PUB,
        cpu,
        RemoteGuard::new(a_cfg, AuthorityClassifier::new(authority.clone())),
    );
    sim.add_subnet(SUBNET, 24, site_a);
    sim.add_address(SITE_A, site_a);
    let site_b = sim.add_node(
        SITE_B,
        cpu,
        RemoteGuard::new(b_cfg, AuthorityClassifier::new(authority.clone())),
    );
    let ans_a = sim.add_node(
        ANS_A,
        cpu,
        AuthNode::with_costs(ANS_A, authority.clone(), ServerCosts::ans_simulator()),
    );
    let ans_b = sim.add_node(
        ANS_B,
        cpu,
        AuthNode::with_costs(ANS_B, authority, ServerCosts::ans_simulator()),
    );
    // Site B forwards from the anycast address, so its ANS replies to
    // [`PUB`] — which the routing table hands to site A. Pin the return
    // path: everything ANS-B sends toward site A's catchment belongs at B.
    sim.fault_link(ans_b, site_a, FaultPlan::new().catchment_shift(1.0, site_b));
    FleetWorld {
        sim,
        site_a,
        site_b,
        ans_a,
        ans_b,
    }
}

fn fleet_clients(sim: &mut Simulator, n: u8) -> Vec<NodeId> {
    (1..=n)
        .map(|c| {
            attach_lrs(
                sim,
                LrsParams {
                    ip: Ipv4Addr::new(10, 0, c, 1),
                    mode: CookieMode::Plain,
                    cookie_cache: true,
                    concurrency: 1,
                    wait: SimTime::from_millis(150),
                    pace: SimTime::from_millis(5),
                    per_packet_cost: SimTime::ZERO,
                },
            )
        })
        .collect()
}

fn completions(sim: &Simulator, clients: &[NodeId]) -> Vec<u64> {
    clients
        .iter()
        .map(|&c| sim.node_ref::<LrsSimulator>(c).expect("lrs node").stats.completed)
        .collect()
}

/// Alert thresholds for the fleet runs: with a warmed fleet of verified
/// clients the steady-state handshake rate is ~0, so a *sustained* 50/s
/// of first-contact responses is already a storm.
fn fleet_alert_config() -> AlertConfig {
    AlertConfig {
        handshake_per_sec: 50.0,
        ..AlertConfig::default()
    }
}

fn attach_alerting(w: &mut FleetWorld) -> (Obs, SharedAlertEngine) {
    // Observe site B: it is where shifted clients land, so it owns the
    // whole storm story (re-handshakes, RL1 pressure, cookie verdicts).
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    w.sim.attach_obs(&obs);
    w.sim
        .node_mut::<RemoteGuard>(w.site_b)
        .unwrap()
        .attach_obs(&obs);
    let mut engine = AlertEngine::new(fleet_alert_config());
    engine.attach_obs(&obs);
    let engine = obs::alert::shared(engine);
    w.sim
        .attach_alert_engine(engine.clone(), obs.registry.clone(), SimTime::from_millis(10));
    (obs, engine)
}

/// Outcome of one catchment-shift scenario.
pub struct ShiftOutcome {
    /// Verified clients in the world.
    pub clients: usize,
    /// Clients the shift moved to site B (deterministic membership).
    pub shifted: usize,
    /// Shifted clients that completed at least one transaction between the
    /// shift and the end of the flood.
    pub continued: usize,
    /// First-contact handshakes site B sent after the shift (fabricated
    /// NS + TC + grants) — the storm amplitude. Zero when cookies are
    /// interoperable.
    pub re_handshakes: u64,
    /// `COOKIE2` requests site B rejected as invalid — shifted clients
    /// presenting cookies minted under a key site B does not hold.
    pub cookie2_invalid: u64,
    /// Requests dropped by site B's Rate-Limiter1 (storm + flood
    /// competing for the cookie-response budget).
    pub rl1_dropped: u64,
    /// Site B's unverified amplification ratio × 1000 (paper bound ≤ 1500).
    pub amplification_milli: u64,
    /// Queries that reached either ANS unverified — must be zero.
    pub spoofed_to_ans: u64,
    /// Key epochs site B applied from the fleet channel.
    pub fleet_keys_applied: u64,
    /// Rules that fired at least once, in first-fire order.
    pub fired_rules: Vec<&'static str>,
    /// The alert engine's final transcript document.
    pub alerts_json: String,
}

/// Runs the catchment-shift scenario: warm `CLIENTS` verified clients at
/// site A, light a cookie-guessing flood, then shift `SHIFT_FRACTION` of
/// sources to site B mid-flood. When `rotate_mid_shift` is set the master
/// additionally rotates the fleet key while the shift is in progress.
pub fn run_shift(seed: u64, shared: bool, rotate_mid_shift: bool) -> ShiftOutcome {
    let mut w = fleet_world(seed, shared);
    let (_obs, engine) = attach_alerting(&mut w);
    let clients = fleet_clients(&mut w.sim, CLIENTS);

    // Warm-up: every client handshakes at site A and caches its cookie.
    // Long enough that the whole cohort clears RL1's tight budget — the
    // scenario measures *re*-handshakes of verified clients, so nobody may
    // still be on their first contact when the catchment moves.
    w.sim.run_until(SimTime::from_millis(600));

    // The 2⁻³² cookie-guess flood: eats RL-relevant budget and shows up as
    // invalid verifies, without itself inflating the handshake counters.
    let attacker = w.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 66),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 6_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::CookieLabelGuess {
                zone_suffix: "com".to_string(),
                parent: ".".parse().expect("root name"),
            },
            duration: Some(SimTime::from_millis(1_000)),
        }),
    );

    // BGP reconverges at 700 ms: a deterministic 55% of source addresses —
    // verified clients and flood sources alike — now land at site B.
    let shift_at = SimTime::from_millis(700);
    w.sim.run_until(shift_at);
    let plan = FaultPlan::new().catchment_shift(SHIFT_FRACTION, w.site_b);
    for &c in &clients {
        w.sim.fault_link(c, w.site_a, plan);
    }
    w.sim.fault_link(attacker, w.site_a, plan);
    let at_shift = completions(&w.sim, &clients);
    let b_at_shift = w.sim.node_ref::<RemoteGuard>(w.site_b).unwrap().stats();

    if rotate_mid_shift {
        // The operator rotates the fleet secret while the catchment is
        // split; the next sync tick pushes the new epoch (with the old key
        // riding along as grace) to site B.
        w.sim.run_until(SimTime::from_millis(900));
        w.sim
            .node_mut::<RemoteGuard>(w.site_a)
            .unwrap()
            .rotate_key();
    }

    w.sim.run_until(SimTime::from_millis(1_600));
    let at_end = completions(&w.sim, &clients);

    // Membership is a pure function of the client address, so the
    // experiment knows exactly who moved without sampling anything.
    let shifted: Vec<usize> = (0..clients.len())
        .filter(|&i| plan.shifts_source(Ipv4Addr::new(10, 0, i as u8 + 1, 1)))
        .collect();
    let continued = shifted
        .iter()
        .filter(|&&i| at_end[i] > at_shift[i])
        .count();

    let a_stats = w.sim.node_ref::<RemoteGuard>(w.site_a).unwrap().stats();
    let site_b_ref = w.sim.node_ref::<RemoteGuard>(w.site_b).unwrap();
    let b_stats = site_b_ref.stats();
    let amp = site_b_ref.traffic_unverified.amplification();
    let ans_total = w.sim.node_ref::<AuthNode>(w.ans_a).unwrap().total_queries()
        + w.sim.node_ref::<AuthNode>(w.ans_b).unwrap().total_queries();
    let forwarded = a_stats.forwarded + b_stats.forwarded;
    let spoofed_to_ans = ans_total.saturating_sub(forwarded)
        + a_stats.plain_forwarded
        + b_stats.plain_forwarded;

    let handshakes = |s: &dnsguard::guard::GuardStats| {
        s.fabricated_ns_sent + s.tc_sent + s.grants_sent
    };
    let guard = engine.lock();
    ShiftOutcome {
        clients: clients.len(),
        shifted: shifted.len(),
        continued,
        re_handshakes: handshakes(&b_stats) - handshakes(&b_at_shift),
        cookie2_invalid: b_stats.cookie2_invalid,
        rl1_dropped: b_stats.rl1_dropped,
        amplification_milli: (amp * 1000.0) as u64,
        spoofed_to_ans,
        fleet_keys_applied: b_stats.fleet_keys_applied,
        fired_rules: guard.fired_rules(),
        alerts_json: guard.alerts_json(),
    }
}

/// Runs the clean fleet baseline (two sites, fleet sync, clients, no shift
/// and no flood) and returns whether the alert engine stayed silent.
pub fn fleet_baseline_is_silent(seed: u64, duration: SimTime) -> bool {
    let mut w = fleet_world(seed, true);
    let (_obs, engine) = attach_alerting(&mut w);
    fleet_clients(&mut w.sim, 5);
    w.sim.run_until(duration);
    let silent = engine.lock().is_silent();
    silent
}

/// The full experiment: both cookie regimes under the same shift, the
/// rotation-mid-shift run, and the clean baseline.
pub struct FleetRun {
    /// The composed `BENCH_fleet.json` document.
    pub summary_json: String,
    /// The MD5-per-site (handshake storm) outcome.
    pub md5_per_site: ShiftOutcome,
    /// The shared-SipHash (interoperable) outcome.
    pub shared_siphash: ShiftOutcome,
    /// Shared SipHash with a key rotation mid-shift.
    pub rotation_mid_shift: ShiftOutcome,
    /// Whether the clean fleet baseline stayed alert-free.
    pub baseline_silent: bool,
}

fn outcome_json(o: &ShiftOutcome) -> String {
    let mut out = format!(
        "{{\"clients\":{},\"shifted\":{},\"continued\":{},\
         \"re_handshakes\":{},\"cookie2_invalid\":{},\"rl1_dropped\":{},\
         \"amplification_milli\":{},\"spoofed_to_ans\":{},\
         \"fleet_keys_applied\":{},\"fired_rules\":[",
        o.clients,
        o.shifted,
        o.continued,
        o.re_handshakes,
        o.cookie2_invalid,
        o.rl1_dropped,
        o.amplification_milli,
        o.spoofed_to_ans,
        o.fleet_keys_applied,
    );
    for (i, r) in o.fired_rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str(&format!("],\"alerts\":{}}}", o.alerts_json));
    out
}

/// Runs everything and composes the export document.
pub fn run_all(seed: u64) -> FleetRun {
    let md5_per_site = run_shift(seed, false, false);
    let shared_siphash = run_shift(seed, true, false);
    let rotation_mid_shift = run_shift(seed + 1, true, true);
    let baseline_silent = fleet_baseline_is_silent(seed + 2, SimTime::from_millis(600));

    let summary_json = format!(
        "{{\"experiment\":\"fleet\",\"seed\":{seed},\
         \"md5_per_site\":{},\"shared_siphash\":{},\
         \"rotation_mid_shift\":{},\"baseline_silent\":{baseline_silent}}}",
        outcome_json(&md5_per_site),
        outcome_json(&shared_siphash),
        outcome_json(&rotation_mid_shift),
    );
    FleetRun {
        summary_json,
        md5_per_site,
        shared_siphash,
        rotation_mid_shift,
        baseline_silent,
    }
}

/// Runs the experiment with the default seed and writes `BENCH_fleet.json`
/// under `dir`.
pub fn export_to(dir: &Path) -> std::io::Result<(FleetRun, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_all(2006);
    let summary = dir.join("BENCH_fleet.json");
    std::fs::write(&summary, &run.summary_json)?;
    Ok((run, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::validate_json;

    #[test]
    fn shared_siphash_shift_causes_no_handshake_storm() {
        let o = run_shift(41, true, false);
        assert!(o.shifted >= 10, "the shift must move a real cohort: {}", o.shifted);
        assert!(
            o.continued as f64 / o.shifted as f64 >= 0.95,
            "only {}/{} shifted clients continued at site B",
            o.continued,
            o.shifted
        );
        assert_eq!(
            o.re_handshakes, 0,
            "interoperable cookies must verify at the new site without a handshake"
        );
        assert_eq!(o.cookie2_invalid, 0, "no shifted cookie may be rejected");
        assert_eq!(o.spoofed_to_ans, 0, "no spoofed query may reach an ANS");
        assert!(o.fleet_keys_applied >= 1, "site B must have synced the key");
        assert!(
            o.fired_rules.contains(&"catchment_shift"),
            "the shift itself must be alertable: {:?}",
            o.fired_rules
        );
        assert!(
            !o.fired_rules.contains(&"handshake_storm"),
            "no storm under shared cookies: {:?}",
            o.fired_rules
        );
        assert!(
            o.amplification_milli <= 1_600,
            "amplification {} breaks the paper bound",
            o.amplification_milli
        );
        validate_json(&o.alerts_json).unwrap();
    }

    #[test]
    fn md5_per_site_shift_storms() {
        let o = run_shift(41, false, false);
        assert!(o.shifted >= 10);
        assert!(
            o.cookie2_invalid > 0,
            "per-site secrets must reject the shifted cookies"
        );
        assert!(
            o.re_handshakes > 0,
            "shifted clients must be forced into fresh handshakes"
        );
        assert!(
            o.fired_rules.contains(&"handshake_storm"),
            "the storm must be alertable: {:?}",
            o.fired_rules
        );
        assert_eq!(o.spoofed_to_ans, 0, "even mid-storm nothing spoofed passes");
    }

    #[test]
    fn rotation_mid_shift_drops_no_verified_client() {
        let o = run_shift(43, true, true);
        assert!(
            o.continued as f64 / o.shifted as f64 >= 0.95,
            "rotation mid-shift stalled shifted clients: {}/{}",
            o.continued,
            o.shifted
        );
        assert_eq!(o.re_handshakes, 0, "grace must cover the rotation");
        assert!(
            o.fleet_keys_applied >= 2,
            "site B must apply both the initial and the rotated epoch: {}",
            o.fleet_keys_applied
        );
        assert_eq!(o.spoofed_to_ans, 0);
    }

    #[test]
    fn fleet_baseline_fires_nothing() {
        assert!(fleet_baseline_is_silent(53, SimTime::from_millis(600)));
    }

    #[test]
    fn export_is_valid_json() {
        let run = run_all(11);
        validate_json(&run.summary_json)
            .unwrap_or_else(|off| panic!("BENCH_fleet.json invalid at byte {off}"));
        assert!(run.summary_json.contains("\"md5_per_site\""));
        assert!(run.summary_json.contains("\"shared_siphash\""));
        assert!(run.summary_json.contains("\"rotation_mid_shift\""));
        assert!(run.baseline_silent);
    }
}
