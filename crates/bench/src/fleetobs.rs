//! The fleet-observability experiment behind `BENCH_fleetobs.json`: the
//! two-site anycast world of [`crate::fleet`], observed not per node but
//! through a [`FleetAggregator`] fed exactly what a production collector
//! would pull from each site — metric snapshots and drained trace rings —
//! while three overlapping failures unfold:
//!
//! 1. a cookie-guessing **flood** concentrates on site A (600 ms), driving
//!    the fleet-wide invalid-verify rate over threshold
//!    (`fleet_spoof_surge`) and dwarfing site B's datagram rate
//!    (`site_rate_skew` — the asymmetric-catchment signature);
//! 2. a **catchment shift** (700 ms) moves a deterministic 55 % of
//!    sources — plus a cohort of "joiner" clients whose NS-label handshake
//!    is *in flight* — to site B. Each joiner's challenge was issued by
//!    site A and answered at site B, so only cross-node stitching with
//!    clock-offset correction (site B's clock runs 7 ms ahead) can
//!    reconstruct those journeys and attribute the hop as `inter_site`
//!    time;
//! 3. site B **crashes** (1400 ms): its poll feed stops, the node ages
//!    into silence and the `node_silent` rule fires on the edge.
//!
//! The acceptance bar is total: *every* joiner whose handshake straddled
//! the shift must come back as a complete cross-node journey
//! (100 % stitched), every journey's stage attribution must sum exactly
//! to its end-to-end time, and the clean two-site baseline must keep the
//! fleet rules silent.
//!
//! Run via `cargo run --release -p bench --bin all_experiments --
//! --fleetobs` (or `--fleetobs-only`); the documents land in
//! `BENCH_fleetobs.json` and `BENCH_fleetobs_trace.jsonl`.

use crate::fleet::{fleet_world, FleetWorld};
use crate::worlds::{attach_lrs, LrsParams, PUB};
use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use netsim::engine::{CpuConfig, FaultPlan, NodeId};
use netsim::time::SimTime;
use obs::export::event_json;
use obs::fleet::{FleetAggregator, FleetAlertConfig};
use obs::trace::{Event, Level, Value};
use obs::Obs;
use server::simclient::CookieMode;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Verified workload clients warmed up at site A before the chaos.
const WARM_CLIENTS: u8 = 16;
/// Clients attached mid-flood so their first handshake straddles the
/// catchment shift: challenged by site A, answering at site B.
const JOINERS: u8 = 8;
/// Fraction of warm-client and attacker sources the shift moves.
const SHIFT_FRACTION: f64 = 0.55;
/// Site B's clock skew: its event timestamps read 7 ms ahead of fleet
/// time. The aggregator corrects with the registered −7 ms offset.
const SKEW_NANOS: i64 = 7_000_000;
/// Collector poll cadence (snapshot + trace drain).
const POLL_MS: u64 = 10;
/// Rule-evaluation cadence: a multiple of the poll so rates are computed
/// over a window wide enough to smooth client pacing bursts.
const EVAL_MS: u64 = 50;

/// Fleet thresholds for this world: the defaults, with node silence at
/// 120 ms so the 1400 ms crash is detected well inside the run.
fn fleetobs_alert_config() -> FleetAlertConfig {
    FleetAlertConfig {
        silent_after_nanos: 120_000_000,
        ..FleetAlertConfig::default()
    }
}

/// A per-site observability bundle, as each node would own in production.
fn site_obs() -> Obs {
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    obs
}

fn warm_ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, i, 1)
}

fn joiner_ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 7, i, 1)
}

/// Warm cohort: cookie-cached, paced slowly enough that the clean
/// two-site baseline stays under the `site_rate_skew` load floor.
fn warm_clients(w: &mut FleetWorld, n: u8) -> Vec<NodeId> {
    (1..=n)
        .map(|c| {
            attach_lrs(
                &mut w.sim,
                LrsParams {
                    ip: warm_ip(c),
                    mode: CookieMode::Plain,
                    cookie_cache: true,
                    concurrency: 1,
                    wait: SimTime::from_millis(150),
                    pace: SimTime::from_millis(50),
                    per_packet_cost: SimTime::ZERO,
                },
            )
        })
        .collect()
}

/// Joiners sit 20 ms (one way) from the sites, so a handshake started at
/// 665 ms is challenged by site A before the 700 ms shift and answered by
/// the client after it — the retry lands at site B.
fn attach_joiners(w: &mut FleetWorld, n: u8) -> Vec<NodeId> {
    let rtt = SimTime::from_millis(40);
    (1..=n)
        .map(|c| {
            let id = attach_lrs(
                &mut w.sim,
                LrsParams {
                    ip: joiner_ip(c),
                    mode: CookieMode::Plain,
                    cookie_cache: false,
                    concurrency: 1,
                    wait: SimTime::from_millis(150),
                    pace: SimTime::from_millis(25),
                    per_packet_cost: SimTime::ZERO,
                },
            );
            w.sim.connect_rtt(id, w.site_a, rtt);
            w.sim.connect_rtt(id, w.site_b, rtt);
            id
        })
        .collect()
}

/// The collector's poll tick: drain both sites into the aggregator (site
/// B's events skewed +7 ms to simulate its fast clock, corrected by the
/// registered offset) and snapshot both registries; when `evaluate` is
/// set, also run the fleet rules over the window since the last
/// evaluation. A crashed site B is simply never polled — it ages into
/// `node_silent` on its own.
#[allow(clippy::too_many_arguments)]
fn poll_fleet(
    w: &FleetWorld,
    agg: &mut FleetAggregator,
    obs_a: &Obs,
    obs_b: &Obs,
    node_a: u32,
    node_b: u32,
    joiner_challenged: &mut BTreeSet<Ipv4Addr>,
    evaluate: bool,
) {
    let t_ns = w.sim.now().as_nanos();
    let (ev_a, _) = obs_a.tracer.drain();
    // Ground truth for the acceptance bar: which joiners did site A
    // challenge? Every one of them must later stitch across the shift.
    for e in &ev_a {
        if e.kind == "fabricated_ns" {
            if let Some(Value::Ip(ip)) = e.field("src") {
                if (1..=JOINERS).any(|c| joiner_ip(c) == ip) {
                    joiner_challenged.insert(ip);
                }
            }
        }
    }
    agg.observe_trace(node_a, &ev_a);
    agg.observe_metric_snapshot(node_a, t_ns, &obs_a.registry.snapshot());
    if !w.sim.is_crashed(w.site_b) {
        let (ev_b, _) = obs_b.tracer.drain();
        let skewed: Vec<Event> = ev_b.iter().map(|e| e.with_offset(SKEW_NANOS)).collect();
        agg.observe_trace(node_b, &skewed);
        agg.observe_metric_snapshot(node_b, t_ns, &obs_b.registry.snapshot());
    }
    if evaluate {
        agg.evaluate(t_ns);
    }
}

/// Advances the world to `to_ms`, polling the collector every
/// [`POLL_MS`].
#[allow(clippy::too_many_arguments)]
fn run_polled(
    w: &mut FleetWorld,
    agg: &mut FleetAggregator,
    obs_a: &Obs,
    obs_b: &Obs,
    node_a: u32,
    node_b: u32,
    joiner_challenged: &mut BTreeSet<Ipv4Addr>,
    from_ms: u64,
    to_ms: u64,
) {
    let mut ms = from_ms;
    while ms < to_ms {
        ms = (ms + POLL_MS).min(to_ms);
        w.sim.run_until(SimTime::from_millis(ms));
        poll_fleet(
            w,
            agg,
            obs_a,
            obs_b,
            node_a,
            node_b,
            joiner_challenged,
            ms.is_multiple_of(EVAL_MS),
        );
    }
}

/// Outcome of the chaos run.
pub struct FleetObsOutcome {
    /// Warm verified clients.
    pub clients: usize,
    /// Joiner clients whose handshake straddled the shift.
    pub joiners: usize,
    /// Joiners site A actually challenged before the shift (ground
    /// truth; must equal `joiners`).
    pub spanning_expected: usize,
    /// Joiners reconstructed as complete cross-node journeys.
    pub spanning_stitched: usize,
    /// All complete journeys (both sites, warm and joiner).
    pub journeys_complete: usize,
    /// Whether every journey's stage attribution summed exactly to its
    /// end-to-end time.
    pub attribution_exact: bool,
    /// Whether every cross-node journey carried positive `inter_site`
    /// time.
    pub inter_site_positive: bool,
    /// Largest `inter_site` hop attributed (nanoseconds).
    pub max_inter_site_ns: u64,
    /// Invalid-verdict verifies the assembler set aside (the flood).
    pub rejected_verifies: u64,
    /// Terminal stages with no matching open journey.
    pub orphan_stages: u64,
    /// Trace events the aggregator ingested across both sites.
    pub trace_events: usize,
    /// Whether site B was held silent at the end of the run.
    pub node_b_silent: bool,
    /// Fleet rules that fired at least once, in first-fire order.
    pub fired_rules: Vec<&'static str>,
    /// The aggregator's alert transcript document.
    pub alerts_json: String,
    /// The order-independent fleet-wide merged snapshot document.
    pub merged_json: String,
    /// The collector's own telemetry (`fleet.*` metrics).
    pub collector_json: String,
    /// The collector trace (JSONL): `journey_stitch`, `node_silent` and
    /// alert transitions.
    pub trace_jsonl: String,
}

/// Runs the chaos scenario: flood at 600 ms, joiners at 665 ms, shift at
/// 700 ms, site B crash at 1400 ms, end at 1600 ms.
pub fn run_chaos(seed: u64) -> FleetObsOutcome {
    let mut w = fleet_world(seed, true);
    let obs_a = site_obs();
    let obs_b = site_obs();
    let obs_fleet = site_obs();
    w.sim
        .node_mut::<dnsguard::guard::RemoteGuard>(w.site_a)
        .unwrap()
        .attach_obs(&obs_a);
    w.sim
        .node_mut::<dnsguard::guard::RemoteGuard>(w.site_b)
        .unwrap()
        .attach_obs(&obs_b);

    let mut agg = FleetAggregator::new(fleetobs_alert_config());
    agg.attach_obs(&obs_fleet);
    let node_a = agg.register_node("site-a", 0);
    // Site B's clock runs 7 ms ahead, so its correction is −7 ms.
    let node_b = agg.register_node("site-b", -SKEW_NANOS);

    let warm = warm_clients(&mut w, WARM_CLIENTS);
    let mut challenged = BTreeSet::new();

    // Warm-up: the cohort handshakes and settles into cookie-cached
    // steady state at site A.
    run_polled(&mut w, &mut agg, &obs_a, &obs_b, node_a, node_b, &mut challenged, 0, 600);

    // The cookie-guessing flood concentrates on site A's catchment.
    let attacker = w.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 66),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 6_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::CookieLabelGuess {
                zone_suffix: "com".to_string(),
                parent: ".".parse().expect("root name"),
            },
            duration: Some(SimTime::from_millis(1_000)),
        }),
    );
    run_polled(&mut w, &mut agg, &obs_a, &obs_b, node_a, node_b, &mut challenged, 600, 665);

    // Joiners: first query reaches site A ≈685 ms (challenge issued
    // pre-shift), the challenge reaches the client ≈705 ms (retry sent
    // post-shift).
    let joiners = attach_joiners(&mut w, JOINERS);
    run_polled(&mut w, &mut agg, &obs_a, &obs_b, node_a, node_b, &mut challenged, 665, 700);

    // BGP reconverges: 55 % of warm/attack sources and every joiner now
    // land at site B.
    let plan = FaultPlan::new().catchment_shift(SHIFT_FRACTION, w.site_b);
    for &c in &warm {
        w.sim.fault_link(c, w.site_a, plan);
    }
    w.sim.fault_link(attacker, w.site_a, plan);
    // Every joiner moves: their in-flight handshakes straddle the shift.
    let joiner_plan = FaultPlan::new().catchment_shift(1.0, w.site_b);
    for &j in &joiners {
        w.sim.fault_link(j, w.site_a, joiner_plan);
    }
    run_polled(&mut w, &mut agg, &obs_a, &obs_b, node_a, node_b, &mut challenged, 700, 1_400);

    // Site B crashes; the collector's polls stop reaching it and the
    // node ages into silence.
    w.sim.crash(w.site_b);
    run_polled(&mut w, &mut agg, &obs_a, &obs_b, node_a, node_b, &mut challenged, 1_400, 1_600);

    let report = agg.stitch();

    let joiner_set: BTreeSet<Ipv4Addr> = (1..=JOINERS).map(joiner_ip).collect();
    let mut spanning_src: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut attribution_exact = true;
    let mut inter_site_positive = true;
    let mut max_inter_site_ns = 0u64;
    for j in &report.complete {
        let a = j.attribution();
        if a.total() != j.total_ns() {
            attribution_exact = false;
        }
        if j.spans_nodes() {
            if a.inter_site_ns == 0 {
                inter_site_positive = false;
            }
            max_inter_site_ns = max_inter_site_ns.max(a.inter_site_ns);
            if joiner_set.contains(&j.src) {
                spanning_src.insert(j.src);
            }
        }
    }

    let (fleet_events, _) = obs_fleet.tracer.drain();
    let trace_jsonl: String = fleet_events
        .iter()
        .map(event_json)
        .collect::<Vec<_>>()
        .join("\n");

    FleetObsOutcome {
        clients: warm.len(),
        joiners: JOINERS as usize,
        spanning_expected: challenged.len(),
        spanning_stitched: spanning_src.len(),
        journeys_complete: report.complete.len(),
        attribution_exact,
        inter_site_positive,
        max_inter_site_ns,
        rejected_verifies: report.rejected_verifies,
        orphan_stages: report.orphan_stages,
        trace_events: agg.event_count(),
        node_b_silent: agg.is_node_silent(node_b),
        fired_rules: agg.fired_rules(),
        alerts_json: agg.alerts_json(),
        merged_json: agg.merged_snapshot_json(),
        collector_json: obs::export::metrics_json(&obs_fleet.registry.snapshot()),
        trace_jsonl,
    }
}

/// Runs the clean two-site baseline (warm clients, fleet sync, polls at
/// the same cadence, no flood, no shift, no crash) and returns whether
/// every fleet rule stayed silent.
pub fn fleetobs_baseline_is_silent(seed: u64, duration: SimTime) -> bool {
    let mut w = fleet_world(seed, true);
    let obs_a = site_obs();
    let obs_b = site_obs();
    w.sim
        .node_mut::<dnsguard::guard::RemoteGuard>(w.site_a)
        .unwrap()
        .attach_obs(&obs_a);
    w.sim
        .node_mut::<dnsguard::guard::RemoteGuard>(w.site_b)
        .unwrap()
        .attach_obs(&obs_b);
    let mut agg = FleetAggregator::new(fleetobs_alert_config());
    let node_a = agg.register_node("site-a", 0);
    let node_b = agg.register_node("site-b", -SKEW_NANOS);
    warm_clients(&mut w, WARM_CLIENTS);
    let mut challenged = BTreeSet::new();
    run_polled(
        &mut w,
        &mut agg,
        &obs_a,
        &obs_b,
        node_a,
        node_b,
        &mut challenged,
        0,
        duration.as_nanos() / 1_000_000,
    );
    if !agg.is_silent() {
        eprintln!("baseline fired: {:?}", agg.history());
    }
    agg.is_silent()
}

/// The full experiment: the chaos run plus the silent baseline.
pub struct FleetObsRun {
    /// The composed `BENCH_fleetobs.json` document.
    pub summary_json: String,
    /// The collector trace (`BENCH_fleetobs_trace.jsonl`).
    pub trace_jsonl: String,
    /// The chaos outcome.
    pub chaos: FleetObsOutcome,
    /// Whether the clean two-site baseline stayed alert-free.
    pub baseline_silent: bool,
}

fn outcome_json(o: &FleetObsOutcome) -> String {
    let stitch_ratio_pct =
        (100 * o.spanning_stitched).checked_div(o.spanning_expected).unwrap_or(0);
    let mut out = format!(
        "{{\"nodes\":2,\"clients\":{},\"joiners\":{},\
         \"spanning_expected\":{},\"spanning_stitched\":{},\
         \"stitch_ratio_pct\":{stitch_ratio_pct},\
         \"journeys_complete\":{},\"attribution_exact\":{},\
         \"inter_site_positive\":{},\"max_inter_site_ns\":{},\
         \"rejected_verifies\":{},\"orphan_stages\":{},\
         \"trace_events\":{},\"node_silent\":{},\"fired_rules\":[",
        o.clients,
        o.joiners,
        o.spanning_expected,
        o.spanning_stitched,
        o.journeys_complete,
        o.attribution_exact,
        o.inter_site_positive,
        o.max_inter_site_ns,
        o.rejected_verifies,
        o.orphan_stages,
        o.trace_events,
        o.node_b_silent,
    );
    for (i, r) in o.fired_rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str(&format!(
        "],\"alerts\":{},\"merged\":{},\"collector\":{}}}",
        o.alerts_json, o.merged_json, o.collector_json
    ));
    out
}

/// Runs everything and composes the export documents.
pub fn run_all(seed: u64) -> FleetObsRun {
    let chaos = run_chaos(seed);
    let baseline_silent = fleetobs_baseline_is_silent(seed + 2, SimTime::from_millis(600));
    let summary_json = format!(
        "{{\"experiment\":\"fleetobs\",\"seed\":{seed},\
         \"chaos\":{},\"baseline_silent\":{baseline_silent}}}",
        outcome_json(&chaos),
    );
    let trace_jsonl = chaos.trace_jsonl.clone();
    FleetObsRun {
        summary_json,
        trace_jsonl,
        chaos,
        baseline_silent,
    }
}

/// Runs the experiment with the default seed and writes
/// `BENCH_fleetobs.json` and `BENCH_fleetobs_trace.jsonl` under `dir`.
pub fn export_to(dir: &Path) -> std::io::Result<(FleetObsRun, PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_all(2006);
    let summary = dir.join("BENCH_fleetobs.json");
    std::fs::write(&summary, &run.summary_json)?;
    let trace = dir.join("BENCH_fleetobs_trace.jsonl");
    std::fs::write(&trace, &run.trace_jsonl)?;
    Ok((run, summary, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::{validate_json, validate_jsonl};

    #[test]
    fn chaos_stitches_every_straddling_joiner() {
        let o = run_chaos(2006);
        assert_eq!(
            o.spanning_expected, JOINERS as usize,
            "every joiner must be challenged by site A before the shift"
        );
        assert_eq!(
            o.spanning_stitched, o.spanning_expected,
            "100% of straddling joiners must stitch across both sites"
        );
        assert!(o.attribution_exact, "stage attribution must sum exactly");
        assert!(o.inter_site_positive, "cross-node hops must carry time");
        assert!(o.max_inter_site_ns > 0);
        assert!(o.node_b_silent, "crashed site B must be held silent");
        for rule in ["fleet_spoof_surge", "site_rate_skew", "node_silent"] {
            assert!(
                o.fired_rules.contains(&rule),
                "rule {rule} must fire: {:?}",
                o.fired_rules
            );
        }
        assert!(o.rejected_verifies > 1_000, "the flood must be visible");
        validate_json(&o.alerts_json).unwrap();
        validate_json(&o.merged_json).unwrap();
        validate_json(&o.collector_json).unwrap();
        validate_jsonl(&o.trace_jsonl).unwrap();
        assert!(o.trace_jsonl.contains("\"kind\":\"journey_stitch\""));
        assert!(o.trace_jsonl.contains("\"kind\":\"node_silent\""));
    }

    #[test]
    fn baseline_fires_nothing() {
        assert!(fleetobs_baseline_is_silent(2008, SimTime::from_millis(600)));
    }

    #[test]
    fn export_is_valid_json() {
        let run = run_all(2006);
        validate_json(&run.summary_json)
            .unwrap_or_else(|off| panic!("BENCH_fleetobs.json invalid at byte {off}"));
        assert!(run.summary_json.contains("\"experiment\":\"fleetobs\""));
        assert!(run.summary_json.contains("\"stitch_ratio_pct\":100"));
        assert!(run.summary_json.contains("\"baseline_silent\":true"));
    }
}
