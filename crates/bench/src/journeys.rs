//! The query-journey experiment behind `BENCH_journeys.json`: per-scheme
//! cold-start worlds whose drained traces are reassembled into causal
//! timelines ([`obs::journey`]), plus one chaos world exercising the
//! alerting engine ([`obs::alert`]) from the simulator tick.
//!
//! Run via `cargo run --release -p bench --bin all_experiments -- --journeys`
//! (or `--journeys-only`). Two files are written:
//!
//! * `BENCH_journeys.json` — per-scheme reconstruction coverage, extra-RTT
//!   attribution (the paper's handshake-cost expectation: ≈1 extra round
//!   trip for the DNS-based and modified-DNS schemes, ≈2 for the COOKIE2
//!   redirect and the TC→TCP fallback), stage-latency attribution, the
//!   journey metric histograms (with p50/p95/p99), and the chaos run's
//!   alert transcript;
//! * `BENCH_journeys_trace.json` — a chrome `trace_event` document of the
//!   COOKIE2 run's journeys, loadable in Perfetto.

use crate::worlds::{attach_lrs, guarded_world, LrsParams, WorldParams, ZoneSel, PUB};
use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use dnsguard::config::SchemeMode;
use dnsguard::guard::RemoteGuard;
use netsim::engine::{CpuConfig, FaultPlan};
use netsim::time::SimTime;
use obs::alert::{AlertConfig, AlertEngine};
use obs::export::metrics_json;
use obs::journey::JourneyReport;
use obs::trace::Level;
use obs::Obs;
use server::nodes::AuthNode;
use server::simclient::{CookieMode, LrsSimulator};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// The four guard schemes, as journey-scheme label → world shape.
pub const SCHEMES: [&str; 4] = ["ns_label", "cookie2", "tcp", "ext"];

/// One scheme's assembled journeys plus the client's ground truth.
pub struct SchemeJourneys {
    /// The journey-scheme label (matches [`obs::journey::Journey::scheme`]).
    pub scheme: &'static str,
    /// Transactions the client completed (ground truth for coverage).
    pub client_completed: u64,
    /// The assembled report.
    pub report: JourneyReport,
    /// The journey-metric snapshot JSON (histograms with quantiles).
    pub metrics_json: String,
}

impl SchemeJourneys {
    /// Complete journeys per client-completed transaction.
    pub fn reconstruction(&self) -> f64 {
        self.report.reconstruction_ratio(self.client_completed)
    }

    /// The dominant extra-round-trip count among complete journeys — the
    /// number the paper's handshake-cost analysis predicts per scheme.
    pub fn extra_rtt_mode(&self) -> u32 {
        let mut counts = std::collections::BTreeMap::new();
        for j in &self.report.complete {
            *counts.entry(j.extra_round_trips()).or_insert(0u64) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map(|(rtt, _)| rtt)
            .unwrap_or(0)
    }

    /// Mean `(total, handshake, guard, ans)` nanoseconds over complete
    /// journeys.
    pub fn mean_attribution_ns(&self) -> (u64, u64, u64, u64) {
        let n = self.report.complete.len() as u64;
        if n == 0 {
            return (0, 0, 0, 0);
        }
        let mut total = 0u64;
        let mut hs = 0u64;
        let mut guard = 0u64;
        let mut ans = 0u64;
        for j in &self.report.complete {
            let a = j.attribution();
            total += j.total_ns();
            hs += a.handshake_ns;
            guard += a.guard_ns;
            ans += a.ans_ns;
        }
        (total / n, hs / n, guard / n, ans / n)
    }
}

/// Builds and runs one scheme's cold-start world: a single client with the
/// cookie cache off, so every transaction pays the full handshake.
pub fn run_scheme(scheme: &'static str, seed: u64, duration: SimTime) -> SchemeJourneys {
    let (zone, mode, lrs_mode) = match scheme {
        "ns_label" => (ZoneSel::Root, SchemeMode::DnsBased, CookieMode::Plain),
        "cookie2" => (ZoneSel::Foo, SchemeMode::DnsBased, CookieMode::Plain),
        "tcp" => (ZoneSel::Foo, SchemeMode::TcpBased, CookieMode::Plain),
        "ext" => (ZoneSel::Foo, SchemeMode::ModifiedOnly, CookieMode::Extension),
        other => panic!("unknown scheme {other}"),
    };
    let mut p = WorldParams::new(seed);
    p.zone = zone;
    p.mode = mode;
    let mut world = guarded_world(p);

    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    world
        .sim
        .node_mut::<RemoteGuard>(world.guard)
        .unwrap()
        .attach_obs(&obs);

    let client = attach_lrs(
        &mut world.sim,
        LrsParams {
            ip: Ipv4Addr::new(10, 0, 1, 1),
            mode: lrs_mode,
            cookie_cache: false, // cold start: every transaction handshakes
            concurrency: 4,
            wait: SimTime::from_millis(50),
            pace: SimTime::from_millis(1),
            per_packet_cost: SimTime::ZERO,
        },
    );
    world.sim.run_until(duration);

    let client_completed = world
        .sim
        .node_ref::<LrsSimulator>(client)
        .unwrap()
        .stats
        .completed;
    let (events, _) = obs.tracer.drain();
    let report = JourneyReport::assemble(&events);
    report.record_into(&obs.registry);
    let journey_samples: Vec<_> = obs
        .registry
        .snapshot()
        .into_iter()
        .filter(|s| s.component == "journey")
        .collect();
    SchemeJourneys {
        scheme,
        client_completed,
        report,
        metrics_json: metrics_json(&journey_samples),
    }
}

/// The chaos run's outcome: reconstruction coverage under faults plus the
/// alert engine's transcript.
pub struct ChaosJourneys {
    /// Transactions the clients completed.
    pub client_completed: u64,
    /// The assembled report.
    pub report: JourneyReport,
    /// Rules that fired at least once, in first-fire order.
    pub fired_rules: Vec<&'static str>,
    /// The engine's `{"active":...,"history":...}` document at the end.
    pub alerts_json: String,
}

impl ChaosJourneys {
    /// Complete journeys per client-completed transaction.
    pub fn reconstruction(&self) -> f64 {
        self.report.reconstruction_ratio(self.client_completed)
    }
}

/// Drives the chaos world: a guarded DNS-based deployment under a
/// cookie-guessing flood (the 2⁻³² label-guess attack — invalid verifies,
/// never journeys), duplication + reordering on the client links, and a
/// guard–ANS partition, with the alert engine evaluated every 10 ms of sim
/// time from the engine tick.
pub fn run_chaos(seed: u64, duration: SimTime) -> ChaosJourneys {
    let mut p = WorldParams::new(seed);
    p.zone = ZoneSel::Root;
    p.open_limiters = false;
    let mut world = guarded_world(p);
    {
        let g = world.sim.node_mut::<RemoteGuard>(world.guard).unwrap();
        let c = g.config_mut();
        // Fast health detection so the partition produces a down/recovered
        // cycle inside the run.
        c.ans_timeout = SimTime::from_millis(20);
        c.ans_failure_threshold = 2;
        c.ans_probe_interval = SimTime::from_millis(50);
    }

    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    world.sim.attach_obs(&obs);
    world
        .sim
        .node_mut::<RemoteGuard>(world.guard)
        .unwrap()
        .attach_obs(&obs);
    world
        .sim
        .node_ref::<AuthNode>(world.ans)
        .unwrap()
        .attach_obs(&obs);

    let mut engine = AlertEngine::new(AlertConfig::default());
    engine.attach_obs(&obs);
    let engine = obs::alert::shared(engine);
    world.sim.attach_alert_engine(
        engine.clone(),
        obs.registry.clone(),
        SimTime::from_millis(10),
    );

    let mut clients = Vec::new();
    for ip in [Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1)] {
        let node = attach_lrs(
            &mut world.sim,
            LrsParams {
                ip,
                mode: CookieMode::Plain,
                cookie_cache: true,
                concurrency: 4,
                wait: SimTime::from_millis(50),
                pace: SimTime::from_millis(2),
                per_packet_cost: SimTime::ZERO,
            },
        );
        world.sim.fault_link_both(
            node,
            world.guard,
            FaultPlan::new()
                .duplicate(0.05)
                .reorder(0.2, SimTime::from_micros(100)),
        );
        clients.push(node);
    }
    // The cookie-guessing flood: every guess is an invalid ns_label verify.
    world.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 66),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 5_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::CookieLabelGuess {
                zone_suffix: "com".to_string(),
                parent: ".".parse().expect("root name"),
            },
            duration: Some(SimTime::from_millis(300)),
        }),
    );
    world.sim.partition(
        world.guard,
        world.ans,
        SimTime::from_millis(400),
        SimTime::from_millis(700),
    );

    world.sim.run_until(duration);

    let client_completed: u64 = clients
        .iter()
        .map(|&c| world.sim.node_ref::<LrsSimulator>(c).unwrap().stats.completed)
        .sum();
    let (events, _) = obs.tracer.drain();
    let report = JourneyReport::assemble(&events);
    let guard = engine.lock();
    ChaosJourneys {
        client_completed,
        report,
        fired_rules: guard.fired_rules(),
        alerts_json: guard.alerts_json(),
    }
}

/// Runs the clean baseline (same world, no flood, no faults, no partition)
/// and returns whether the alert engine stayed silent — the false-positive
/// check.
pub fn clean_baseline_is_silent(seed: u64, duration: SimTime) -> bool {
    let mut p = WorldParams::new(seed);
    p.zone = ZoneSel::Root;
    p.open_limiters = false;
    let mut world = guarded_world(p);

    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    obs.tracer.adopt_into(&obs.registry);
    world
        .sim
        .node_mut::<RemoteGuard>(world.guard)
        .unwrap()
        .attach_obs(&obs);
    let engine = obs::alert::shared(AlertEngine::new(AlertConfig::default()));
    world.sim.attach_alert_engine(
        engine.clone(),
        obs.registry.clone(),
        SimTime::from_millis(10),
    );
    attach_lrs(
        &mut world.sim,
        LrsParams {
            ip: Ipv4Addr::new(10, 0, 1, 1),
            mode: CookieMode::Plain,
            cookie_cache: true,
            concurrency: 4,
            wait: SimTime::from_millis(50),
            pace: SimTime::from_millis(2),
            per_packet_cost: SimTime::ZERO,
        },
    );
    world.sim.run_until(duration);
    let silent = engine.lock().is_silent();
    silent
}

/// The full experiment: every scheme plus chaos plus the clean baseline.
pub struct JourneysRun {
    /// The composed `BENCH_journeys.json` document.
    pub summary_json: String,
    /// The chrome trace document (`BENCH_journeys_trace.json`).
    pub chrome_trace_json: String,
    /// Per-scheme results, in [`SCHEMES`] order.
    pub schemes: Vec<SchemeJourneys>,
    /// The chaos run.
    pub chaos: ChaosJourneys,
    /// Whether the clean baseline stayed alert-free.
    pub baseline_silent: bool,
}

/// Runs everything and composes the export documents.
pub fn run_all(seed: u64) -> JourneysRun {
    let scheme_duration = SimTime::from_millis(400);
    let schemes: Vec<SchemeJourneys> = SCHEMES
        .iter()
        .enumerate()
        .map(|(i, s)| run_scheme(s, seed + i as u64, scheme_duration))
        .collect();
    let chaos = run_chaos(seed + 100, SimTime::from_millis(1_000));
    let baseline_silent = clean_baseline_is_silent(seed + 200, SimTime::from_millis(600));

    let mut out = format!(
        "{{\"experiment\":\"journeys\",\"seed\":{seed},\
         \"scheme_duration_nanos\":{},\"schemes\":{{",
        scheme_duration.as_nanos()
    );
    for (i, s) in schemes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (total, hs, guard, ans) = s.mean_attribution_ns();
        out.push_str(&format!(
            "\"{}\":{{\"client_completed\":{},\"assembled\":{},\
             \"incomplete\":{},\"orphan_stages\":{},\"rejected_verifies\":{},\
             \"reconstruction\":{:.4},\"extra_rtt\":{},\
             \"mean_total_ns\":{total},\"mean_handshake_ns\":{hs},\
             \"mean_guard_ns\":{guard},\"mean_ans_ns\":{ans},\
             \"metrics\":{}}}",
            s.scheme,
            s.client_completed,
            s.report.complete.len(),
            s.report.incomplete.len(),
            s.report.orphan_stages,
            s.report.rejected_verifies,
            s.reconstruction(),
            s.extra_rtt_mode(),
            s.metrics_json,
        ));
    }
    out.push_str(&format!(
        "}},\"chaos\":{{\"client_completed\":{},\"assembled\":{},\
         \"incomplete\":{},\"orphan_stages\":{},\"rejected_verifies\":{},\
         \"reconstruction\":{:.4},\"fired_rules\":[",
        chaos.client_completed,
        chaos.report.complete.len(),
        chaos.report.incomplete.len(),
        chaos.report.orphan_stages,
        chaos.report.rejected_verifies,
        chaos.reconstruction(),
    ));
    for (i, r) in chaos.fired_rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str(&format!(
        "],\"alerts\":{}}},\"baseline_silent\":{}}}",
        chaos.alerts_json, baseline_silent
    ));

    // The COOKIE2 run has the richest stage structure (six stages across
    // three correlation ids) — the representative chrome trace.
    let chrome_trace_json = schemes
        .iter()
        .find(|s| s.scheme == "cookie2")
        .map(|s| s.report.chrome_trace_json())
        .unwrap_or_else(|| "{\"traceEvents\":[]}".to_string());

    JourneysRun {
        summary_json: out,
        chrome_trace_json,
        schemes,
        chaos,
        baseline_silent,
    }
}

/// Runs the experiment with the default seed and writes
/// `BENCH_journeys.json` and `BENCH_journeys_trace.json` under `dir`.
pub fn export_to(dir: &Path) -> std::io::Result<(JourneysRun, PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_all(2006);
    let summary = dir.join("BENCH_journeys.json");
    let trace = dir.join("BENCH_journeys_trace.json");
    std::fs::write(&summary, &run.summary_json)?;
    std::fs::write(&trace, &run.chrome_trace_json)?;
    Ok((run, summary, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::validate_json;

    #[test]
    fn scheme_runs_reconstruct_with_paper_extra_rtt() {
        for (scheme, expect_rtt) in [("ns_label", 1), ("cookie2", 2), ("tcp", 2), ("ext", 1)] {
            let r = run_scheme(scheme, 31, SimTime::from_millis(400));
            assert!(
                r.client_completed > 20,
                "{scheme}: only {} completed",
                r.client_completed
            );
            assert!(
                r.reconstruction() >= 0.99,
                "{scheme}: reconstruction {:.3}",
                r.reconstruction()
            );
            assert_eq!(r.report.orphan_stages, 0, "{scheme}: orphan stages");
            assert_eq!(
                r.extra_rtt_mode(),
                expect_rtt,
                "{scheme}: extra RTTs should match the paper"
            );
            for j in &r.report.complete {
                assert_eq!(
                    j.attribution().total(),
                    j.total_ns(),
                    "{scheme}: attribution classes sum to end-to-end"
                );
            }
            assert!(
                r.metrics_json.contains("\"p50\""),
                "{scheme}: histograms carry quantiles"
            );
        }
    }

    #[test]
    fn chaos_reconstructs_and_fires_expected_alerts() {
        let c = run_chaos(57, SimTime::from_millis(1_000));
        assert!(c.client_completed > 50, "only {} completed", c.client_completed);
        assert!(
            c.reconstruction() >= 0.99,
            "reconstruction {:.3} of {} transactions",
            c.reconstruction(),
            c.client_completed
        );
        assert_eq!(c.report.orphan_stages, 0, "no orphan stages");
        assert!(
            c.fired_rules.contains(&"spoof_surge"),
            "cookie guessing must trip spoof_surge: {:?}",
            c.fired_rules
        );
        assert!(
            c.fired_rules.contains(&"ans_down"),
            "the partition must trip ans_down: {:?}",
            c.fired_rules
        );
        validate_json(&c.alerts_json).unwrap();
    }

    #[test]
    fn clean_baseline_fires_nothing() {
        assert!(clean_baseline_is_silent(77, SimTime::from_millis(600)));
    }

    #[test]
    fn exports_are_valid_json() {
        let run = run_all(11);
        validate_json(&run.summary_json)
            .unwrap_or_else(|off| panic!("BENCH_journeys.json invalid at byte {off}"));
        validate_json(&run.chrome_trace_json)
            .unwrap_or_else(|off| panic!("chrome trace invalid at byte {off}"));
        assert!(run.chrome_trace_json.contains("\"traceEvents\""));
        assert!(run.chrome_trace_json.contains("\"ph\":\"X\""));
        assert!(run.summary_json.contains("\"fired_rules\""));
        assert!(run.baseline_silent);
    }
}
