//! The benchmark harness: rebuilds every table and figure of the paper's
//! evaluation section from the simulated testbed.
//!
//! * [`worlds`] — the guard + ANS + LRS + attacker topologies;
//! * [`experiments`] — one function per paper artefact (Table I–III,
//!   Figures 5–7), each returning the rows/series the paper reports;
//! * [`obs_export`] — the instrumented telemetry run behind
//!   `BENCH_obs.json` (`all_experiments -- --obs`);
//! * [`journeys`] — per-scheme query-journey reconstruction and the chaos
//!   alerting run behind `BENCH_journeys.json`
//!   (`all_experiments -- --journeys`);
//! * [`failover`] — the high-availability experiment behind
//!   `BENCH_failover.json`: primary–standby crash failover, checkpoint-age
//!   sweep, and admission shed-tier sweep (`all_experiments -- --ha`);
//! * [`fleet`] — the anycast-fleet experiment behind `BENCH_fleet.json`:
//!   a mid-flood catchment shift between two guard sites, measured with
//!   per-site MD5 cookies vs a shared SipHash-2-4 secret
//!   (`all_experiments -- --fleet`);
//! * [`fleetobs`] — the fleet-observability experiment behind
//!   `BENCH_fleetobs.json`: both sites polled into a [`FleetAggregator`],
//!   cross-node journey stitching through a mid-flood catchment shift
//!   with clock skew, and the fleet alert rules through a site crash
//!   (`all_experiments -- --fleetobs`);
//! * `analytics` — (feature `traffic-analytics`, so no doc link from the
//!   default build) the spoof-vs-flash-crowd
//!   discriminator experiment behind `BENCH_analytics.json`: a random-spoof
//!   flood, a bounded Zipf flash crowd, and a low-and-slow botnet driven
//!   through the guard's streaming sketches, plus a two-site sketch-merge
//!   leg checked against exact generator ground truth
//!   (`all_experiments -- --analytics`);
//! * [`report`] — plain-text table rendering.
//!
//! [`FleetAggregator`]: obs::fleet::FleetAggregator
//!
//! Run everything: `cargo run --release -p bench --bin all_experiments`.
//! Individual binaries: `table1_comparison`, `table2_latency`,
//! `table3_throughput`, `fig5_bind_attack`, `fig6_guard_attack`,
//! `fig7_tcp_proxy`.
//!
//! Criterion micro-benchmarks (cookie computation, wire codec, rate
//! limiters): `cargo bench -p bench`.

#![forbid(unsafe_code)]

#[cfg(feature = "traffic-analytics")]
pub mod analytics;
pub mod experiments;
pub mod failover;
pub mod fleet;
pub mod fleetobs;
pub mod journeys;
pub mod obs_export;
pub mod poison;
pub mod report;
pub mod worlds;

#[cfg(test)]
mod smoke {
    //! Smoke tests: each experiment runs (with reduced sweeps) and lands in
    //! the paper's qualitative bands. The full sweeps run in the binaries.

    use crate::experiments::*;

    #[test]
    fn table2_shape() {
        let rows = table2_latency();
        let get = |s: Scheme| rows.iter().find(|r| r.scheme == s).unwrap();
        // Cache hits: one RTT (~11 ms) for everything but TCP (~3 RTT).
        for s in [Scheme::NsName, Scheme::Fabricated, Scheme::Modified] {
            let hit = get(s).hit_ms;
            assert!((10.0..14.0).contains(&hit), "{s:?} hit {hit}");
        }
        let tcp_hit = get(Scheme::Tcp).hit_ms;
        assert!((30.0..38.0).contains(&tcp_hit), "tcp hit {tcp_hit}");
        // Cache misses: 2 RTT for NS-name and modified, 3 for fabricated.
        let ns = get(Scheme::NsName).miss_ms;
        assert!((20.0..25.0).contains(&ns), "ns miss {ns}");
        let fab = get(Scheme::Fabricated).miss_ms;
        assert!((31.0..37.0).contains(&fab), "fabricated miss {fab}");
        let modified = get(Scheme::Modified).miss_ms;
        assert!((20.0..25.0).contains(&modified), "modified miss {modified}");
    }

    #[test]
    fn fig7b_decays_under_attack() {
        let pts = fig7b_tcp_under_attack(&[0.0, 250_000.0]);
        assert!(
            pts[0].throughput > 15_000.0,
            "unattacked proxy ~20K: {}",
            pts[0].throughput
        );
        assert!(
            pts[1].throughput < pts[0].throughput * 0.7,
            "attack halves throughput: {} vs {}",
            pts[1].throughput,
            pts[0].throughput
        );
    }
}
