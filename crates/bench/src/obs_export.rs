//! The telemetry-export experiment behind `BENCH_obs.json`: one
//! instrumented guarded run whose event trace covers every guard decision
//! class (grant, verify, RL drop, TC redirect, fabricated NS, eviction,
//! ANS health transitions), sampled on a 10 ms sim-time cadence.
//!
//! Run via `cargo run --release -p bench --bin all_experiments -- --obs`
//! (or `--obs-only` to skip the paper tables). Two files are written:
//!
//! * `BENCH_obs.json` — experiment header, full metrics snapshot, and the
//!   per-metric `[t_nanos, value]` time series.
//! * `BENCH_obs_trace.jsonl` — the structured event trace, one JSON object
//!   per line in sim-time order.

use crate::worlds::{attach_lrs, guarded_world, LrsParams, WorldParams, ZoneSel, PUB};
use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
use dnsguard::guard::RemoteGuard;
use netsim::engine::CpuConfig;
use netsim::time::SimTime;
use obs::export::{events_jsonl, metrics_json, Sampler};
use obs::trace::Level;
use obs::Obs;
use server::nodes::AuthNode;
use server::simclient::CookieMode;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Event kinds the scenario must exercise for the trace to count as a
/// full decision-coverage run (the acceptance list from the issue).
pub const REQUIRED_KINDS: &[&str] = &[
    "grant",
    "verify",
    "rl_drop",
    "tc_sent",
    "fabricated_ns",
    "evict",
    "ans_down",
    "ans_recovered",
];

/// The in-memory result of one instrumented run.
pub struct ObsRun {
    /// The composed `BENCH_obs.json` document.
    pub snapshot_json: String,
    /// The JSONL event trace.
    pub trace_jsonl: String,
    /// Events drained from the tracer ring.
    pub events: usize,
    /// Events the ring discarded (0 unless the scenario overflows it).
    pub dropped: u64,
    /// Event count per kind, for reporting.
    pub kind_counts: BTreeMap<&'static str, usize>,
}

impl ObsRun {
    /// Required event kinds absent from the trace (empty on a good run).
    pub fn missing_kinds(&self) -> Vec<&'static str> {
        REQUIRED_KINDS
            .iter()
            .copied()
            .filter(|k| !self.kind_counts.contains_key(k))
            .collect()
    }
}

/// Drives the instrumented scenario and composes the export documents.
///
/// The topology is the standard guarded world (root zone, DNS-based
/// scheme) with closed rate limiters and deliberately small guard tables,
/// plus:
///
/// * a plain closed-loop LRS (NS-label cookie flow: fabricated NS,
///   requery, `verify{scheme=ns_label}`),
/// * a cookie-extension LRS (grant + `verify{scheme=ext}`),
/// * a TCP-redirected LRS (every plain query answered with TC),
/// * a 20 K req/s spoofed flood for 600 ms (RL1 drops), and
/// * a guard–ANS partition from 700 ms to 1 s (timeouts, `ans_down`,
///   then `ans_recovered` once a probe gets through).
pub fn run_scenario(seed: u64, duration: SimTime) -> ObsRun {
    let tcp_client = Ipv4Addr::new(10, 0, 3, 1);

    let mut p = WorldParams::new(seed);
    p.zone = ZoneSel::Root;
    p.open_limiters = false;
    let mut world = guarded_world(p);
    {
        let g = world.sim.node_mut::<RemoteGuard>(world.guard).unwrap();
        let c = g.config_mut();
        // Tight tables so the closed-loop load forces fwd-table evictions.
        c.fwd_bytes_max = 1_024;
        c.stash_bytes_max = 1_024;
        // Fast health detection so the 300 ms partition produces a full
        // down/recovered cycle: the timeout horizon must sit below the
        // ~40 ms lifetime the tight fwd table gives an entry, or eviction
        // recycles every stranded forward before the sweep can count it.
        c.ans_timeout = SimTime::from_millis(20);
        c.ans_failure_threshold = 2;
        c.ans_probe_interval = SimTime::from_millis(50);
        c.tcp_redirect_sources.push(tcp_client);
    }

    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    world.sim.attach_obs(&obs);
    world
        .sim
        .node_mut::<RemoteGuard>(world.guard)
        .unwrap()
        .attach_obs(&obs);
    world
        .sim
        .node_ref::<AuthNode>(world.ans)
        .unwrap()
        .attach_obs(&obs);

    let lrs = |ip, mode| LrsParams {
        ip,
        mode,
        cookie_cache: true,
        concurrency: 8,
        wait: SimTime::from_millis(50),
        pace: SimTime::from_millis(2),
        per_packet_cost: SimTime::ZERO,
    };
    attach_lrs(&mut world.sim, lrs(Ipv4Addr::new(10, 0, 1, 1), CookieMode::Plain));
    attach_lrs(&mut world.sim, lrs(Ipv4Addr::new(10, 0, 2, 1), CookieMode::Extension));
    attach_lrs(&mut world.sim, lrs(tcp_client, CookieMode::Plain));
    world.sim.add_node(
        Ipv4Addr::new(66, 0, 0, 66),
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate: 20_000.0,
            sources: SourceStrategy::Random,
            payload: AttackPayload::PlainQuery("www.foo.com".parse().expect("static name")),
            duration: Some(SimTime::from_millis(600)),
        }),
    );
    world.sim.partition(
        world.guard,
        world.ans,
        SimTime::from_millis(700),
        SimTime::from_millis(1_000),
    );

    // The sampler snapshots the registry's metric set at construction, so
    // it must come after every attach above.
    let mut sampler = Sampler::new(&obs.registry);
    let cadence = SimTime::from_millis(10);
    let mut t = SimTime::ZERO;
    while t < duration {
        t = (t + cadence).min(duration);
        world.sim.run_until(t);
        sampler.sample(t.as_nanos());
    }

    let (events, dropped) = obs.tracer.drain();
    let mut kind_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for e in &events {
        *kind_counts.entry(e.kind).or_default() += 1;
    }

    let snapshot_json = format!(
        "{{\"experiment\":\"obs_export\",\"seed\":{seed},\"duration_nanos\":{},\
         \"trace\":{{\"events\":{},\"dropped\":{dropped}}},\
         \"snapshot\":{},\"timeseries\":{}}}",
        duration.as_nanos(),
        events.len(),
        metrics_json(&obs.registry.snapshot()),
        sampler.series_json(),
    );
    ObsRun {
        snapshot_json,
        trace_jsonl: events_jsonl(&events),
        events: events.len(),
        dropped,
        kind_counts,
    }
}

/// Runs the scenario with the default seed/duration and writes
/// `BENCH_obs.json` and `BENCH_obs_trace.jsonl` under `dir`. Returns the
/// run plus the two paths.
pub fn export_to(dir: &Path) -> std::io::Result<(ObsRun, PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_scenario(2006, SimTime::from_millis(1_400));
    let snapshot = dir.join("BENCH_obs.json");
    let trace = dir.join("BENCH_obs_trace.jsonl");
    std::fs::write(&snapshot, &run.snapshot_json)?;
    std::fs::write(&trace, &run.trace_jsonl)?;
    Ok((run, snapshot, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::{validate_json, validate_jsonl};

    #[test]
    fn scenario_covers_every_decision_kind_and_exports_valid_json() {
        let run = run_scenario(2006, SimTime::from_millis(1_400));
        assert_eq!(
            run.missing_kinds(),
            Vec::<&str>::new(),
            "kinds seen: {:?}",
            run.kind_counts
        );
        validate_json(&run.snapshot_json)
            .unwrap_or_else(|off| panic!("BENCH_obs.json invalid at byte {off}"));
        validate_jsonl(&run.trace_jsonl)
            .unwrap_or_else(|(ln, off)| panic!("trace invalid at line {ln}, byte {off}"));
        for key in [
            "\"component\":\"guard\"",
            "\"component\":\"netsim\"",
            "\"component\":\"authoritative\"",
            "\"timeseries\"",
        ] {
            assert!(run.snapshot_json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn trace_is_in_sim_time_order() {
        let run = run_scenario(7, SimTime::from_millis(1_400));
        let mut last = 0u64;
        for line in run.trace_jsonl.lines() {
            let t: u64 = line
                .strip_prefix("{\"t\":")
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse().ok())
                .expect("every line starts with a numeric t");
            assert!(t >= last, "events out of sim-time order: {t} after {last}");
            last = t;
        }
        assert!(run.events > 0);
    }
}
