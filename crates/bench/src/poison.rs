//! The cache-poisoning experiment behind `BENCH_poison.json`: a measured
//! success-probability table for the off-path adversary suite against
//! each unilateral resolver defense.
//!
//! Four legs:
//!
//! 1. **Kaminsky table** — attacker bandwidth × defense combination, each
//!    cell `races` independent forced-miss races against a fresh resolver.
//!    Measured success probability is compared against the analytic
//!    birthday model `p = casing × (1 − (1 − 1/(65536·ports))^G)` with
//!    `G = rate × window` guesses (capped at the anomaly-gate threshold
//!    when the gate is on). The undefended cell must reach `p ≥ 0.5` at
//!    the top bandwidth; every hardened cell must record zero wins; the
//!    full stack must blank the attack at every swept bandwidth.
//! 2. **Port derandomization** — the same race against sequential
//!    ephemeral ports, with the attacker probing its own delegated zone
//!    to read the current port: succeeds like the fixed-port case. The
//!    keyed-random pool defeats the same attacker.
//! 3. **Fragmentation** — an oversized RRset fragments on the victim
//!    path and a planted second fragment splices an attacker record into
//!    the reassembled answer: poisons the undefended resolver with *zero*
//!    guesses; `reject_fragmented` forces TCP and blanks it.
//! 4. **Clean baseline** — ordinary resolution with telemetry attached:
//!    the `cache_poisoning` alert must stay silent (and must fire during
//!    the undefended attack cell).
//!
//! Run via `cargo run --release -p bench --bin all_experiments --
//! --poison-only`; the document lands in `BENCH_poison.json`.

use attack::poison::{
    craft_evil_tail, miss_name, target_name, DerandConfig, FragPoisonConfig, FragPoisoner,
    KaminskyAttack, KaminskyConfig, PortDerandomizer, PortKnowledge,
};
use dnswire::message::Message;
use dnswire::name::Name;
use dnswire::rdata::RData;
use dnswire::types::RrType;
use netsim::engine::{CpuConfig, FragSub, Simulator};
use netsim::time::SimTime;
use netsim::NodeId;
use obs::alert::{AlertConfig, AlertEngine};
use obs::trace::Level;
use obs::Obs;
use server::authoritative::Authority;
use server::hardening::{PortMode, ResolverHardening};
use server::nodes::AuthNode;
use server::recursive::{RecursiveResolver, ResolverConfig};
use server::zone::{Zone, ZoneBuilder};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Trace kinds the poisoning experiment exercises end to end — the
/// resolver-hardening and fragmentation-fault telemetry contract
/// (guardlint L5 checks each has an emit site).
pub const POISON_KINDS: &[&str] = &[
    "poison_attempt",
    "poison_success",
    "anomaly_gate",
    "bailiwick_drop",
    "frag_rejected",
    "fragmented",
    "frag_substituted",
];

const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
const ROOT_NS: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const VICTIM_NS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
const ATTACKER: Ipv4Addr = Ipv4Addr::new(66, 0, 0, 1);
const EVIL: Ipv4Addr = Ipv4Addr::new(66, 66, 66, 66);
const WWW: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 80);

/// MTU of the fragmentation leg's victim path.
const FRAG_MTU: usize = 300;

/// A records in the oversized RRset (response ≈ 430 bytes > [`FRAG_MTU`]).
const BIG_RRSET: u8 = 24;

/// Sweep parameters. [`PoisonParams::full`] is the exported experiment;
/// [`PoisonParams::quick`] keeps the in-crate test affordable in debug.
#[derive(Debug, Clone)]
pub struct PoisonParams {
    /// Base RNG seed (each cell derives its own).
    pub seed: u64,
    /// Races per table cell.
    pub races: u32,
    /// Race window — the authoritative round trip the attacker races.
    pub window: SimTime,
    /// Attacker bandwidths (forged responses per second).
    pub rates: Vec<f64>,
}

impl PoisonParams {
    /// The exported sweep: the paper-scale 250 ms authoritative RTT with
    /// a 400 K pkt/s top-end attacker (G = 100 K guesses → p ≈ 0.78).
    pub fn full() -> Self {
        PoisonParams {
            seed: 2007,
            races: 12,
            window: SimTime::from_millis(250),
            rates: vec![50_000.0, 400_000.0],
        }
    }

    /// Compressed profile for debug-mode tests: same G ≈ 48 K guesses
    /// squeezed into a 40 ms window.
    pub fn quick() -> Self {
        PoisonParams {
            seed: 2007,
            races: 6,
            window: SimTime::from_millis(40),
            rates: vec![1_200_000.0],
        }
    }
}

/// The defense combinations swept by the Kaminsky table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// Fixed port 53, nothing else — the classic vulnerable resolver.
    None,
    /// Keyed-random source ports over a 16384-port pool.
    RandomPorts,
    /// 0x20 case randomization with case-sensitive echo check.
    Case0x20,
    /// Duplicate-response anomaly gate (abandon race → TCP) at 8.
    AnomalyGate,
    /// Ports + 0x20 + gate + bailiwick + fragment rejection.
    Full,
}

impl Defense {
    /// All swept combinations, in table order.
    pub const ALL: [Defense; 5] = [
        Defense::None,
        Defense::RandomPorts,
        Defense::Case0x20,
        Defense::AnomalyGate,
        Defense::Full,
    ];

    /// The JSON / report label.
    pub fn label(self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::RandomPorts => "random_ports",
            Defense::Case0x20 => "case_0x20",
            Defense::AnomalyGate => "anomaly_gate",
            Defense::Full => "full_stack",
        }
    }

    fn hardening(self) -> ResolverHardening {
        match self {
            Defense::None => ResolverHardening::default(),
            Defense::RandomPorts => ResolverHardening {
                port_mode: PortMode::Randomized { base: 32768, range: 16384 },
                ..ResolverHardening::default()
            },
            Defense::Case0x20 => ResolverHardening {
                case_randomization: true,
                ..ResolverHardening::default()
            },
            Defense::AnomalyGate => ResolverHardening {
                anomaly_gate: Some(8),
                ..ResolverHardening::default()
            },
            Defense::Full => ResolverHardening::full(),
        }
    }

    /// What the off-path attacker knows about ports under this defense.
    fn attacker_ports(self) -> PortKnowledge {
        match self.hardening().port_mode {
            PortMode::Fixed => PortKnowledge::Exact(53),
            PortMode::Sequential { base } => PortKnowledge::Exact(base),
            PortMode::Randomized { base, range } => PortKnowledge::Range { base, range },
        }
    }

    /// Analytic per-race success probability for `guesses` txid draws
    /// with replacement: the birthday model, scaled by the port pool and
    /// the all-lowercase 0x20 coin draw, capped at the gate threshold.
    pub fn predicted_p(self, guesses: f64, letters: u32) -> f64 {
        let h = self.hardening();
        let ports = match h.port_mode {
            PortMode::Randomized { range, .. } => f64::from(range),
            _ => 1.0,
        };
        let g_eff = match h.anomaly_gate {
            Some(k) => guesses.min(f64::from(k)),
            None => guesses,
        };
        let per_guess = 1.0 / (65536.0 * ports);
        let base = 1.0 - (1.0 - per_guess).powf(g_eff);
        if h.case_randomization {
            base * (0.5f64).powi(letters as i32)
        } else {
            base
        }
    }
}

fn victim() -> Name {
    "victim.com".parse().expect("static zone name")
}

fn root_zone() -> Zone {
    ZoneBuilder::new(Name::root())
        .ttl(600)
        .ns("ns.root".parse().expect("static name"), ROOT_NS)
        .delegate(victim(), "ns.victim.com".parse().expect("static name"), VICTIM_NS)
        .delegate(
            "attacker.net".parse().expect("static name"),
            "ns.attacker.net".parse().expect("static name"),
            ATTACKER,
        )
        .build()
}

fn victim_zone() -> Zone {
    let mut b = ZoneBuilder::new(victim())
        .ttl(600)
        .ns("ns.victim.com".parse().expect("static name"), VICTIM_NS)
        .a("www.victim.com".parse().expect("static name"), WWW);
    for i in 0..BIG_RRSET {
        b = b.a(
            "big.victim.com".parse().expect("static name"),
            Ipv4Addr::new(192, 0, 2, 100 + i),
        );
    }
    b.build()
}

/// Root + victim NS + hardened resolver; the victim link's RTT is the
/// race window (the legitimate answer arrives exactly when the forged
/// flood stops).
fn poison_world(
    seed: u64,
    hardening: ResolverHardening,
    window: SimTime,
) -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(seed);
    let _root = sim.add_node(
        ROOT_NS,
        CpuConfig::unbounded(),
        AuthNode::new(ROOT_NS, Authority::new(vec![root_zone()])),
    );
    let victim_ns = sim.add_node(
        VICTIM_NS,
        CpuConfig::unbounded(),
        AuthNode::new(VICTIM_NS, Authority::new(vec![victim_zone()])),
    );
    let mut cfg = ResolverConfig::new(RESOLVER, vec![ROOT_NS]);
    cfg.timeout = window * 4;
    cfg.hardening = hardening;
    let lrs = sim.add_node(RESOLVER, CpuConfig::unbounded(), RecursiveResolver::new(cfg));
    sim.connect_rtt(victim_ns, lrs, window * 2);
    (sim, lrs, victim_ns)
}

/// One Kaminsky table cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Defense label.
    pub defense: &'static str,
    /// Attacker bandwidth (forged responses per second).
    pub rate: f64,
    /// Races run.
    pub races: u32,
    /// Races whose poison target entered the cache.
    pub wins: u32,
    /// `wins / races`.
    pub measured_p: f64,
    /// The analytic birthday-model prediction for one race.
    pub predicted_p: f64,
    /// Forged responses the attacker emitted.
    pub forged: u64,
    /// Wrong-response mismatches the resolver registered.
    pub poison_attempts: u64,
    /// Times the anomaly gate abandoned a race.
    pub gate_trips: u64,
    /// Whether the per-node `cache_poisoning` alert fired during the cell.
    pub alert_fired: bool,
}

/// Letters (not digits/dots) in the race qname — each is one 0x20 coin.
fn qname_letters(zone: &Name, race: u32) -> u32 {
    let name = miss_name(zone, race);
    name.to_string().bytes().filter(u8::is_ascii_alphabetic).count() as u32
}

fn kaminsky_cell(seed: u64, defense: Defense, rate: f64, params: &PoisonParams) -> CellOutcome {
    let (mut sim, lrs, _) = poison_world(seed, defense.hardening(), params.window);
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    sim.node_mut::<RecursiveResolver>(lrs)
        .expect("resolver node")
        .attach_obs(&obs);
    let mut engine = AlertEngine::new(AlertConfig::default());
    engine.attach_obs(&obs);

    let arm_delay = SimTime::from_micros(500);
    // One race per period, with slack for the gate's TCP re-queries.
    let period = params.window * 2 + SimTime::from_millis(10);
    let atk = sim.add_node(
        ATTACKER,
        CpuConfig::unbounded(),
        KaminskyAttack::new(KaminskyConfig {
            attacker: ATTACKER,
            resolver: RESOLVER,
            spoof_server: VICTIM_NS,
            victim_zone: victim(),
            evil: EVIL,
            forge_rate: rate,
            races: params.races,
            race_period: period,
            arm_delay,
            window: params.window,
            ports: defense.attacker_ports(),
        }),
    );
    let horizon = period * u64::from(params.races) + params.window * 2;
    let mut ms = 0u64;
    while ms * 1_000_000 < horizon.as_nanos() {
        ms += 100;
        sim.run_until(SimTime::from_millis(ms));
        engine.evaluate(sim.now().as_nanos(), &obs.registry.snapshot());
    }

    let forged = sim.node_ref::<KaminskyAttack>(atk).expect("attacker node").forged_sent();
    let now = sim.now();
    let zone = victim();
    let resolver = sim.node_mut::<RecursiveResolver>(lrs).expect("resolver node");
    let wins = (0..params.races)
        .filter(|&r| resolver.poison_check(now, &target_name(&zone, r), RrType::A, &[]))
        .count() as u32;
    let stats = resolver.stats();
    let guesses = rate * params.window.as_secs_f64();
    CellOutcome {
        defense: defense.label(),
        rate,
        races: params.races,
        wins,
        measured_p: f64::from(wins) / f64::from(params.races),
        predicted_p: defense.predicted_p(guesses, qname_letters(&zone, 0)),
        forged,
        poison_attempts: stats.poison_attempts,
        gate_trips: stats.gate_trips,
        alert_fired: engine.fired_rules().contains(&"cache_poisoning"),
    }
}

/// Outcome of the port-derandomization leg.
#[derive(Debug, Clone)]
pub struct DerandOutcome {
    /// Probe-then-race rounds against the sequential allocator.
    pub races: u32,
    /// Wins against sequential ports (must behave like fixed-port).
    pub sequential_wins: u32,
    /// Wins by the same attacker against the keyed-random pool.
    pub randomized_wins: u32,
    /// Ports the sequential resolver revealed to the attacker's probes.
    pub probes_answered: u64,
}

fn derand_leg(seed: u64, params: &PoisonParams) -> DerandOutcome {
    let races = params.races.min(6);
    let rate = params.rates.iter().copied().fold(0.0f64, f64::max);
    let run = |hardening: ResolverHardening| -> (u32, u64) {
        let (mut sim, lrs, _) = poison_world(seed, hardening, params.window);
        let period = params.window * 2 + SimTime::from_millis(10);
        let atk = sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            PortDerandomizer::new(DerandConfig {
                attacker: ATTACKER,
                probe_zone: "attacker.net".parse().expect("static name"),
                resolver: RESOLVER,
                spoof_server: VICTIM_NS,
                victim_zone: victim(),
                evil: EVIL,
                forge_rate: rate,
                races,
                race_period: period,
                window: params.window,
                port_step: 1,
            }),
        );
        sim.run_until(period * u64::from(races + 1) + params.window * 2);
        let probes = sim.node_ref::<PortDerandomizer>(atk).expect("attacker node").probes_seen;
        let now = sim.now();
        let zone = victim();
        let resolver = sim.node_mut::<RecursiveResolver>(lrs).expect("resolver node");
        let wins = (0..races)
            .filter(|&r| resolver.poison_check(now, &target_name(&zone, r), RrType::A, &[]))
            .count() as u32;
        (wins, probes)
    };
    let sequential = ResolverHardening {
        port_mode: PortMode::Sequential { base: 40_000 },
        ..ResolverHardening::default()
    };
    let randomized = ResolverHardening {
        port_mode: PortMode::Randomized { base: 32768, range: 16384 },
        ..ResolverHardening::default()
    };
    let (sequential_wins, probes_answered) = run(sequential);
    let (randomized_wins, _) = run(randomized);
    DerandOutcome { races, sequential_wins, randomized_wins, probes_answered }
}

/// Outcome of the fragmentation leg.
#[derive(Debug, Clone)]
pub struct FragOutcome {
    /// Whether the planted second fragment poisoned the stock resolver.
    pub undefended_poisoned: bool,
    /// Whether it poisoned the `reject_fragmented` resolver.
    pub hardened_poisoned: bool,
    /// Datagrams the network marked as reassembled-from-fragments.
    pub fragmented: u64,
    /// Planted tails actually spliced in.
    pub substituted: u64,
    /// Reassembled answers the hardened resolver discarded.
    pub frag_rejected: u64,
    /// TCP re-queries the hardened resolver issued.
    pub tcp_fallbacks: u64,
}

/// The exact wire the victim's server emits for the oversized query; the
/// bytes past [`FRAG_MTU`] are txid-independent, which is what makes the
/// attack work without guessing.
fn big_response_wire() -> Vec<u8> {
    let q = Message::iterative_query(0, "big.victim.com".parse().expect("static name"), RrType::A);
    let (resp, _) = Authority::new(vec![victim_zone()]).answer(&q);
    resp.encode()
}

fn frag_leg(seed: u64) -> FragOutcome {
    let legit: Vec<RData> = (0..BIG_RRSET)
        .map(|i| RData::A(Ipv4Addr::new(192, 0, 2, 100 + i)))
        .collect();
    let run = |hardening: ResolverHardening| -> (bool, u64, u64, u64, u64) {
        let (mut sim, lrs, victim_ns) = poison_world(seed, hardening, SimTime::from_millis(4));
        sim.set_link_mtu(victim_ns, lrs, FRAG_MTU);
        sim.plant_fragment(
            lrs,
            FragSub {
                src: VICTIM_NS,
                offset: FRAG_MTU,
                payload: craft_evil_tail(&big_response_wire(), FRAG_MTU, EVIL),
            },
        );
        sim.add_node(
            ATTACKER,
            CpuConfig::unbounded(),
            FragPoisoner::new(FragPoisonConfig {
                attacker: ATTACKER,
                resolver: RESOLVER,
                qname: "big.victim.com".parse().expect("static name"),
                trials: 2,
                trial_period: SimTime::from_millis(60),
            }),
        );
        sim.run_until(SimTime::from_millis(200));
        let faults = sim.fault_stats();
        let now = sim.now();
        let resolver = sim.node_mut::<RecursiveResolver>(lrs).expect("resolver node");
        let stats = resolver.stats();
        let poisoned = resolver.poison_check(
            now,
            &"big.victim.com".parse().expect("static name"),
            RrType::A,
            &legit,
        );
        (poisoned, faults.fragmented, faults.frag_substituted, stats.frag_rejected, stats.tcp_fallbacks)
    };
    let (undefended_poisoned, fragmented, substituted, _, _) =
        run(ResolverHardening::default());
    let hardened = ResolverHardening {
        reject_fragmented: true,
        ..ResolverHardening::default()
    };
    let (hardened_poisoned, _, _, frag_rejected, tcp_fallbacks) = run(hardened);
    FragOutcome {
        undefended_poisoned,
        hardened_poisoned,
        fragmented,
        substituted,
        frag_rejected,
        tcp_fallbacks,
    }
}

/// Clean-baseline leg: ordinary resolution with the alert engine
/// attached; returns every rule that fired (must be none).
fn baseline_leg(seed: u64) -> Vec<&'static str> {
    let (mut sim, lrs, _) = poison_world(seed, ResolverHardening::full(), SimTime::from_millis(4));
    let obs = Obs::new();
    obs.tracer.set_default_level(Level::Info);
    sim.node_mut::<RecursiveResolver>(lrs)
        .expect("resolver node")
        .attach_obs(&obs);
    let mut engine = AlertEngine::new(AlertConfig::default());
    engine.attach_obs(&obs);
    // An ordinary client re-querying popular names — misses, then hits.
    sim.add_node(
        Ipv4Addr::new(10, 0, 0, 1),
        CpuConfig::unbounded(),
        FragPoisoner::new(FragPoisonConfig {
            attacker: Ipv4Addr::new(10, 0, 0, 1),
            resolver: RESOLVER,
            qname: "www.victim.com".parse().expect("static name"),
            trials: 8,
            trial_period: SimTime::from_millis(40),
        }),
    );
    let mut ms = 0u64;
    while ms < 500 {
        ms += 100;
        sim.run_until(SimTime::from_millis(ms));
        engine.evaluate(sim.now().as_nanos(), &obs.registry.snapshot());
    }
    engine.fired_rules()
}

/// The full experiment.
pub struct PoisonRun {
    /// The composed `BENCH_poison.json` document.
    pub summary_json: String,
    /// The Kaminsky success-probability table.
    pub cells: Vec<CellOutcome>,
    /// The port-derandomization leg.
    pub derand: DerandOutcome,
    /// The fragmentation leg.
    pub frag: FragOutcome,
    /// Rules the clean baseline fired (must be empty).
    pub baseline_fired: Vec<&'static str>,
    /// Whether every acceptance criterion held.
    pub table_ok: bool,
}

fn cell_json(c: &CellOutcome) -> String {
    format!(
        "{{\"defense\":\"{}\",\"rate\":{:.0},\"races\":{},\"wins\":{},\
         \"measured_p\":{:.4},\"predicted_p\":{:.6},\"forged\":{},\
         \"poison_attempts\":{},\"gate_trips\":{},\"alert_fired\":{}}}",
        c.defense,
        c.rate,
        c.races,
        c.wins,
        c.measured_p,
        c.predicted_p,
        c.forged,
        c.poison_attempts,
        c.gate_trips,
        c.alert_fired,
    )
}

/// Runs the sweep and composes the export document.
pub fn run_all(params: &PoisonParams) -> PoisonRun {
    let mut cells = Vec::new();
    let mut seed = params.seed;
    for &rate in &params.rates {
        for defense in Defense::ALL {
            seed += 1;
            cells.push(kaminsky_cell(seed, defense, rate, params));
        }
    }
    let derand = derand_leg(params.seed + 100, params);
    let frag = frag_leg(params.seed + 200);
    let baseline_fired = baseline_leg(params.seed + 300);

    let top_rate = params.rates.iter().copied().fold(0.0f64, f64::max);
    let undefended_top = cells
        .iter()
        .find(|c| c.defense == "none" && c.rate == top_rate)
        .expect("table has the undefended top-rate cell");
    // The statistical bar: measured probability within a generous
    // binomial band of the birthday model, and ≥ 0.5 as the paper-scale
    // attack promises; single defenses and the full stack blank the
    // table; the derand/frag legs behave per their designs.
    let sigma =
        (undefended_top.predicted_p * (1.0 - undefended_top.predicted_p) / f64::from(undefended_top.races))
            .sqrt();
    let band = 4.0 * sigma + 0.05;
    let table_ok = undefended_top.measured_p >= 0.5
        && (undefended_top.measured_p - undefended_top.predicted_p).abs() <= band
        && undefended_top.alert_fired
        && cells.iter().filter(|c| c.defense != "none").all(|c| c.wins == 0)
        && cells.iter().filter(|c| c.defense == "full_stack").all(|c| c.wins == 0)
        && derand.sequential_wins >= 1
        && derand.randomized_wins == 0
        && frag.undefended_poisoned
        && !frag.hardened_poisoned
        && baseline_fired.is_empty();

    let mut table = String::from("[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            table.push(',');
        }
        table.push_str(&cell_json(c));
    }
    table.push(']');
    let mut baseline = String::from("[");
    for (i, r) in baseline_fired.iter().enumerate() {
        if i > 0 {
            baseline.push(',');
        }
        baseline.push_str(&format!("\"{r}\""));
    }
    baseline.push(']');
    let summary_json = format!(
        "{{\"experiment\":\"poison\",\"seed\":{},\"races\":{},\"window_ms\":{},\
         \"table\":{table},\
         \"derand\":{{\"races\":{},\"sequential_wins\":{},\"randomized_wins\":{},\
         \"probes_answered\":{}}},\
         \"frag\":{{\"undefended_poisoned\":{},\"hardened_poisoned\":{},\
         \"fragmented\":{},\"substituted\":{},\"frag_rejected\":{},\"tcp_fallbacks\":{}}},\
         \"baseline_fired\":{baseline},\"table_ok\":{table_ok}}}",
        params.seed,
        params.races,
        params.window.as_nanos() / 1_000_000,
        derand.races,
        derand.sequential_wins,
        derand.randomized_wins,
        derand.probes_answered,
        frag.undefended_poisoned,
        frag.hardened_poisoned,
        frag.fragmented,
        frag.substituted,
        frag.frag_rejected,
        frag.tcp_fallbacks,
    );
    PoisonRun { summary_json, cells, derand, frag, baseline_fired, table_ok }
}

/// Runs the full-scale sweep and writes `BENCH_poison.json` under `dir`.
pub fn export_to(dir: &Path) -> std::io::Result<(PoisonRun, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run = run_all(&PoisonParams::full());
    let summary = dir.join("BENCH_poison.json");
    std::fs::write(&summary, &run.summary_json)?;
    Ok((run, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::export::validate_json;

    #[test]
    fn poison_table_meets_the_acceptance_bar_quick_profile() {
        let run = run_all(&PoisonParams::quick());
        let top = run
            .cells
            .iter()
            .find(|c| c.defense == "none")
            .expect("undefended cell present");
        assert!(
            top.measured_p >= 0.5,
            "undefended Kaminsky must win most races: p = {:.3} ({} wins / {} races, \
             predicted {:.3})",
            top.measured_p,
            top.wins,
            top.races,
            top.predicted_p
        );
        assert!(top.alert_fired, "the guessing race must trip cache_poisoning");
        for c in &run.cells {
            if c.defense != "none" {
                assert_eq!(
                    c.wins, 0,
                    "{} at {:.0}/s must blank the attack (predicted p {:.2e})",
                    c.defense, c.rate, c.predicted_p
                );
            }
        }
        assert!(
            run.derand.sequential_wins >= 1,
            "derandomized sequential ports must lose like fixed-port: {:?}",
            run.derand
        );
        assert_eq!(run.derand.randomized_wins, 0, "keyed ports defeat the prober");
        assert!(run.frag.undefended_poisoned, "planted fragment needs no guesses");
        assert!(!run.frag.hardened_poisoned, "reject_fragmented blanks the splice");
        assert!(run.frag.frag_rejected >= 1 && run.frag.tcp_fallbacks >= 1);
        assert!(
            run.baseline_fired.is_empty(),
            "clean baseline raised {:?}",
            run.baseline_fired
        );
        assert!(run.table_ok);
        validate_json(&run.summary_json)
            .unwrap_or_else(|off| panic!("BENCH_poison.json invalid at byte {off}"));
        assert!(run.summary_json.contains("\"experiment\":\"poison\""));
        assert!(run.summary_json.contains("\"table_ok\":true"));
    }

    #[test]
    fn predicted_probability_tracks_the_birthday_model() {
        // 50 K guesses at 1/65536 each: 1 - (1-1/65536)^50000 ≈ 0.5336.
        let p = Defense::None.predicted_p(50_000.0, 13);
        assert!((p - 0.5336).abs() < 0.01, "undefended prediction: {p:.4}");
        // Randomized ports multiply the space by 16384.
        let p = Defense::RandomPorts.predicted_p(50_000.0, 13);
        assert!(p < 1e-4, "port-randomized prediction: {p:.2e}");
        // 0x20 scales by 2^-letters; the gate caps the guess count.
        let p = Defense::Case0x20.predicted_p(50_000.0, 13);
        assert!(p < 1e-4, "0x20 prediction: {p:.2e}");
        let p = Defense::AnomalyGate.predicted_p(50_000.0, 13);
        assert!(p < 2e-4, "gated prediction: {p:.2e}");
    }
}
