//! Plain-text table rendering for experiment output.

/// Renders an aligned text table: `header` then `rows`, columns padded to
/// the widest cell.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats requests/second as `NN.NK`.
pub fn kreq(v: f64) -> String {
    format!("{:.1}K", v / 1_000.0)
}

/// Formats milliseconds with one decimal.
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["a", "longheader"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("a      longheader"));
        assert!(lines[3].starts_with("x      1"));
    }

    #[test]
    fn formatters() {
        assert_eq!(kreq(84_200.0), "84.2K");
        assert_eq!(ms(21.04), "21.0");
        assert_eq!(pct(0.256), "26%");
    }
}
