//! Standard experiment topologies, mirroring the paper's testbed: one
//! remote DNS guard in front of one ANS, up to three LRS workload clients,
//! and an attacker.

use dnsguard::classify::AuthorityClassifier;
use dnsguard::config::{GuardConfig, SchemeMode};
use dnsguard::guard::RemoteGuard;
use netsim::engine::{CpuConfig, NodeId, Simulator};
use netsim::time::SimTime;
use server::authoritative::Authority;
use server::nodes::{AuthNode, ServerCosts};
use server::simclient::{CookieMode, LrsSimConfig, LrsSimulator};
use server::zone::paper_hierarchy;
use std::net::Ipv4Addr;

/// The guarded server's public (advertised) address.
pub const PUB: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
/// The real ANS address behind the guard.
pub const PRIV: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);
/// The guard's interceptable subnet (for `COOKIE2`).
pub const SUBNET: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 0);

/// Which zone the guarded ANS serves — selects referral vs non-referral
/// answers for `www.foo.com`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneSel {
    /// The root zone: queries for `www.foo.com` produce referrals
    /// (NS-name cookie variant).
    Root,
    /// The `foo.com` zone: queries produce terminal answers
    /// (fabricated NS name + IP variant).
    Foo,
}

/// Handles into a guarded world.
pub struct GuardedWorld {
    /// The simulator.
    pub sim: Simulator,
    /// The guard node id.
    pub guard: NodeId,
    /// The ANS node id.
    pub ans: NodeId,
}

/// Parameters for [`guarded_world`].
pub struct WorldParams {
    /// RNG seed.
    pub seed: u64,
    /// Zone selection.
    pub zone: ZoneSel,
    /// Guard scheme for cookie-less requesters.
    pub mode: SchemeMode,
    /// Guard CPU queue bound.
    pub guard_cpu: CpuConfig,
    /// ANS cost model.
    pub ans_costs: ServerCosts,
    /// ANS CPU queue bound.
    pub ans_cpu: CpuConfig,
    /// When true, both rate limiters and the TCP connection limiter are
    /// opened wide (throughput tests measure raw capacity).
    pub open_limiters: bool,
    /// Activation threshold (0 = always on, `f64::INFINITY` = never —
    /// the "protection disabled" pass-through configuration).
    pub activation_threshold: f64,
}

impl WorldParams {
    /// Defaults: root zone, DNS-based scheme, generous CPU queues, ANS
    /// simulator costs, limiters open, detection always on.
    pub fn new(seed: u64) -> Self {
        WorldParams {
            seed,
            zone: ZoneSel::Root,
            mode: SchemeMode::DnsBased,
            guard_cpu: CpuConfig {
                max_backlog: SimTime::from_millis(5),
            },
            ans_costs: ServerCosts::ans_simulator(),
            ans_cpu: CpuConfig {
                max_backlog: SimTime::from_millis(5),
            },
            open_limiters: true,
            activation_threshold: 0.0,
        }
    }
}

/// Builds the one-guard-one-ANS topology used by most experiments.
pub fn guarded_world(p: WorldParams) -> GuardedWorld {
    let (root, _, foo_com) = paper_hierarchy();
    let zone = match p.zone {
        ZoneSel::Root => root,
        ZoneSel::Foo => foo_com,
    };
    let authority = Authority::new(vec![zone]);

    let mut sim = Simulator::new(p.seed);
    let mut config = GuardConfig {
        subnet_base: SUBNET,
        ..GuardConfig::new(PUB, PRIV)
    }
    .with_mode(p.mode)
    .with_activation_threshold(p.activation_threshold);
    if p.open_limiters {
        config.rl1_global_rate = 1e12;
        config.rl1_per_source_rate = 1e12;
        config.rl2_per_source_rate = 1e12;
        config.tcp_conn_rate = 1e12;
    }
    // Experiments run deep TCP pipelines; reap only truly dead connections.
    config.tcp_conn_lifetime = SimTime::from_secs(10);

    let guard = sim.add_node(
        PUB,
        p.guard_cpu,
        RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
    );
    sim.add_subnet(SUBNET, 24, guard);
    let ans = sim.add_node(
        PRIV,
        p.ans_cpu,
        AuthNode::with_costs(PRIV, authority, p.ans_costs),
    );
    GuardedWorld { sim, guard, ans }
}

/// Builds the same topology *without* a guard: the public address routes
/// straight to the ANS (the paper's "DNS guard completely turned off").
pub fn unguarded_world(seed: u64, zone: ZoneSel, ans_costs: ServerCosts, ans_cpu: CpuConfig) -> (Simulator, NodeId) {
    let (root, _, foo_com) = paper_hierarchy();
    let zone = match zone {
        ZoneSel::Root => root,
        ZoneSel::Foo => foo_com,
    };
    let authority = Authority::new(vec![zone]);
    let mut sim = Simulator::new(seed);
    let ans = sim.add_node(PUB, ans_cpu, AuthNode::with_costs(PUB, authority, ans_costs));
    (sim, ans)
}

/// Parameters for an attached workload client.
pub struct LrsParams {
    /// Client address.
    pub ip: Ipv4Addr,
    /// Cookie transport mode.
    pub mode: CookieMode,
    /// Reuse cookies between requests (cache hit) or not (cache miss).
    pub cookie_cache: bool,
    /// Logical in-flight requests.
    pub concurrency: u32,
    /// Response wait before abandoning a request.
    pub wait: SimTime,
    /// Pause between requests on a slot (0 = closed loop).
    pub pace: SimTime,
    /// CPU charged per packet at the client.
    pub per_packet_cost: SimTime,
}

impl LrsParams {
    /// A fast closed-loop client (throughput tests).
    pub fn closed_loop(ip: Ipv4Addr, concurrency: u32) -> Self {
        LrsParams {
            ip,
            mode: CookieMode::Plain,
            cookie_cache: true,
            concurrency,
            wait: SimTime::from_millis(20),
            pace: SimTime::ZERO,
            per_packet_cost: SimTime::ZERO,
        }
    }
}

/// Attaches an [`LrsSimulator`] querying `www.foo.com` at the public
/// address.
pub fn attach_lrs(sim: &mut Simulator, p: LrsParams) -> NodeId {
    let mut config = LrsSimConfig::new(p.ip, PUB, "www.foo.com".parse().expect("static name"));
    config.mode = p.mode;
    config.cookie_cache = p.cookie_cache;
    config.concurrency = p.concurrency;
    config.wait = p.wait;
    config.pace = p.pace;
    config.per_packet_cost = p.per_packet_cost;
    sim.add_node(p.ip, CpuConfig::unbounded(), LrsSimulator::new(config))
}

/// Attaches a spoofed plain-query flood at `rate` req/s aimed at the public
/// address.
pub fn attach_flood(sim: &mut Simulator, ip: Ipv4Addr, rate: f64) -> NodeId {
    use attack::flood::{AttackPayload, FloodConfig, SourceStrategy, SpoofedFlood};
    sim.add_node(
        ip,
        CpuConfig::unbounded(),
        SpoofedFlood::new(FloodConfig {
            target: PUB,
            rate,
            sources: SourceStrategy::Random,
            payload: AttackPayload::PlainQuery("www.foo.com".parse().expect("static name")),
            duration: None,
        }),
    )
}

/// Measures a client's completed-request delta over a window, returning
/// requests/second.
pub fn measure_throughput(
    sim: &mut Simulator,
    clients: &[NodeId],
    warmup: SimTime,
    window: SimTime,
) -> f64 {
    sim.run_for(warmup);
    let before: u64 = clients
        .iter()
        .map(|&c| sim.node_ref::<LrsSimulator>(c).expect("lrs node").stats.completed)
        .sum();
    sim.run_for(window);
    let after: u64 = clients
        .iter()
        .map(|&c| sim.node_ref::<LrsSimulator>(c).expect("lrs node").stats.completed)
        .sum();
    (after - before) as f64 / window.as_secs_f64()
}
