//! Overload-adaptive admission control.
//!
//! A pressure controller with three tiers, driven by rate-limiter
//! saturation and forward-table fill (the guard's queue-depth analogue):
//!
//! * **Normal** — everything flows through the usual Figure 4 pipeline.
//! * **Surge** — every second *unverified* request is shed before it can
//!   cost a Rate-Limiter1 decision or a cookie response.
//! * **Shed** — all unverified traffic is shed.
//!
//! Cookie-verified sources are **never** shed by any tier: they already
//! proved address ownership, so dropping them would hand the attacker
//! exactly the denial it wants. They remain subject to Rate-Limiter2 as
//! usual.
//!
//! Escalation is immediate (one hot window is enough); de-escalation is
//! hysteretic — the controller steps down one tier only after
//! [`AdmissionConfig::decay_windows`] consecutive calm windows, so a flood
//! that oscillates around the threshold cannot flap the tier.

/// Pressure tiers, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureTier {
    /// No shedding.
    Normal,
    /// Shed every second unverified request.
    Surge,
    /// Shed all unverified requests.
    Shed,
}

impl PressureTier {
    /// Stable numeric form for the `admission_tier` gauge.
    pub fn as_gauge(self) -> u64 {
        match self {
            PressureTier::Normal => 0,
            PressureTier::Surge => 1,
            PressureTier::Shed => 2,
        }
    }

    /// Stable name for trace events.
    pub fn name(self) -> &'static str {
        match self {
            PressureTier::Normal => "normal",
            PressureTier::Surge => "surge",
            PressureTier::Shed => "shed",
        }
    }
}

/// Thresholds for the pressure controller. All ratios are in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// RL1 reject ratio (per window) at which the controller enters Surge.
    pub surge_reject_ratio: f64,
    /// RL1 reject ratio at which the controller enters Shed.
    pub shed_reject_ratio: f64,
    /// Forward-table fill fraction at which the controller enters Surge.
    pub surge_table_fill: f64,
    /// Forward-table fill fraction at which the controller enters Shed.
    pub shed_table_fill: f64,
    /// Minimum rate-limiter decisions per window before its reject ratio is
    /// trusted (a 1-of-2 rejection in a quiet window is noise, not surge).
    pub min_window_events: u64,
    /// Consecutive calm windows before stepping down one tier.
    pub decay_windows: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            surge_reject_ratio: 0.2,
            shed_reject_ratio: 0.5,
            surge_table_fill: 0.7,
            shed_table_fill: 0.9,
            min_window_events: 20,
            decay_windows: 2,
        }
    }
}

/// The pressure controller. The guard calls [`observe`] once per
/// housekeeping window with cumulative rate-limiter counters and the
/// current forward-table fill, then consults [`shed_unverified`] on every
/// unverified request.
///
/// [`observe`]: AdmissionController::observe
/// [`shed_unverified`]: AdmissionController::shed_unverified
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    tier: PressureTier,
    calm_windows: u32,
    last_rl1_admitted: u64,
    last_rl1_rejected: u64,
    last_rl2_admitted: u64,
    last_rl2_rejected: u64,
    surge_toggle: bool,
}

impl AdmissionController {
    /// A controller starting in `Normal`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            tier: PressureTier::Normal,
            calm_windows: 0,
            last_rl1_admitted: 0,
            last_rl1_rejected: 0,
            last_rl2_admitted: 0,
            last_rl2_rejected: 0,
            surge_toggle: false,
        }
    }

    /// Current tier.
    pub fn tier(&self) -> PressureTier {
        self.tier
    }

    /// Feeds one housekeeping window of cumulative counters plus the
    /// current table fill (`0.0..=1.0`); returns the (possibly changed)
    /// tier.
    ///
    /// RL1 saturation and table fill can escalate all the way to `Shed`.
    /// RL2 saturation — verified sources hammering the guard — caps at
    /// `Surge`: it justifies dumping unverified load to protect verified
    /// service, but full Shed on the say-so of already-verified traffic
    /// would let one cookie-holding attacker lock everyone else out of the
    /// cookie exchange forever.
    pub fn observe(
        &mut self,
        rl1_admitted: u64,
        rl1_rejected: u64,
        rl2_admitted: u64,
        rl2_rejected: u64,
        table_fill: f64,
    ) -> PressureTier {
        let rl1_ratio = self.window_ratio(
            rl1_admitted.saturating_sub(self.last_rl1_admitted),
            rl1_rejected.saturating_sub(self.last_rl1_rejected),
        );
        let rl2_ratio = self.window_ratio(
            rl2_admitted.saturating_sub(self.last_rl2_admitted),
            rl2_rejected.saturating_sub(self.last_rl2_rejected),
        );
        self.last_rl1_admitted = rl1_admitted;
        self.last_rl1_rejected = rl1_rejected;
        self.last_rl2_admitted = rl2_admitted;
        self.last_rl2_rejected = rl2_rejected;

        let c = &self.config;
        let from_rl1 = Self::grade(rl1_ratio, c.surge_reject_ratio, c.shed_reject_ratio);
        let from_fill = Self::grade(table_fill, c.surge_table_fill, c.shed_table_fill);
        let from_rl2 = Self::grade(rl2_ratio, c.surge_reject_ratio, c.shed_reject_ratio)
            .min(PressureTier::Surge);
        let target = from_rl1.max(from_fill).max(from_rl2);

        if target > self.tier {
            self.tier = target;
            self.calm_windows = 0;
        } else if target < self.tier {
            self.calm_windows += 1;
            if self.calm_windows >= self.config.decay_windows {
                self.tier = match self.tier {
                    PressureTier::Shed => PressureTier::Surge,
                    _ => PressureTier::Normal,
                };
                self.calm_windows = 0;
            }
        } else {
            self.calm_windows = 0;
        }
        self.tier
    }

    /// Whether the *next* unverified request should be shed. Mutates the
    /// Surge-tier toggle, so call exactly once per request.
    pub fn shed_unverified(&mut self) -> bool {
        match self.tier {
            PressureTier::Normal => false,
            PressureTier::Surge => {
                self.surge_toggle = !self.surge_toggle;
                self.surge_toggle
            }
            PressureTier::Shed => true,
        }
    }

    fn window_ratio(&self, admitted: u64, rejected: u64) -> f64 {
        let total = admitted + rejected;
        if total < self.config.min_window_events {
            0.0
        } else {
            rejected as f64 / total as f64
        }
    }

    fn grade(signal: f64, surge_at: f64, shed_at: f64) -> PressureTier {
        if signal >= shed_at {
            PressureTier::Shed
        } else if signal >= surge_at {
            PressureTier::Surge
        } else {
            PressureTier::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> AdmissionController {
        AdmissionController::new(AdmissionConfig::default())
    }

    #[test]
    fn starts_normal_and_sheds_nothing() {
        let mut c = ctl();
        assert_eq!(c.tier(), PressureTier::Normal);
        for _ in 0..100 {
            assert!(!c.shed_unverified());
        }
    }

    #[test]
    fn rl1_saturation_escalates_immediately() {
        let mut c = ctl();
        // 30% rejects → Surge in one window.
        assert_eq!(c.observe(70, 30, 0, 0, 0.0), PressureTier::Surge);
        // 80% rejects → straight to Shed.
        assert_eq!(c.observe(100, 180, 0, 0, 0.0), PressureTier::Shed);
        assert!(c.shed_unverified());
        assert!(c.shed_unverified(), "Shed drops every unverified request");
    }

    #[test]
    fn surge_sheds_every_other_request() {
        let mut c = ctl();
        c.observe(70, 30, 0, 0, 0.0);
        assert_eq!(c.tier(), PressureTier::Surge);
        let shed = (0..100).filter(|_| c.shed_unverified()).count();
        assert_eq!(shed, 50);
    }

    #[test]
    fn quiet_windows_are_not_trusted() {
        let mut c = ctl();
        // 1-of-2 rejected is a 50% ratio but below min_window_events.
        assert_eq!(c.observe(1, 1, 0, 0, 0.0), PressureTier::Normal);
    }

    #[test]
    fn table_fill_escalates() {
        let mut c = ctl();
        assert_eq!(c.observe(0, 0, 0, 0, 0.75), PressureTier::Surge);
        assert_eq!(c.observe(0, 0, 0, 0, 0.95), PressureTier::Shed);
    }

    #[test]
    fn rl2_saturation_caps_at_surge() {
        let mut c = ctl();
        // RL2 totally saturated, RL1 quiet: Surge, never Shed.
        assert_eq!(c.observe(0, 0, 10, 990, 0.0), PressureTier::Surge);
        assert_eq!(c.observe(0, 0, 20, 1_980, 0.0), PressureTier::Surge);
    }

    #[test]
    fn deescalation_requires_consecutive_calm_windows() {
        let mut c = ctl();
        c.observe(10, 190, 0, 0, 0.0);
        assert_eq!(c.tier(), PressureTier::Shed);
        // One calm window: still Shed (hysteresis).
        c.observe(210, 190, 0, 0, 0.0);
        assert_eq!(c.tier(), PressureTier::Shed);
        // Second calm window: step down one tier, not straight to Normal.
        c.observe(410, 190, 0, 0, 0.0);
        assert_eq!(c.tier(), PressureTier::Surge);
        // A Surge-level window in between resets the calm streak.
        c.observe(480, 220, 0, 0, 0.0);
        assert_eq!(c.tier(), PressureTier::Surge, "hot window holds the tier");
        c.observe(680, 220, 0, 0, 0.0);
        c.observe(880, 220, 0, 0, 0.0);
        assert_eq!(c.tier(), PressureTier::Normal);
    }
}
