//! Hot-path traffic analytics for the guard's per-datagram pipeline.
//!
//! When the `traffic-analytics` cargo feature is enabled,
//! [`TrafficAnalytics`] folds every datagram's source address into an
//! [`obs::sketch::TrafficSketch`] (count-min + space-saving top-K + HLL
//! cardinality + entropy) and republishes the derived population signals
//! at a fixed cadence:
//!
//! * gauges `guard.analytics_distinct`, `guard.analytics_entropy_norm_milli`
//!   and `guard.analytics_top_share_milli` — the inputs the alert engine's
//!   `spoof_flood` / `flash_crowd` discriminator reads;
//! * a shared [`AnalyticsSnapshot`] the runtime telemetry endpoint serves
//!   for its `top_sources` command;
//! * an `analytics_topk` trace event per refresh, so the trace ring
//!   carries the population history alongside the per-decision events.
//!
//! The same discipline as [`crate::stageprof`] keeps this safe on the hot
//! path: without the feature, [`TrafficAnalytics`] is a zero-sized type
//! whose methods are empty `#[inline]` bodies the optimizer erases; with
//! it, the per-datagram cost is one SipHash call plus a handful of array
//! writes (estimate *derivation* — HLL harmonic mean, entropy — only runs
//! every [`REFRESH_PERIOD`] datagrams), inside the ≤5 % budget the
//! micro-bench enforces. Everything is deterministic: no clocks (the
//! refresh timestamp is the caller's sim time), no ambient randomness
//! (guardlint L2).

#[cfg(feature = "traffic-analytics")]
use obs::metrics::Gauge;
use obs::sketch::{AnalyticsSnapshot, TrafficSketch};
#[cfg(feature = "traffic-analytics")]
use obs::trace::{ComponentTracer, Value};
use obs::Obs;
use parking_lot::Mutex;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A republishing handle for the latest derived snapshot: the guard
/// refreshes it in-place, the telemetry endpoint reads it lock-briefly.
pub type SharedAnalytics = Arc<Mutex<AnalyticsSnapshot>>;

/// Derive estimates and republish once per this many datagrams (power of
/// two): per-datagram work stays O(1) while the gauges lag the stream by
/// at most one period.
pub const REFRESH_PERIOD: u64 = 256;

/// The trace kinds this pipeline promises to emit (guardlint L5 checks
/// each has a live emit site and is observed outside this module).
pub const ANALYTICS_KINDS: &[&str] = &["analytics_topk"];

/// The live analytics pipeline (feature `traffic-analytics` on).
#[cfg(feature = "traffic-analytics")]
pub struct TrafficAnalytics {
    /// Runtime arm/disarm switch (the bench's no-observe arm; defaults on).
    enabled: bool,
    sketch: TrafficSketch,
    gauge_distinct: Gauge,
    gauge_entropy_norm_milli: Gauge,
    gauge_top_share_milli: Gauge,
    published: SharedAnalytics,
    trace: ComponentTracer,
}

#[cfg(feature = "traffic-analytics")]
impl TrafficAnalytics {
    /// An enabled, unattached pipeline (gauges detached, tracing off).
    pub fn new() -> TrafficAnalytics {
        TrafficAnalytics {
            enabled: true,
            sketch: TrafficSketch::new(),
            gauge_distinct: Gauge::new(),
            gauge_entropy_norm_milli: Gauge::new(),
            gauge_top_share_milli: Gauge::new(),
            published: Arc::new(Mutex::new(AnalyticsSnapshot::default())),
            trace: ComponentTracer::disabled(),
        }
    }

    /// Runtime switch: `false` leaves only the per-datagram branch (the
    /// micro-bench's reference arm).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Adopts the analytics gauges into `obs.registry` (component `guard`)
    /// and wires refresh trace events into component `guard`.
    pub fn adopt_into(&mut self, obs: &Obs) {
        obs.registry
            .adopt_gauge("guard", "analytics_distinct", &[], &self.gauge_distinct);
        obs.registry.adopt_gauge(
            "guard",
            "analytics_entropy_norm_milli",
            &[],
            &self.gauge_entropy_norm_milli,
        );
        obs.registry.adopt_gauge(
            "guard",
            "analytics_top_share_milli",
            &[],
            &self.gauge_top_share_milli,
        );
        self.trace = obs.tracer.component("guard");
    }

    /// Folds one datagram's source into the sketch; every
    /// [`REFRESH_PERIOD`]-th datagram also derives and republishes the
    /// estimates (`now_nanos` stamps the refresh trace event).
    #[inline]
    pub fn observe(&mut self, now_nanos: u64, src: Ipv4Addr) {
        if !self.enabled {
            return;
        }
        self.sketch.observe(src);
        if self.sketch.total() & (REFRESH_PERIOD - 1) == 0 {
            self.refresh(now_nanos);
        }
    }

    /// Derives the current estimates, updates the gauges and the shared
    /// snapshot, and emits one `analytics_topk` trace event.
    fn refresh(&mut self, now_nanos: u64) {
        let snap = self.sketch.snapshot();
        self.gauge_distinct.set(snap.distinct as u64);
        self.gauge_entropy_norm_milli.set((snap.entropy_norm * 1_000.0) as u64);
        self.gauge_top_share_milli.set((snap.top_share * 1_000.0) as u64);
        let top = snap.top.first();
        self.trace.event(
            now_nanos,
            "analytics_topk",
            &[
                ("total", Value::U64(snap.total)),
                ("distinct", Value::U64(snap.distinct as u64)),
                ("entropy_norm_milli", Value::U64((snap.entropy_norm * 1_000.0) as u64)),
                ("top_share_milli", Value::U64((snap.top_share * 1_000.0) as u64)),
                (
                    "top_src",
                    Value::Ip(Ipv4Addr::from(top.map(|e| e.ip).unwrap_or(0))),
                ),
                ("top_count", Value::U64(top.map(|e| e.count).unwrap_or(0))),
            ],
        );
        *self.published.lock() = snap;
    }

    /// A freshly derived snapshot of the cumulative sketch.
    pub fn snapshot(&self) -> AnalyticsSnapshot {
        self.sketch.snapshot()
    }

    /// A clone of the cumulative sketch — what a fleet collector merges.
    pub fn sketch(&self) -> TrafficSketch {
        self.sketch.clone()
    }

    /// The shared republished snapshot (for the telemetry `top_sources`
    /// provider). Refreshed every [`REFRESH_PERIOD`] datagrams.
    pub fn shared(&self) -> SharedAnalytics {
        self.published.clone()
    }

    /// Datagrams folded in so far.
    pub fn observed(&self) -> u64 {
        self.sketch.total()
    }
}

#[cfg(feature = "traffic-analytics")]
impl Default for TrafficAnalytics {
    fn default() -> Self {
        TrafficAnalytics::new()
    }
}

/// The compiled-out pipeline (feature `traffic-analytics` off): a
/// zero-sized type with the same API, every method an empty inline body.
#[cfg(not(feature = "traffic-analytics"))]
#[derive(Default)]
pub struct TrafficAnalytics;

#[cfg(not(feature = "traffic-analytics"))]
impl TrafficAnalytics {
    /// A no-op pipeline.
    pub fn new() -> TrafficAnalytics {
        TrafficAnalytics
    }

    /// No-op.
    pub fn set_enabled(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// No-op: no gauges exist to adopt.
    pub fn adopt_into(&mut self, obs: &Obs) {
        let _ = obs;
    }

    /// No-op.
    #[inline(always)]
    pub fn observe(&mut self, now_nanos: u64, src: Ipv4Addr) {
        let _ = (now_nanos, src);
    }

    /// An empty snapshot in a no-op build.
    pub fn snapshot(&self) -> AnalyticsSnapshot {
        AnalyticsSnapshot::default()
    }

    /// An empty sketch in a no-op build.
    pub fn sketch(&self) -> TrafficSketch {
        TrafficSketch::new()
    }

    /// A shared snapshot that stays empty forever.
    pub fn shared(&self) -> SharedAnalytics {
        Arc::new(Mutex::new(AnalyticsSnapshot::default()))
    }

    /// Always zero in a no-op build.
    pub fn observed(&self) -> u64 {
        0
    }
}

#[cfg(all(test, feature = "traffic-analytics"))]
mod tests {
    use super::*;
    use obs::trace::Level;

    #[test]
    fn gauges_and_shared_snapshot_refresh_on_period() {
        let obs = Obs::new();
        obs.tracer.set_default_level(Level::Info);
        let mut a = TrafficAnalytics::new();
        a.adopt_into(&obs);
        let shared = a.shared();

        // One refresh period of a single chatty source.
        for i in 0..REFRESH_PERIOD {
            a.observe(i * 1_000, Ipv4Addr::new(10, 0, 0, 1));
        }
        assert_eq!(a.observed(), REFRESH_PERIOD);
        let snap = shared.lock().clone();
        assert_eq!(snap.total, REFRESH_PERIOD);
        assert_eq!(snap.top[0].ip, u32::from(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(snap.top_share > 0.99, "single source owns the stream");
        // The refresh landed in the registry and the trace ring.
        let samples = obs.registry.snapshot();
        let distinct = samples
            .iter()
            .find(|s| s.name == "analytics_distinct")
            .expect("gauge adopted");
        assert!(matches!(distinct.value, obs::metrics::SampleValue::Gauge(1)));
        let (events, _) = obs.tracer.drain();
        assert_eq!(events.iter().filter(|e| e.kind == "analytics_topk").count(), 1);
    }

    #[test]
    fn disabled_pipeline_observes_nothing() {
        let mut a = TrafficAnalytics::new();
        a.set_enabled(false);
        for _ in 0..1_000 {
            a.observe(0, Ipv4Addr::new(10, 0, 0, 1));
        }
        assert_eq!(a.observed(), 0);
        assert_eq!(a.snapshot().total, 0);
    }
}
