//! Versioned, serializable snapshots of guard state.
//!
//! A [`GuardCheckpoint`] captures everything a guard needs to resume
//! spoof-detection service after a crash without forcing verified sources
//! through a fresh cookie exchange: the secret-key state (current and
//! previous key plus the generation counter, so pre-rotation cookies keep
//! verifying through the generation bit), both rate limiters' token
//! buckets, and the forward/stash tables.
//!
//! Restore applies explicit **staleness rules** rather than replaying the
//! snapshot blindly:
//!
//! * forwarding entries past their ANS-timeout deadline are dropped, never
//!   replayed (a response that raced the crash is already unanswerable);
//! * stash entries past the one-shot TTL are dropped;
//! * TCP relays and liveness probes are not checkpointed at all — proxied
//!   connections die with the process and probes are re-issued;
//! * rate-limiter *counters* (admitted/rejected metrics) restart at zero;
//!   only the bucket fill levels carry over.
//!
//! The wire encoding is a small hand-rolled binary format with a magic +
//! version header ([`CHECKPOINT_VERSION`]); DNS names, questions and record
//! sets are carried as embedded DNS messages so the existing wire codec does
//! the heavy lifting. The same encoding rides the primary→standby
//! replication channel (see [`crate::ha`]).

use dnswire::message::Message;
use dnswire::name::Name;
use dnswire::question::Question;
use dnswire::record::Record;
use dnswire::types::RrType;
use guardhash::cookie::{CookieFactory, SecretKey, KEY_LEN};
use netsim::time::SimTime;
use guardcheck::sync::Mutex;
use netsim::tokenbucket::TokenBucketState;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Leading magic of an encoded checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GCKP";

/// Current encoding version. Decoders reject anything else — a stale
/// standby must resync rather than misparse.
pub const CHECKPOINT_VERSION: u32 = 1;

/// How long a stashed one-shot answer stays servable (mirrors the guard's
/// housekeeping sweep).
pub const STASH_TTL: SimTime = SimTime::from_secs(2);

/// Secret-key state: both live keys and the generation counter, so the
/// generation-bit dispatch survives a restore exactly.
#[derive(Clone, PartialEq)]
pub struct KeyState {
    /// The current signing key.
    pub current: SecretKey,
    /// The previous key, when a rotation grace window is live.
    pub previous: Option<SecretKey>,
    /// Rotation generation (its parity is the cookie generation bit).
    pub generation: u64,
    /// Seed future rotations derive from.
    pub seed: u64,
}

impl fmt::Debug for KeyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Key material stays out of logs; SecretKey redacts itself too.
        f.debug_struct("KeyState")
            .field("generation", &self.generation)
            .field("has_previous", &self.previous.is_some())
            .finish()
    }
}

impl KeyState {
    /// Captures the state of a live factory.
    pub fn capture(f: &CookieFactory) -> Self {
        KeyState {
            current: f.current_key().clone(),
            previous: f.previous_key().cloned(),
            generation: f.generation(),
            seed: f.rotation_seed(),
        }
    }

    /// Rebuilds a factory with identical verification behaviour.
    pub fn to_factory(&self) -> CookieFactory {
        CookieFactory::from_parts(
            self.current.clone(),
            self.previous.clone(),
            self.generation,
            self.seed,
        )
    }
}

/// A rate limiter's serializable face: the global bucket (if any) and every
/// tracked per-source bucket, sorted by source address for a deterministic
/// encoding.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LimiterState {
    /// Global budget bucket, `None` for per-source-only limiters.
    pub global: Option<TokenBucketState>,
    /// Per-source buckets, ascending by address.
    pub per_source: Vec<(Ipv4Addr, TokenBucketState)>,
}

/// The serializable subset of a forward-table rewrite. TCP relays and
/// probes are deliberately unrepresentable: they must not survive a
/// restart.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteState {
    /// Relay the ANS response as-is.
    Passthrough,
    /// DNS-based referral: re-answer the cookie-name question with glue.
    ReferralCookie {
        /// The cookie-label question the requester asked.
        cookie_question: Question,
    },
    /// DNS-based non-referral: stash the answer, reply `COOKIE2`.
    Fabricated {
        /// The cookie-label question the requester asked.
        cookie_question: Question,
        /// The restored original name.
        original: Name,
    },
}

/// One in-flight forwarded request.
#[derive(Debug, Clone, PartialEq)]
pub struct FwdState {
    /// Upstream transaction id (the forward-table key).
    pub txid: u16,
    /// Who asked.
    pub requester: (Ipv4Addr, u16),
    /// The guard-side address the reply must come from.
    pub reply_from: (Ipv4Addr, u16),
    /// The requester's original transaction id.
    pub orig_txid: u16,
    /// How to rewrite the ANS response.
    pub rewrite: RewriteState,
    /// Creation sim-time, nanoseconds (drives the staleness rule).
    pub created_nanos: u64,
    /// Journey correlation id.
    pub qid: u64,
}

/// One stashed one-shot answer.
#[derive(Debug, Clone, PartialEq)]
pub struct StashState {
    /// The verified source the answer is held for.
    pub src: Ipv4Addr,
    /// The original query name.
    pub name: Name,
    /// The stashed answer records.
    pub answers: Vec<Record>,
    /// Creation sim-time, nanoseconds.
    pub created_nanos: u64,
}

/// A complete, versioned snapshot of guard state.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardCheckpoint {
    /// Encoding version ([`CHECKPOINT_VERSION`] when produced here).
    pub version: u32,
    /// Monotonic checkpoint sequence number.
    pub seq: u64,
    /// When the snapshot was taken, sim nanoseconds.
    pub taken_at_nanos: u64,
    /// Secret-key state.
    pub key: KeyState,
    /// Rate-Limiter1 bucket state.
    pub rl1: LimiterState,
    /// Rate-Limiter2 bucket state.
    pub rl2: LimiterState,
    /// Next upstream transaction id.
    pub next_txid: u16,
    /// Next journey correlation id.
    pub next_qid: u64,
    /// Whether spoof detection was engaged.
    pub active: bool,
    /// Last scheduled key rotation, sim nanoseconds.
    pub last_rotation_nanos: u64,
    /// Live forward-table entries (probes/TCP relays excluded).
    pub fwd: Vec<FwdState>,
    /// Live stash entries.
    pub stash: Vec<StashState>,
}

impl GuardCheckpoint {
    /// Snapshot age relative to `now`.
    pub fn age(&self, now: SimTime) -> SimTime {
        now.saturating_sub(SimTime::from_nanos(self.taken_at_nanos))
    }

    /// Serializes to the versioned binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(512);
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut buf, self.version);
        put_u64(&mut buf, self.seq);
        put_u64(&mut buf, self.taken_at_nanos);
        put_key(&mut buf, &self.key);
        put_limiter(&mut buf, &self.rl1);
        put_limiter(&mut buf, &self.rl2);
        put_u16(&mut buf, self.next_txid);
        put_u64(&mut buf, self.next_qid);
        buf.push(self.active as u8);
        put_u64(&mut buf, self.last_rotation_nanos);
        put_u32(&mut buf, self.fwd.len() as u32);
        for f in &self.fwd {
            put_fwd(&mut buf, f);
        }
        put_u32(&mut buf, self.stash.len() as u32);
        for s in &self.stash {
            put_stash(&mut buf, s);
        }
        buf
    }

    /// Parses the versioned binary form.
    pub fn decode(bytes: &[u8]) -> Result<GuardCheckpoint, DecodeError> {
        let mut r = Reader::new(bytes);
        if r.bytes(4)? != CHECKPOINT_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let seq = r.u64()?;
        let taken_at_nanos = r.u64()?;
        let key = get_key(&mut r)?;
        let rl1 = get_limiter(&mut r)?;
        let rl2 = get_limiter(&mut r)?;
        let next_txid = r.u16()?;
        let next_qid = r.u64()?;
        let active = r.u8()? != 0;
        let last_rotation_nanos = r.u64()?;
        let fwd_len = r.u32()? as usize;
        let mut fwd = Vec::with_capacity(fwd_len.min(4_096));
        for _ in 0..fwd_len {
            fwd.push(get_fwd(&mut r)?);
        }
        let stash_len = r.u32()? as usize;
        let mut stash = Vec::with_capacity(stash_len.min(4_096));
        for _ in 0..stash_len {
            stash.push(get_stash(&mut r)?);
        }
        Ok(GuardCheckpoint {
            version,
            seq,
            taken_at_nanos,
            key,
            rl1,
            rl2,
            next_txid,
            next_qid,
            active,
            last_rotation_nanos,
            fwd,
            stash,
        })
    }
}

/// Why a checkpoint (or replication message) failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// The magic prefix is wrong.
    BadMagic,
    /// A version this build does not speak.
    UnsupportedVersion(u32),
    /// A structurally invalid field (bad embedded DNS message, bad tag).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated checkpoint"),
            DecodeError::BadMagic => write!(f, "bad checkpoint magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            DecodeError::Malformed(what) => write!(f, "malformed checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Durable checkpoint storage, as a guard node sees it: the sim's stand-in
/// for the local disk / object store a real deployment would write to.
/// Holds the latest snapshot; `taken` counts every put for tests and
/// benches.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: Option<GuardCheckpoint>,
    taken: u64,
}

impl CheckpointStore {
    /// Stores a snapshot, replacing the previous one.
    pub fn put(&mut self, cp: GuardCheckpoint) {
        self.taken += 1;
        self.latest = Some(cp);
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&GuardCheckpoint> {
        self.latest.as_ref()
    }

    /// Clone of the most recent snapshot.
    pub fn latest_cloned(&self) -> Option<GuardCheckpoint> {
        self.latest.clone()
    }

    /// How many snapshots were ever stored.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

/// Shared handle to a [`CheckpointStore`]: the guard writes on its cadence,
/// the restart harness reads after a crash.
pub type SharedCheckpointStore = Arc<Mutex<CheckpointStore>>;

/// Creates an empty shared store.
pub fn shared_store() -> SharedCheckpointStore {
    Arc::new(Mutex::new(CheckpointStore::default()))
}

// ---- codec primitives ----------------------------------------------------
//
// Shared with the replication channel (`crate::ha`), hence pub(crate).

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub(crate) fn put_ip(buf: &mut Vec<u8>, ip: Ipv4Addr) {
    buf.extend_from_slice(&ip.octets());
}

/// Length-prefixed embedded DNS message: the workhorse for names,
/// questions and record sets.
pub(crate) fn put_msg(buf: &mut Vec<u8>, msg: &Message) {
    let wire = msg.encode();
    put_u32(buf, wire.len() as u32);
    buf.extend_from_slice(&wire);
}

pub(crate) fn put_question(buf: &mut Vec<u8>, q: &Question) {
    put_msg(
        buf,
        &Message {
            questions: vec![q.clone()],
            ..Message::default()
        },
    );
}

pub(crate) fn put_name(buf: &mut Vec<u8>, n: &Name) {
    put_question(buf, &Question::new(n.clone(), RrType::A));
}

pub(crate) fn put_records(buf: &mut Vec<u8>, rs: &[Record]) {
    put_msg(
        buf,
        &Message {
            answers: rs.to_vec(),
            ..Message::default()
        },
    );
}

pub(crate) fn put_key(buf: &mut Vec<u8>, k: &KeyState) {
    buf.extend_from_slice(k.current.as_bytes());
    match &k.previous {
        Some(prev) => {
            buf.push(1);
            buf.extend_from_slice(prev.as_bytes());
        }
        None => buf.push(0),
    }
    put_u64(buf, k.generation);
    put_u64(buf, k.seed);
}

pub(crate) fn put_bucket(buf: &mut Vec<u8>, b: &TokenBucketState) {
    put_f64(buf, b.rate_per_sec);
    put_f64(buf, b.burst);
    put_f64(buf, b.tokens);
    put_u64(buf, b.last_nanos);
}

pub(crate) fn put_limiter(buf: &mut Vec<u8>, l: &LimiterState) {
    match &l.global {
        Some(g) => {
            buf.push(1);
            put_bucket(buf, g);
        }
        None => buf.push(0),
    }
    put_u32(buf, l.per_source.len() as u32);
    for (ip, b) in &l.per_source {
        put_ip(buf, *ip);
        put_bucket(buf, b);
    }
}

pub(crate) fn put_fwd(buf: &mut Vec<u8>, f: &FwdState) {
    put_u16(buf, f.txid);
    put_ip(buf, f.requester.0);
    put_u16(buf, f.requester.1);
    put_ip(buf, f.reply_from.0);
    put_u16(buf, f.reply_from.1);
    put_u16(buf, f.orig_txid);
    put_u64(buf, f.created_nanos);
    put_u64(buf, f.qid);
    match &f.rewrite {
        RewriteState::Passthrough => buf.push(0),
        RewriteState::ReferralCookie { cookie_question } => {
            buf.push(1);
            put_question(buf, cookie_question);
        }
        RewriteState::Fabricated {
            cookie_question,
            original,
        } => {
            buf.push(2);
            put_question(buf, cookie_question);
            put_name(buf, original);
        }
    }
}

pub(crate) fn put_stash(buf: &mut Vec<u8>, s: &StashState) {
    put_ip(buf, s.src);
    put_name(buf, &s.name);
    put_u64(buf, s.created_nanos);
    put_records(buf, &s.answers);
}

/// Bounds-checked big-endian reader over an encoded checkpoint.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.bytes(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn ip(&mut self) -> Result<Ipv4Addr, DecodeError> {
        let b = self.bytes(4)?;
        Ok(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
    }
}

pub(crate) fn get_msg(r: &mut Reader<'_>) -> Result<Message, DecodeError> {
    let len = r.u32()? as usize;
    let wire = r.bytes(len)?;
    Message::decode(wire).map_err(|_| DecodeError::Malformed("embedded message"))
}

pub(crate) fn get_question(r: &mut Reader<'_>) -> Result<Question, DecodeError> {
    get_msg(r)?
        .questions
        .into_iter()
        .next()
        .ok_or(DecodeError::Malformed("missing question"))
}

pub(crate) fn get_name(r: &mut Reader<'_>) -> Result<Name, DecodeError> {
    Ok(get_question(r)?.name)
}

pub(crate) fn get_records(r: &mut Reader<'_>) -> Result<Vec<Record>, DecodeError> {
    Ok(get_msg(r)?.answers)
}

pub(crate) fn get_key(r: &mut Reader<'_>) -> Result<KeyState, DecodeError> {
    let mut current = [0u8; KEY_LEN];
    current.copy_from_slice(r.bytes(KEY_LEN)?);
    let previous = match r.u8()? {
        0 => None,
        1 => {
            let mut prev = [0u8; KEY_LEN];
            prev.copy_from_slice(r.bytes(KEY_LEN)?);
            Some(SecretKey::from_bytes(prev))
        }
        _ => return Err(DecodeError::Malformed("previous-key flag")),
    };
    Ok(KeyState {
        current: SecretKey::from_bytes(current),
        previous,
        generation: r.u64()?,
        seed: r.u64()?,
    })
}

pub(crate) fn get_bucket(r: &mut Reader<'_>) -> Result<TokenBucketState, DecodeError> {
    Ok(TokenBucketState {
        rate_per_sec: r.f64()?,
        burst: r.f64()?,
        tokens: r.f64()?,
        last_nanos: r.u64()?,
    })
}

pub(crate) fn get_limiter(r: &mut Reader<'_>) -> Result<LimiterState, DecodeError> {
    let global = match r.u8()? {
        0 => None,
        1 => Some(get_bucket(r)?),
        _ => return Err(DecodeError::Malformed("global-bucket flag")),
    };
    let n = r.u32()? as usize;
    let mut per_source = Vec::with_capacity(n.min(4_096));
    for _ in 0..n {
        let ip = r.ip()?;
        per_source.push((ip, get_bucket(r)?));
    }
    Ok(LimiterState { global, per_source })
}

pub(crate) fn get_fwd(r: &mut Reader<'_>) -> Result<FwdState, DecodeError> {
    let txid = r.u16()?;
    let requester = (r.ip()?, r.u16()?);
    let reply_from = (r.ip()?, r.u16()?);
    let orig_txid = r.u16()?;
    let created_nanos = r.u64()?;
    let qid = r.u64()?;
    let rewrite = match r.u8()? {
        0 => RewriteState::Passthrough,
        1 => RewriteState::ReferralCookie {
            cookie_question: get_question(r)?,
        },
        2 => RewriteState::Fabricated {
            cookie_question: get_question(r)?,
            original: get_name(r)?,
        },
        _ => return Err(DecodeError::Malformed("rewrite tag")),
    };
    Ok(FwdState {
        txid,
        requester,
        reply_from,
        orig_txid,
        rewrite,
        created_nanos,
        qid,
    })
}

pub(crate) fn get_stash(r: &mut Reader<'_>) -> Result<StashState, DecodeError> {
    Ok(StashState {
        src: r.ip()?,
        name: get_name(r)?,
        created_nanos: r.u64()?,
        answers: get_records(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> GuardCheckpoint {
        let q = Question::new("PRdeadbeefwww.foo.com".parse().unwrap(), RrType::A);
        let original: Name = "www.foo.com".parse().unwrap();
        GuardCheckpoint {
            version: CHECKPOINT_VERSION,
            seq: 9,
            taken_at_nanos: 1_234_567,
            key: KeyState {
                current: SecretKey::from_seed(5),
                previous: Some(SecretKey::from_seed(4)),
                generation: 3,
                seed: 2006,
            },
            rl1: LimiterState {
                global: Some(TokenBucketState {
                    rate_per_sec: 10_000.0,
                    burst: 1_000.0,
                    tokens: 17.5,
                    last_nanos: 99,
                }),
                per_source: vec![(
                    Ipv4Addr::new(10, 0, 0, 7),
                    TokenBucketState {
                        rate_per_sec: 100.0,
                        burst: 10.0,
                        tokens: 3.25,
                        last_nanos: 88,
                    },
                )],
            },
            rl2: LimiterState::default(),
            next_txid: 4_242,
            next_qid: 77,
            active: true,
            last_rotation_nanos: 500,
            fwd: vec![
                FwdState {
                    txid: 1,
                    requester: (Ipv4Addr::new(10, 0, 0, 7), 999),
                    reply_from: (Ipv4Addr::new(198, 41, 0, 4), 53),
                    orig_txid: 31_337,
                    rewrite: RewriteState::Passthrough,
                    created_nanos: 1_000_000,
                    qid: 12,
                },
                FwdState {
                    txid: 2,
                    requester: (Ipv4Addr::new(10, 0, 0, 8), 1_001),
                    reply_from: (Ipv4Addr::new(198, 41, 0, 4), 53),
                    orig_txid: 5,
                    rewrite: RewriteState::Fabricated {
                        cookie_question: q.clone(),
                        original: original.clone(),
                    },
                    created_nanos: 1_100_000,
                    qid: 13,
                },
                FwdState {
                    txid: 3,
                    requester: (Ipv4Addr::new(10, 0, 0, 9), 1_002),
                    reply_from: (Ipv4Addr::new(198, 41, 0, 4), 53),
                    orig_txid: 6,
                    rewrite: RewriteState::ReferralCookie { cookie_question: q },
                    created_nanos: 1_200_000,
                    qid: 14,
                },
            ],
            stash: vec![StashState {
                src: Ipv4Addr::new(10, 0, 0, 8),
                name: original.clone(),
                answers: vec![Record::a(original, Ipv4Addr::new(192, 0, 2, 1), 60)],
                created_nanos: 1_050_000,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = sample_checkpoint();
        let wire = cp.encode();
        let back = GuardCheckpoint::decode(&wire).expect("decodes");
        assert_eq!(back, cp);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut wire = sample_checkpoint().encode();
        wire[0] ^= 0xFF;
        assert_eq!(GuardCheckpoint::decode(&wire), Err(DecodeError::BadMagic));
    }

    #[test]
    fn decode_rejects_unknown_version() {
        let mut wire = sample_checkpoint().encode();
        wire[7] = 99; // low byte of the big-endian version field
        assert!(matches!(
            GuardCheckpoint::decode(&wire),
            Err(DecodeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn decode_rejects_any_truncation() {
        let wire = sample_checkpoint().encode();
        for cut in 0..wire.len() {
            assert!(
                GuardCheckpoint::decode(&wire[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn key_state_round_trips_through_factory() {
        let mut f = CookieFactory::from_seed(77);
        f.rotate();
        let ip = Ipv4Addr::new(203, 0, 113, 9);
        let cookie = f.generate(ip);
        let restored = KeyState::capture(&f).to_factory();
        assert!(restored.verify(ip, &cookie));
        assert_eq!(restored.generation(), f.generation());
    }

    #[test]
    fn store_keeps_latest_and_counts_puts() {
        let store = shared_store();
        assert!(store.lock().latest().is_none());
        let mut cp = sample_checkpoint();
        store.lock().put(cp.clone());
        cp.seq += 1;
        store.lock().put(cp.clone());
        let guard = store.lock();
        assert_eq!(guard.taken(), 2);
        assert_eq!(guard.latest().unwrap().seq, cp.seq);
    }
}
