//! Referral classification: before fabricating a cookie name, the guard
//! must know whether the protected ANS would answer a query with a referral
//! (delegation to a child zone) or a non-referral answer — the two DNS-based
//! variants encode cookies differently (section III.B).
//!
//! A deployed guard knows its ANS's zones (it is configured alongside the
//! server it firewalls), so classification is a local lookup against the
//! same delegation data.

use dnswire::name::Name;
use server::authoritative::Authority;

/// What kind of answer the protected ANS will give for a query name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// The ANS will refer to this child zone — embed the cookie in the
    /// child zone's fabricated NS name.
    Referral {
        /// The delegated child zone (e.g. `com` for a root query about
        /// `www.foo.com`).
        child_zone: Name,
    },
    /// The ANS will answer directly — fabricate an ANS (NS name + IP) for
    /// the query name itself.
    NonReferral,
    /// The ANS is not authoritative for the name (the guard forwards and
    /// lets the ANS refuse).
    Unknown,
}

/// Classifies query names for the DNS-based scheme.
pub trait Classifier {
    /// Classifies `qname`.
    fn classify(&self, qname: &Name) -> Classification;
}

/// Classifier backed by a copy of the ANS's authority data.
#[derive(Debug, Clone)]
pub struct AuthorityClassifier {
    authority: Authority,
}

impl AuthorityClassifier {
    /// Wraps the ANS's zones.
    pub fn new(authority: Authority) -> Self {
        AuthorityClassifier { authority }
    }
}

impl Classifier for AuthorityClassifier {
    fn classify(&self, qname: &Name) -> Classification {
        let Some(zone) = self.authority.best_zone(qname) else {
            return Classification::Unknown;
        };
        match zone.delegation_for(qname) {
            Some((cut, _)) => Classification::Referral {
                child_zone: cut.clone(),
            },
            None => Classification::NonReferral,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use server::zone::paper_hierarchy;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn root_queries_classify_as_referral() {
        let (root, _, _) = paper_hierarchy();
        let c = AuthorityClassifier::new(Authority::new(vec![root]));
        assert_eq!(
            c.classify(&n("www.foo.com")),
            Classification::Referral { child_zone: n("com") }
        );
        assert_eq!(
            c.classify(&n("com")),
            Classification::Referral { child_zone: n("com") }
        );
    }

    #[test]
    fn terminal_zone_classifies_non_referral() {
        let (_, _, foo) = paper_hierarchy();
        let c = AuthorityClassifier::new(Authority::new(vec![foo]));
        assert_eq!(c.classify(&n("www.foo.com")), Classification::NonReferral);
        assert_eq!(c.classify(&n("nope.foo.com")), Classification::NonReferral);
    }

    #[test]
    fn out_of_bailiwick_unknown() {
        let (_, _, foo) = paper_hierarchy();
        let c = AuthorityClassifier::new(Authority::new(vec![foo]));
        assert_eq!(c.classify(&n("example.org")), Classification::Unknown);
    }
}
