//! Guard configuration.

use crate::admission::AdmissionConfig;
use crate::ha::{FleetConfig, HaConfig};
use guardhash::cookie::CookieAlg;
use netsim::time::SimTime;
use std::net::Ipv4Addr;

/// Which cookie-delivery scheme the guard uses for requesters that are not
/// cookie-extension capable (Figure 4: the modified-DNS extension is always
/// recognised when present; this selects the fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeMode {
    /// Embed cookies in DNS messages (NS names for referrals, fabricated
    /// NS name + IP for non-referral answers). Section III.B.
    DnsBased,
    /// Redirect the requester to TCP with the truncation flag and proxy the
    /// connection. Section III.C.
    TcpBased,
    /// Only serve requests carrying a valid cookie extension; cookie-less
    /// requests are answered with a cookie grant exchange. Section III.D.
    ModifiedOnly,
}

/// What the guard does with queries needing the ANS while its health
/// monitor judges the ANS dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnsHealthPolicy {
    /// Keep forwarding. Requests queue behind the outage and clients see
    /// their own timeouts — service degrades but nothing is refused, and
    /// forwarded traffic doubles as a liveness signal.
    FailOpen,
    /// Answer immediately with `SERVFAIL` (UDP) or drop (TCP relays)
    /// instead of forwarding, shedding load from the dead ANS and giving
    /// resolvers a fast signal to try a sibling server. Dedicated probes
    /// detect recovery.
    FailClosed,
}

/// Configuration of a remote DNS guard deployed in front of one ANS.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// The public address the guard defends (the ANS's advertised address;
    /// the guard intercepts all traffic to it).
    pub public_addr: Ipv4Addr,
    /// The real (private) ANS address the guard forwards valid requests to.
    pub ans_addr: Ipv4Addr,
    /// Base of the subnet the guard can intercept (for `COOKIE2`
    /// addresses). The paper's example: `1.2.3.0/24`.
    pub subnet_base: Ipv4Addr,
    /// Number of usable `COOKIE2` host addresses: the cookie range `R_y`.
    pub subnet_range: u32,
    /// Seed for the guard's 76-byte secret key.
    pub key_seed: u64,
    /// Keyed hash deriving cookies from source addresses: the paper's
    /// vendor-specific MD5, or the interoperable SipHash-2-4 per
    /// draft-sury-toorop so anycast fleet sites sharing a key validate
    /// each other's cookies.
    pub cookie_alg: CookieAlg,
    /// Scheme used for cookie-less requesters.
    pub mode: SchemeMode,
    /// TTL (seconds) of fabricated NS records — long, so that LRS caches
    /// keep them and most requests take the cache-hit path.
    pub fabricated_ns_ttl: u32,
    /// TTL (seconds) granted with extension cookies.
    pub cookie_ttl: u32,
    /// Rate-Limiter1: global cookie-response budget (responses/second).
    /// Bounds the guard's use as a traffic reflector.
    pub rl1_global_rate: f64,
    /// Rate-Limiter1: per-source cookie-response rate.
    pub rl1_per_source_rate: f64,
    /// Rate-Limiter2: per-verified-host request rate. The paper calls this
    /// "a nominal rate"; Figure 6 runs with it effectively open.
    pub rl2_per_source_rate: f64,
    /// Spoof detection activates only when the inbound request rate exceeds
    /// this many requests/second (Figure 5 uses the ANS capacity, 14 K).
    /// `0.0` keeps detection always on.
    pub activation_threshold: f64,
    /// TCP proxy: connections living longer than this multiple of the RTT
    /// estimate are reaped.
    pub tcp_conn_lifetime: SimTime,
    /// TCP proxy: per-source new-connection rate.
    pub tcp_conn_rate: f64,
    /// Sources that are always redirected to TCP regardless of `mode`
    /// (the Figure 5 experiment runs one LRS on UDP cookies and another on
    /// TCP redirection simultaneously).
    pub tcp_redirect_sources: Vec<Ipv4Addr>,
    /// Automatic key rotation period (section III.E suggests weekly; the
    /// generation bit gives departing cookies one period of grace).
    /// `None` disables scheduled rotation.
    pub key_rotation_interval: Option<SimTime>,
    /// A forwarded request unanswered for this long counts as an ANS
    /// timeout (and its forward-table entry is reclaimed).
    pub ans_timeout: SimTime,
    /// Consecutive timeouts without an intervening ANS response before the
    /// health monitor declares the ANS down.
    pub ans_failure_threshold: u32,
    /// Initial interval between liveness probes while the ANS is down;
    /// doubles after each unanswered probe (exponential backoff).
    pub ans_probe_interval: SimTime,
    /// Upper bound on the probe backoff.
    pub ans_probe_max: SimTime,
    /// Behaviour while the ANS is down.
    pub health_policy: AnsHealthPolicy,
    /// Byte bound on the forward (in-flight request) table; the oldest
    /// entries are evicted beyond it.
    pub fwd_bytes_max: usize,
    /// Byte bound on the one-shot answer stash; oldest entries evicted.
    pub stash_bytes_max: usize,
    /// Cadence of guard state checkpoints written to the attached
    /// [`crate::checkpoint::CheckpointStore`]. `None` disables
    /// checkpointing.
    pub checkpoint_interval: Option<SimTime>,
    /// Overload-adaptive admission control. `None` disables shedding
    /// entirely (every request takes the plain Figure 4 pipeline).
    pub admission: Option<AdmissionConfig>,
    /// Primary–standby pairing. `None` runs the guard standalone.
    pub ha: Option<HaConfig>,
    /// Anycast fleet membership: shared-secret distribution and rotation
    /// over the authenticated replication channel. `None` keeps this
    /// guard's key local (the paper's single-site model).
    pub fleet: Option<FleetConfig>,
}

impl GuardConfig {
    /// A guard for `public_addr` forwarding to `ans_addr`, with the paper's
    /// defaults: DNS-based scheme, `/24` cookie subnet, week-long cookies,
    /// detection always on.
    pub fn new(public_addr: Ipv4Addr, ans_addr: Ipv4Addr) -> Self {
        GuardConfig {
            public_addr,
            ans_addr,
            subnet_base: Ipv4Addr::new(
                public_addr.octets()[0],
                public_addr.octets()[1],
                public_addr.octets()[2],
                0,
            ),
            subnet_range: 254,
            key_seed: 2006,
            cookie_alg: CookieAlg::Md5,
            mode: SchemeMode::DnsBased,
            fabricated_ns_ttl: 604_800, // one week
            cookie_ttl: 604_800,
            rl1_global_rate: 10_000.0,
            rl1_per_source_rate: 100.0,
            rl2_per_source_rate: 200_000.0,
            activation_threshold: 0.0,
            tcp_conn_lifetime: SimTime::from_millis(2),
            tcp_conn_rate: 2_000.0,
            tcp_redirect_sources: Vec::new(),
            key_rotation_interval: None,
            ans_timeout: SimTime::from_secs(1),
            ans_failure_threshold: 3,
            ans_probe_interval: SimTime::from_millis(200),
            ans_probe_max: SimTime::from_secs(5),
            health_policy: AnsHealthPolicy::FailOpen,
            fwd_bytes_max: 1 << 20,   // 1 MiB of in-flight request state
            stash_bytes_max: 1 << 20, // 1 MiB of stashed one-shot answers
            checkpoint_interval: None,
            admission: None,
            ha: None,
            fleet: None,
        }
    }

    /// Selects the cookie-derivation algorithm.
    pub fn with_cookie_alg(mut self, alg: CookieAlg) -> Self {
        self.cookie_alg = alg;
        self
    }

    /// Joins this guard to an anycast fleet sharing one cookie secret.
    pub fn with_fleet(mut self, fleet: FleetConfig) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Selects the scheme mode.
    pub fn with_mode(mut self, mode: SchemeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the activation threshold (requests/second).
    pub fn with_activation_threshold(mut self, rate: f64) -> Self {
        self.activation_threshold = rate;
        self
    }

    /// Selects the degradation behaviour while the ANS is unreachable.
    pub fn with_health_policy(mut self, policy: AnsHealthPolicy) -> Self {
        self.health_policy = policy;
        self
    }

    /// Bounds the forward table and answer stash to the given byte sizes.
    pub fn with_table_bounds(mut self, fwd_bytes: usize, stash_bytes: usize) -> Self {
        self.fwd_bytes_max = fwd_bytes;
        self.stash_bytes_max = stash_bytes;
        self
    }

    /// Enables periodic state checkpoints at the given cadence.
    pub fn with_checkpoint_interval(mut self, interval: SimTime) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Enables overload-adaptive admission control.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Pairs this guard with a peer for primary–standby failover.
    pub fn with_ha(mut self, ha: HaConfig) -> Self {
        self.ha = Some(ha);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = GuardConfig::new(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c.subnet_base, Ipv4Addr::new(1, 2, 3, 0));
        assert_eq!(c.subnet_range, 254, "a /24 gives R_y ≤ 254");
        assert_eq!(c.fabricated_ns_ttl, 604_800, "one week");
        assert_eq!(c.mode, SchemeMode::DnsBased);
        assert_eq!(c.activation_threshold, 0.0);
    }

    #[test]
    fn builders_chain() {
        let c = GuardConfig::new(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(10, 0, 0, 1))
            .with_mode(SchemeMode::TcpBased)
            .with_activation_threshold(14_000.0);
        assert_eq!(c.mode, SchemeMode::TcpBased);
        assert_eq!(c.activation_threshold, 14_000.0);
    }
}
