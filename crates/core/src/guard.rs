//! The remote DNS guard: the composite pipeline of Figure 4.
//!
//! One node owns the protected ANS's public address (and the surrounding
//! subnet for `COOKIE2` addresses) and dispatches every packet through the
//! cookie checker, the rate limiters and the scheme handlers:
//!
//! ```text
//!                  UDP req                     UDP req
//!  Internet ──► Cookie Checker ──► Rate-Limiter2 ──► ANS
//!                  │    ▲ UDP resp                  │ UDP resp
//!        TCP req   ▼    │                           ▼
//!           ──► TCP proxy ──► Rate-Limiter2     (relayed back)
//!                  │
//!                  └── cookie/TC/NS responses ──► Rate-Limiter1 ──► Internet
//! ```
//!
//! CPU is accounted with the calibrated constants of [`netsim::cost`]: one
//! `packet_cost` per packet in or out, one `cookie_cost` per cookie
//! computation, `tcp_conn_cost` per proxied connection — nothing else. The
//! throughput and utilisation figures of the paper emerge from these charges
//! plus the packet counts of each scheme.

use crate::admission::{AdmissionController, PressureTier};
use crate::checkpoint::{
    FwdState, GuardCheckpoint, KeyState, RewriteState, SharedCheckpointStore, StashState,
    CHECKPOINT_VERSION, STASH_TTL,
};
use crate::classify::{AuthorityClassifier, Classification, Classifier};
use crate::config::{AnsHealthPolicy, GuardConfig, SchemeMode};
use crate::ha::{
    decode_repl, encode_repl, repl_secret, FleetConfig, HaConfig, HaRole, ReplDelta, ReplPayload,
    REPL_PORT,
};
use crate::ratelimit::SourceRateLimiter;
use crate::tcp_proxy::{ProxyAction, TcpProxy};
use dnswire::cookie_ext;
use dnswire::message::{Message, MAX_UDP_PAYLOAD};
use dnswire::name::Name;
use dnswire::question::Question;
use dnswire::record::Record;
use guardhash::cookie::{CookieFactory, SecretKey};
use netsim::engine::{Context, Node};
use netsim::metrics::TrafficMeter;
use netsim::packet::{Endpoint, Packet, Proto, DNS_PORT};
use netsim::time::SimTime;
use obs::metrics::{Counter, Gauge, Histogram};
use obs::trace::{ComponentTracer, Value};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Timer tag for the guard's housekeeping window (rate estimation, proxy
/// reaping, forward-table sweeping).
const TAG_WINDOW: u64 = u64::MAX;

/// Timer tag for the high-availability tick (replication deltas on the
/// primary, heartbeat watching on the standby).
const TAG_HA: u64 = u64::MAX - 1;

/// Timer tag for the fleet key-sync tick (epoch pushes on the master,
/// catch-up requests on an unsynced member).
const TAG_FLEET: u64 = u64::MAX - 2;

/// Housekeeping period.
const WINDOW: SimTime = SimTime::from_millis(100);

/// Observable guard counters, by pipeline decision — a snapshot of the
/// live registry-backed counters, from [`RemoteGuard::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GuardStats {
    /// Queries forwarded to the ANS (verified or pass-through).
    pub forwarded: u64,
    /// Queries relayed while spoof detection was inactive.
    pub passthrough: u64,
    /// Fabricated NS responses sent (DNS-based scheme, message 2).
    pub fabricated_ns_sent: u64,
    /// Truncation responses sent (TCP-based scheme).
    pub tc_sent: u64,
    /// Cookie grants sent (modified-DNS scheme, message 3).
    pub grants_sent: u64,
    /// Requests accepted with a valid extension cookie.
    pub ext_valid: u64,
    /// Requests dropped with an invalid extension cookie.
    pub ext_invalid: u64,
    /// Cookie-label queries accepted (message 3 of the DNS-based scheme).
    pub ns_cookie_valid: u64,
    /// Cookie-label queries dropped as spoofed.
    pub ns_cookie_invalid: u64,
    /// `COOKIE2` queries accepted (message 7).
    pub cookie2_valid: u64,
    /// `COOKIE2` queries dropped as spoofed.
    pub cookie2_invalid: u64,
    /// Plain queries dropped by Rate-Limiter1.
    pub rl1_dropped: u64,
    /// Verified queries dropped by Rate-Limiter2.
    pub rl2_dropped: u64,
    /// Responses relayed back from the ANS.
    pub relayed_responses: u64,
    /// Answers served from the guard's one-shot stash (message 10 fast
    /// path).
    pub stash_hits: u64,
    /// Packets that were not parseable DNS and were dropped.
    pub unparseable: u64,
    /// Forwarded requests the ANS never answered within the timeout.
    pub ans_timeouts: u64,
    /// Times the health monitor declared the ANS down.
    pub ans_down_events: u64,
    /// Liveness probes sent while the ANS was down.
    pub ans_probes: u64,
    /// Times the ANS came back after being declared down.
    pub ans_recoveries: u64,
    /// Queries refused (SERVFAIL or dropped) by the fail-closed policy
    /// while the ANS was down.
    pub failed_closed: u64,
    /// Forward-table entries evicted by the byte bound (oldest first).
    pub fwd_evicted: u64,
    /// Stash entries evicted by the byte bound (oldest first).
    pub stash_evicted: u64,
    /// Every UDP datagram that entered the pipeline (the conservation
    /// total: equals [`GuardStats::disposition_total`]).
    pub udp_datagrams: u64,
    /// ANS responses whose transaction id matched no forward-table entry
    /// (late responses to evicted/expired forwards).
    pub resp_unmatched: u64,
    /// Response-flagged datagrams from sources other than the ANS
    /// (spoofed or misrouted; dropped).
    pub resp_foreign: u64,
    /// Plain queries forwarded unprotected (out-of-bailiwick names, root
    /// queries, or names too deep to fabricate a cookie label for).
    pub plain_forwarded: u64,
    /// Unverified requests shed by the admission controller before any
    /// rate-limiter decision (Surge/Shed pressure tiers).
    pub admission_shed: u64,
    /// State checkpoints written to the attached store.
    pub checkpoints_taken: u64,
    /// Times guard state was rebuilt from a checkpoint or replication
    /// snapshot.
    pub restores: u64,
    /// Checkpointed forward-table entries dropped on restore because they
    /// were already past the ANS-timeout deadline.
    pub restore_stale_fwd: u64,
    /// Checkpointed stash entries dropped on restore as expired.
    pub restore_stale_stash: u64,
    /// Replication deltas (including heartbeats and full snapshots) sent
    /// to the standby.
    pub repl_deltas_sent: u64,
    /// Replication deltas/snapshots applied by the standby.
    pub repl_deltas_applied: u64,
    /// Sequence gaps that forced a full-resync request.
    pub repl_resyncs: u64,
    /// Replication-port packets rejected (wrong peer, failed
    /// authentication, or malformed).
    pub repl_rejected: u64,
    /// Authenticated peer messages seen (every one refreshes the
    /// heartbeat).
    pub heartbeats_seen: u64,
    /// Times the standby declared the primary dead.
    pub peer_down_events: u64,
    /// Times this guard took over the guarded address from a dead peer.
    pub failover_takeovers: u64,
    /// Fleet key epochs pushed to member sites (master only).
    pub fleet_keys_sent: u64,
    /// Fleet key epochs applied from the master (members only).
    pub fleet_keys_applied: u64,
    /// Catch-up key requests sent while unsynced (members only).
    pub fleet_key_reqs: u64,
}

impl GuardStats {
    /// Total requests classified as spoofed and dropped.
    pub fn spoofed_dropped(&self) -> u64 {
        self.ext_invalid + self.ns_cookie_invalid + self.cookie2_invalid
    }

    /// Sum of the mutually-exclusive terminal disposition buckets: every
    /// UDP datagram entering the pipeline lands in exactly one, so this
    /// always equals [`GuardStats::udp_datagrams`]. (Counters like
    /// `forwarded`, `rl2_dropped`, `failed_closed`, `stash_hits`,
    /// `fwd_evicted` describe *later* stages of an already-dispositioned
    /// datagram and are deliberately excluded.)
    pub fn disposition_total(&self) -> u64 {
        self.unparseable
            + self.resp_foreign
            + self.resp_unmatched
            + self.relayed_responses
            + self.passthrough
            + self.rl1_dropped
            + self.grants_sent
            + self.ext_valid
            + self.ext_invalid
            + self.cookie2_valid
            + self.cookie2_invalid
            + self.ns_cookie_valid
            + self.ns_cookie_invalid
            + self.tc_sent
            + self.fabricated_ns_sent
            + self.plain_forwarded
            + self.admission_shed
    }
}

/// Live guard counters: detached registry handles created at construction
/// (recording always works) and adopted into a registry when
/// [`RemoteGuard::attach_obs`] runs.
#[derive(Debug)]
struct GuardMetrics {
    forwarded: Counter,
    passthrough: Counter,
    fabricated_ns_sent: Counter,
    tc_sent: Counter,
    grants_sent: Counter,
    ext_valid: Counter,
    ext_invalid: Counter,
    ns_cookie_valid: Counter,
    ns_cookie_invalid: Counter,
    cookie2_valid: Counter,
    cookie2_invalid: Counter,
    rl1_dropped: Counter,
    rl2_dropped: Counter,
    relayed_responses: Counter,
    stash_hits: Counter,
    unparseable: Counter,
    ans_timeouts: Counter,
    ans_down_events: Counter,
    ans_probes: Counter,
    ans_recoveries: Counter,
    failed_closed: Counter,
    fwd_evicted: Counter,
    stash_evicted: Counter,
    udp_datagrams: Counter,
    resp_unmatched: Counter,
    resp_foreign: Counter,
    plain_forwarded: Counter,
    admission_shed: Counter,
    checkpoints_taken: Counter,
    restores: Counter,
    restore_stale_fwd: Counter,
    restore_stale_stash: Counter,
    repl_deltas_sent: Counter,
    repl_deltas_applied: Counter,
    repl_resyncs: Counter,
    repl_rejected: Counter,
    heartbeats_seen: Counter,
    peer_down_events: Counter,
    failover_takeovers: Counter,
    fleet_keys_sent: Counter,
    fleet_keys_applied: Counter,
    fleet_key_reqs: Counter,
    /// Current pressure tier (0 normal / 1 surge / 2 shed), refreshed each
    /// housekeeping window.
    admission_tier: Gauge,
    /// Staleness of this guard's recoverable state, in nanoseconds: time
    /// since the last checkpoint (acting primary) or since the last
    /// applied replication message (standby). The `checkpoint_lag` alert
    /// thresholds this.
    checkpoint_age_nanos: Gauge,
    /// Encoded size of the most recent checkpoint.
    checkpoint_bytes: Gauge,
    /// Current `fwd_bytes + stash_bytes` (refreshed each housekeeping
    /// window).
    table_bytes: Gauge,
    /// Unverified-traffic amplification ratio × 1000 (refreshed each
    /// housekeeping window) — the paper's ≤ 1.5× reflector bound, as a
    /// gauge the alerting engine can threshold.
    amplification_milli: Gauge,
    /// Forward→response round-trip to the ANS, in nanoseconds.
    ans_rtt_ns: Histogram,
    trace: ComponentTracer,
}

impl Default for GuardMetrics {
    fn default() -> Self {
        GuardMetrics {
            forwarded: Counter::new(),
            passthrough: Counter::new(),
            fabricated_ns_sent: Counter::new(),
            tc_sent: Counter::new(),
            grants_sent: Counter::new(),
            ext_valid: Counter::new(),
            ext_invalid: Counter::new(),
            ns_cookie_valid: Counter::new(),
            ns_cookie_invalid: Counter::new(),
            cookie2_valid: Counter::new(),
            cookie2_invalid: Counter::new(),
            rl1_dropped: Counter::new(),
            rl2_dropped: Counter::new(),
            relayed_responses: Counter::new(),
            stash_hits: Counter::new(),
            unparseable: Counter::new(),
            ans_timeouts: Counter::new(),
            ans_down_events: Counter::new(),
            ans_probes: Counter::new(),
            ans_recoveries: Counter::new(),
            failed_closed: Counter::new(),
            fwd_evicted: Counter::new(),
            stash_evicted: Counter::new(),
            udp_datagrams: Counter::new(),
            resp_unmatched: Counter::new(),
            resp_foreign: Counter::new(),
            plain_forwarded: Counter::new(),
            admission_shed: Counter::new(),
            checkpoints_taken: Counter::new(),
            restores: Counter::new(),
            restore_stale_fwd: Counter::new(),
            restore_stale_stash: Counter::new(),
            repl_deltas_sent: Counter::new(),
            repl_deltas_applied: Counter::new(),
            repl_resyncs: Counter::new(),
            repl_rejected: Counter::new(),
            heartbeats_seen: Counter::new(),
            peer_down_events: Counter::new(),
            failover_takeovers: Counter::new(),
            fleet_keys_sent: Counter::new(),
            fleet_keys_applied: Counter::new(),
            fleet_key_reqs: Counter::new(),
            admission_tier: Gauge::new(),
            checkpoint_age_nanos: Gauge::new(),
            checkpoint_bytes: Gauge::new(),
            table_bytes: Gauge::new(),
            amplification_milli: Gauge::new(),
            ans_rtt_ns: Histogram::new(),
            trace: ComponentTracer::disabled(),
        }
    }
}

impl GuardMetrics {
    fn snapshot(&self) -> GuardStats {
        GuardStats {
            forwarded: self.forwarded.get(),
            passthrough: self.passthrough.get(),
            fabricated_ns_sent: self.fabricated_ns_sent.get(),
            tc_sent: self.tc_sent.get(),
            grants_sent: self.grants_sent.get(),
            ext_valid: self.ext_valid.get(),
            ext_invalid: self.ext_invalid.get(),
            ns_cookie_valid: self.ns_cookie_valid.get(),
            ns_cookie_invalid: self.ns_cookie_invalid.get(),
            cookie2_valid: self.cookie2_valid.get(),
            cookie2_invalid: self.cookie2_invalid.get(),
            rl1_dropped: self.rl1_dropped.get(),
            rl2_dropped: self.rl2_dropped.get(),
            relayed_responses: self.relayed_responses.get(),
            stash_hits: self.stash_hits.get(),
            unparseable: self.unparseable.get(),
            ans_timeouts: self.ans_timeouts.get(),
            ans_down_events: self.ans_down_events.get(),
            ans_probes: self.ans_probes.get(),
            ans_recoveries: self.ans_recoveries.get(),
            failed_closed: self.failed_closed.get(),
            fwd_evicted: self.fwd_evicted.get(),
            stash_evicted: self.stash_evicted.get(),
            udp_datagrams: self.udp_datagrams.get(),
            resp_unmatched: self.resp_unmatched.get(),
            resp_foreign: self.resp_foreign.get(),
            plain_forwarded: self.plain_forwarded.get(),
            admission_shed: self.admission_shed.get(),
            checkpoints_taken: self.checkpoints_taken.get(),
            restores: self.restores.get(),
            restore_stale_fwd: self.restore_stale_fwd.get(),
            restore_stale_stash: self.restore_stale_stash.get(),
            repl_deltas_sent: self.repl_deltas_sent.get(),
            repl_deltas_applied: self.repl_deltas_applied.get(),
            repl_resyncs: self.repl_resyncs.get(),
            repl_rejected: self.repl_rejected.get(),
            heartbeats_seen: self.heartbeats_seen.get(),
            peer_down_events: self.peer_down_events.get(),
            failover_takeovers: self.failover_takeovers.get(),
            fleet_keys_sent: self.fleet_keys_sent.get(),
            fleet_keys_applied: self.fleet_keys_applied.get(),
            fleet_key_reqs: self.fleet_key_reqs.get(),
        }
    }

    fn adopt_into(&self, r: &obs::metrics::Registry) {
        r.adopt_counter("guard", "forwarded", &[], &self.forwarded);
        r.adopt_counter("guard", "passthrough", &[], &self.passthrough);
        r.adopt_counter("guard", "fabricated_ns_sent", &[], &self.fabricated_ns_sent);
        r.adopt_counter("guard", "tc_sent", &[], &self.tc_sent);
        r.adopt_counter("guard", "grants_sent", &[], &self.grants_sent);
        let verify = [
            ("ext", "valid", &self.ext_valid),
            ("ext", "invalid", &self.ext_invalid),
            ("ns_label", "valid", &self.ns_cookie_valid),
            ("ns_label", "invalid", &self.ns_cookie_invalid),
            ("cookie2", "valid", &self.cookie2_valid),
            ("cookie2", "invalid", &self.cookie2_invalid),
        ];
        for (scheme, verdict, counter) in verify {
            r.adopt_counter(
                "guard",
                "verify",
                &[("scheme", scheme), ("verdict", verdict)],
                counter,
            );
        }
        r.adopt_counter("guard", "rl_dropped", &[("limiter", "rl1")], &self.rl1_dropped);
        r.adopt_counter("guard", "rl_dropped", &[("limiter", "rl2")], &self.rl2_dropped);
        r.adopt_counter("guard", "relayed_responses", &[], &self.relayed_responses);
        r.adopt_counter("guard", "stash_hits", &[], &self.stash_hits);
        r.adopt_counter("guard", "unparseable", &[], &self.unparseable);
        r.adopt_counter("guard", "ans_timeouts", &[], &self.ans_timeouts);
        r.adopt_counter("guard", "ans_down_events", &[], &self.ans_down_events);
        r.adopt_counter("guard", "ans_probes", &[], &self.ans_probes);
        r.adopt_counter("guard", "ans_recoveries", &[], &self.ans_recoveries);
        r.adopt_counter("guard", "failed_closed", &[], &self.failed_closed);
        r.adopt_counter("guard", "evicted", &[("table", "fwd")], &self.fwd_evicted);
        r.adopt_counter("guard", "evicted", &[("table", "stash")], &self.stash_evicted);
        r.adopt_counter("guard", "udp_datagrams", &[], &self.udp_datagrams);
        r.adopt_counter("guard", "resp_unmatched", &[], &self.resp_unmatched);
        r.adopt_counter("guard", "resp_foreign", &[], &self.resp_foreign);
        r.adopt_counter("guard", "plain_forwarded", &[], &self.plain_forwarded);
        r.adopt_counter("guard", "admission_shed", &[], &self.admission_shed);
        r.adopt_counter("guard", "checkpoints_taken", &[], &self.checkpoints_taken);
        r.adopt_counter("guard", "restores", &[], &self.restores);
        r.adopt_counter("guard", "restore_stale", &[("table", "fwd")], &self.restore_stale_fwd);
        r.adopt_counter("guard", "restore_stale", &[("table", "stash")], &self.restore_stale_stash);
        r.adopt_counter("guard", "repl_deltas", &[("dir", "sent")], &self.repl_deltas_sent);
        r.adopt_counter("guard", "repl_deltas", &[("dir", "applied")], &self.repl_deltas_applied);
        r.adopt_counter("guard", "repl_resyncs", &[], &self.repl_resyncs);
        r.adopt_counter("guard", "repl_rejected", &[], &self.repl_rejected);
        r.adopt_counter("guard", "heartbeats_seen", &[], &self.heartbeats_seen);
        r.adopt_counter("guard", "peer_down_events", &[], &self.peer_down_events);
        r.adopt_counter("guard", "failover_takeovers", &[], &self.failover_takeovers);
        r.adopt_counter("guard", "fleet_keys", &[("dir", "sent")], &self.fleet_keys_sent);
        r.adopt_counter("guard", "fleet_keys", &[("dir", "applied")], &self.fleet_keys_applied);
        r.adopt_counter("guard", "fleet_key_reqs", &[], &self.fleet_key_reqs);
        r.adopt_gauge("guard", "admission_tier", &[], &self.admission_tier);
        r.adopt_gauge("guard", "checkpoint_age_nanos", &[], &self.checkpoint_age_nanos);
        r.adopt_gauge("guard", "checkpoint_bytes", &[], &self.checkpoint_bytes);
        r.adopt_gauge("guard", "table_bytes", &[], &self.table_bytes);
        r.adopt_gauge("guard", "amplification_milli", &[], &self.amplification_milli);
        r.adopt_histogram("guard", "ans_rtt_ns", &[], &self.ans_rtt_ns);
    }
}

#[derive(Debug)]
enum Rewrite {
    /// Relay the ANS response as-is (txid restored).
    Passthrough,
    /// A health probe: the response only proves liveness, nothing is
    /// relayed.
    Probe,
    /// DNS-based referral: answer the cookie-name question with the glue
    /// addresses from the ANS's referral.
    ReferralCookie { cookie_question: Question },
    /// DNS-based non-referral: stash the real answer, reply `COOKIE2`.
    Fabricated {
        cookie_question: Question,
        original: Name,
    },
    /// TCP proxy relay (token routes back to the connection).
    TcpRelay { token: u64 },
}

#[derive(Debug)]
struct Forwarded {
    requester: Endpoint,
    reply_from: Endpoint,
    orig_txid: u16,
    rewrite: Rewrite,
    created: SimTime,
    /// Journey correlation id: the relay of the ANS reply inherits the
    /// qid of the verify/forward that caused it, which is what lets the
    /// assembler stitch across the txid rewrite.
    qid: u64,
}

impl Forwarded {
    /// Approximate heap footprint, for the forward-table byte bound.
    fn approx_bytes(&self) -> usize {
        let heap = match &self.rewrite {
            Rewrite::Passthrough | Rewrite::Probe | Rewrite::TcpRelay { .. } => 0,
            Rewrite::ReferralCookie { cookie_question } => cookie_question.name.wire_len(),
            Rewrite::Fabricated {
                cookie_question,
                original,
            } => cookie_question.name.wire_len() + original.wire_len(),
        };
        std::mem::size_of::<Self>() + heap
    }
}

#[derive(Debug)]
struct StashEntry {
    answers: Vec<Record>,
    created: SimTime,
}

impl StashEntry {
    /// Approximate heap footprint, for the stash byte bound.
    fn approx_bytes(&self, key_name: &Name) -> usize {
        std::mem::size_of::<Self>()
            + key_name.wire_len()
            + self
                .answers
                .iter()
                .map(|r| std::mem::size_of::<Record>() + r.name.wire_len() + 16)
                .sum::<usize>()
    }
}

/// The serializable image of a forward-table entry, or `None` for probes
/// and TCP relays (those must not survive a restart or be replicated).
fn fwd_state_of(txid: u16, f: &Forwarded) -> Option<FwdState> {
    let rewrite = match &f.rewrite {
        Rewrite::Passthrough => RewriteState::Passthrough,
        Rewrite::ReferralCookie { cookie_question } => RewriteState::ReferralCookie {
            cookie_question: cookie_question.clone(),
        },
        Rewrite::Fabricated {
            cookie_question,
            original,
        } => RewriteState::Fabricated {
            cookie_question: cookie_question.clone(),
            original: original.clone(),
        },
        Rewrite::Probe | Rewrite::TcpRelay { .. } => return None,
    };
    Some(FwdState {
        txid,
        requester: (f.requester.ip, f.requester.port),
        reply_from: (f.reply_from.ip, f.reply_from.port),
        orig_txid: f.orig_txid,
        rewrite,
        created_nanos: f.created.as_nanos(),
        qid: f.qid,
    })
}

/// Timeout-based liveness tracking for the protected ANS.
#[derive(Debug)]
struct AnsHealth {
    /// Forwarded requests expired without a response since the last ANS
    /// response of any kind.
    consecutive_timeouts: u32,
    down: bool,
    /// Current probe backoff interval (while down).
    probe_interval: SimTime,
    next_probe: SimTime,
    /// When the ANS last responded. Expired forwards issued *before* this
    /// are not counted as timeouts — the ANS proved alive after they were
    /// sent, so their loss says nothing new (and requests black-holed
    /// during an outage must not re-trip the monitor after recovery).
    last_response: SimTime,
}

/// Runtime state of the primary–standby pairing. One struct serves both
/// roles: the primary uses the replication-sequence and pending-change
/// fields, the standby the heartbeat/peer-health fields (which mirror the
/// [`AnsHealth`] machinery: miss counting, then probes with exponential
/// backoff).
#[derive(Debug)]
struct HaRuntime {
    cfg: HaConfig,
    role: HaRole,
    /// Shared channel-authentication secret (derived from `key_seed`).
    secret: SecretKey,
    // -- primary side --
    /// Last sequence number sent on the channel.
    repl_seq: u64,
    /// Key generation included in the last shipped state (`u64::MAX`
    /// until anything is sent), so rotations ride the next delta.
    sent_generation: u64,
    /// Ship a full snapshot on the next tick (startup, or peer resync).
    need_full: bool,
    /// Forward-table keys inserted since the last delta.
    pending_fwd_add: Vec<u16>,
    /// Forward-table keys removed since the last delta.
    pending_fwd_del: Vec<u16>,
    /// Stash keys inserted since the last delta.
    pending_stash_add: Vec<(Ipv4Addr, Name)>,
    /// Stash keys removed since the last delta.
    pending_stash_del: Vec<(Ipv4Addr, Name)>,
    // -- standby side --
    /// Highest sequence number applied.
    applied_seq: u64,
    /// Whether the standby holds a consistent snapshot (false until the
    /// first `Full` arrives, and again after a sequence gap).
    synced: bool,
    /// Earliest time the standby may send another `ResyncReq`. A lossy
    /// channel delivers many out-of-sequence deltas per heartbeat
    /// interval; answering each with a resync request made the primary
    /// ship one full snapshot per miss — a self-amplifying storm.
    next_resync: SimTime,
    /// Current resync-request backoff (doubles per request, capped at
    /// `cfg.probe_max`, reset when a full snapshot lands).
    resync_interval: SimTime,
    /// When the peer last sent an authenticated message.
    last_heartbeat: SimTime,
    /// Consecutive HA ticks without a fresh heartbeat.
    missed: u32,
    /// Whether the peer is currently considered dead.
    peer_down: bool,
    /// Probe backoff while the peer is down and takeover is disabled.
    probe_interval: SimTime,
    next_probe: SimTime,
    /// Whether this guard has claimed the guarded address.
    took_over: bool,
}

impl HaRuntime {
    fn new(cfg: HaConfig, key_seed: u64) -> Self {
        HaRuntime {
            role: cfg.role,
            secret: repl_secret(key_seed),
            repl_seq: 0,
            sent_generation: u64::MAX,
            need_full: true,
            pending_fwd_add: Vec::new(),
            pending_fwd_del: Vec::new(),
            pending_stash_add: Vec::new(),
            pending_stash_del: Vec::new(),
            applied_seq: 0,
            synced: false,
            next_resync: SimTime::ZERO,
            resync_interval: cfg.replication_interval,
            last_heartbeat: SimTime::ZERO,
            missed: 0,
            peer_down: false,
            probe_interval: cfg.replication_interval,
            next_probe: SimTime::ZERO,
            took_over: false,
            cfg,
        }
    }
}

/// Runtime state of a fleet site (master or member). The master pushes
/// [`ReplPayload::FleetKey`] epochs; members apply them and request a
/// catch-up (with backoff) while unsynced.
#[derive(Debug)]
struct FleetRuntime {
    cfg: FleetConfig,
    /// Channel-authentication secret — the same derivation HA uses, so a
    /// site can serve both roles over one port.
    secret: SecretKey,
    /// Member: whether a key epoch has been applied yet.
    synced: bool,
    /// Master: the key generation last pushed (`u64::MAX` until the first
    /// push, so startup always announces epoch 0).
    sent_generation: u64,
    /// Member: earliest time the next catch-up request may go out.
    next_req: SimTime,
    /// Member: current catch-up backoff (doubles per request, capped at
    /// `cfg.req_backoff_max`).
    req_interval: SimTime,
}

impl FleetRuntime {
    fn new(cfg: FleetConfig, key_seed: u64) -> Self {
        FleetRuntime {
            secret: repl_secret(key_seed),
            synced: false,
            sent_generation: u64::MAX,
            next_req: SimTime::ZERO,
            req_interval: cfg.sync_interval,
            cfg,
        }
    }
}

/// The remote DNS guard node.
///
/// Deploy it by routing the ANS's public address *and* the guard subnet to
/// this node, and giving the real ANS a private address:
///
/// ```text
/// sim.add_node(guard_public_ip, cpu, RemoteGuard::new(config, classifier));
/// sim.add_subnet(subnet_base, 24, guard_node);
/// sim.add_node(ans_private_ip, cpu, AuthNode::new(...));
/// ```
pub struct RemoteGuard {
    config: GuardConfig,
    cookies: CookieFactory,
    classifier: AuthorityClassifier,
    rl1: SourceRateLimiter,
    rl2: SourceRateLimiter,
    proxy: TcpProxy,
    fwd: HashMap<u16, Forwarded>,
    /// Insertion order of live `fwd` entries (oldest first) with their
    /// creation stamps; stale fronts (already answered or re-used txids)
    /// are skipped lazily during eviction.
    fwd_order: VecDeque<(u16, SimTime)>,
    fwd_bytes: usize,
    next_txid: u16,
    /// Monotonic journey correlation id, stamped on every decision-point
    /// trace event; never reused (unlike the 16-bit txid space).
    next_qid: u64,
    stash: HashMap<(Ipv4Addr, Name), StashEntry>,
    stash_order: VecDeque<((Ipv4Addr, Name), SimTime)>,
    stash_bytes: usize,
    health: AnsHealth,
    window_count: u64,
    active: bool,
    last_rotation: SimTime,
    /// Live counters (snapshot through [`RemoteGuard::stats`]).
    metrics: GuardMetrics,
    /// All bytes through the guard.
    pub traffic: TrafficMeter,
    /// Bytes exchanged with *unverified* sources (requests in, cookie/TC
    /// responses out) — the amplification-relevant meter.
    pub traffic_unverified: TrafficMeter,
    /// Overload-adaptive admission controller (None ⇒ feature off).
    admission: Option<AdmissionController>,
    /// Where periodic checkpoints are published (None ⇒ no checkpointing).
    checkpoint_store: Option<SharedCheckpointStore>,
    /// Sequence number of the last checkpoint taken or applied.
    checkpoint_seq: u64,
    /// When the last checkpoint was taken (drives the cadence and the
    /// `checkpoint_age_nanos` staleness gauge).
    last_checkpoint: SimTime,
    /// Primary–standby pairing state (None ⇒ standalone guard).
    ha: Option<HaRuntime>,
    /// Anycast-fleet key-sync state (None ⇒ single-site key).
    fleet: Option<FleetRuntime>,
    /// Per-decision-stage latency profiler; a zero-sized no-op unless the
    /// `stage-profiling` cargo feature is on *and* a clock is injected.
    stageprof: crate::stageprof::StageProf,
    /// Streaming source-population sketches (heavy hitters, cardinality,
    /// entropy); a zero-sized no-op unless the `traffic-analytics` cargo
    /// feature is on.
    analytics: crate::analytics::TrafficAnalytics,
}

impl RemoteGuard {
    /// Creates a guard from its configuration and the classifier that knows
    /// the protected ANS's delegations.
    pub fn new(config: GuardConfig, classifier: AuthorityClassifier) -> Self {
        let proxy = TcpProxy::new(
            config.key_seed ^ 0x7CB9,
            config.tcp_conn_rate,
            config.tcp_conn_lifetime,
        );
        RemoteGuard {
            cookies: CookieFactory::from_seed(config.key_seed).with_alg(config.cookie_alg),
            rl1: SourceRateLimiter::new(config.rl1_global_rate, config.rl1_per_source_rate),
            rl2: SourceRateLimiter::per_source_only(config.rl2_per_source_rate),
            proxy,
            fwd: HashMap::new(),
            fwd_order: VecDeque::new(),
            fwd_bytes: 0,
            next_txid: 1,
            next_qid: 1,
            stash: HashMap::new(),
            stash_order: VecDeque::new(),
            stash_bytes: 0,
            health: AnsHealth {
                consecutive_timeouts: 0,
                down: false,
                probe_interval: config.ans_probe_interval,
                next_probe: SimTime::ZERO,
                last_response: SimTime::ZERO,
            },
            window_count: 0,
            active: config.activation_threshold == 0.0,
            last_rotation: SimTime::ZERO,
            metrics: GuardMetrics::default(),
            traffic: TrafficMeter::default(),
            traffic_unverified: TrafficMeter::default(),
            admission: config.admission.clone().map(AdmissionController::new),
            checkpoint_store: None,
            checkpoint_seq: 0,
            last_checkpoint: SimTime::ZERO,
            ha: config.ha.clone().map(|cfg| HaRuntime::new(cfg, config.key_seed)),
            fleet: config
                .fleet
                .clone()
                .map(|cfg| FleetRuntime::new(cfg, config.key_seed)),
            config,
            classifier,
            stageprof: crate::stageprof::StageProf::new(),
            analytics: crate::analytics::TrafficAnalytics::new(),
        }
    }

    /// Creates a guard and immediately applies a previously taken
    /// checkpoint — the crash-restart path. Entries whose deadlines passed
    /// while the guard was down are dropped, never replayed.
    pub fn restore_from_checkpoint(
        config: GuardConfig,
        classifier: AuthorityClassifier,
        cp: &GuardCheckpoint,
        now: SimTime,
    ) -> Self {
        let mut guard = RemoteGuard::new(config, classifier);
        guard.apply_checkpoint(cp, now);
        guard
    }

    /// A snapshot of the guard counters.
    pub fn stats(&self) -> GuardStats {
        self.metrics.snapshot()
    }

    /// Attaches an observability bundle: the guard's counters (plus its
    /// rate limiters and TCP proxy) are adopted into `obs.registry` under
    /// components `guard` and `proxy`, and pipeline decisions start
    /// emitting trace events under component `guard`.
    pub fn attach_obs(&mut self, obs: &obs::Obs) {
        self.metrics.adopt_into(&obs.registry);
        self.rl1.adopt_into(&obs.registry, "guard", "rl1");
        self.rl2.adopt_into(&obs.registry, "guard", "rl2");
        self.proxy.adopt_into(&obs.registry);
        self.stageprof.adopt_into(&obs.registry);
        self.analytics.adopt_into(obs);
        self.metrics.trace = obs.tracer.component("guard");
    }

    /// Arms the stage profiler with a monotonic nanosecond clock (e.g. a
    /// captured `Instant`-based closure in a bench harness). A no-op
    /// unless the crate was built with the `stage-profiling` feature; the
    /// sim-domain guard never reads a wall clock itself.
    pub fn set_stage_clock(&mut self, clock: crate::stageprof::StageClock) {
        self.stageprof.set_clock(clock);
    }

    /// Samples recorded for profiling stage `stage` (see
    /// [`crate::stageprof::STAGE_NAMES`]); always 0 without the
    /// `stage-profiling` feature.
    pub fn stage_sample_count(&self, stage: usize) -> u64 {
        self.stageprof.stage_count(stage)
    }

    /// Runtime switch for the traffic-analytics pipeline (the bench's
    /// reference arm); a no-op without the `traffic-analytics` feature.
    pub fn set_analytics_enabled(&mut self, enabled: bool) {
        self.analytics.set_enabled(enabled);
    }

    /// A freshly derived source-population snapshot (distinct sources,
    /// entropy, top talkers); empty without the `traffic-analytics`
    /// feature.
    pub fn analytics_snapshot(&self) -> obs::sketch::AnalyticsSnapshot {
        self.analytics.snapshot()
    }

    /// A clone of the cumulative traffic sketch for fleet-level merging;
    /// empty without the `traffic-analytics` feature.
    pub fn analytics_sketch(&self) -> obs::sketch::TrafficSketch {
        self.analytics.sketch()
    }

    /// The shared republished snapshot the telemetry `top_sources`
    /// command serves; stays empty without the `traffic-analytics`
    /// feature.
    pub fn analytics_shared(&self) -> crate::analytics::SharedAnalytics {
        self.analytics.shared()
    }

    /// Whether spoof detection is currently engaged.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the health monitor currently judges the ANS down.
    pub fn ans_is_down(&self) -> bool {
        self.health.down
    }

    /// Approximate bytes held by the forward table and answer stash
    /// combined — the quantity bounded by
    /// [`GuardConfig::fwd_bytes_max`]/[`GuardConfig::stash_bytes_max`].
    pub fn table_bytes(&self) -> usize {
        self.fwd_bytes + self.stash_bytes
    }

    /// Mutable access to the configuration. Note that the rate limiters and
    /// TCP proxy are built at construction; changing their rates here does
    /// not rebuild them — but routing-level fields (`tcp_redirect_sources`,
    /// `activation_threshold`, TTLs) take effect immediately.
    pub fn config_mut(&mut self) -> &mut GuardConfig {
        &mut self.config
    }

    /// Rotates the guard's secret key (section III.E).
    pub fn rotate_key(&mut self) {
        self.cookies.rotate();
    }

    /// The guard's cookie factory (tests and the attack crate peek at it).
    pub fn cookie_factory(&self) -> &CookieFactory {
        &self.cookies
    }

    /// Number of live TCP proxy connections.
    pub fn proxy_connections(&self) -> usize {
        self.proxy.open_connections()
    }

    /// TCP proxy counters.
    pub fn proxy_stats(&self) -> crate::tcp_proxy::ProxyStats {
        self.proxy.stats()
    }

    // ---- checkpoint / restore --------------------------------------------

    /// Attaches the store that periodic checkpoints are published to
    /// (enables the cadence configured by
    /// [`GuardConfig::checkpoint_interval`]).
    pub fn attach_checkpoint_store(&mut self, store: SharedCheckpointStore) {
        self.checkpoint_store = Some(store);
    }

    /// Current admission-control tier (`Normal` when the controller is
    /// disabled).
    pub fn admission_tier(&self) -> PressureTier {
        self.admission
            .as_ref()
            .map_or(PressureTier::Normal, |a| a.tier())
    }

    /// The guard's HA role, if paired.
    pub fn ha_role(&self) -> Option<HaRole> {
        self.ha.as_ref().map(|h| h.role)
    }

    /// Whether this guard (a standby) has promoted itself and claimed the
    /// guarded address.
    pub fn has_taken_over(&self) -> bool {
        self.ha.as_ref().is_some_and(|h| h.took_over)
    }

    /// Builds a consistent snapshot of restorable guard state. Pure — the
    /// guard is unchanged; probes and TCP relays are excluded by
    /// construction. Entries are emitted in a deterministic order so equal
    /// states encode to equal bytes.
    pub fn checkpoint(&self, now: SimTime) -> GuardCheckpoint {
        let mut fwd: Vec<FwdState> = self
            .fwd
            .iter()
            .filter_map(|(&txid, f)| fwd_state_of(txid, f))
            .collect();
        fwd.sort_by_key(|f| f.txid);
        let mut stash: Vec<StashState> = self
            .stash
            .iter()
            .map(|((src, name), e)| StashState {
                src: *src,
                name: name.clone(),
                answers: e.answers.clone(),
                created_nanos: e.created.as_nanos(),
            })
            .collect();
        stash.sort_by_key(|s| (u32::from(s.src), format!("{:?}", s.name)));
        GuardCheckpoint {
            version: CHECKPOINT_VERSION,
            seq: self.checkpoint_seq + 1,
            taken_at_nanos: now.as_nanos(),
            key: KeyState::capture(&self.cookies),
            rl1: self.rl1.checkpoint(),
            rl2: self.rl2.checkpoint(),
            next_txid: self.next_txid,
            next_qid: self.next_qid,
            active: self.active,
            last_rotation_nanos: self.last_rotation.as_nanos(),
            fwd,
            stash,
        }
    }

    /// Takes a checkpoint and publishes it to the attached store.
    pub fn take_checkpoint(&mut self, now: SimTime) {
        let Some(store) = self.checkpoint_store.clone() else {
            return;
        };
        let cp = self.checkpoint(now);
        self.checkpoint_seq = cp.seq;
        self.last_checkpoint = now;
        let bytes = cp.encode().len() as u64;
        self.metrics.checkpoints_taken.inc();
        self.metrics.checkpoint_bytes.set(bytes);
        self.metrics.checkpoint_age_nanos.set(0);
        self.metrics.trace.event(
            now.as_nanos(),
            "checkpoint",
            &[("seq", Value::U64(cp.seq)), ("bytes", Value::U64(bytes))],
        );
        store.lock().put(cp);
    }

    /// Replaces restorable state with a checkpoint's. Staleness rules:
    /// forwarding entries past the ANS deadline and stash entries past
    /// [`STASH_TTL`] are dropped — a restart never replays an expired
    /// deadline. Pre-rotation cookies keep verifying because the key state
    /// restores both generations and the generation bit.
    pub fn apply_checkpoint(&mut self, cp: &GuardCheckpoint, now: SimTime) {
        self.cookies = cp.key.to_factory().with_alg(self.config.cookie_alg);
        self.rl1.restore_state(&cp.rl1);
        self.rl2.restore_state(&cp.rl2);
        self.next_txid = cp.next_txid.max(1);
        self.next_qid = cp.next_qid.max(1);
        self.active = if self.config.activation_threshold == 0.0 {
            true
        } else {
            cp.active
        };
        self.last_rotation = SimTime::from_nanos(cp.last_rotation_nanos);
        self.fwd.clear();
        self.fwd_order.clear();
        self.fwd_bytes = 0;
        self.stash.clear();
        self.stash_order.clear();
        self.stash_bytes = 0;
        for f in &cp.fwd {
            self.install_fwd_state(f, now);
        }
        for s in &cp.stash {
            self.install_stash_state(s, now);
        }
        self.checkpoint_seq = cp.seq;
        self.last_checkpoint = SimTime::from_nanos(cp.taken_at_nanos);
        self.metrics.restores.inc();
        self.metrics.trace.event(
            now.as_nanos(),
            "restore",
            &[
                ("seq", Value::U64(cp.seq)),
                ("age_nanos", Value::U64(cp.age(now).as_nanos())),
            ],
        );
    }

    /// Installs one serialized forward entry unless its deadline already
    /// passed (then it is counted stale and dropped, never replayed).
    fn install_fwd_state(&mut self, f: &FwdState, now: SimTime) {
        let created = SimTime::from_nanos(f.created_nanos);
        if now.saturating_sub(created) >= self.config.ans_timeout {
            self.metrics.restore_stale_fwd.inc();
            return;
        }
        let rewrite = match &f.rewrite {
            RewriteState::Passthrough => Rewrite::Passthrough,
            RewriteState::ReferralCookie { cookie_question } => Rewrite::ReferralCookie {
                cookie_question: cookie_question.clone(),
            },
            RewriteState::Fabricated {
                cookie_question,
                original,
            } => Rewrite::Fabricated {
                cookie_question: cookie_question.clone(),
                original: original.clone(),
            },
        };
        self.insert_fwd(
            f.txid,
            Forwarded {
                requester: Endpoint::new(f.requester.0, f.requester.1),
                reply_from: Endpoint::new(f.reply_from.0, f.reply_from.1),
                orig_txid: f.orig_txid,
                rewrite,
                created,
                qid: f.qid,
            },
        );
    }

    /// Installs one serialized stash entry unless it already expired.
    fn install_stash_state(&mut self, s: &StashState, now: SimTime) {
        let created = SimTime::from_nanos(s.created_nanos);
        if now.saturating_sub(created) >= STASH_TTL {
            self.metrics.restore_stale_stash.inc();
            return;
        }
        self.insert_stash(
            (s.src, s.name.clone()),
            StashEntry {
                answers: s.answers.clone(),
                created,
            },
        );
    }

    // ---- primary–standby replication -------------------------------------

    /// Records a replicable forward-table insertion for the next delta.
    fn ha_note_fwd_add(&mut self, txid: u16, rewrite: &Rewrite) {
        if matches!(rewrite, Rewrite::Probe | Rewrite::TcpRelay { .. }) {
            return;
        }
        if let Some(ha) = self.ha.as_mut() {
            if ha.role == HaRole::Primary && !ha.took_over {
                ha.pending_fwd_add.push(txid);
            }
        }
    }

    fn ha_note_fwd_del(&mut self, txid: u16) {
        if let Some(ha) = self.ha.as_mut() {
            if ha.role == HaRole::Primary && !ha.took_over {
                ha.pending_fwd_del.push(txid);
            }
        }
    }

    fn ha_note_stash_add(&mut self, key: &(Ipv4Addr, Name)) {
        if let Some(ha) = self.ha.as_mut() {
            if ha.role == HaRole::Primary && !ha.took_over {
                ha.pending_stash_add.push(key.clone());
            }
        }
    }

    fn ha_note_stash_del(&mut self, key: &(Ipv4Addr, Name)) {
        if let Some(ha) = self.ha.as_mut() {
            if ha.role == HaRole::Primary && !ha.took_over {
                ha.pending_stash_del.push(key.clone());
            }
        }
    }

    /// Sends one authenticated replication message to the peer.
    fn send_repl(&mut self, ctx: &mut Context<'_>, payload: ReplPayload) {
        let Some(ha) = self.ha.as_ref() else {
            return;
        };
        let wire = encode_repl(&payload, &ha.secret);
        let pkt = Packet::udp(
            Endpoint::new(ha.cfg.local_addr, REPL_PORT),
            Endpoint::new(ha.cfg.peer_addr, REPL_PORT),
            wire,
        );
        self.tx(ctx, pkt);
    }

    /// Handles an inbound replication-channel datagram — HA pair traffic
    /// and fleet key-sync share the port and the authenticated framing.
    /// Every authenticated message from the HA peer doubles as a
    /// heartbeat; fleet messages carry no liveness meaning.
    fn handle_repl(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let now = ctx.now();
        let from_ha_peer = self
            .ha
            .as_ref()
            .is_some_and(|ha| pkt.src.ip == ha.cfg.peer_addr);
        let from_fleet_master = self
            .fleet
            .as_ref()
            .is_some_and(|f| !f.cfg.master && pkt.src.ip == f.cfg.master_addr);
        let from_fleet_member = self
            .fleet
            .as_ref()
            .is_some_and(|f| f.cfg.master && f.cfg.peers.contains(&pkt.src.ip));
        if !from_ha_peer && !from_fleet_master && !from_fleet_member {
            self.metrics.repl_rejected.inc();
            return;
        }
        // HA and fleet derive the identical channel secret from the shared
        // key seed, so either runtime's copy authenticates the message.
        let Some(secret) = self
            .ha
            .as_ref()
            .map(|ha| ha.secret.clone())
            .or_else(|| self.fleet.as_ref().map(|f| f.secret.clone()))
        else {
            return;
        };
        let payload = match decode_repl(&pkt.payload, &secret) {
            Ok(p) => p,
            Err(_) => {
                self.metrics.repl_rejected.inc();
                return;
            }
        };
        if from_ha_peer {
            self.metrics.heartbeats_seen.inc();
            if let Some(ha) = self.ha.as_mut() {
                ha.last_heartbeat = now;
                ha.missed = 0;
                if ha.peer_down {
                    ha.peer_down = false;
                    ha.probe_interval = ha.cfg.replication_interval;
                }
            }
        }
        match payload {
            ReplPayload::Full(cp) => {
                if !from_ha_peer || self.ha.as_ref().is_none_or(|ha| ha.role != HaRole::Standby)
                {
                    return;
                }
                self.apply_checkpoint(&cp, now);
                if let Some(ha) = self.ha.as_mut() {
                    ha.applied_seq = cp.seq;
                    ha.synced = true;
                    // A consistent snapshot ends any resync conversation.
                    ha.resync_interval = ha.cfg.replication_interval;
                    ha.next_resync = SimTime::ZERO;
                }
                self.metrics.repl_deltas_applied.inc();
                self.metrics.checkpoint_age_nanos.set(0);
            }
            ReplPayload::Delta(d) => {
                if !from_ha_peer || self.ha.as_ref().is_none_or(|ha| ha.role != HaRole::Standby)
                {
                    return;
                }
                let Some((synced, applied_seq)) =
                    self.ha.as_ref().map(|ha| (ha.synced, ha.applied_seq))
                else {
                    return;
                };
                if !synced || d.seq != applied_seq + 1 {
                    // Sequence gap (or never synced): ask for a full
                    // snapshot rather than applying a delta out of order —
                    // but back the requests off. On a lossy channel every
                    // surviving delta is out of sequence; answering each
                    // with a ResyncReq made the primary ship a full
                    // snapshot per miss, a self-amplifying storm.
                    let send = self.ha.as_mut().is_some_and(|ha| {
                        ha.synced = false;
                        if now >= ha.next_resync {
                            ha.next_resync = now + ha.resync_interval;
                            ha.resync_interval =
                                (ha.resync_interval * 2).min(ha.cfg.probe_max);
                            true
                        } else {
                            false
                        }
                    });
                    if send {
                        self.metrics.repl_resyncs.inc();
                        self.send_repl(ctx, ReplPayload::ResyncReq { have_seq: applied_seq });
                    }
                    return;
                }
                self.apply_delta(ctx, d);
            }
            ReplPayload::ResyncReq { .. } => {
                if !from_ha_peer {
                    return;
                }
                if let Some(ha) = self.ha.as_mut() {
                    if ha.role == HaRole::Primary {
                        ha.need_full = true;
                    }
                }
            }
            ReplPayload::FleetKey { epoch, key } => {
                if !from_fleet_master {
                    return;
                }
                self.apply_fleet_key(now, epoch, &key);
            }
            ReplPayload::FleetKeyReq { have_epoch } => {
                if !from_fleet_member {
                    return;
                }
                if have_epoch != self.cookies.generation() {
                    let key = KeyState::capture(&self.cookies);
                    let epoch = self.cookies.generation();
                    self.metrics.fleet_keys_sent.inc();
                    self.send_fleet(ctx, pkt.src.ip, ReplPayload::FleetKey { epoch, key });
                }
            }
        }
    }

    /// Applies a pushed fleet key epoch (member side). The carried state
    /// includes the previous key, so cookies minted under the prior epoch
    /// keep verifying here — the fleet-wide grace window.
    fn apply_fleet_key(&mut self, now: SimTime, epoch: u64, key: &KeyState) {
        let already = self
            .fleet
            .as_ref()
            .is_some_and(|f| f.synced && self.cookies.generation() == epoch);
        if already {
            return;
        }
        self.cookies = key.to_factory().with_alg(self.config.cookie_alg);
        self.last_rotation = now;
        if let Some(f) = self.fleet.as_mut() {
            f.synced = true;
            f.req_interval = f.cfg.sync_interval;
        }
        self.metrics.fleet_keys_applied.inc();
        self.metrics.trace.event(
            now.as_nanos(),
            "fleet_key_rotate",
            &[("epoch", Value::U64(epoch)), ("role", Value::Str("member"))],
        );
    }

    /// Sends one authenticated fleet message to a specific site.
    fn send_fleet(&mut self, ctx: &mut Context<'_>, to: Ipv4Addr, payload: ReplPayload) {
        let Some(f) = self.fleet.as_ref() else {
            return;
        };
        let wire = encode_repl(&payload, &f.secret);
        let pkt = Packet::udp(
            Endpoint::new(f.cfg.local_addr, REPL_PORT),
            Endpoint::new(to, REPL_PORT),
            wire,
        );
        self.tx(ctx, pkt);
    }

    /// One fleet-sync tick: the master announces a new key epoch to every
    /// member when its generation moved; an unsynced member requests a
    /// catch-up with exponential backoff.
    fn on_fleet_tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let Some(f) = self.fleet.as_ref() else {
            return;
        };
        ctx.set_daemon_timer(f.cfg.sync_interval, TAG_FLEET);
        if f.cfg.master {
            let generation = self.cookies.generation();
            if self.fleet.as_ref().is_some_and(|f| f.sent_generation == generation) {
                return;
            }
            let key = KeyState::capture(&self.cookies);
            let peers = f.cfg.peers.clone();
            if let Some(f) = self.fleet.as_mut() {
                f.sent_generation = generation;
            }
            for peer in peers {
                self.metrics.fleet_keys_sent.inc();
                self.send_fleet(
                    ctx,
                    peer,
                    ReplPayload::FleetKey {
                        epoch: generation,
                        key: key.clone(),
                    },
                );
            }
            self.metrics.trace.event(
                now.as_nanos(),
                "fleet_key_rotate",
                &[
                    ("epoch", Value::U64(generation)),
                    ("role", Value::Str("master")),
                ],
            );
        } else if !f.synced && now >= f.next_req {
            // `u64::MAX` = "never applied an epoch", so the master always
            // answers — even when both sides still sit at generation 0.
            let master = f.cfg.master_addr;
            if let Some(f) = self.fleet.as_mut() {
                f.next_req = now + f.req_interval;
                f.req_interval = (f.req_interval * 2).min(f.cfg.req_backoff_max);
            }
            self.metrics.fleet_key_reqs.inc();
            self.send_fleet(ctx, master, ReplPayload::FleetKeyReq { have_epoch: u64::MAX });
        }
    }

    /// Applies one in-sequence replication delta (standby side).
    fn apply_delta(&mut self, ctx: &mut Context<'_>, d: ReplDelta) {
        let now = ctx.now();
        if let Some(k) = &d.key {
            self.cookies = k.to_factory().with_alg(self.config.cookie_alg);
        }
        for f in &d.fwd_add {
            self.install_fwd_state(f, now);
        }
        for txid in &d.fwd_del {
            self.remove_fwd(*txid);
        }
        for s in &d.stash_add {
            self.install_stash_state(s, now);
        }
        for key in &d.stash_del {
            self.remove_stash(key);
        }
        self.next_txid = self.next_txid.max(d.next_txid.max(1));
        self.next_qid = self.next_qid.max(d.next_qid);
        if self.config.activation_threshold > 0.0 {
            self.active = d.active;
        }
        if let Some(ha) = self.ha.as_mut() {
            ha.applied_seq = d.seq;
        }
        self.metrics.repl_deltas_applied.inc();
        self.metrics.checkpoint_age_nanos.set(0);
    }

    /// One replication-interval tick: the primary ships state, the standby
    /// watches heartbeats and takes over past the miss threshold.
    fn on_ha_tick(&mut self, ctx: &mut Context<'_>) {
        let Some(ha) = self.ha.as_ref() else {
            return;
        };
        ctx.set_daemon_timer(ha.cfg.replication_interval, TAG_HA);
        match ha.role {
            HaRole::Primary => self.ha_primary_tick(ctx),
            HaRole::Standby => self.ha_standby_tick(ctx),
        }
    }

    fn ha_primary_tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if self.ha.as_ref().is_none_or(|ha| ha.took_over) {
            // A promoted standby serves traffic but has no peer to feed.
            return;
        }
        let Some(need_full) = self.ha.as_ref().map(|ha| ha.need_full) else {
            return;
        };
        let generation = self.cookies.generation();
        let payload = if need_full {
            let mut cp = self.checkpoint(now);
            let Some(ha) = self.ha.as_mut() else {
                return;
            };
            ha.repl_seq += 1;
            cp.seq = ha.repl_seq;
            ha.need_full = false;
            ha.sent_generation = generation;
            ha.pending_fwd_add.clear();
            ha.pending_fwd_del.clear();
            ha.pending_stash_add.clear();
            ha.pending_stash_del.clear();
            ReplPayload::Full(cp)
        } else {
            let key = if self.ha.as_ref().is_some_and(|ha| ha.sent_generation != generation) {
                Some(KeyState::capture(&self.cookies))
            } else {
                None
            };
            let (mut add_txids, fwd_del, stash_add_keys, stash_del) = {
                let Some(ha) = self.ha.as_mut() else {
                    return;
                };
                ha.sent_generation = generation;
                (
                    std::mem::take(&mut ha.pending_fwd_add),
                    std::mem::take(&mut ha.pending_fwd_del),
                    std::mem::take(&mut ha.pending_stash_add),
                    std::mem::take(&mut ha.pending_stash_del),
                )
            };
            add_txids.sort_unstable();
            add_txids.dedup();
            let fwd_add: Vec<FwdState> = add_txids
                .iter()
                .filter_map(|txid| self.fwd.get(txid).and_then(|f| fwd_state_of(*txid, f)))
                .collect();
            let stash_add: Vec<StashState> = stash_add_keys
                .iter()
                .filter_map(|key| {
                    self.stash.get(key).map(|e| StashState {
                        src: key.0,
                        name: key.1.clone(),
                        answers: e.answers.clone(),
                        created_nanos: e.created.as_nanos(),
                    })
                })
                .collect();
            let Some(ha) = self.ha.as_mut() else {
                return;
            };
            ha.repl_seq += 1;
            ReplPayload::Delta(ReplDelta {
                seq: ha.repl_seq,
                key,
                fwd_add,
                fwd_del,
                stash_add,
                stash_del,
                next_txid: self.next_txid,
                next_qid: self.next_qid,
                active: self.active,
            })
        };
        self.metrics.repl_deltas_sent.inc();
        self.send_repl(ctx, payload);
    }

    fn ha_standby_tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let (age, became_down, do_takeover, probe_seq) = {
            let Some(ha) = self.ha.as_mut() else {
                return;
            };
            if ha.took_over {
                return;
            }
            let age = now.saturating_sub(ha.last_heartbeat);
            if age > ha.cfg.replication_interval {
                ha.missed += 1;
            } else {
                ha.missed = 0;
            }
            let mut became_down = false;
            if !ha.peer_down && ha.missed >= ha.cfg.heartbeat_miss_threshold {
                ha.peer_down = true;
                ha.next_probe = now;
                ha.probe_interval = ha.cfg.replication_interval;
                became_down = true;
            }
            let mut do_takeover = false;
            let mut probe_seq = None;
            if ha.peer_down {
                if ha.cfg.takeover {
                    do_takeover = true;
                } else if now >= ha.next_probe {
                    // Takeover disabled: keep probing the peer with
                    // exponential backoff (the ANS-probe discipline).
                    probe_seq = Some(ha.applied_seq);
                    ha.next_probe = now + ha.probe_interval;
                    ha.probe_interval = (ha.probe_interval * 2).min(ha.cfg.probe_max);
                }
            }
            (age, became_down, do_takeover, probe_seq)
        };
        // The standby's recoverable state ages from its last applied
        // replication message — that is what `checkpoint_lag` alerts on.
        self.metrics.checkpoint_age_nanos.set(age.as_nanos());
        if became_down {
            self.metrics.peer_down_events.inc();
            self.metrics
                .trace
                .event(now.as_nanos(), "peer_down", &[]);
        }
        if do_takeover {
            self.ha_take_over(ctx);
        } else if let Some(have_seq) = probe_seq {
            self.send_repl(ctx, ReplPayload::ResyncReq { have_seq });
        }
    }

    /// Promotes this standby: claim the guarded public address and the
    /// COOKIE2 subnet so in-flight verified sources keep working without a
    /// fresh cookie round-trip (their cookies verify against the
    /// replicated key, COOKIE2 destinations hash identically).
    fn ha_take_over(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        {
            let Some(ha) = self.ha.as_mut() else {
                return;
            };
            ha.took_over = true;
            ha.role = HaRole::Primary;
            ha.need_full = true;
        }
        ctx.claim_address(self.config.public_addr);
        let host_bits = 32 - (self.config.subnet_range + 1).leading_zeros();
        ctx.claim_subnet(self.config.subnet_base, (32 - host_bits) as u8);
        self.last_checkpoint = now;
        self.metrics.failover_takeovers.inc();
        self.metrics.checkpoint_age_nanos.set(0);
        self.metrics.trace.event(
            now.as_nanos(),
            "takeover",
            &[("addr", Value::Ip(self.config.public_addr))],
        );
    }

    /// Sheds the current unverified request if the admission controller
    /// says so. Must be called at most once per request (the Surge tier
    /// alternates).
    fn shed_unverified_now(&mut self, now: SimTime, src: Ipv4Addr) -> bool {
        let Some(adm) = self.admission.as_mut() else {
            return false;
        };
        if adm.shed_unverified() {
            let tier = adm.tier();
            self.metrics.admission_shed.inc();
            self.metrics.trace.event(
                now.as_nanos(),
                "admission_shed",
                &[("src", Value::Ip(src)), ("tier", Value::Str(tier.name()))],
            );
            true
        } else {
            false
        }
    }

    // ---- helpers ---------------------------------------------------------

    fn tx(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        ctx.charge(netsim::cost::packet_cost());
        self.traffic.tx(pkt.wire_size());
        ctx.send(pkt);
    }

    fn tx_unverified(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.traffic_unverified.tx(pkt.wire_size());
        self.tx(ctx, pkt);
    }

    fn charge_cookie(&self, ctx: &mut Context<'_>) {
        ctx.charge(netsim::cost::cookie_cost());
    }

    /// Sends a minimal liveness probe toward the ANS. Any response —
    /// whatever its rcode — marks the ANS alive again.
    fn send_probe(&mut self, ctx: &mut Context<'_>) {
        self.metrics.ans_probes.inc();
        self.metrics.trace.debug(ctx.now().as_nanos(), "ans_probe", &[]);
        let probe =
            Message::iterative_query(0, Name::root(), dnswire::types::RrType::Ns);
        let me = Endpoint::new(self.config.public_addr, DNS_PORT);
        let qid = self.alloc_qid();
        self.forward_to_ans(ctx, probe, me, me, Rewrite::Probe, qid);
    }

    /// Allocates the next upstream transaction id in O(1). If the id is
    /// still occupied (possible only when >65 K requests are in flight,
    /// i.e. the ANS is hopelessly behind), the old entry is overwritten —
    /// its response, if it ever comes, is treated as lost. This mirrors a
    /// real NAT-style table shedding stale flows under overload.
    fn alloc_txid(&mut self) -> u16 {
        let id = self.next_txid;
        self.next_txid = self.next_txid.wrapping_add(1).max(1);
        self.remove_fwd(id);
        id
    }

    /// Allocates a journey correlation id.
    fn alloc_qid(&mut self) -> u64 {
        let id = self.next_qid;
        self.next_qid += 1;
        id
    }

    /// Inserts a forward-table entry, evicting oldest entries past the
    /// byte bound.
    fn insert_fwd(&mut self, txid: u16, entry: Forwarded) {
        let now = entry.created;
        self.ha_note_fwd_add(txid, &entry.rewrite);
        self.fwd_bytes += entry.approx_bytes();
        self.fwd_order.push_back((txid, entry.created));
        if let Some(old) = self.fwd.insert(txid, entry) {
            self.fwd_bytes -= old.approx_bytes();
        }
        while self.fwd_bytes > self.config.fwd_bytes_max {
            let Some((old_txid, created)) = self.fwd_order.pop_front() else {
                break;
            };
            // Skip stale queue fronts: answered entries, or txids re-used
            // since (their live entry has a newer creation stamp).
            if self.fwd.get(&old_txid).is_some_and(|f| f.created == created) {
                self.remove_fwd(old_txid);
                self.metrics.fwd_evicted.inc();
                self.metrics.trace.event(
                    now.as_nanos(),
                    "evict",
                    &[("table", Value::Str("fwd")), ("txid", Value::U64(old_txid as u64))],
                );
            }
        }
    }

    fn remove_fwd(&mut self, txid: u16) -> Option<Forwarded> {
        let entry = self.fwd.remove(&txid)?;
        self.fwd_bytes -= entry.approx_bytes();
        if !matches!(entry.rewrite, Rewrite::Probe | Rewrite::TcpRelay { .. }) {
            self.ha_note_fwd_del(txid);
        }
        Some(entry)
    }

    /// Inserts a stash entry, evicting oldest entries past the byte bound.
    fn insert_stash(&mut self, key: (Ipv4Addr, Name), entry: StashEntry) {
        let now = entry.created;
        self.ha_note_stash_add(&key);
        self.stash_bytes += entry.approx_bytes(&key.1);
        self.stash_order.push_back((key.clone(), entry.created));
        if let Some(old) = self.stash.insert(key.clone(), entry) {
            self.stash_bytes -= old.approx_bytes(&key.1);
        }
        while self.stash_bytes > self.config.stash_bytes_max {
            let Some((old_key, created)) = self.stash_order.pop_front() else {
                break;
            };
            if self
                .stash
                .get(&old_key)
                .is_some_and(|s| s.created == created)
            {
                self.remove_stash(&old_key);
                self.metrics.stash_evicted.inc();
                self.metrics.trace.event(
                    now.as_nanos(),
                    "evict",
                    &[("table", Value::Str("stash")), ("src", Value::Ip(old_key.0))],
                );
            }
        }
    }

    fn remove_stash(&mut self, key: &(Ipv4Addr, Name)) -> Option<StashEntry> {
        let entry = self.stash.remove(key)?;
        self.stash_bytes -= entry.approx_bytes(&key.1);
        self.ha_note_stash_del(key);
        Some(entry)
    }

    fn forward_to_ans(
        &mut self,
        ctx: &mut Context<'_>,
        mut query: Message,
        requester: Endpoint,
        reply_from: Endpoint,
        rewrite: Rewrite,
        qid: u64,
    ) {
        if self.health.down
            && self.config.health_policy == AnsHealthPolicy::FailClosed
            && !matches!(rewrite, Rewrite::Probe)
        {
            self.metrics.failed_closed.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "fail_closed",
                &[("src", Value::Ip(requester.ip))],
            );
            // UDP requesters get an immediate SERVFAIL so resolvers move on
            // to a sibling server; TCP relays are simply not forwarded (the
            // proxy connection is reaped by the lifetime cap).
            if !matches!(rewrite, Rewrite::TcpRelay { .. }) {
                let mut resp = query.response();
                resp.header.rcode = dnswire::types::Rcode::ServFail;
                let pkt = Packet::udp(reply_from, requester, resp.encode());
                self.tx(ctx, pkt);
            }
            return;
        }
        let orig_txid = query.header.id;
        let txid = self.alloc_txid();
        query.header.id = txid;
        let probe = matches!(rewrite, Rewrite::Probe);
        self.insert_fwd(
            txid,
            Forwarded {
                requester,
                reply_from,
                orig_txid,
                rewrite,
                created: ctx.now(),
                qid,
            },
        );
        self.metrics.forwarded.inc();
        // Info-level with both sides of the txid rewrite: the journey
        // assembler's bridge from client-facing to ANS-facing identity.
        // Probes stay at debug — they are not client transactions.
        if probe {
            self.metrics.trace.debug(
                ctx.now().as_nanos(),
                "forward",
                &[("src", Value::Ip(requester.ip)), ("qid", Value::U64(qid))],
            );
        } else {
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "forward",
                &[
                    ("src", Value::Ip(requester.ip)),
                    ("qid", Value::U64(qid)),
                    ("txid", Value::U64(txid as u64)),
                    ("orig_txid", Value::U64(orig_txid as u64)),
                ],
            );
        }
        let pkt = Packet::udp(
            Endpoint::new(self.config.public_addr, DNS_PORT),
            Endpoint::new(self.config.ans_addr, DNS_PORT),
            query.encode(),
        );
        self.tx(ctx, pkt);
    }

    /// Builds the fabricated NS label: `PR` + 8 hex cookie chars + the
    /// first label of the target (child zone or query name).
    fn fabricate_label(&self, src: Ipv4Addr, target_first_label: &[u8]) -> Vec<u8> {
        let cookie = self.cookies.generate(src);
        let mut label = Vec::with_capacity(10 + target_first_label.len());
        label.extend_from_slice(b"PR");
        label.extend_from_slice(cookie.ns_label_suffix().as_bytes());
        label.extend_from_slice(target_first_label);
        label
    }

    /// Parses a fabricated label back into `(hex_cookie, original_first_label)`.
    /// The prefix check is case-insensitive because DNS names compare (and
    /// our wire library canonicalises) case-insensitively.
    fn parse_cookie_label(label: &[u8]) -> Option<(&str, &[u8])> {
        let rest = match label.split_first_chunk::<2>() {
            Some((prefix, rest)) if prefix.eq_ignore_ascii_case(b"PR") => rest,
            _ => return None,
        };
        if rest.len() < 8 {
            return None;
        }
        let (hex, original) = rest.split_at(8);
        let hex = std::str::from_utf8(hex).ok()?;
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some((hex, original))
    }

    /// The usable `COOKIE2` offset space, excluding the guard's own public
    /// address when it falls inside the subnet (a `COOKIE2` equal to the
    /// public address would be routed into the plain-query path).
    fn cookie2_space(&self) -> (u32, Option<u32>) {
        let base = u32::from(self.config.subnet_base);
        let public = u32::from(self.config.public_addr);
        let pub_off = public
            .checked_sub(base + 1)
            .filter(|&off| off < self.config.subnet_range);
        let effective = self.config.subnet_range - pub_off.is_some() as u32;
        debug_assert!(effective >= 1, "cookie2 subnet too small");
        (effective, pub_off)
    }

    fn cookie2_addr(&self, src: Ipv4Addr) -> Ipv4Addr {
        let (effective, pub_off) = self.cookie2_space();
        let y = self.cookies.generate_subnet_offset(src, effective);
        let y = match pub_off {
            Some(p) if y >= p => y + 1,
            _ => y,
        };
        Ipv4Addr::from(u32::from(self.config.subnet_base) + 1 + y)
    }

    fn cookie2_matches(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let (effective, pub_off) = self.cookie2_space();
        let base = u32::from(self.config.subnet_base);
        let host = u32::from(dst);
        if host <= base {
            return false;
        }
        let h = host - base - 1;
        if Some(h) == pub_off {
            return false;
        }
        let presented = match pub_off {
            Some(p) if h > p => h - 1,
            _ => h,
        };
        self.cookies.verify_subnet_offset(src, presented, effective)
    }

    // ---- pipeline --------------------------------------------------------

    fn handle_udp(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        // Replication traffic is control-plane, not DNS: it is dispatched
        // before the datagram counter so the pipeline conservation
        // invariant keeps covering exactly the DNS data path. It is also
        // outside the profiled DNS pipeline.
        if (self.ha.is_some() || self.fleet.is_some()) && pkt.dst.port == REPL_PORT {
            self.handle_repl(ctx, pkt);
            return;
        }
        self.stageprof.begin();
        self.handle_udp_inner(ctx, pkt);
        self.stageprof.finish();
    }

    fn handle_udp_inner(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.metrics.udp_datagrams.inc();
        self.analytics.observe(ctx.now().as_nanos(), pkt.src.ip);
        let Ok(msg) = Message::decode(&pkt.payload) else {
            self.metrics.unparseable.inc();
            return;
        };
        self.stageprof.lap(crate::stageprof::STAGE_DECODE);
        if msg.header.response {
            if pkt.src.ip == self.config.ans_addr {
                self.handle_ans_response(ctx, msg);
            } else {
                // A response-flagged datagram not from the ANS: spoofed or
                // misrouted; dropped without further processing.
                self.metrics.resp_foreign.inc();
            }
            return;
        }
        self.window_count += 1;

        if !self.active {
            // Protection disengaged: transparent forwarding.
            self.metrics.passthrough.inc();
            let qid = self.alloc_qid();
            self.metrics.trace.debug(
                ctx.now().as_nanos(),
                "passthrough",
                &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
            );
            self.forward_to_ans(ctx, msg, pkt.src, pkt.dst, Rewrite::Passthrough, qid);
            return;
        }

        // 1. Cookie extension (modified-DNS scheme) takes precedence.
        if let Some(ext) = cookie_ext::find_cookie(&msg) {
            if ext.is_request() {
                // Unverified work: sheddable under overload, before it can
                // cost an RL1 decision or a cookie computation.
                if self.shed_unverified_now(ctx.now(), pkt.src.ip) {
                    return;
                }
                // Grant a cookie — through Rate-Limiter1 (reflection bound).
                let admitted = self.rl1.admit(ctx.now(), pkt.src.ip);
                self.stageprof.lap(crate::stageprof::STAGE_ADMIT);
                if !admitted {
                    self.metrics.rl1_dropped.inc();
                    self.metrics.trace.event(
                        ctx.now().as_nanos(),
                        "rl_drop",
                        &[("limiter", Value::Str("rl1")), ("src", Value::Ip(pkt.src.ip))],
                    );
                    return;
                }
                self.charge_cookie(ctx);
                let cookie = self.cookies.generate(pkt.src.ip);
                let mut grant = msg.response();
                cookie_ext::attach_cookie(&mut grant, cookie.0, self.config.cookie_ttl);
                self.metrics.grants_sent.inc();
                let qid = self.alloc_qid();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "grant",
                    &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
                );
                self.traffic_unverified.rx(pkt.wire_size());
                let reply = Packet::udp(pkt.dst, pkt.src, grant.encode());
                self.tx_unverified(ctx, reply);
                return;
            }
            self.charge_cookie(ctx);
            let qid = self.alloc_qid();
            let valid = self.cookies.verify(pkt.src.ip, &guardhash::Cookie(ext.cookie));
            self.stageprof.lap(crate::stageprof::STAGE_VERIFY);
            if valid {
                self.metrics.ext_valid.inc();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "verify",
                    &[
                        ("scheme", Value::Str("ext")),
                        ("verdict", Value::Str("valid")),
                        ("src", Value::Ip(pkt.src.ip)),
                        ("qid", Value::U64(qid)),
                    ],
                );
                let admitted = self.rl2.admit(ctx.now(), pkt.src.ip);
                self.stageprof.lap(crate::stageprof::STAGE_ADMIT);
                if !admitted {
                    self.metrics.rl2_dropped.inc();
                    self.metrics.trace.event(
                        ctx.now().as_nanos(),
                        "rl_drop",
                        &[
                            ("limiter", Value::Str("rl2")),
                            ("src", Value::Ip(pkt.src.ip)),
                            ("qid", Value::U64(qid)),
                        ],
                    );
                    return;
                }
                let mut inner = msg;
                cookie_ext::strip_cookie(&mut inner);
                self.forward_to_ans(ctx, inner, pkt.src, pkt.dst, Rewrite::Passthrough, qid);
            } else {
                self.metrics.ext_invalid.inc();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "verify",
                    &[
                        ("scheme", Value::Str("ext")),
                        ("verdict", Value::Str("invalid")),
                        ("src", Value::Ip(pkt.src.ip)),
                        ("qid", Value::U64(qid)),
                    ],
                );
            }
            return;
        }

        // 2. COOKIE2 destination (message 7 of the fabricated NS/IP flow)?
        if pkt.dst.ip != self.config.public_addr {
            self.charge_cookie(ctx);
            let qid = self.alloc_qid();
            let cookie2_ok = self.cookie2_matches(pkt.src.ip, pkt.dst.ip);
            self.stageprof.lap(crate::stageprof::STAGE_VERIFY);
            if !cookie2_ok {
                self.metrics.cookie2_invalid.inc();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "verify",
                    &[
                        ("scheme", Value::Str("cookie2")),
                        ("verdict", Value::Str("invalid")),
                        ("src", Value::Ip(pkt.src.ip)),
                        ("qid", Value::U64(qid)),
                    ],
                );
                return;
            }
            self.metrics.cookie2_valid.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "verify",
                &[
                    ("scheme", Value::Str("cookie2")),
                    ("verdict", Value::Str("valid")),
                    ("src", Value::Ip(pkt.src.ip)),
                    ("qid", Value::U64(qid)),
                ],
            );
            let admitted = self.rl2.admit(ctx.now(), pkt.src.ip);
            self.stageprof.lap(crate::stageprof::STAGE_ADMIT);
            if !admitted {
                self.metrics.rl2_dropped.inc();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "rl_drop",
                    &[
                        ("limiter", Value::Str("rl2")),
                        ("src", Value::Ip(pkt.src.ip)),
                        ("qid", Value::U64(qid)),
                    ],
                );
                return;
            }
            let Some(question) = msg.question().cloned() else {
                return;
            };
            // One-shot stash from the first exchange (messages 4/5).
            if let Some(entry) = self.remove_stash(&(pkt.src.ip, question.name.clone())) {
                self.metrics.stash_hits.inc();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "stash_hit",
                    &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
                );
                let mut resp = msg.response();
                resp.header.authoritative = true;
                resp.answers = entry.answers;
                let (wire, _) = resp
                    .encode_with_limit(MAX_UDP_PAYLOAD)
                    .unwrap_or_else(|_| (resp.encode(), false));
                let reply = Packet::udp(pkt.dst, pkt.src, wire);
                self.tx(ctx, reply);
                return;
            }
            self.forward_to_ans(ctx, msg, pkt.src, pkt.dst, Rewrite::Passthrough, qid);
            return;
        }

        // 3. Cookie-embedded NS-name query (message 3 of the DNS-based
        // scheme)?
        let first_label = msg.question().and_then(|q| q.name.first_label().map(|l| l.to_vec()));
        if let Some(label) = first_label.as_deref() {
            if let Some((hex, original_first)) = Self::parse_cookie_label(label) {
                self.handle_cookie_name_query(ctx, pkt, msg, hex.to_string(), original_first.to_vec());
                return;
            }
        }

        // 4. Plain cookie-less query: dispatch per configured scheme.
        self.handle_plain_query(ctx, pkt, msg);
    }

    fn handle_cookie_name_query(
        &mut self,
        ctx: &mut Context<'_>,
        pkt: Packet,
        msg: Message,
        hex: String,
        original_first: Vec<u8>,
    ) {
        self.charge_cookie(ctx);
        let qid = self.alloc_qid();
        let suffix_ok = self.cookies.verify_ns_suffix(pkt.src.ip, &hex);
        self.stageprof.lap(crate::stageprof::STAGE_VERIFY);
        if !suffix_ok {
            self.metrics.ns_cookie_invalid.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "verify",
                &[
                    ("scheme", Value::Str("ns_label")),
                    ("verdict", Value::Str("invalid")),
                    ("src", Value::Ip(pkt.src.ip)),
                    ("qid", Value::U64(qid)),
                ],
            );
            return;
        }
        // The caller only routes here after reading the question's first
        // label, but stay panic-free on this wire-input path: a questionless
        // message lands in the invalid-cookie bucket like any other drop.
        let Some(cookie_question) = msg.question().cloned() else {
            self.metrics.ns_cookie_invalid.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "verify",
                &[
                    ("scheme", Value::Str("ns_label")),
                    ("verdict", Value::Str("invalid")),
                    ("src", Value::Ip(pkt.src.ip)),
                    ("qid", Value::U64(qid)),
                ],
            );
            return;
        };
        // Restore the original name BEFORE declaring the query valid: a
        // cookie that verifies but encodes an unrestorable name is still a
        // drop, and must land in exactly one disposition bucket.
        let Ok(original) = cookie_question.name.with_first_label(&original_first) else {
            self.metrics.ns_cookie_invalid.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "verify",
                &[
                    ("scheme", Value::Str("ns_label")),
                    ("verdict", Value::Str("invalid")),
                    ("src", Value::Ip(pkt.src.ip)),
                    ("qid", Value::U64(qid)),
                ],
            );
            return;
        };
        self.metrics.ns_cookie_valid.inc();
        self.metrics.trace.event(
            ctx.now().as_nanos(),
            "verify",
            &[
                ("scheme", Value::Str("ns_label")),
                ("verdict", Value::Str("valid")),
                ("src", Value::Ip(pkt.src.ip)),
                ("qid", Value::U64(qid)),
            ],
        );
        if !self.rl2.admit(ctx.now(), pkt.src.ip) {
            self.metrics.rl2_dropped.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "rl_drop",
                &[
                    ("limiter", Value::Str("rl2")),
                    ("src", Value::Ip(pkt.src.ip)),
                    ("qid", Value::U64(qid)),
                ],
            );
            return;
        }
        let restored = Message::iterative_query(msg.header.id, original.clone(), dnswire::types::RrType::A);
        match self.classifier.classify(&original) {
            Classification::Referral { .. } | Classification::Unknown => {
                self.forward_to_ans(
                    ctx,
                    restored,
                    pkt.src,
                    pkt.dst,
                    Rewrite::ReferralCookie { cookie_question },
                    qid,
                );
            }
            Classification::NonReferral => {
                self.forward_to_ans(
                    ctx,
                    restored,
                    pkt.src,
                    pkt.dst,
                    Rewrite::Fabricated {
                        cookie_question,
                        original,
                    },
                    qid,
                );
            }
        }
    }

    fn handle_plain_query(&mut self, ctx: &mut Context<'_>, pkt: Packet, msg: Message) {
        let Some(question) = msg.question().cloned() else {
            self.metrics.unparseable.inc();
            return;
        };
        // Plain queries are unverified by definition: sheddable under
        // overload before they reach Rate-Limiter1.
        if self.shed_unverified_now(ctx.now(), pkt.src.ip) {
            return;
        }
        // Every response to an unverified source passes Rate-Limiter1.
        let admitted = self.rl1.admit(ctx.now(), pkt.src.ip);
        self.stageprof.lap(crate::stageprof::STAGE_ADMIT);
        if !admitted {
            self.metrics.rl1_dropped.inc();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "rl_drop",
                &[("limiter", Value::Str("rl1")), ("src", Value::Ip(pkt.src.ip))],
            );
            return;
        }
        self.traffic_unverified.rx(pkt.wire_size());
        let mode = if self.config.tcp_redirect_sources.contains(&pkt.src.ip) {
            SchemeMode::TcpBased
        } else {
            self.config.mode
        };
        match mode {
            SchemeMode::TcpBased => {
                let tc = msg.truncated_response();
                self.metrics.tc_sent.inc();
                let qid = self.alloc_qid();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "tc_sent",
                    &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
                );
                let reply = Packet::udp(pkt.dst, pkt.src, tc.encode());
                self.tx_unverified(ctx, reply);
            }
            SchemeMode::ModifiedOnly => {
                // Treat like a grant request: hand the requester a cookie so
                // a cookie-capable LRS can proceed (message 3).
                self.charge_cookie(ctx);
                let cookie = self.cookies.generate(pkt.src.ip);
                let mut grant = msg.response();
                cookie_ext::attach_cookie(&mut grant, cookie.0, self.config.cookie_ttl);
                self.metrics.grants_sent.inc();
                let qid = self.alloc_qid();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "grant",
                    &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
                );
                let reply = Packet::udp(pkt.dst, pkt.src, grant.encode());
                self.tx_unverified(ctx, reply);
            }
            SchemeMode::DnsBased => {
                let target = match self.classifier.classify(&question.name) {
                    Classification::Referral { child_zone } => child_zone,
                    Classification::NonReferral => question.name.clone(),
                    Classification::Unknown => {
                        // Not ours: let the ANS answer (it will refuse).
                        self.metrics.plain_forwarded.inc();
                        let qid = self.alloc_qid();
                        self.forward_to_ans(ctx, msg, pkt.src, pkt.dst, Rewrite::Passthrough, qid);
                        return;
                    }
                };
                let Some(first) = target.first_label().map(|l| l.to_vec()) else {
                    // Query for the root itself: fall back to forwarding.
                    self.metrics.plain_forwarded.inc();
                    let qid = self.alloc_qid();
                    self.forward_to_ans(ctx, msg, pkt.src, pkt.dst, Rewrite::Passthrough, qid);
                    return;
                };
                self.charge_cookie(ctx);
                let label = self.fabricate_label(pkt.src.ip, &first);
                let Ok(fab_name) = target.with_first_label(&label) else {
                    // Label too long (very deep name): forward unprotected.
                    self.metrics.plain_forwarded.inc();
                    let qid = self.alloc_qid();
                    self.forward_to_ans(ctx, msg, pkt.src, pkt.dst, Rewrite::Passthrough, qid);
                    return;
                };
                let mut reply = msg.response();
                reply
                    .authorities
                    .push(Record::ns(target, fab_name, self.config.fabricated_ns_ttl));
                self.metrics.fabricated_ns_sent.inc();
                let qid = self.alloc_qid();
                self.metrics.trace.event(
                    ctx.now().as_nanos(),
                    "fabricated_ns",
                    &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
                );
                let out = Packet::udp(pkt.dst, pkt.src, reply.encode());
                self.tx_unverified(ctx, out);
            }
        }
    }

    fn handle_ans_response(&mut self, ctx: &mut Context<'_>, mut msg: Message) {
        // Any response from the ANS proves it alive, matched or not.
        self.health.consecutive_timeouts = 0;
        self.health.last_response = ctx.now();
        if self.health.down {
            self.health.down = false;
            self.health.probe_interval = self.config.ans_probe_interval;
            self.metrics.ans_recoveries.inc();
            self.metrics.trace.event(ctx.now().as_nanos(), "ans_recovered", &[]);
        }
        let Some(fwd) = self.remove_fwd(msg.header.id) else {
            // A late response to an evicted/expired forward (or a txid the
            // guard never issued).
            self.metrics.resp_unmatched.inc();
            return;
        };
        self.metrics.relayed_responses.inc();
        let rtt_ns = ctx.now().saturating_sub(fwd.created).as_nanos();
        self.metrics.ans_rtt_ns.record(rtt_ns);
        // The relay event closes the journey stage opened by "forward": via
        // names the rewrite applied on the way back to the requester.
        let via = match &fwd.rewrite {
            Rewrite::Probe => None,
            Rewrite::Passthrough => Some("passthrough"),
            Rewrite::ReferralCookie { .. } => Some("referral"),
            Rewrite::Fabricated { .. } => Some("cookie2_redirect"),
            Rewrite::TcpRelay { .. } => Some("tcp"),
        };
        if let Some(via) = via {
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "relay",
                &[
                    ("src", Value::Ip(fwd.requester.ip)),
                    ("qid", Value::U64(fwd.qid)),
                    ("via", Value::Str(via)),
                    ("rtt_ns", Value::U64(rtt_ns)),
                ],
            );
        }
        match fwd.rewrite {
            Rewrite::Probe => {}
            Rewrite::Passthrough => {
                msg.header.id = fwd.orig_txid;
                let (wire, _) = msg
                    .encode_with_limit(MAX_UDP_PAYLOAD)
                    .unwrap_or_else(|_| (msg.encode(), false));
                let reply = Packet::udp(fwd.reply_from, fwd.requester, wire);
                self.tx(ctx, reply);
            }
            Rewrite::ReferralCookie { cookie_question } => {
                // Map the referral's glue addresses onto the cookie name
                // ("one name can be mapped to multiple IP addresses").
                let glue: Vec<Record> = msg
                    .additionals
                    .iter()
                    .chain(msg.answers.iter())
                    .filter(|r| r.rtype == dnswire::types::RrType::A)
                    .map(|r| Record {
                        name: cookie_question.name.clone(),
                        ..r.clone()
                    })
                    .collect();
                let mut reply = Message {
                    header: dnswire::header::Header {
                        id: fwd.orig_txid,
                        response: true,
                        authoritative: true,
                        ..dnswire::header::Header::default()
                    },
                    questions: vec![cookie_question],
                    answers: glue,
                    ..Message::default()
                };
                if reply.answers.is_empty() {
                    reply.header.rcode = dnswire::types::Rcode::ServFail;
                }
                let reply_pkt = Packet::udp(fwd.reply_from, fwd.requester, reply.encode());
                self.tx(ctx, reply_pkt);
            }
            Rewrite::Fabricated {
                cookie_question,
                original,
            } => {
                // Stash the real answer for the imminent COOKIE2 query and
                // answer the cookie-name question with the COOKIE2 address.
                // The COOKIE2 offset derives from the digest already
                // computed when the cookie label was verified, so no extra
                // cookie charge is taken here — but the third computation of
                // the paper's count happens when message 7 is verified.
                self.insert_stash(
                    (fwd.requester.ip, original),
                    StashEntry {
                        answers: msg.answers.clone(),
                        created: ctx.now(),
                    },
                );
                let cookie2 = self.cookie2_addr(fwd.requester.ip);
                let reply = Message {
                    header: dnswire::header::Header {
                        id: fwd.orig_txid,
                        response: true,
                        authoritative: true,
                        ..dnswire::header::Header::default()
                    },
                    questions: vec![cookie_question.clone()],
                    answers: vec![Record::a(
                        cookie_question.name.clone(),
                        cookie2,
                        self.config.fabricated_ns_ttl,
                    )],
                    ..Message::default()
                };
                let reply_pkt = Packet::udp(fwd.reply_from, fwd.requester, reply.encode());
                self.tx(ctx, reply_pkt);
            }
            Rewrite::TcpRelay { token } => {
                if let Some(pkt) = self.proxy.on_ans_response(token, &msg) {
                    self.tx(ctx, pkt);
                }
            }
        }
    }

    fn handle_tcp(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        // Charge the connection cost when a handshake completes; detect via
        // accepted-count delta.
        let accepted_before = self.proxy.stats().accepted;
        let actions = self.proxy.on_segment(ctx.now(), &pkt);
        if self.proxy.stats().accepted > accepted_before {
            ctx.charge(netsim::cost::tcp_conn_cost());
            self.charge_cookie(ctx); // SYN-cookie computation
            let qid = self.alloc_qid();
            self.metrics.trace.event(
                ctx.now().as_nanos(),
                "proxy_accept",
                &[("src", Value::Ip(pkt.src.ip)), ("qid", Value::U64(qid))],
            );
        }
        for action in actions {
            match action {
                ProxyAction::Send(p) => self.tx(ctx, p),
                ProxyAction::ForwardQuery { token, query } => {
                    // Connection-table bookkeeping scales with the number of
                    // open proxied connections (Figure 7(a)); charged once
                    // per relayed request.
                    ctx.charge(netsim::cost::tcp_conn_table_cost(self.proxy.open_connections()));
                    let qid = self.alloc_qid();
                    self.metrics.trace.debug(
                        ctx.now().as_nanos(),
                        "proxy_relay",
                        &[
                            ("src", Value::Ip(pkt.src.ip)),
                            ("qid", Value::U64(qid)),
                            ("token", Value::U64(token)),
                        ],
                    );
                    if !self.rl2.admit(ctx.now(), pkt.src.ip) {
                        self.metrics.rl2_dropped.inc();
                        self.metrics.trace.event(
                            ctx.now().as_nanos(),
                            "rl_drop",
                            &[
                                ("limiter", Value::Str("rl2")),
                                ("src", Value::Ip(pkt.src.ip)),
                                ("qid", Value::U64(qid)),
                            ],
                        );
                        continue;
                    }
                    self.forward_to_ans(
                        ctx,
                        query,
                        pkt.src,
                        Endpoint::new(self.config.public_addr, DNS_PORT),
                        Rewrite::TcpRelay { token },
                        qid,
                    );
                }
            }
        }
    }
}

impl Node for RemoteGuard {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_daemon_timer(WINDOW, TAG_WINDOW);
        if let Some(ha) = &self.ha {
            ctx.set_daemon_timer(ha.cfg.replication_interval, TAG_HA);
        }
        if let Some(f) = &self.fleet {
            ctx.set_daemon_timer(f.cfg.sync_interval, TAG_FLEET);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        ctx.charge(netsim::cost::packet_cost());
        self.traffic.rx(pkt.wire_size());
        match pkt.proto {
            Proto::Udp => self.handle_udp(ctx, pkt),
            Proto::Tcp => self.handle_tcp(ctx, pkt),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TAG_WINDOW => self.on_window(ctx),
            TAG_HA => self.on_ha_tick(ctx),
            TAG_FLEET => self.on_fleet_tick(ctx),
            _ => {}
        }
    }
}

impl RemoteGuard {
    /// The periodic housekeeping window (activation, rotation, expiries,
    /// checkpoint cadence, admission-pressure sampling).
    fn on_window(&mut self, ctx: &mut Context<'_>) {
        ctx.set_daemon_timer(WINDOW, TAG_WINDOW);
        // Activation decision from the inbound request rate.
        if self.config.activation_threshold > 0.0 {
            let rate = self.window_count as f64 / WINDOW.as_secs_f64();
            self.active = rate > self.config.activation_threshold;
        }
        self.window_count = 0;
        // Scheduled key rotation. Fleet members never rotate locally —
        // epochs only originate at the master, or the fleet keys diverge.
        let fleet_member = self.fleet.as_ref().is_some_and(|f| !f.cfg.master);
        if let Some(interval) = self.config.key_rotation_interval {
            if !fleet_member && ctx.now().saturating_sub(self.last_rotation) >= interval {
                self.last_rotation = ctx.now();
                self.cookies.rotate();
            }
        }
        // Housekeeping.
        self.proxy.reap(ctx.now());
        let now = ctx.now();
        // Expire unanswered forwards: each one is an ANS timeout feeding
        // the health monitor.
        let horizon = self.config.ans_timeout;
        let expired: Vec<u16> = self
            .fwd
            .iter()
            .filter(|(_, f)| now.saturating_sub(f.created) >= horizon)
            .map(|(&txid, _)| txid)
            .collect();
        for txid in expired {
            let entry = self.remove_fwd(txid);
            if entry.is_some_and(|f| f.created >= self.health.last_response) {
                self.metrics.ans_timeouts.inc();
                self.health.consecutive_timeouts += 1;
            }
        }
        if !self.health.down
            && self.health.consecutive_timeouts >= self.config.ans_failure_threshold
        {
            self.health.down = true;
            self.health.probe_interval = self.config.ans_probe_interval;
            self.health.next_probe = now; // first probe fires immediately
            self.metrics.ans_down_events.inc();
            self.metrics.trace.event(
                now.as_nanos(),
                "ans_down",
                &[("timeouts", Value::U64(self.health.consecutive_timeouts as u64))],
            );
        }
        if self.health.down && now >= self.health.next_probe {
            self.send_probe(ctx);
            self.health.next_probe = now + self.health.probe_interval;
            self.health.probe_interval =
                (self.health.probe_interval * 2).min(self.config.ans_probe_max);
        }
        let stale: Vec<(Ipv4Addr, Name)> = self
            .stash
            .iter()
            .filter(|(_, s)| now.saturating_sub(s.created) >= STASH_TTL)
            .map(|(k, _)| k.clone())
            .collect();
        for key in stale {
            self.remove_stash(&key);
        }
        // Drop queue entries whose table entry is gone (lazy compaction,
        // so the order queues cannot outgrow the tables they mirror).
        let fwd = &self.fwd;
        self.fwd_order
            .retain(|(txid, created)| fwd.get(txid).is_some_and(|f| f.created == *created));
        let stash = &self.stash;
        self.stash_order
            .retain(|(key, created)| stash.get(key).is_some_and(|s| s.created == *created));
        self.metrics
            .table_bytes
            .set((self.fwd_bytes + self.stash_bytes) as u64);
        // Export the unverified-traffic amplification ratio (paper bound:
        // ≤1.5×) in milli-units so the alert engine can threshold it.
        let amp = self.traffic_unverified.amplification();
        let amp_milli = if amp.is_finite() && amp > 0.0 {
            (amp * 1000.0) as u64
        } else {
            0
        };
        self.metrics.amplification_milli.set(amp_milli);
        // Checkpoint cadence + staleness gauge (acting primary only — a
        // not-yet-promoted standby tracks staleness off its heartbeats).
        let standby_waiting = self
            .ha
            .as_ref()
            .is_some_and(|ha| ha.role == HaRole::Standby);
        if self.checkpoint_store.is_some() && !standby_waiting {
            match self.config.checkpoint_interval {
                Some(interval) if now.saturating_sub(self.last_checkpoint) >= interval => {
                    self.take_checkpoint(now);
                }
                _ => {
                    self.metrics
                        .checkpoint_age_nanos
                        .set(now.saturating_sub(self.last_checkpoint).as_nanos());
                }
            }
        }
        // Admission-pressure sample: RL saturation + forward-table fill.
        if let Some(adm) = self.admission.as_mut() {
            let before = adm.tier();
            let fill = self.fwd_bytes as f64 / self.config.fwd_bytes_max.max(1) as f64;
            let tier = adm.observe(
                self.rl1.admitted(),
                self.rl1.rejected(),
                self.rl2.admitted(),
                self.rl2.rejected(),
                fill,
            );
            self.metrics.admission_tier.set(tier.as_gauge());
            if tier != before {
                self.metrics.trace.event(
                    now.as_nanos(),
                    "tier_change",
                    &[
                        ("from", Value::Str(before.name())),
                        ("to", Value::Str(tier.name())),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::rdata::RData;
    use dnswire::types::{Rcode, RrType};
    use netsim::engine::{CpuConfig, Simulator};
    use server::authoritative::Authority;
    use server::nodes::AuthNode;
    use server::simclient::{CookieMode, LrsSimConfig, LrsSimulator};
    use server::zone::{paper_hierarchy, ROOT_SERVER};

    const ANS_PRIVATE: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);
    const GUARD_SUBNET: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 0);

    /// Builds guard + ANS world. `which_zone`: 0 = root (referral answers),
    /// 2 = foo.com (non-referral answers). Returns (sim, guard_id, ans_id).
    fn guarded_world(
        seed: u64,
        which_zone: usize,
        mode: SchemeMode,
    ) -> (Simulator, netsim::NodeId, netsim::NodeId) {
        let (root, com, foo) = paper_hierarchy();
        let zones = [root, com, foo];
        let zone = zones[which_zone].clone();
        let authority = Authority::new(vec![zone]);

        let mut sim = Simulator::new(seed);
        let config = GuardConfig {
            subnet_base: GUARD_SUBNET,
            ..GuardConfig::new(ROOT_SERVER, ANS_PRIVATE)
        }
        .with_mode(mode);
        let guard = sim.add_node(
            ROOT_SERVER,
            CpuConfig::unbounded(),
            RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
        );
        sim.add_subnet(GUARD_SUBNET, 24, guard);
        let ans = sim.add_node(ANS_PRIVATE, CpuConfig::unbounded(), AuthNode::new(ANS_PRIVATE, authority));
        (sim, guard, ans)
    }

    fn add_lrs(sim: &mut Simulator, last: u8, mode: CookieMode, cache: bool) -> netsim::NodeId {
        let ip = Ipv4Addr::new(10, 0, 0, last);
        let mut config = LrsSimConfig::new(ip, ROOT_SERVER, "www.foo.com".parse().unwrap());
        config.mode = mode;
        config.cookie_cache = cache;
        sim.add_node(ip, CpuConfig::unbounded(), LrsSimulator::new(config))
    }

    #[test]
    fn ns_name_scheme_end_to_end_referral() {
        let (mut sim, guard, _ans) = guarded_world(1, 0, SchemeMode::DnsBased);
        let lrs = add_lrs(&mut sim, 2, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(200));
        let lrs_state = sim.node_ref::<LrsSimulator>(lrs).unwrap();
        assert!(lrs_state.stats.completed > 10, "completed {}", lrs_state.stats.completed);
        assert_eq!(lrs_state.stats.timeouts, 0);
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(guard_state.stats().fabricated_ns_sent >= 1);
        assert!(guard_state.stats().ns_cookie_valid > 10);
        assert_eq!(guard_state.stats().ns_cookie_invalid, 0, "no false positives");
    }

    #[test]
    fn fabricated_ns_ip_scheme_end_to_end() {
        let (mut sim, guard, _ans) = guarded_world(2, 2, SchemeMode::DnsBased);
        let lrs = add_lrs(&mut sim, 3, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(200));
        let lrs_state = sim.node_ref::<LrsSimulator>(lrs).unwrap();
        assert!(lrs_state.stats.completed > 10, "completed {}", lrs_state.stats.completed);
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(guard_state.stats().cookie2_valid > 10, "COOKIE2 path exercised");
        assert_eq!(guard_state.stats().cookie2_invalid, 0);
        assert!(guard_state.stats().stash_hits >= 1, "first exchange uses the stash");
    }

    #[test]
    fn modified_scheme_end_to_end() {
        let (mut sim, guard, _ans) = guarded_world(3, 2, SchemeMode::ModifiedOnly);
        let lrs = add_lrs(&mut sim, 4, CookieMode::Extension, true);
        sim.run_until(SimTime::from_millis(200));
        let lrs_state = sim.node_ref::<LrsSimulator>(lrs).unwrap();
        assert!(lrs_state.stats.completed > 10, "completed {}", lrs_state.stats.completed);
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert_eq!(guard_state.stats().grants_sent, 1, "one grant, then cached cookie");
        assert!(guard_state.stats().ext_valid > 10);
        assert_eq!(guard_state.stats().ext_invalid, 0);
    }

    #[test]
    fn tcp_scheme_end_to_end() {
        let (mut sim, guard, _ans) = guarded_world(4, 2, SchemeMode::TcpBased);
        let lrs = add_lrs(&mut sim, 5, CookieMode::Plain, false);
        sim.run_until(SimTime::from_millis(200));
        let lrs_state = sim.node_ref::<LrsSimulator>(lrs).unwrap();
        assert!(lrs_state.stats.completed > 5, "completed {}", lrs_state.stats.completed);
        assert!(lrs_state.stats.tcp_fallbacks > 5);
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(guard_state.stats().tc_sent > 5);
        assert!(guard_state.proxy_stats().accepted > 5);
        assert!(guard_state.proxy_stats().requests_relayed > 5);
    }

    #[test]
    fn spoofed_cookie_labels_dropped() {
        let (mut sim, guard, ans) = guarded_world(5, 0, SchemeMode::DnsBased);
        // Forge message-3-style queries with random cookie hex from a
        // spoofed source.
        struct Forger;
        impl Node for Forger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for i in 0..100u32 {
                    let name: Name = format!("PR{:08x}com", i).parse().unwrap();
                    let q = Message::iterative_query(i as u16, name, RrType::A);
                    ctx.send(Packet::udp(
                        Endpoint::new(Ipv4Addr::new(66, 1, (i >> 8) as u8, i as u8), 999),
                        Endpoint::new(ROOT_SERVER, DNS_PORT),
                        q.encode(),
                    ));
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        sim.add_node(Ipv4Addr::new(66, 1, 0, 0), CpuConfig::unbounded(), Forger);
        sim.run_until(SimTime::from_millis(50));
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert_eq!(guard_state.stats().ns_cookie_invalid, 100);
        assert_eq!(guard_state.stats().forwarded, 0, "nothing reached the ANS");
        assert_eq!(sim.node_ref::<AuthNode>(ans).unwrap().total_queries(), 0);
    }

    #[test]
    fn invalid_ext_cookie_dropped() {
        let (mut sim, guard, ans) = guarded_world(6, 2, SchemeMode::ModifiedOnly);
        struct ExtForger;
        impl Node for ExtForger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for i in 0..50u16 {
                    let mut q = Message::iterative_query(i, "www.foo.com".parse().unwrap(), RrType::A);
                    cookie_ext::attach_cookie(&mut q, [0xBA; 16], 0);
                    ctx.send(Packet::udp(
                        Endpoint::new(Ipv4Addr::new(77, 1, 1, (i % 250) as u8), 999),
                        Endpoint::new(ROOT_SERVER, DNS_PORT),
                        q.encode(),
                    ));
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        sim.add_node(Ipv4Addr::new(77, 1, 1, 1), CpuConfig::unbounded(), ExtForger);
        sim.run_until(SimTime::from_millis(50));
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert_eq!(guard_state.stats().ext_invalid, 50);
        assert_eq!(sim.node_ref::<AuthNode>(ans).unwrap().total_queries(), 0);
    }

    #[test]
    fn amplification_bounded_for_dns_based() {
        let (mut sim, guard, _ans) = guarded_world(7, 0, SchemeMode::DnsBased);
        let _lrs = add_lrs(&mut sim, 6, CookieMode::Plain, false); // every request cold
        sim.run_until(SimTime::from_millis(100));
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        let amp = guard_state.traffic_unverified.amplification();
        assert!(amp > 1.0, "NS record adds bytes: {amp}");
        assert!(amp < 1.5, "paper: DNS-based amplification < 50%, got {amp}");
    }

    #[test]
    fn no_amplification_for_tc_and_grants() {
        for (seed, mode, lrs_mode) in [
            (8, SchemeMode::TcpBased, CookieMode::Plain),
            (9, SchemeMode::ModifiedOnly, CookieMode::Extension),
        ] {
            let (mut sim, guard, _ans) = guarded_world(seed, 2, mode);
            let _lrs = add_lrs(&mut sim, 7, lrs_mode, false);
            sim.run_until(SimTime::from_millis(100));
            let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
            let amp = guard_state.traffic_unverified.amplification();
            assert!(amp <= 1.02, "mode {mode:?}: amplification {amp}");
        }
    }

    #[test]
    fn activation_threshold_gates_detection() {
        let (mut sim, guard, _ans) = guarded_world(10, 0, SchemeMode::DnsBased);
        sim.node_mut::<RemoteGuard>(guard).unwrap().config.activation_threshold = 1_000.0;
        sim.node_mut::<RemoteGuard>(guard).unwrap().active = false;
        let lrs = add_lrs(&mut sim, 8, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(300));
        // A single closed-loop client (~1 req/RTT ≈ 2.5K/s on LAN · but each
        // takes ~0.4ms → ~2.5K/s) ... the client rate is above 1K/s so the
        // guard should engage; before engagement requests pass through.
        let guard_state = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(guard_state.stats().passthrough > 0, "initial window passed through");
        assert!(guard_state.is_active(), "guard engaged once rate exceeded threshold");
        assert!(guard_state.stats().fabricated_ns_sent > 0);
        let _ = lrs;
    }

    #[test]
    fn key_rotation_preserves_service() {
        let (mut sim, guard, _ans) = guarded_world(11, 0, SchemeMode::DnsBased);
        let lrs = add_lrs(&mut sim, 9, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(100));
        let before = sim.node_ref::<LrsSimulator>(lrs).unwrap().stats.completed;
        assert!(before > 0);
        sim.node_mut::<RemoteGuard>(guard).unwrap().rotate_key();
        sim.run_until(SimTime::from_millis(200));
        let after = sim.node_ref::<LrsSimulator>(lrs).unwrap();
        assert!(after.stats.completed > before, "cached cookies still verify after one rotation");
        assert_eq!(sim.node_ref::<RemoteGuard>(guard).unwrap().stats().ns_cookie_invalid, 0);
    }

    #[test]
    fn ans_down_detected_probed_and_recovered() {
        let (mut sim, guard, ans) = guarded_world(20, 0, SchemeMode::DnsBased);
        {
            let cfg = sim.node_mut::<RemoteGuard>(guard).unwrap().config_mut();
            cfg.ans_timeout = SimTime::from_millis(50);
            cfg.ans_failure_threshold = 2;
            cfg.ans_probe_interval = SimTime::from_millis(100);
        }
        let lrs = add_lrs(&mut sim, 11, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(100));
        assert!(!sim.node_ref::<RemoteGuard>(guard).unwrap().ans_is_down());
        assert!(sim.node_ref::<LrsSimulator>(lrs).unwrap().stats.completed > 0);

        sim.crash(ans);
        sim.run_until(SimTime::from_millis(700));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.ans_is_down(), "health monitor noticed the crash");
        assert_eq!(g.stats().ans_down_events, 1);
        assert!(g.stats().ans_timeouts >= 2);
        assert!(g.stats().ans_probes >= 2, "probing while down");

        sim.restart(ans);
        sim.run_until(SimTime::from_millis(1_500));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(!g.ans_is_down(), "probe response cleared the down state");
        assert_eq!(g.stats().ans_recoveries, 1);
        let completed_after = sim.node_ref::<LrsSimulator>(lrs).unwrap().stats.completed;
        sim.run_until(SimTime::from_millis(1_700));
        assert!(
            sim.node_ref::<LrsSimulator>(lrs).unwrap().stats.completed > completed_after,
            "service resumed after recovery"
        );
    }

    #[test]
    fn fail_closed_sheds_load_while_ans_down() {
        let (mut sim, guard, ans) = guarded_world(21, 0, SchemeMode::DnsBased);
        {
            let cfg = sim.node_mut::<RemoteGuard>(guard).unwrap().config_mut();
            cfg.ans_timeout = SimTime::from_millis(50);
            cfg.ans_failure_threshold = 2;
            cfg.ans_probe_interval = SimTime::from_millis(100);
            cfg.health_policy = crate::config::AnsHealthPolicy::FailClosed;
        }
        let _lrs = add_lrs(&mut sim, 12, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(100));
        sim.crash(ans);
        sim.run_until(SimTime::from_millis(800));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.ans_is_down());
        assert!(g.stats().failed_closed > 0, "verified queries refused fast");
        // Probes still go out despite the fail-closed gate.
        assert!(g.stats().ans_probes >= 2);
        sim.restart(ans);
        sim.run_until(SimTime::from_millis(1_500));
        assert!(!sim.node_ref::<RemoteGuard>(guard).unwrap().ans_is_down());
    }

    #[test]
    fn forward_table_stays_within_byte_bound() {
        // A spoofed flood of out-of-bailiwick names all get forwarded
        // (passthrough) to an ANS that never answers; the forward table
        // must hold its configured byte bound and evict oldest-first.
        let (root, com, foo) = paper_hierarchy();
        let _ = (root, com);
        let authority = Authority::new(vec![foo]);
        let mut sim = Simulator::new(22);
        let mut config = GuardConfig {
            subnet_base: GUARD_SUBNET,
            ..GuardConfig::new(ROOT_SERVER, ANS_PRIVATE)
        };
        config.rl1_global_rate = 1e12;
        config.rl1_per_source_rate = 1e12;
        config.fwd_bytes_max = 8_192;
        let guard = sim.add_node(
            ROOT_SERVER,
            CpuConfig::unbounded(),
            RemoteGuard::new(config, AuthorityClassifier::new(authority)),
        );
        sim.add_subnet(GUARD_SUBNET, 24, guard);
        // No ANS node at all: every forward is a black hole.
        struct Flood;
        impl Node for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimTime::ZERO, 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
                if tag >= 2_000 {
                    return;
                }
                let name: Name = format!("h{tag}.elsewhere.example").parse().unwrap();
                let q = Message::iterative_query(tag as u16, name, RrType::A);
                ctx.send(Packet::udp(
                    Endpoint::new(Ipv4Addr::from(0x2000_0000 + tag as u32), 999),
                    Endpoint::new(ROOT_SERVER, DNS_PORT),
                    q.encode(),
                ));
                ctx.set_timer(SimTime::from_micros(4), tag + 1); // 250K req/s
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        sim.add_node(Ipv4Addr::new(32, 0, 0, 1), CpuConfig::unbounded(), Flood);
        sim.run_until(SimTime::from_millis(20));
        let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
        assert!(g.stats().forwarded >= 2_000);
        assert!(
            g.table_bytes() <= 8_192,
            "table {} bytes exceeds bound",
            g.table_bytes()
        );
        assert!(g.stats().fwd_evicted > 0, "bound enforced by eviction");
    }

    #[test]
    fn rcode_passthrough_for_unknown_zone() {
        // A query outside the ANS's bailiwick is forwarded and the REFUSED
        // response relayed. (Guard the foo.com zone: example names are then
        // genuinely out of bailiwick; a root guard would own everything.)
        let (mut sim, _guard, _ans) = guarded_world(12, 2, SchemeMode::DnsBased);
        struct Asker {
            reply: Option<Message>,
        }
        impl Node for Asker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let q = Message::iterative_query(5, "out.of.zone.example".parse().unwrap(), RrType::A);
                ctx.send(Packet::udp(
                    Endpoint::new(Ipv4Addr::new(10, 0, 0, 40), 999),
                    Endpoint::new(ROOT_SERVER, DNS_PORT),
                    q.encode(),
                ));
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                self.reply = Message::decode(&pkt.payload).ok();
            }
        }
        let asker = sim.add_node(Ipv4Addr::new(10, 0, 0, 40), CpuConfig::unbounded(), Asker { reply: None });
        sim.run_until(SimTime::from_millis(20));
        let reply = sim.node_ref::<Asker>(asker).unwrap().reply.clone();
        let reply = reply.expect("got a response");
        assert_eq!(reply.header.rcode, Rcode::Refused);
    }

    #[test]
    fn attach_obs_exports_counters_and_decision_trace() {
        let obs = obs::Obs::new();
        obs.tracer.set_default_level(obs::trace::Level::Info);
        let (mut sim, guard, _ans) = guarded_world(30, 0, SchemeMode::DnsBased);
        sim.node_mut::<RemoteGuard>(guard).unwrap().attach_obs(&obs);
        let lrs = add_lrs(&mut sim, 13, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(100));
        let completed = sim.node_ref::<LrsSimulator>(lrs).unwrap().stats.completed;
        assert!(completed > 10);

        // Registry view matches the snapshot view.
        let stats = sim.node_ref::<RemoteGuard>(guard).unwrap().stats();
        let snap = obs.registry.snapshot();
        let find = |name: &str, labels: &[(&str, &str)]| {
            snap.iter()
                .find(|m| {
                    m.component == "guard"
                        && m.name == name
                        && labels.iter().all(|(k, v)| {
                            m.labels.iter().any(|(lk, lv)| lk == k && lv == v)
                        })
                })
                .map(|m| match m.value {
                    obs::metrics::SampleValue::Counter(v) => v,
                    _ => panic!("expected counter"),
                })
        };
        assert_eq!(
            find("verify", &[("scheme", "ns_label"), ("verdict", "valid")]),
            Some(stats.ns_cookie_valid)
        );
        assert_eq!(find("forwarded", &[]), Some(stats.forwarded));
        assert_eq!(find("udp_datagrams", &[]), Some(stats.udp_datagrams));
        assert!(
            snap.iter().any(|m| m.component == "guard"
                && m.name == "ans_rtt_ns"
                && matches!(m.value, obs::metrics::SampleValue::Histogram { count, .. } if count > 0)),
            "ANS round-trips recorded"
        );

        // Decision events arrived in sim-time order.
        let (events, dropped) = obs.tracer.drain();
        assert_eq!(dropped, 0);
        assert!(events.iter().any(|e| e.kind == "verify"));
        assert!(events.iter().any(|e| e.kind == "fabricated_ns"));
        assert!(events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
    }

    #[test]
    fn referral_reply_carries_real_server_address() {
        // The cookie-name answer must hold the true com-server glue.
        let (mut sim, _guard, _ans) = guarded_world(13, 0, SchemeMode::DnsBased);
        let lrs = add_lrs(&mut sim, 10, CookieMode::Plain, true);
        sim.run_until(SimTime::from_millis(50));
        let lrs_state = sim.node_ref::<LrsSimulator>(lrs).unwrap();
        assert!(lrs_state.stats.completed > 0);
        // The LRS's cached NS name resolves through the guard to the real
        // com server address — verified implicitly by completion, and the
        // answer values are checked in the integration tests.
        let _ = RData::A(server::zone::COM_SERVER);
    }
}
