//! Primary–standby replication for guard high availability.
//!
//! A primary guard streams its state to a standby over a sequenced UDP
//! channel on [`REPL_PORT`]: a [`ReplPayload::Full`] snapshot first, then
//! periodic [`ReplPayload::Delta`]s carrying only what changed since the
//! previous tick. An empty delta doubles as a heartbeat. The standby
//! detects a sequence gap and answers with [`ReplPayload::ResyncReq`],
//! which makes the primary ship a fresh full snapshot.
//!
//! The channel rides the same simulated network the attacker floods, so
//! every message is authenticated: a 16-byte MD5 tag keyed by a secret both
//! guards derive from the shared `key_seed`. A spoofed replication packet
//! fails the tag check and is counted, not applied — without this, an
//! attacker who can spoof the primary's address could feed the standby a
//! poisoned forward table.
//!
//! What deltas deliberately **omit**: rate-limiter bucket fills (the
//! standby rebuilds pressure from scratch — briefly more permissive, never
//! less safe, and not worth the per-source churn on the wire) and TCP relay
//! / probe forward entries (connections die with the primary).

use crate::checkpoint::{
    get_fwd, get_key, get_name, get_stash, put_fwd, put_key, put_name, put_stash, put_u16, put_u32,
    put_u64, DecodeError, FwdState, GuardCheckpoint, KeyState, Reader, StashState,
    CHECKPOINT_VERSION,
};
use dnswire::name::Name;
use guardhash::cookie::SecretKey;
use guardhash::md5::{Md5, DIGEST_LEN};
use netsim::time::SimTime;
use std::net::Ipv4Addr;

/// UDP port the replication channel uses on both guards.
pub const REPL_PORT: u16 = 8653;

/// Magic prefix of an authenticated replication message body.
pub const REPL_MAGIC: [u8; 4] = *b"GRPL";

/// Which side of the pair a guard plays. (A guard with no
/// [`HaConfig`] at all is standalone.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaRole {
    /// Serves traffic and streams state to the peer.
    Primary,
    /// Applies the stream and takes over when the primary goes silent.
    Standby,
}

/// High-availability pairing configuration.
#[derive(Debug, Clone)]
pub struct HaConfig {
    /// This guard's role at startup.
    pub role: HaRole,
    /// This guard's own replication address (distinct from the guarded
    /// public address, which only the acting primary owns).
    pub local_addr: Ipv4Addr,
    /// The peer's replication address.
    pub peer_addr: Ipv4Addr,
    /// Primary: delta/heartbeat cadence. Standby: heartbeat-check cadence.
    pub replication_interval: SimTime,
    /// Consecutive silent intervals before the standby declares the
    /// primary dead.
    pub heartbeat_miss_threshold: u32,
    /// Upper bound on the standby's probe backoff once the peer is
    /// suspect (mirrors the ANS-health probe machinery).
    pub probe_max: SimTime,
    /// Whether the standby claims the guarded address on peer death.
    /// `false` makes a pure warm spare that only mirrors state.
    pub takeover: bool,
}

impl HaConfig {
    /// A primary streaming from `local` to the standby at `peer`.
    pub fn primary(local: Ipv4Addr, peer: Ipv4Addr) -> Self {
        HaConfig {
            role: HaRole::Primary,
            local_addr: local,
            peer_addr: peer,
            replication_interval: SimTime::from_millis(20),
            heartbeat_miss_threshold: 3,
            probe_max: SimTime::from_secs(1),
            takeover: true,
        }
    }

    /// A standby at `local` watching the primary at `peer`.
    pub fn standby(local: Ipv4Addr, peer: Ipv4Addr) -> Self {
        HaConfig {
            role: HaRole::Standby,
            ..HaConfig::primary(local, peer)
        }
    }

    /// Overrides the replication cadence.
    pub fn with_interval(mut self, interval: SimTime) -> Self {
        self.replication_interval = interval;
        self
    }
}

/// Anycast fleet membership: N guard sites front the same public address
/// from different catchments and share one cookie secret, so a client
/// re-routed by a BGP catchment shift keeps verifying without a fresh
/// handshake.
///
/// One site is the key master: it originates rotations and pushes
/// [`ReplPayload::FleetKey`] epochs to every member over the same
/// authenticated channel HA replication uses. Members never rotate
/// locally; they apply pushed epochs, and the carried previous key keeps
/// the paper's one-generation grace window intact fleet-wide — no site
/// ever rejects a cookie minted under the prior epoch.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Whether this site originates key epochs.
    pub master: bool,
    /// This site's own replication address.
    pub local_addr: Ipv4Addr,
    /// Master: the member sites to push epochs to. Member: ignored.
    pub peers: Vec<Ipv4Addr>,
    /// Member: the master's replication address. Master: own address.
    pub master_addr: Ipv4Addr,
    /// Master: cadence of the key-sync tick. Member: cadence of the
    /// catch-up check while unsynced.
    pub sync_interval: SimTime,
    /// Upper bound on a member's catch-up request backoff.
    pub req_backoff_max: SimTime,
}

impl FleetConfig {
    /// The key-master site at `local`, pushing epochs to `members`.
    pub fn master(local: Ipv4Addr, members: Vec<Ipv4Addr>) -> Self {
        FleetConfig {
            master: true,
            local_addr: local,
            peers: members,
            master_addr: local,
            sync_interval: SimTime::from_millis(20),
            req_backoff_max: SimTime::from_secs(1),
        }
    }

    /// A member site at `local` applying epochs from `master`.
    pub fn member(local: Ipv4Addr, master: Ipv4Addr) -> Self {
        FleetConfig {
            master: false,
            local_addr: local,
            peers: Vec::new(),
            master_addr: master,
            sync_interval: SimTime::from_millis(20),
            req_backoff_max: SimTime::from_secs(1),
        }
    }

    /// Overrides the sync cadence.
    pub fn with_interval(mut self, interval: SimTime) -> Self {
        self.sync_interval = interval;
        self
    }
}

/// One message on the replication channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplPayload {
    /// A complete snapshot (sent first, and on resync).
    Full(GuardCheckpoint),
    /// Changes since the previous tick. An empty delta is a heartbeat.
    Delta(ReplDelta),
    /// Standby→primary: "my state ends at `have_seq`, send a full
    /// snapshot". Also doubles as the standby's liveness probe.
    ResyncReq {
        /// Highest sequence number the standby has applied.
        have_seq: u64,
    },
    /// Master→member: the fleet cookie key at `epoch`. Carries the full
    /// rotation state (current + previous key), so applying it preserves
    /// the one-generation grace window at every site.
    FleetKey {
        /// Key epoch — the master's rotation generation.
        epoch: u64,
        /// The shared key state, previous key included.
        key: KeyState,
    },
    /// Member→master: "my key epoch is `have_epoch`, push the current
    /// one". Sent on join and while catching up after a miss.
    FleetKeyReq {
        /// The member's applied epoch (`u64::MAX` before the first).
        have_epoch: u64,
    },
}

/// Incremental state changes, applied in field order: key first, additions
/// before deletions (an entry added and removed within one tick must end
/// up absent).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplDelta {
    /// Sequence number; the standby requires exactly `applied + 1`.
    pub seq: u64,
    /// New key state, present only when a rotation happened.
    pub key: Option<KeyState>,
    /// Forward-table entries created this tick (still live at send time).
    pub fwd_add: Vec<FwdState>,
    /// Forward-table keys removed this tick.
    pub fwd_del: Vec<u16>,
    /// Stash entries created this tick.
    pub stash_add: Vec<StashState>,
    /// Stash keys removed this tick.
    pub stash_del: Vec<(Ipv4Addr, Name)>,
    /// Allocator high-water marks, so a takeover never reuses a live id.
    pub next_txid: u16,
    /// Journey-id high-water mark.
    pub next_qid: u64,
    /// Whether spoof detection is currently engaged.
    pub active: bool,
}

impl ReplDelta {
    /// Whether this delta carries no state change (pure heartbeat).
    pub fn is_heartbeat(&self) -> bool {
        self.key.is_none()
            && self.fwd_add.is_empty()
            && self.fwd_del.is_empty()
            && self.stash_add.is_empty()
            && self.stash_del.is_empty()
    }
}

/// Why an inbound replication message was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplError {
    /// Authentication tag mismatch (spoofed, corrupted, or wrong pair).
    BadAuth,
    /// Structurally invalid after authentication.
    Decode(DecodeError),
}

/// Derives the shared replication-channel secret from the guards' common
/// key seed. Both halves of a pair run with identical `GuardConfig`
/// seeds, so this needs no extra provisioning.
pub fn repl_secret(key_seed: u64) -> SecretKey {
    SecretKey::from_seed(key_seed ^ 0xA11C_E5EC)
}

fn auth_tag(secret: &SecretKey, body: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Md5::new();
    h.update(secret.as_bytes());
    h.update(body);
    h.finalize()
}

const TAG_FULL: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_RESYNC: u8 = 3;
const TAG_FLEET: u8 = 4;
const TAG_FLEET_REQ: u8 = 5;

/// Serializes and authenticates one replication message:
/// `tag(16) || magic || version || kind || fields`.
pub fn encode_repl(payload: &ReplPayload, secret: &SecretKey) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&REPL_MAGIC);
    put_u32(&mut body, CHECKPOINT_VERSION);
    match payload {
        ReplPayload::Full(cp) => {
            body.push(TAG_FULL);
            let wire = cp.encode();
            put_u32(&mut body, wire.len() as u32);
            body.extend_from_slice(&wire);
        }
        ReplPayload::Delta(d) => {
            body.push(TAG_DELTA);
            put_u64(&mut body, d.seq);
            match &d.key {
                Some(k) => {
                    body.push(1);
                    put_key(&mut body, k);
                }
                None => body.push(0),
            }
            put_u32(&mut body, d.fwd_add.len() as u32);
            for f in &d.fwd_add {
                put_fwd(&mut body, f);
            }
            put_u32(&mut body, d.fwd_del.len() as u32);
            for txid in &d.fwd_del {
                put_u16(&mut body, *txid);
            }
            put_u32(&mut body, d.stash_add.len() as u32);
            for s in &d.stash_add {
                put_stash(&mut body, s);
            }
            put_u32(&mut body, d.stash_del.len() as u32);
            for (ip, name) in &d.stash_del {
                body.extend_from_slice(&ip.octets());
                put_name(&mut body, name);
            }
            put_u16(&mut body, d.next_txid);
            put_u64(&mut body, d.next_qid);
            body.push(d.active as u8);
        }
        ReplPayload::ResyncReq { have_seq } => {
            body.push(TAG_RESYNC);
            put_u64(&mut body, *have_seq);
        }
        ReplPayload::FleetKey { epoch, key } => {
            body.push(TAG_FLEET);
            put_u64(&mut body, *epoch);
            put_key(&mut body, key);
        }
        ReplPayload::FleetKeyReq { have_epoch } => {
            body.push(TAG_FLEET_REQ);
            put_u64(&mut body, *have_epoch);
        }
    }
    let mut out = Vec::with_capacity(DIGEST_LEN + body.len());
    out.extend_from_slice(&auth_tag(secret, &body));
    out.extend_from_slice(&body);
    out
}

/// Authenticates and parses one replication message.
pub fn decode_repl(bytes: &[u8], secret: &SecretKey) -> Result<ReplPayload, ReplError> {
    if bytes.len() < DIGEST_LEN {
        return Err(ReplError::BadAuth);
    }
    let (tag, body) = bytes.split_at(DIGEST_LEN);
    if auth_tag(secret, body) != *tag {
        return Err(ReplError::BadAuth);
    }
    decode_body(body).map_err(ReplError::Decode)
}

fn decode_body(body: &[u8]) -> Result<ReplPayload, DecodeError> {
    let mut r = Reader::new(body);
    if r.bytes(4)? != REPL_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    match r.u8()? {
        TAG_FULL => {
            let len = r.u32()? as usize;
            let wire = r.bytes(len)?;
            Ok(ReplPayload::Full(GuardCheckpoint::decode(wire)?))
        }
        TAG_DELTA => {
            let seq = r.u64()?;
            let key = match r.u8()? {
                0 => None,
                1 => Some(get_key(&mut r)?),
                _ => return Err(DecodeError::Malformed("delta key flag")),
            };
            let n = r.u32()? as usize;
            let mut fwd_add = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                fwd_add.push(get_fwd(&mut r)?);
            }
            let n = r.u32()? as usize;
            let mut fwd_del = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                fwd_del.push(r.u16()?);
            }
            let n = r.u32()? as usize;
            let mut stash_add = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                stash_add.push(get_stash(&mut r)?);
            }
            let n = r.u32()? as usize;
            let mut stash_del = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                let ip = r.ip()?;
                stash_del.push((ip, get_name(&mut r)?));
            }
            Ok(ReplPayload::Delta(ReplDelta {
                seq,
                key,
                fwd_add,
                fwd_del,
                stash_add,
                stash_del,
                next_txid: r.u16()?,
                next_qid: r.u64()?,
                active: r.u8()? != 0,
            }))
        }
        TAG_RESYNC => Ok(ReplPayload::ResyncReq { have_seq: r.u64()? }),
        TAG_FLEET => Ok(ReplPayload::FleetKey {
            epoch: r.u64()?,
            key: get_key(&mut r)?,
        }),
        TAG_FLEET_REQ => Ok(ReplPayload::FleetKeyReq { have_epoch: r.u64()? }),
        _ => Err(DecodeError::Malformed("payload kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{LimiterState, RewriteState};
    use dnswire::question::Question;
    use dnswire::record::Record;
    use dnswire::types::RrType;

    fn secret() -> SecretKey {
        repl_secret(2006)
    }

    fn sample_delta() -> ReplDelta {
        let name: Name = "www.foo.com".parse().unwrap();
        ReplDelta {
            seq: 41,
            key: Some(KeyState {
                current: SecretKey::from_seed(8),
                previous: Some(SecretKey::from_seed(7)),
                generation: 2,
                seed: 2006,
            }),
            fwd_add: vec![FwdState {
                txid: 7,
                requester: (Ipv4Addr::new(10, 0, 0, 7), 1_234),
                reply_from: (Ipv4Addr::new(198, 41, 0, 4), 53),
                orig_txid: 99,
                rewrite: RewriteState::ReferralCookie {
                    cookie_question: Question::new(
                        "PRdeadbeefcom".parse().unwrap(),
                        RrType::Ns,
                    ),
                },
                created_nanos: 5_000,
                qid: 3,
            }],
            fwd_del: vec![3, 5],
            stash_add: vec![StashState {
                src: Ipv4Addr::new(10, 0, 0, 9),
                name: name.clone(),
                answers: vec![Record::a(name.clone(), Ipv4Addr::new(192, 0, 2, 8), 30)],
                created_nanos: 4_500,
            }],
            stash_del: vec![(Ipv4Addr::new(10, 0, 0, 2), name)],
            next_txid: 1_000,
            next_qid: 55,
            active: true,
        }
    }

    #[test]
    fn delta_round_trips_authenticated() {
        let payload = ReplPayload::Delta(sample_delta());
        let wire = encode_repl(&payload, &secret());
        assert_eq!(decode_repl(&wire, &secret()), Ok(payload));
    }

    #[test]
    fn resync_round_trips() {
        let payload = ReplPayload::ResyncReq { have_seq: 17 };
        let wire = encode_repl(&payload, &secret());
        assert_eq!(decode_repl(&wire, &secret()), Ok(payload));
    }

    #[test]
    fn full_snapshot_round_trips() {
        let cp = GuardCheckpoint {
            version: CHECKPOINT_VERSION,
            seq: 1,
            taken_at_nanos: 10,
            key: KeyState {
                current: SecretKey::from_seed(1),
                previous: None,
                generation: 0,
                seed: 2006,
            },
            rl1: LimiterState::default(),
            rl2: LimiterState::default(),
            next_txid: 1,
            next_qid: 0,
            active: false,
            last_rotation_nanos: 0,
            fwd: Vec::new(),
            stash: Vec::new(),
        };
        let payload = ReplPayload::Full(cp);
        let wire = encode_repl(&payload, &secret());
        assert_eq!(decode_repl(&wire, &secret()), Ok(payload));
    }

    #[test]
    fn fleet_key_round_trips_authenticated() {
        let payload = ReplPayload::FleetKey {
            epoch: 3,
            key: KeyState {
                current: SecretKey::from_seed(30),
                previous: Some(SecretKey::from_seed(29)),
                generation: 3,
                seed: 2006,
            },
        };
        let wire = encode_repl(&payload, &secret());
        assert_eq!(decode_repl(&wire, &secret()), Ok(payload));
    }

    #[test]
    fn fleet_key_req_round_trips() {
        let payload = ReplPayload::FleetKeyReq { have_epoch: u64::MAX };
        let wire = encode_repl(&payload, &secret());
        assert_eq!(decode_repl(&wire, &secret()), Ok(payload));
    }

    #[test]
    fn wrong_secret_is_rejected() {
        let wire = encode_repl(&ReplPayload::ResyncReq { have_seq: 1 }, &secret());
        assert_eq!(
            decode_repl(&wire, &repl_secret(9_999)),
            Err(ReplError::BadAuth)
        );
    }

    #[test]
    fn any_flipped_bit_is_rejected() {
        let wire = encode_repl(&ReplPayload::Delta(sample_delta()), &secret());
        for i in (0..wire.len()).step_by(13) {
            let mut tampered = wire.clone();
            tampered[i] ^= 0x40;
            assert!(
                decode_repl(&tampered, &secret()).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn heartbeat_detection() {
        assert!(ReplDelta::default().is_heartbeat());
        assert!(!sample_delta().is_heartbeat());
    }
}
