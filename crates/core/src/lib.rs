//! **DNS Guard** — cookie-based spoof detection for DNS servers.
//!
//! This crate is the primary contribution of *"Spoof Detection for
//! Preventing DoS Attacks against DNS Servers"* (Guo, Chen & Chiueh,
//! ICDCS 2006), reproduced in full:
//!
//! * [`guard`] — the **remote guard** firewall node (Figure 4): cookie
//!   checker, scheme dispatch, both rate limiters, ANS forwarding;
//! * [`local_guard`] — the **local guard** that makes an unmodified LRS
//!   cookie-capable (modified-DNS scheme, Figure 3);
//! * [`tcp_proxy`] — the transparent TCP proxy with SYN cookies,
//!   connection-lifetime reaping and connection-rate limiting;
//! * [`ratelimit`] — Rate-Limiter1 (cookie responses; anti-reflection) and
//!   Rate-Limiter2 (verified requests; anti-non-spoofed-DoS);
//! * [`classify`] — referral/non-referral classification driving the two
//!   DNS-based cookie encodings;
//! * [`config`] — guard deployment configuration.
//!
//! The cookie itself — `MD5(source_ip ‖ 76-byte key)` with NS-name, subnet-IP
//! and full encodings plus generation-bit rotation — lives in [`guardhash`].
//!
//! # Quick start
//!
//! ```
//! use dnsguard::classify::AuthorityClassifier;
//! use dnsguard::config::{GuardConfig, SchemeMode};
//! use dnsguard::guard::RemoteGuard;
//! use netsim::engine::{CpuConfig, Simulator};
//! use server::authoritative::Authority;
//! use server::nodes::AuthNode;
//! use server::zone::paper_hierarchy;
//! use std::net::Ipv4Addr;
//!
//! let (root, _, _) = paper_hierarchy();
//! let authority = Authority::new(vec![root]);
//! let public = Ipv4Addr::new(198, 41, 0, 4);   // advertised ANS address
//! let private = Ipv4Addr::new(10, 99, 0, 1);   // real ANS behind the guard
//!
//! let mut sim = Simulator::new(7);
//! let config = GuardConfig::new(public, private).with_mode(SchemeMode::DnsBased);
//! let guard = sim.add_node(
//!     public,
//!     CpuConfig::default(),
//!     RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
//! );
//! sim.add_subnet(Ipv4Addr::new(198, 41, 0, 0), 24, guard);
//! sim.add_node(private, CpuConfig::default(), AuthNode::new(private, authority));
//! sim.run_until(netsim::SimTime::from_millis(10));
//! ```

#![forbid(unsafe_code)]

pub mod admission;
pub mod analytics;
pub mod checkpoint;
pub mod classify;
pub mod config;
pub mod guard;
pub mod ha;
pub mod local_guard;
pub mod ratelimit;
pub mod rfc7873;
pub mod stageprof;
pub mod tcp_proxy;

pub use admission::{AdmissionConfig, AdmissionController, PressureTier};
pub use checkpoint::{CheckpointStore, GuardCheckpoint, SharedCheckpointStore};
pub use classify::{AuthorityClassifier, Classification, Classifier};
pub use config::{AnsHealthPolicy, GuardConfig, SchemeMode};
pub use guard::{GuardStats, RemoteGuard};
pub use ha::{FleetConfig, HaConfig, HaRole};
pub use local_guard::LocalGuard;
pub use ratelimit::SourceRateLimiter;
pub use tcp_proxy::TcpProxy;

#[cfg(test)]
mod proptests {
    use crate::classify::AuthorityClassifier;
    use crate::config::{GuardConfig, SchemeMode};
    use crate::guard::RemoteGuard;
    use dnswire::message::Message;
    use dnswire::types::RrType;
    use netsim::engine::{Context, CpuConfig, Node, Simulator};
    use netsim::packet::{Endpoint, Packet, DNS_PORT};
    use netsim::time::SimTime;
    use proptest::prelude::*;
    use server::authoritative::Authority;
    use server::nodes::AuthNode;
    use server::simclient::{CookieMode, LrsSimConfig, LrsSimulator};
    use server::zone::paper_hierarchy;
    use std::net::Ipv4Addr;

    const PUB: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const PRIV: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);

    /// Fires spoofed packets (one source per payload) at the guard.
    struct Spammer {
        payloads: Vec<Vec<u8>>,
    }
    impl Node for Spammer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for (i, p) in self.payloads.drain(..).enumerate() {
                ctx.send(Packet::udp(
                    Endpoint::new(Ipv4Addr::from(0x0800_0000 + i as u32), 1234),
                    Endpoint::new(PUB, DNS_PORT),
                    p,
                ));
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
    }

    /// Fires pre-built packets (arbitrary spoofed src/dst) at the guard.
    struct PacketSpammer {
        pkts: Vec<Packet>,
    }
    impl Node for PacketSpammer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for p in self.pkts.drain(..) {
                ctx.send(p);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
    }

    /// One adversarial datagram per kind selector, aimed at a different
    /// pipeline disposition.
    fn craft(kind: u8, i: usize) -> Packet {
        use dnswire::cookie_ext;
        let src = Endpoint::new(Ipv4Addr::from(0x0900_0000 + i as u32), 1234);
        let dst = Endpoint::new(PUB, DNS_PORT);
        let q = |name: &str| Message::iterative_query(i as u16, name.parse().unwrap(), RrType::A);
        match kind {
            // Undecodable bytes.
            0 => Packet::udp(src, dst, vec![0xFF; 3 + i % 40]),
            // In-bailiwick plain query.
            1 => Packet::udp(src, dst, q("www.foo.com").encode()),
            // Out-of-bailiwick plain query.
            2 => Packet::udp(src, dst, q("h.elsewhere.example").encode()),
            // Root query.
            3 => Packet::udp(
                src,
                dst,
                Message::iterative_query(i as u16, dnswire::Name::root(), RrType::Ns).encode(),
            ),
            // Cookie grant request (zero cookie).
            4 => {
                let mut m = q("www.foo.com");
                cookie_ext::attach_cookie(&mut m, [0u8; 16], 0);
                Packet::udp(src, dst, m.encode())
            }
            // Forged non-zero extension cookie.
            5 => {
                let mut m = q("www.foo.com");
                cookie_ext::attach_cookie(&mut m, [0xAB; 16], 0);
                Packet::udp(src, dst, m.encode())
            }
            // Forged cookie-embedded NS label.
            6 => Packet::udp(src, dst, q(&format!("PR{i:08x}com")).encode()),
            // Query to a guessed COOKIE2 subnet address.
            7 => Packet::udp(
                src,
                Endpoint::new(Ipv4Addr::new(198, 41, 0, 1 + (i % 250) as u8), DNS_PORT),
                q("www.foo.com").encode(),
            ),
            // Response-flagged datagram from a foreign source.
            8 => {
                let mut m = q("www.foo.com");
                m.header.response = true;
                Packet::udp(src, dst, m.encode())
            }
            // Response-flagged datagram spoofing the ANS address (matches
            // no forward-table entry, or steals a live txid — either way
            // exactly one bucket).
            _ => {
                let mut m = q("www.foo.com");
                m.header.response = true;
                Packet::udp(Endpoint::new(PRIV, DNS_PORT), dst, m.encode())
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The guard never panics on junk, and junk never reaches the ANS.
        #[test]
        fn junk_never_reaches_ans(payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80), 1..20)) {
            let (root, _, _) = paper_hierarchy();
            let authority = Authority::new(vec![root]);
            let mut sim = Simulator::new(1);
            let config = GuardConfig::new(PUB, PRIV).with_mode(SchemeMode::DnsBased);
            let _guard = sim.add_node(
                PUB,
                CpuConfig::unbounded(),
                RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
            );
            let ans = sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority));
            sim.add_node(Ipv4Addr::new(8, 0, 0, 1), CpuConfig::unbounded(), Spammer { payloads });
            sim.run_until(SimTime::from_millis(20));
            // Random bytes essentially never decode as a well-formed DNS
            // query, so nothing should be forwarded.
            let ans_node = sim.node_ref::<AuthNode>(ans).unwrap();
            prop_assert_eq!(ans_node.total_queries(), 0);
        }

        /// No false positives: a protocol-following requester from *any*
        /// address completes requests through the guard, in every scheme.
        #[test]
        fn any_legitimate_address_served(a in 1u8..250, b in 1u8..250, mode_sel in 0usize..3) {
            let (root, _, foo) = paper_hierarchy();
            let (zone, lrs_mode, guard_mode) = match mode_sel {
                0 => (root, CookieMode::Plain, SchemeMode::DnsBased),
                1 => (foo, CookieMode::Plain, SchemeMode::DnsBased),
                _ => (foo, CookieMode::Extension, SchemeMode::ModifiedOnly),
            };
            let authority = Authority::new(vec![zone]);
            let mut sim = Simulator::new(u64::from(a) << 8 | u64::from(b));
            let gconfig = GuardConfig::new(PUB, PRIV).with_mode(guard_mode);
            let guard = sim.add_node(
                PUB,
                CpuConfig::unbounded(),
                RemoteGuard::new(gconfig, AuthorityClassifier::new(authority.clone())),
            );
            sim.add_subnet(Ipv4Addr::new(198, 41, 0, 0), 24, guard);
            sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority));
            let lrs_ip = Ipv4Addr::new(172, a, b, 1);
            let mut lconfig = LrsSimConfig::new(lrs_ip, PUB, "www.foo.com".parse().unwrap());
            lconfig.mode = lrs_mode;
            let lrs = sim.add_node(lrs_ip, CpuConfig::unbounded(), LrsSimulator::new(lconfig));
            sim.run_until(SimTime::from_millis(60));
            let stats = sim.node_ref::<LrsSimulator>(lrs).unwrap().stats;
            prop_assert!(stats.completed > 0, "no completions for {}", lrs_ip);
            let gs = sim.node_ref::<RemoteGuard>(guard).unwrap();
            prop_assert_eq!(gs.stats().spoofed_dropped(), 0, "false positive for {}", lrs_ip);
        }

        /// Spoofed guessers win at most at the cookie-range rate: 200
        /// random 32-bit guesses essentially never pass.
        #[test]
        fn random_guesses_rejected(seed in any::<u64>()) {
            let (root, _, _) = paper_hierarchy();
            let authority = Authority::new(vec![root]);
            let mut sim = Simulator::new(seed);
            let config = GuardConfig::new(PUB, PRIV).with_mode(SchemeMode::DnsBased);
            let guard = sim.add_node(
                PUB,
                CpuConfig::unbounded(),
                RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
            );
            sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority));
            let payloads: Vec<Vec<u8>> = (0..200u32)
                .map(|i| {
                    let name: dnswire::Name = format!(
                        "PR{:08x}com",
                        i.wrapping_mul(0x9E37_79B9) ^ seed as u32
                    )
                    .parse()
                    .unwrap();
                    Message::iterative_query(i as u16, name, RrType::A).encode()
                })
                .collect();
            sim.add_node(Ipv4Addr::new(8, 0, 0, 1), CpuConfig::unbounded(), Spammer { payloads });
            sim.run_until(SimTime::from_millis(20));
            let gs = sim.node_ref::<RemoteGuard>(guard).unwrap();
            prop_assert!(gs.stats().ns_cookie_valid <= 1, "guesses passed: {}", gs.stats().ns_cookie_valid);
            prop_assert!(gs.stats().ns_cookie_invalid >= 199);
        }

        /// Conservation: every UDP datagram entering the guard pipeline is
        /// counted in exactly one terminal disposition bucket, whatever mix
        /// of legitimate, malformed, spoofed and misdirected traffic
        /// arrives, in every scheme.
        #[test]
        fn every_datagram_lands_in_one_bucket(
            kinds in proptest::collection::vec(0u8..10, 1..100),
            mode_sel in 0usize..3,
        ) {
            let (root, _, foo) = paper_hierarchy();
            let (zone, lrs_mode, guard_mode) = match mode_sel {
                0 => (root, CookieMode::Plain, SchemeMode::DnsBased),
                1 => (foo, CookieMode::Plain, SchemeMode::TcpBased),
                _ => (foo, CookieMode::Extension, SchemeMode::ModifiedOnly),
            };
            let authority = Authority::new(vec![zone]);
            let mut sim = Simulator::new(kinds.len() as u64);
            let gconfig = GuardConfig::new(PUB, PRIV).with_mode(guard_mode);
            let guard = sim.add_node(
                PUB,
                CpuConfig::unbounded(),
                RemoteGuard::new(gconfig, AuthorityClassifier::new(authority.clone())),
            );
            sim.add_subnet(Ipv4Addr::new(198, 41, 0, 0), 24, guard);
            sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority));
            // A protocol-following requester alongside the junk, so valid
            // verify/forward/relay paths are also in the mix.
            let lrs_ip = Ipv4Addr::new(172, 16, 0, 1);
            let mut lconfig = LrsSimConfig::new(lrs_ip, PUB, "www.foo.com".parse().unwrap());
            lconfig.mode = lrs_mode;
            sim.add_node(lrs_ip, CpuConfig::unbounded(), LrsSimulator::new(lconfig));
            let pkts: Vec<Packet> = kinds.iter().enumerate().map(|(i, &k)| craft(k, i)).collect();
            sim.add_node(Ipv4Addr::new(9, 0, 0, 1), CpuConfig::unbounded(), PacketSpammer { pkts });
            sim.run_until(SimTime::from_millis(40));
            let gs = sim.node_ref::<RemoteGuard>(guard).unwrap().stats();
            prop_assert_eq!(
                gs.udp_datagrams,
                gs.disposition_total(),
                "disposition buckets must partition the datagram count: {:?}",
                gs
            );
            prop_assert!(gs.udp_datagrams >= kinds.len() as u64, "all crafted datagrams arrived");
        }

        /// Checkpoint round-trip: `restore(checkpoint(g))` survives the
        /// wire encoding, preserves cookie-verification outcomes across any
        /// number of key rotations (generation bit and previous key
        /// included), and never resurrects a forwarding entry that is past
        /// its ANS-timeout deadline at restore time.
        #[test]
        fn checkpoint_restore_preserves_verification_and_drops_expired(
            kinds in proptest::collection::vec(0u8..10, 1..60),
            rotations in 0u8..3,
            delay_ms in 0u64..2_500,
        ) {
            use crate::checkpoint::GuardCheckpoint;

            let (root, _, _) = paper_hierarchy();
            let authority = Authority::new(vec![root]);
            let mut sim = Simulator::new(kinds.len() as u64 ^ delay_ms);
            let config = GuardConfig::new(PUB, PRIV).with_mode(SchemeMode::DnsBased);
            let guard = sim.add_node(
                PUB,
                CpuConfig::unbounded(),
                RemoteGuard::new(config.clone(), AuthorityClassifier::new(authority.clone())),
            );
            sim.add_subnet(Ipv4Addr::new(198, 41, 0, 0), 24, guard);
            sim.add_node(PRIV, CpuConfig::unbounded(), AuthNode::new(PRIV, authority.clone()));
            let lrs_ip = Ipv4Addr::new(172, 16, 0, 1);
            sim.add_node(
                lrs_ip,
                CpuConfig::unbounded(),
                LrsSimulator::new(LrsSimConfig::new(lrs_ip, PUB, "www.foo.com".parse().unwrap())),
            );
            let pkts: Vec<Packet> = kinds.iter().enumerate().map(|(i, &k)| craft(k, i)).collect();
            sim.add_node(Ipv4Addr::new(9, 0, 0, 1), CpuConfig::unbounded(), PacketSpammer { pkts });
            sim.run_until(SimTime::from_millis(40));
            for _ in 0..rotations {
                sim.node_mut::<RemoteGuard>(guard).unwrap().rotate_key();
            }
            sim.run_until(SimTime::from_millis(50));

            let now = sim.now();
            let g = sim.node_ref::<RemoteGuard>(guard).unwrap();
            let cp = g.checkpoint(now);
            let decoded = GuardCheckpoint::decode(&cp.encode()).expect("wire round-trip");
            prop_assert_eq!(decoded.seq, cp.seq);
            prop_assert_eq!(decoded.taken_at_nanos, cp.taken_at_nanos);
            prop_assert_eq!(decoded.fwd.len(), cp.fwd.len());
            prop_assert_eq!(decoded.stash.len(), cp.stash.len());

            let later = now + SimTime::from_millis(delay_ms);
            let restored = RemoteGuard::restore_from_checkpoint(
                config.clone(),
                AuthorityClassifier::new(authority),
                &decoded,
                later,
            );
            // Key state round-trips exactly: same generation, same current
            // and previous keys, so every cookie — including one granted
            // before a rotation — verifies identically.
            prop_assert_eq!(
                restored.cookie_factory().generation(),
                g.cookie_factory().generation()
            );
            prop_assert_eq!(
                restored.cookie_factory().previous_key().map(|k| *k.as_bytes()),
                g.cookie_factory().previous_key().map(|k| *k.as_bytes())
            );
            for oct in [1u8, 77, 201] {
                let ip = Ipv4Addr::new(172, 16, 9, oct);
                let cookie = g.cookie_factory().generate(ip);
                prop_assert!(
                    restored.cookie_factory().verify(ip, &cookie),
                    "cookie for {} must survive restore",
                    ip
                );
            }
            // Staleness: exactly the entries past the ANS-timeout deadline
            // at restore time are dropped, never replayed.
            let deadline = config.ans_timeout.as_nanos();
            let expected_stale = decoded
                .fwd
                .iter()
                .filter(|f| later.as_nanos().saturating_sub(f.created_nanos) >= deadline)
                .count() as u64;
            prop_assert_eq!(restored.stats().restores, 1);
            prop_assert_eq!(restored.stats().restore_stale_fwd, expected_stale);
            if delay_ms as u128 * 1_000_000 >= deadline as u128 {
                prop_assert_eq!(
                    restored.stats().restore_stale_fwd,
                    decoded.fwd.len() as u64,
                    "past the deadline, every forwarding entry is stale"
                );
            }
        }
    }
}
