//! The local DNS guard (section III.D): a transparent middlebox in front of
//! an *unmodified* LRS that makes it cookie-capable.
//!
//! Outbound queries to a new ANS trigger the cookie exchange (messages 2/3
//! of Figure 3(a)): the guard holds the query, sends a copy carrying the
//! all-zero cookie, caches the granted cookie, then releases the held query
//! with the cookie attached. Subsequent queries are stamped directly from
//! the cache. Inbound responses have the extension stripped before the LRS
//! sees them, so the LRS never needs to understand the extension.
//!
//! Deploy with [`netsim::Simulator::set_gateway`] (outbound tap) plus
//! routing the LRS's public address to this node (inbound interception);
//! see the crate examples.

use dnswire::cookie_ext::{self, ZERO_COOKIE};
use dnswire::message::Message;
use netsim::engine::{Context, Node, NodeId};
use netsim::packet::{Packet, Proto, DNS_PORT};
use netsim::time::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How long a "server is not cookie-capable" verdict is remembered.
const INCAPABLE_TTL: SimTime = SimTime::from_secs(3600);

/// Held-query sweep period.
const SWEEP: SimTime = SimTime::from_secs(1);

/// Counters for the local guard.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalGuardStats {
    /// Queries stamped with a cached cookie.
    pub stamped: u64,
    /// Cookie exchanges initiated (message 2 sent).
    pub grants_requested: u64,
    /// Cookies cached from grants (message 3 received).
    pub cookies_cached: u64,
    /// Responses delivered to the LRS (extension stripped when present).
    pub delivered: u64,
    /// Servers discovered to be cookie-incapable (answered the probe
    /// directly).
    pub incapable_servers: u64,
}

#[derive(Debug)]
struct CachedCookie {
    cookie: [u8; 16],
    expires: SimTime,
}

#[derive(Debug)]
struct HeldQuery {
    original: Message,
    created: SimTime,
}

/// The local guard node.
pub struct LocalGuard {
    /// The LRS this guard fronts.
    lrs_node: NodeId,
    lrs_addr: Ipv4Addr,
    cookies: HashMap<Ipv4Addr, CachedCookie>,
    incapable: HashMap<Ipv4Addr, SimTime>,
    held: HashMap<(Ipv4Addr, u16), HeldQuery>,
    /// Counters.
    pub stats: LocalGuardStats,
}

impl LocalGuard {
    /// Creates a guard fronting the LRS node `lrs_node` whose address is
    /// `lrs_addr`.
    pub fn new(lrs_node: NodeId, lrs_addr: Ipv4Addr) -> Self {
        LocalGuard {
            lrs_node,
            lrs_addr,
            cookies: HashMap::new(),
            incapable: HashMap::new(),
            held: HashMap::new(),
            stats: LocalGuardStats::default(),
        }
    }

    /// Number of ANS cookies currently cached.
    pub fn cached_cookies(&self) -> usize {
        self.cookies.len()
    }

    fn handle_outbound(&mut self, ctx: &mut Context<'_>, pkt: Packet, msg: Message) {
        let now = ctx.now();
        let server = pkt.dst.ip;
        // Cookie-incapable server (learned earlier): pass through.
        if matches!(self.incapable.get(&server), Some(&until) if until > now) {
            ctx.send(pkt);
            return;
        }
        if let Some(cached) = self.cookies.get(&server) {
            if cached.expires > now {
                let mut stamped = msg;
                cookie_ext::attach_cookie(&mut stamped, cached.cookie, 0);
                self.stats.stamped += 1;
                ctx.send(Packet::udp(pkt.src, pkt.dst, stamped.encode()));
                return;
            }
            self.cookies.remove(&server);
        }
        // No cookie: hold the query and probe with the all-zero extension.
        let txid = msg.header.id;
        let mut probe = msg.clone();
        cookie_ext::attach_cookie(&mut probe, ZERO_COOKIE, 0);
        self.held.insert(
            (server, txid),
            HeldQuery {
                original: msg,
                created: now,
            },
        );
        self.stats.grants_requested += 1;
        ctx.send(Packet::udp(pkt.src, pkt.dst, probe.encode()));
    }

    fn handle_inbound(&mut self, ctx: &mut Context<'_>, pkt: Packet, mut msg: Message) {
        let server = pkt.src.ip;
        let key = (server, msg.header.id);
        let ext = cookie_ext::strip_cookie(&mut msg);

        match (self.held.remove(&key), ext) {
            (Some(held), Some(ext)) if !ext.is_request() && msg.answers.is_empty() && msg.authorities.is_empty() => {
                // Message 3: a pure grant — cache and release the held query
                // with the cookie attached (message 4).
                self.cookies.insert(
                    server,
                    CachedCookie {
                        cookie: ext.cookie,
                        expires: ctx.now() + SimTime::from_secs(ext.ttl as u64),
                    },
                );
                self.stats.cookies_cached += 1;
                let mut release = held.original;
                cookie_ext::attach_cookie(&mut release, ext.cookie, 0);
                self.stats.stamped += 1;
                // Message 4: from the LRS's endpoint back to the server.
                ctx.send(Packet::udp(pkt.dst, pkt.src, release.encode()));
            }
            (Some(_held), None) => {
                // The server answered the zero-cookie probe directly: it is
                // not cookie-capable. Remember that and deliver its answer.
                self.incapable.insert(server, ctx.now() + INCAPABLE_TTL);
                self.stats.incapable_servers += 1;
                self.stats.delivered += 1;
                ctx.send_direct(self.lrs_node, Packet::udp(pkt.src, pkt.dst, msg.encode()));
            }
            _ => {
                // Ordinary response (possibly with a stripped extension).
                self.stats.delivered += 1;
                ctx.send_direct(self.lrs_node, Packet::udp(pkt.src, pkt.dst, msg.encode()));
            }
        }
    }
}

impl Node for LocalGuard {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_daemon_timer(SWEEP, 0);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.proto != Proto::Udp {
            // TCP (and anything else) passes through untouched: outbound via
            // routing, inbound directly to the LRS.
            if pkt.src.ip == self.lrs_addr {
                ctx.send(pkt);
            } else {
                ctx.send_direct(self.lrs_node, pkt);
            }
            return;
        }
        let Ok(msg) = Message::decode(&pkt.payload) else {
            // Not DNS: relay.
            if pkt.src.ip == self.lrs_addr {
                ctx.send(pkt);
            } else {
                ctx.send_direct(self.lrs_node, pkt);
            }
            return;
        };
        if pkt.src.ip == self.lrs_addr && !msg.header.response && pkt.dst.port == DNS_PORT {
            self.handle_outbound(ctx, pkt, msg);
        } else if pkt.dst.ip == self.lrs_addr && msg.header.response {
            self.handle_inbound(ctx, pkt, msg);
        } else if pkt.src.ip == self.lrs_addr {
            ctx.send(pkt);
        } else {
            ctx.send_direct(self.lrs_node, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        ctx.set_daemon_timer(SWEEP, 0);
        let now = ctx.now();
        self.held
            .retain(|_, h| now.saturating_sub(h.created) < SimTime::from_secs(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::AuthorityClassifier;
    use crate::config::{GuardConfig, SchemeMode};
    use crate::guard::RemoteGuard;
    use dnswire::rdata::RData;
    use dnswire::types::RrType;
    use netsim::engine::{CpuConfig, Simulator};
    use netsim::packet::Endpoint;
    use server::authoritative::Authority;
    use server::nodes::AuthNode;
    use server::zone::{paper_hierarchy, FOO_SERVER, WWW_ADDR};

    const ANS_PRIVATE: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 2);
    const LRS_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);

    /// A bare client that queries through its (transparent) environment.
    struct Client {
        me: Endpoint,
        server: Endpoint,
        reply: Option<Message>,
        send_twice: bool,
    }
    impl Node for Client {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let q = Message::iterative_query(31, "www.foo.com".parse().unwrap(), RrType::A);
            ctx.send(Packet::udp(self.me, self.server, q.encode()));
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
            self.reply = Message::decode(&pkt.payload).ok();
            if self.send_twice {
                self.send_twice = false;
                let q = Message::iterative_query(32, "www.foo.com".parse().unwrap(), RrType::A);
                ctx.send(Packet::udp(self.me, self.server, q.encode()));
            }
        }
    }

    fn world(seed: u64, remote_guarded: bool) -> (Simulator, netsim::NodeId, netsim::NodeId) {
        let (_, _, foo) = paper_hierarchy();
        let authority = Authority::new(vec![foo]);
        let mut sim = Simulator::new(seed);

        if remote_guarded {
            let config = GuardConfig::new(FOO_SERVER, ANS_PRIVATE).with_mode(SchemeMode::ModifiedOnly);
            let g = sim.add_node(
                FOO_SERVER,
                CpuConfig::unbounded(),
                RemoteGuard::new(config, AuthorityClassifier::new(authority.clone())),
            );
            sim.add_subnet(Ipv4Addr::new(192, 0, 2, 0), 24, g);
            sim.add_node(ANS_PRIVATE, CpuConfig::unbounded(), AuthNode::new(ANS_PRIVATE, authority));
        } else {
            sim.add_node(FOO_SERVER, CpuConfig::unbounded(), AuthNode::new(FOO_SERVER, authority));
        }

        // The "LRS" here is a bare client; the local guard taps its egress
        // and owns its address for ingress.
        let client = sim.add_node(
            Ipv4Addr::new(10, 255, 0, 1), // private registration address
            CpuConfig::unbounded(),
            Client {
                me: Endpoint::new(LRS_ADDR, 7777),
                server: Endpoint::new(FOO_SERVER, DNS_PORT),
                reply: None,
                send_twice: true,
            },
        );
        let local = sim.add_node(LRS_ADDR, CpuConfig::unbounded(), LocalGuard::new(client, LRS_ADDR));
        sim.set_gateway(client, local);
        (sim, client, local)
    }

    #[test]
    fn cookie_exchange_then_stamped_queries() {
        let (mut sim, client, local) = world(1, true);
        sim.run_until(SimTime::from_millis(50));
        let reply = sim.node_ref::<Client>(client).unwrap().reply.clone().unwrap();
        assert_eq!(reply.answers[0].rdata, RData::A(WWW_ADDR));
        assert!(
            !dnswire::cookie_ext::has_cookie(&reply),
            "extension stripped before the LRS sees it"
        );
        let guard = sim.node_ref::<LocalGuard>(local).unwrap();
        assert_eq!(guard.stats.grants_requested, 1);
        assert_eq!(guard.stats.cookies_cached, 1);
        assert_eq!(guard.stats.stamped, 2, "held release + second query");
        assert_eq!(guard.cached_cookies(), 1);
    }

    #[test]
    fn incapable_server_pass_through() {
        let (mut sim, client, local) = world(2, false);
        sim.run_until(SimTime::from_millis(50));
        let reply = sim.node_ref::<Client>(client).unwrap().reply.clone().unwrap();
        assert_eq!(reply.answers[0].rdata, RData::A(WWW_ADDR));
        let guard = sim.node_ref::<LocalGuard>(local).unwrap();
        assert_eq!(guard.stats.incapable_servers, 1);
        assert_eq!(guard.cached_cookies(), 0);
        assert_eq!(guard.stats.grants_requested, 1, "probed once, then remembered");
    }
}
