//! The guard's two rate limiters (Figure 4).
//!
//! **Rate-Limiter1** sits on the *cookie response* path: every packet the
//! guard emits toward an unverified address (cookie grants, fabricated NS
//! answers, truncation responses) passes it. It combines a global budget —
//! which bounds the guard's total usefulness as a traffic reflector even
//! against fully random spoofed sources — with per-source buckets that
//! throttle the top requesters the paper mentions.
//!
//! **Rate-Limiter2** sits on the *verified request* path: requests whose
//! cookie checked out are per-source limited to a nominal rate, which is
//! what blunts DoS from real (non-spoofed) addresses and from attackers who
//! somehow obtained one host's cookie.

use crate::checkpoint::LimiterState;
use netsim::time::SimTime;
use netsim::tokenbucket::TokenBucket;
use obs::metrics::{Counter, Registry};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Maximum tracked sources before the per-source table is generationally
/// reset (a spoofed flood would otherwise grow it without bound).
const MAX_TRACKED_SOURCES: usize = 65_536;

/// A per-source rate limiter with an optional global budget.
#[derive(Debug)]
pub struct SourceRateLimiter {
    global: Option<TokenBucket>,
    per_source: HashMap<Ipv4Addr, TokenBucket>,
    per_source_rate: f64,
    per_source_burst: f64,
    /// Admitted events (detached registry counter; see
    /// [`SourceRateLimiter::adopt_into`]).
    admitted: Counter,
    /// Rejected events.
    rejected: Counter,
}

impl SourceRateLimiter {
    /// Creates a limiter with both a global and a per-source rate.
    pub fn new(global_rate: f64, per_source_rate: f64) -> Self {
        SourceRateLimiter {
            global: Some(TokenBucket::new(global_rate, (global_rate / 10.0).max(1.0))),
            per_source: HashMap::new(),
            per_source_rate,
            per_source_burst: (per_source_rate / 10.0).max(8.0),
            admitted: Counter::new(),
            rejected: Counter::new(),
        }
    }

    /// Creates a limiter with only per-source buckets (Rate-Limiter2).
    pub fn per_source_only(per_source_rate: f64) -> Self {
        SourceRateLimiter {
            global: None,
            per_source: HashMap::new(),
            per_source_rate,
            per_source_burst: (per_source_rate / 10.0).max(8.0),
            admitted: Counter::new(),
            rejected: Counter::new(),
        }
    }

    /// Registers this limiter's counters in `registry` as
    /// `<component>.rl_admitted{limiter=<limiter>}` /
    /// `<component>.rl_rejected{limiter=<limiter>}`.
    pub fn adopt_into(&self, registry: &Registry, component: &'static str, limiter: &'static str) {
        registry.adopt_counter(component, "rl_admitted", &[("limiter", limiter)], &self.admitted);
        registry.adopt_counter(component, "rl_rejected", &[("limiter", limiter)], &self.rejected);
    }

    /// Total admitted events.
    pub fn admitted(&self) -> u64 {
        self.admitted.get()
    }

    /// Total rejected events.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Admits or rejects one event from `src` at time `now`.
    ///
    /// The global bucket is consulted first (cheap, no per-source state
    /// touched on global rejection — this keeps the drop path inexpensive
    /// under full-rate floods).
    pub fn admit(&mut self, now: SimTime, src: Ipv4Addr) -> bool {
        if let Some(global) = &mut self.global {
            if !global.try_take(now) {
                self.rejected.inc();
                return false;
            }
        }
        if self.per_source.len() >= MAX_TRACKED_SOURCES {
            // Generational reset: forget history rather than grow without
            // bound. Top requesters refill quickly and are re-throttled.
            self.per_source.clear();
        }
        let rate = self.per_source_rate;
        let burst = self.per_source_burst;
        let bucket = self
            .per_source
            .entry(src)
            .or_insert_with(|| TokenBucket::new(rate, burst));
        if bucket.try_take(now) {
            self.admitted.inc();
            true
        } else {
            self.rejected.inc();
            false
        }
    }

    /// Number of sources currently tracked.
    pub fn tracked_sources(&self) -> usize {
        self.per_source.len()
    }

    /// Serializable bucket state for guard checkpointing. Per-source
    /// entries are sorted by address so the encoding is deterministic.
    /// The admitted/rejected *counters* are process-local metrics and are
    /// deliberately not part of the state.
    pub fn checkpoint(&self) -> LimiterState {
        let mut per_source: Vec<_> = self
            .per_source
            .iter()
            .map(|(ip, b)| (*ip, b.checkpoint()))
            .collect();
        per_source.sort_by_key(|(ip, _)| u32::from(*ip));
        LimiterState {
            global: self.global.as_ref().map(|b| b.checkpoint()),
            per_source,
        }
    }

    /// Replaces this limiter's bucket fill levels with a checkpointed
    /// snapshot. Configured rates stay as constructed (config is the
    /// authority on limits; the snapshot only carries fill levels), and the
    /// per-source table is capped at the same bound `admit` enforces.
    pub fn restore_state(&mut self, state: &LimiterState) {
        if let (Some(global), Some(snap)) = (self.global.as_mut(), state.global.as_ref()) {
            *global = TokenBucket::restore(snap);
        }
        self.per_source = state
            .per_source
            .iter()
            .take(MAX_TRACKED_SOURCES)
            .map(|(ip, b)| (*ip, TokenBucket::restore(b)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn per_source_throttles_top_requester() {
        let mut rl = SourceRateLimiter::new(1_000_000.0, 100.0);
        let mut admitted = 0;
        for i in 0..10_000u64 {
            let now = SimTime::from_micros(i * 100); // 10K offers over 1 s
            if rl.admit(now, ip(1)) {
                admitted += 1;
            }
        }
        assert!((90..=130).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn global_budget_bounds_total_reflection() {
        // 1000 distinct spoofed sources, each offering 100/s; global 500/s.
        let mut rl = SourceRateLimiter::new(500.0, 1_000.0);
        let mut admitted = 0u64;
        for i in 0..100_000u64 {
            let now = SimTime::from_micros(i * 10); // over 1 s
            let src = Ipv4Addr::from(0x0B00_0000 + (i % 1000) as u32);
            if rl.admit(now, src) {
                admitted += 1;
            }
        }
        assert!(admitted <= 650, "admitted {admitted} > global budget");
    }

    #[test]
    fn independent_sources_independent_buckets() {
        let mut rl = SourceRateLimiter::per_source_only(10.0);
        let t = SimTime::from_secs(1);
        // Burst is max(1, 8): both sources can emit 8 immediately.
        for s in 1..=2u8 {
            for _ in 0..8 {
                assert!(rl.admit(t, ip(s)));
            }
            assert!(!rl.admit(t, ip(s)));
        }
        assert_eq!(rl.tracked_sources(), 2);
    }

    #[test]
    fn table_reset_survives_source_flood() {
        let mut rl = SourceRateLimiter::per_source_only(1.0);
        for i in 0..(MAX_TRACKED_SOURCES as u32 + 10) {
            let _ = rl.admit(SimTime::from_secs(1), Ipv4Addr::from(i));
        }
        assert!(rl.tracked_sources() <= MAX_TRACKED_SOURCES);
    }

    #[test]
    fn counters_track_decisions() {
        let mut rl = SourceRateLimiter::per_source_only(1.0);
        let t = SimTime::from_secs(10);
        for _ in 0..20 {
            let _ = rl.admit(t, ip(9));
        }
        assert_eq!(rl.admitted() + rl.rejected(), 20);
        assert!(rl.admitted() >= 1);
        assert!(rl.rejected() >= 1);
    }

    #[test]
    fn checkpoint_restore_preserves_throttle_state() {
        let mut rl = SourceRateLimiter::new(1_000.0, 10.0);
        let t = SimTime::from_secs(1);
        // Drain source 1's bucket completely.
        while rl.admit(t, ip(1)) {}
        let snap = rl.checkpoint();
        let mut restored = SourceRateLimiter::new(1_000.0, 10.0);
        restored.restore_state(&snap);
        // The restored limiter remembers the drained bucket: source 1 is
        // still throttled while a fresh source gets its full burst.
        assert!(!restored.admit(t, ip(1)), "drained bucket resurrected");
        assert!(restored.admit(t, ip(2)));
        assert_eq!(restored.tracked_sources(), 2);
    }

    #[test]
    fn adoption_exports_decisions() {
        let reg = Registry::new();
        let mut rl = SourceRateLimiter::per_source_only(1.0);
        rl.adopt_into(&reg, "guard", "rl2");
        let t = SimTime::from_secs(10);
        for _ in 0..20 {
            let _ = rl.admit(t, ip(3));
        }
        let total: u64 = reg
            .snapshot()
            .iter()
            .map(|m| match m.value {
                obs::metrics::SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 20, "registry sees every decision");
    }
}
