//! Modern DNS Cookies (RFC 7873) — the standardised descendant of the
//! paper's modified-DNS scheme, implemented as an extension so the two
//! generations can be compared side by side.
//!
//! Differences from the paper's TXT-record design:
//!
//! * the cookie rides in an EDNS COOKIE option instead of a TXT record;
//! * the client contributes an 8-byte **client cookie** (binding responses
//!   to its own request, which also hardens against off-path response
//!   spoofing — something the paper's server-only cookie does not give);
//! * the server cookie is a keyed hash over *both* the client cookie and
//!   the client address;
//! * a first contact is answered with extended RCODE **BADCOOKIE** (23)
//!   together with the correct server cookie when the server is enforcing,
//!   rather than with a fabricated record.

use dnswire::edns::{self, DnsCookie};
use dnswire::message::Message;
use dnswire::types::Rcode;
use guardhash::cookie::{CookieAlg, SecretKey};
use guardhash::md5::Md5;
use guardhash::siphash::siphash24;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Length of the server cookie we mint (RFC 7873 allows 8–32 bytes).
pub const SERVER_COOKIE_LEN: usize = 16;

/// Version byte of the interoperable (draft-sury-toorop / RFC 9018)
/// server-cookie layout: `Version(1) | Reserved(3) | Epoch(4) | Hash(8)`.
pub const INTEROP_COOKIE_VERSION: u8 = 1;

/// Server-side DNS Cookie engine.
///
/// # Examples
///
/// ```
/// use dnsguard::rfc7873::{CookieServer, QueryVerdict};
/// use dnswire::edns::{set_dns_cookie, DnsCookie};
/// use dnswire::types::RrType;
/// use std::net::Ipv4Addr;
///
/// let server = CookieServer::new(7, true);
/// let client_ip = Ipv4Addr::new(192, 0, 2, 1);
/// let mut query = dnswire::Message::query(1, "www.foo.com".parse()?, RrType::A);
/// set_dns_cookie(&mut query, &DnsCookie::client_only([9; 8]));
/// // First contact while enforcing: BADCOOKIE with the correct cookie.
/// assert!(matches!(server.verdict(&query, client_ip), QueryVerdict::BadCookie { .. }));
/// # Ok::<(), dnswire::error::WireError>(())
/// ```
#[derive(Debug)]
pub struct CookieServer {
    key: SecretKey,
    /// The previous key, live while a rotation grace window is open
    /// (SipHash mode only — the vendor MD5 cookie has no epoch field to
    /// dispatch on).
    previous: Option<SecretKey>,
    /// Current key epoch, carried in interoperable server cookies so a
    /// verifier knows which secret minted a presented cookie.
    epoch: u32,
    /// Seed future rotations derive from.
    seed: u64,
    /// Cookie construction: the legacy vendor MD5 layout, or the
    /// interoperable SipHash-2-4 versioned layout of draft-sury-toorop.
    alg: CookieAlg,
    /// When enforcing (e.g. under attack), queries without a valid server
    /// cookie get BADCOOKIE instead of service.
    pub enforcing: bool,
}

/// What to do with an incoming query, per RFC 7873 §5.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryVerdict {
    /// No COOKIE option: legacy client, process normally.
    Legacy,
    /// COOKIE option present but malformed: answer FORMERR.
    FormErr,
    /// Cookie acceptable: process the query; attach this cookie to the
    /// response (fresh server cookie included).
    Accept {
        /// Cookie to return.
        respond_with: DnsCookie,
    },
    /// Only-client-cookie (or stale server cookie) while enforcing:
    /// answer BADCOOKIE carrying the correct server cookie.
    BadCookie {
        /// Cookie to return.
        respond_with: DnsCookie,
    },
}

impl CookieServer {
    /// Creates a server engine keyed from `seed` (vendor MD5 layout).
    pub fn new(seed: u64, enforcing: bool) -> Self {
        CookieServer {
            key: SecretKey::from_seed(seed),
            previous: None,
            epoch: 0,
            seed,
            alg: CookieAlg::Md5,
            enforcing,
        }
    }

    /// Selects the cookie construction (builder style; default MD5).
    pub fn with_alg(mut self, alg: CookieAlg) -> Self {
        self.alg = alg;
        self
    }

    /// The cookie construction in use.
    pub fn alg(&self) -> CookieAlg {
        self.alg
    }

    /// Current key epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Rotates the cookie secret. The outgoing key stays live for one
    /// epoch of grace: interoperable cookies carry their minting epoch, so
    /// a verifier holding `epoch` and `epoch − 1` never rejects a cookie
    /// issued just before the rotation.
    pub fn rotate(&mut self) {
        let next_epoch = self.epoch.wrapping_add(1);
        let next = SecretKey::from_seed(
            self.seed ^ u64::from(next_epoch).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        self.previous = Some(std::mem::replace(&mut self.key, next));
        self.epoch = next_epoch;
    }

    /// Mints the server cookie for `(client_cookie, client_ip)` under the
    /// current key.
    ///
    /// * MD5 (vendor): `MD5(client_cookie ‖ client_ip ‖ key)`, truncated
    ///   to 16 bytes — opaque, valid only at the minting server.
    /// * SipHash-2-4 (interoperable): the draft-sury-toorop layout
    ///   `Version(1) ‖ Reserved(3) ‖ Epoch(4) ‖ Hash(8)` where `Hash =
    ///   SipHash24(client_cookie ‖ version ‖ reserved ‖ epoch ‖
    ///   client_ip)` keyed by the leading 16 secret bytes — any server
    ///   holding the same key validates it.
    pub fn server_cookie(&self, client_cookie: [u8; 8], client_ip: Ipv4Addr) -> Vec<u8> {
        match self.alg {
            CookieAlg::Md5 => {
                let mut h = Md5::new();
                h.update(&client_cookie);
                h.update(&client_ip.octets());
                h.update(self.key.as_bytes());
                h.finalize()[..SERVER_COOKIE_LEN].to_vec()
            }
            CookieAlg::SipHash24 => sip_server_cookie(&self.key, self.epoch, client_cookie, client_ip),
        }
    }

    /// Whether a presented server cookie is acceptable: minted under the
    /// current key, or (SipHash mode) under the previous key while its
    /// grace epoch is still open.
    pub fn server_cookie_valid(
        &self,
        presented: &[u8],
        client_cookie: [u8; 8],
        client_ip: Ipv4Addr,
    ) -> bool {
        if presented == self.server_cookie(client_cookie, client_ip).as_slice() {
            return true;
        }
        if self.alg != CookieAlg::SipHash24 {
            return false;
        }
        // Epoch dispatch: only a cookie claiming the previous epoch is
        // checked against the previous key.
        let Some(prev) = &self.previous else {
            return false;
        };
        if presented.len() != SERVER_COOKIE_LEN || presented[0] != INTEROP_COOKIE_VERSION {
            return false;
        }
        let claimed = u32::from_be_bytes([presented[4], presented[5], presented[6], presented[7]]);
        claimed == self.epoch.wrapping_sub(1)
            && presented == sip_server_cookie(prev, claimed, client_cookie, client_ip).as_slice()
    }

    /// Classifies a query per the RFC's server-side algorithm.
    pub fn verdict(&self, query: &Message, client_ip: Ipv4Addr) -> QueryVerdict {
        let Some(e) = edns::find_edns(query) else {
            return QueryVerdict::Legacy;
        };
        let Some(opt) = e.option(edns::OPTION_COOKIE) else {
            return QueryVerdict::Legacy;
        };
        let Some(cookie) = DnsCookie::decode(&opt.data) else {
            return QueryVerdict::FormErr;
        };
        let respond_with = DnsCookie {
            client: cookie.client,
            server: Some(self.server_cookie(cookie.client, client_ip)),
        };
        match &cookie.server {
            Some(presented)
                if self.server_cookie_valid(presented, cookie.client, client_ip) =>
            {
                QueryVerdict::Accept { respond_with }
            }
            _ if self.enforcing => QueryVerdict::BadCookie { respond_with },
            _ => QueryVerdict::Accept { respond_with },
        }
    }

    /// Builds the BADCOOKIE response for `query` (RFC 7873 §5.2.3): no
    /// answer data, extended RCODE 23, correct cookie attached.
    pub fn badcookie_response(&self, query: &Message, respond_with: &DnsCookie) -> Message {
        let mut resp = query.response();
        // BADCOOKIE = 23: header RCODE carries the low 4 bits (7), the OPT
        // record's ext-rcode byte the high bits (1).
        resp.header.rcode = Rcode::Other(7);
        let mut e = dnswire::edns::Edns {
            ext_rcode_hi: 1,
            ..Default::default()
        };
        e.options.push(dnswire::edns::EdnsOption {
            code: edns::OPTION_COOKIE,
            data: respond_with.encode(),
        });
        resp.additionals.push(e.to_record());
        resp
    }
}

/// The draft-sury-toorop / RFC 9018 interoperable server cookie:
/// `Version(1)=1 ‖ Reserved(3)=0 ‖ Epoch(4, BE) ‖ Hash(8)` with
/// `Hash = SipHash24(client_cookie ‖ version ‖ reserved ‖ epoch ‖
/// client_ip)` keyed by the leading 16 bytes of the shared secret. (The
/// RFC's timestamp field doubles here as the key epoch — both are "which
/// secret minted this" discriminators with a bounded acceptance window.)
fn sip_server_cookie(
    key: &SecretKey,
    epoch: u32,
    client_cookie: [u8; 8],
    client_ip: Ipv4Addr,
) -> Vec<u8> {
    let k: [u8; 16] = key.as_bytes()[..16].try_into().expect("16-byte sip key");
    let mut out = Vec::with_capacity(SERVER_COOKIE_LEN);
    out.push(INTEROP_COOKIE_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&epoch.to_be_bytes());
    let mut msg = Vec::with_capacity(20);
    msg.extend_from_slice(&client_cookie);
    msg.extend_from_slice(&out); // version | reserved | epoch
    msg.extend_from_slice(&client_ip.octets());
    out.extend_from_slice(&siphash24(&k, &msg).to_le_bytes());
    out
}

/// Client-side DNS Cookie state: one client cookie and one learned server
/// cookie per server address.
#[derive(Debug, Default)]
pub struct CookieClientState {
    client_cookies: HashMap<Ipv4Addr, [u8; 8]>,
    server_cookies: HashMap<Ipv4Addr, Vec<u8>>,
    seed: u64,
}

impl CookieClientState {
    /// New client state; client cookies derive deterministically from
    /// `seed` and the server address (a stand-in for the RFC's
    /// per-server pseudorandom client cookie).
    pub fn new(seed: u64) -> Self {
        CookieClientState {
            seed,
            ..CookieClientState::default()
        }
    }

    /// The client cookie for `server` (minted on first use).
    pub fn client_cookie(&mut self, server: Ipv4Addr) -> [u8; 8] {
        let seed = self.seed;
        *self.client_cookies.entry(server).or_insert_with(|| {
            let mut h = Md5::new();
            h.update(&seed.to_le_bytes());
            h.update(&server.octets());
            h.finalize()[..8].try_into().expect("8 bytes")
        })
    }

    /// Stamps the appropriate COOKIE option onto an outgoing query.
    pub fn prepare(&mut self, query: &mut Message, server: Ipv4Addr) {
        let client = self.client_cookie(server);
        let cookie = DnsCookie {
            client,
            server: self.server_cookies.get(&server).cloned(),
        };
        edns::set_dns_cookie(query, &cookie);
    }

    /// Digests a response: learns the server cookie (only when the client
    /// cookie echoes ours — the anti-spoofing check) and reports whether
    /// the query should be retried (BADCOOKIE).
    pub fn absorb(&mut self, response: &Message, server: Ipv4Addr) -> AbsorbOutcome {
        let ours = self.client_cookie(server);
        if let Some(cookie) = edns::find_dns_cookie(response) {
            if cookie.client != ours {
                return AbsorbOutcome::SpoofSuspected;
            }
            if let Some(s) = cookie.server {
                self.server_cookies.insert(server, s);
            }
        }
        let ext = edns::find_edns(response)
            .map(|e| e.extended_rcode(response.header.rcode.code()))
            .unwrap_or_else(|| response.header.rcode.code() as u16);
        if ext == edns::EXT_RCODE_BADCOOKIE {
            AbsorbOutcome::RetryWithNewCookie
        } else {
            AbsorbOutcome::Done
        }
    }

    /// Whether a server cookie is cached for `server`.
    pub fn has_server_cookie(&self, server: Ipv4Addr) -> bool {
        self.server_cookies.contains_key(&server)
    }
}

/// Result of absorbing a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsorbOutcome {
    /// Response usable.
    Done,
    /// Server said BADCOOKIE; we now hold the right cookie — resend.
    RetryWithNewCookie,
    /// The client cookie did not echo ours: off-path spoof suspected,
    /// ignore the response.
    SpoofSuspected,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::edns::set_dns_cookie;
    use dnswire::types::RrType;

    fn query() -> Message {
        Message::query(3, "www.foo.com".parse().unwrap(), RrType::A)
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    #[test]
    fn full_exchange_first_contact_then_accept() {
        let server = CookieServer::new(1, true);
        let mut client = CookieClientState::new(2);
        let server_ip = ip(53);
        let client_ip = ip(1);

        // First query: client cookie only → BADCOOKIE with server cookie.
        let mut q1 = query();
        client.prepare(&mut q1, server_ip);
        let QueryVerdict::BadCookie { respond_with } = server.verdict(&q1, client_ip) else {
            panic!("expected BADCOOKIE on first contact while enforcing");
        };
        let bad = server.badcookie_response(&q1, &respond_with);
        assert_eq!(
            client.absorb(&bad, server_ip),
            AbsorbOutcome::RetryWithNewCookie
        );
        assert!(client.has_server_cookie(server_ip));

        // Retry: now accepted.
        let mut q2 = query();
        client.prepare(&mut q2, server_ip);
        assert!(matches!(
            server.verdict(&q2, client_ip),
            QueryVerdict::Accept { .. }
        ));
    }

    #[test]
    fn non_enforcing_accepts_first_contact_and_returns_cookie() {
        let server = CookieServer::new(3, false);
        let mut client = CookieClientState::new(4);
        let mut q = query();
        client.prepare(&mut q, ip(53));
        let QueryVerdict::Accept { respond_with } = server.verdict(&q, ip(1)) else {
            panic!("non-enforcing server accepts client-only cookies");
        };
        assert!(respond_with.server.is_some());
    }

    #[test]
    fn spoofed_source_rejected_when_enforcing() {
        let server = CookieServer::new(5, true);
        let mut client = CookieClientState::new(6);
        let server_ip = ip(53);
        // Legit client completes the exchange from ip(1)...
        let mut q = query();
        client.prepare(&mut q, server_ip);
        let QueryVerdict::BadCookie { respond_with } = server.verdict(&q, ip(1)) else {
            panic!()
        };
        let bad = server.badcookie_response(&q, &respond_with);
        client.absorb(&bad, server_ip);
        let mut q2 = query();
        client.prepare(&mut q2, server_ip);
        assert!(matches!(server.verdict(&q2, ip(1)), QueryVerdict::Accept { .. }));
        // ...but the same cookie from a different (spoofed) source fails.
        assert!(matches!(
            server.verdict(&q2, ip(99)),
            QueryVerdict::BadCookie { .. }
        ));
    }

    #[test]
    fn legacy_and_malformed() {
        let server = CookieServer::new(7, true);
        assert_eq!(server.verdict(&query(), ip(1)), QueryVerdict::Legacy);

        let mut q = query();
        // Malformed: 9-byte cookie option.
        let e = dnswire::edns::Edns {
            options: vec![dnswire::edns::EdnsOption {
                code: edns::OPTION_COOKIE,
                data: vec![0; 9],
            }],
            ..Default::default()
        };
        q.additionals.push(e.to_record());
        assert_eq!(server.verdict(&q, ip(1)), QueryVerdict::FormErr);
    }

    #[test]
    fn client_detects_off_path_spoof() {
        let mut client = CookieClientState::new(8);
        let server_ip = ip(53);
        let mut q = query();
        client.prepare(&mut q, server_ip);
        // A forged response with a wrong client cookie must be ignored.
        let mut forged = q.response();
        set_dns_cookie(
            &mut forged,
            &DnsCookie {
                client: [0xEE; 8],
                server: Some(vec![0xEE; 16]),
            },
        );
        assert_eq!(client.absorb(&forged, server_ip), AbsorbOutcome::SpoofSuspected);
        assert!(!client.has_server_cookie(server_ip));
    }

    #[test]
    fn server_cookie_binds_client_cookie_and_address() {
        let server = CookieServer::new(9, true);
        let a = server.server_cookie([1; 8], ip(1));
        assert_ne!(a, server.server_cookie([2; 8], ip(1)), "client cookie bound");
        assert_ne!(a, server.server_cookie([1; 8], ip(2)), "address bound");
        assert_eq!(a, server.server_cookie([1; 8], ip(1)), "deterministic");
        assert_eq!(a.len(), SERVER_COOKIE_LEN);
    }

    #[test]
    fn badcookie_response_has_extended_rcode_23() {
        let server = CookieServer::new(10, true);
        let mut q = query();
        set_dns_cookie(&mut q, &DnsCookie::client_only([5; 8]));
        let QueryVerdict::BadCookie { respond_with } = server.verdict(&q, ip(1)) else {
            panic!()
        };
        let resp = server.badcookie_response(&q, &respond_with);
        let wire = resp.encode();
        let decoded = Message::decode(&wire).unwrap();
        let e = edns::find_edns(&decoded).unwrap();
        assert_eq!(
            e.extended_rcode(decoded.header.rcode.code()),
            edns::EXT_RCODE_BADCOOKIE
        );
    }

    #[test]
    fn siphash_cookie_verifies_at_any_server_sharing_the_key() {
        // The interoperability property MD5 cookies lack: two engines
        // holding the same secret mint and accept identical cookies.
        let minter = CookieServer::new(2006, true).with_alg(CookieAlg::SipHash24);
        let peer = CookieServer::new(2006, true).with_alg(CookieAlg::SipHash24);
        let c = minter.server_cookie([4; 8], ip(1));
        assert_eq!(c.len(), SERVER_COOKIE_LEN);
        assert_eq!(c[0], INTEROP_COOKIE_VERSION);
        assert_eq!(&c[1..4], &[0, 0, 0], "reserved bytes zero");
        assert_eq!(&c[4..8], &0u32.to_be_bytes(), "epoch 0");
        assert!(peer.server_cookie_valid(&c, [4; 8], ip(1)));
        assert!(!peer.server_cookie_valid(&c, [5; 8], ip(1)), "client cookie bound");
        assert!(!peer.server_cookie_valid(&c, [4; 8], ip(2)), "address bound");

        // A differently-keyed server rejects it.
        let stranger = CookieServer::new(4242, true).with_alg(CookieAlg::SipHash24);
        assert!(!stranger.server_cookie_valid(&c, [4; 8], ip(1)));
    }

    #[test]
    fn siphash_rotation_keeps_one_epoch_of_grace() {
        let mut server = CookieServer::new(12, true).with_alg(CookieAlg::SipHash24);
        let old = server.server_cookie([6; 8], ip(1));
        server.rotate();
        assert_eq!(server.epoch(), 1);
        // Minted under epoch 0, verified at epoch 1: still good.
        assert!(server.server_cookie_valid(&old, [6; 8], ip(1)));
        // Fresh mints carry the new epoch and also verify.
        let fresh = server.server_cookie([6; 8], ip(1));
        assert_ne!(old, fresh);
        assert_eq!(&fresh[4..8], &1u32.to_be_bytes());
        assert!(server.server_cookie_valid(&fresh, [6; 8], ip(1)));
        // Two rotations close the grace window.
        server.rotate();
        assert!(!server.server_cookie_valid(&old, [6; 8], ip(1)));
        assert!(server.server_cookie_valid(&fresh, [6; 8], ip(1)), "one epoch back");
    }

    #[test]
    fn siphash_grace_rejects_forged_epoch_claims() {
        let mut server = CookieServer::new(13, true).with_alg(CookieAlg::SipHash24);
        let old = server.server_cookie([7; 8], ip(1));
        server.rotate();
        // An attacker relabelling an old cookie with the current epoch (or
        // a bogus one) fails: the epoch is hashed, not just carried.
        let mut relabelled = old.clone();
        relabelled[4..8].copy_from_slice(&1u32.to_be_bytes());
        assert!(!server.server_cookie_valid(&relabelled, [7; 8], ip(1)));
        let mut future = old.clone();
        future[4..8].copy_from_slice(&7u32.to_be_bytes());
        assert!(!server.server_cookie_valid(&future, [7; 8], ip(1)));
    }

    #[test]
    fn siphash_full_exchange_and_survives_rotation() {
        let mut server = CookieServer::new(14, true).with_alg(CookieAlg::SipHash24);
        let mut client = CookieClientState::new(15);
        let server_ip = ip(53);
        let mut q1 = query();
        client.prepare(&mut q1, server_ip);
        let QueryVerdict::BadCookie { respond_with } = server.verdict(&q1, ip(1)) else {
            panic!("first contact while enforcing");
        };
        let bad = server.badcookie_response(&q1, &respond_with);
        client.absorb(&bad, server_ip);
        let mut q2 = query();
        client.prepare(&mut q2, server_ip);
        assert!(matches!(server.verdict(&q2, ip(1)), QueryVerdict::Accept { .. }));
        // Key rotates under the client: its cached cookie stays in grace.
        server.rotate();
        let mut q3 = query();
        client.prepare(&mut q3, server_ip);
        assert!(matches!(server.verdict(&q3, ip(1)), QueryVerdict::Accept { .. }));
    }

    #[test]
    fn paper_scheme_equivalence() {
        // Protective equivalence with the paper's modified-DNS scheme:
        // a spoofed source can never present an acceptable cookie, and a
        // protocol-following client needs exactly one extra round trip.
        let server = CookieServer::new(11, true);
        let victim = ip(1);
        let attacker_guess = DnsCookie {
            client: [7; 8],
            server: Some(vec![0xAB; SERVER_COOKIE_LEN]),
        };
        let mut forged = query();
        set_dns_cookie(&mut forged, &attacker_guess);
        // Spoofing the victim's address with a guessed server cookie fails.
        assert!(matches!(
            server.verdict(&forged, victim),
            QueryVerdict::BadCookie { .. }
        ));
    }
}
