//! Hot-path stage profiling for the guard's per-datagram pipeline.
//!
//! When the `stage-profiling` cargo feature is enabled, [`StageProf`]
//! measures how long each decision stage of `RemoteGuard::handle_udp`
//! takes — `decode` (wire → message), `verify` (cookie verdicts),
//! `admit` (rate-limiter decisions), `respond` (encode + transmit) — plus
//! the end-to-end `total`, into per-stage log-bucketed histograms
//! (`guard.stage_ns{stage=...}`).
//!
//! Three properties keep this safe on the hot path:
//!
//! * **Compile-out.** Without the feature, [`StageProf`] is a zero-sized
//!   type whose methods are empty `#[inline]` bodies: the call sites in
//!   `guard.rs` stay uncluttered and the optimizer erases them entirely.
//! * **Injected clock.** The sim-domain crates forbid wall clocks
//!   (guardlint L2), and sim-time does not advance inside a handler — so
//!   the profiler only measures when a harness injects a clock closure
//!   (the criterion bench injects an `Instant`-based one; deployments can
//!   inject a monotonic OS clock). No clock, no reads, no overhead beyond
//!   one branch.
//! * **Sampling.** Only one in [`SAMPLE_PERIOD`] datagrams is measured
//!   (the rest pay a counter increment and a branch), keeping the mean
//!   per-datagram cost well inside the ≤5 % budget the micro-bench
//!   enforces.

#[cfg(feature = "stage-profiling")]
use obs::metrics::Histogram;
use obs::metrics::Registry;
use std::sync::Arc;

/// A monotonic nanosecond clock injected by the harness.
pub type StageClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Pipeline stages, in histogram-registration order.
pub const STAGE_NAMES: &[&str] = &["decode", "verify", "admit", "respond", "total"];

/// Index into [`STAGE_NAMES`]: wire bytes → parsed message.
pub const STAGE_DECODE: usize = 0;
/// Index into [`STAGE_NAMES`]: cookie verification verdict reached.
pub const STAGE_VERIFY: usize = 1;
/// Index into [`STAGE_NAMES`]: rate-limiter admission decided.
pub const STAGE_ADMIT: usize = 2;
/// Index into [`STAGE_NAMES`]: reply/forward encoded and transmitted
/// (recorded by [`StageProf::finish`] as the tail segment).
pub const STAGE_RESPOND: usize = 3;
/// Index into [`STAGE_NAMES`]: whole `handle_udp` invocation.
pub const STAGE_TOTAL: usize = 4;

/// Measure one datagram out of this many (power of two).
pub const SAMPLE_PERIOD: u64 = 8;

/// The live profiler (feature `stage-profiling` on).
#[cfg(feature = "stage-profiling")]
pub struct StageProf {
    clock: Option<StageClock>,
    /// Datagrams seen; `seen & (SAMPLE_PERIOD-1) == 0` selects the sample.
    seen: u64,
    /// Whether the in-flight datagram is being measured.
    sampling: bool,
    t_start: u64,
    t_last: u64,
    stages: [Histogram; STAGE_NAMES.len()],
}

#[cfg(feature = "stage-profiling")]
impl StageProf {
    /// An unarmed profiler: no clock, records nothing.
    pub fn new() -> StageProf {
        StageProf {
            clock: None,
            seen: 0,
            sampling: false,
            t_start: 0,
            t_last: 0,
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Arms the profiler with a monotonic nanosecond clock.
    pub fn set_clock(&mut self, clock: StageClock) {
        self.clock = Some(clock);
    }

    /// Adopts the per-stage histograms as `guard.stage_ns{stage=...}`.
    pub fn adopt_into(&self, registry: &Registry) {
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            registry.adopt_histogram("guard", "stage_ns", &[("stage", name)], &self.stages[i]);
        }
    }

    /// Marks the start of one datagram; decides whether it is sampled.
    #[inline]
    pub fn begin(&mut self) {
        let Some(clock) = &self.clock else {
            return;
        };
        self.seen = self.seen.wrapping_add(1);
        self.sampling = self.seen & (SAMPLE_PERIOD - 1) == 0;
        if self.sampling {
            let t = clock();
            self.t_start = t;
            self.t_last = t;
        }
    }

    /// Records the time since the previous mark into `stage`'s histogram
    /// and advances the mark. No-op on unsampled datagrams.
    #[inline]
    pub fn lap(&mut self, stage: usize) {
        if !self.sampling {
            return;
        }
        let Some(clock) = &self.clock else {
            return;
        };
        let t = clock();
        self.stages[stage].record(t.saturating_sub(self.t_last));
        self.t_last = t;
    }

    /// Closes the datagram: the tail segment (everything after the last
    /// lap — encode and transmit) lands in `respond`, the full span in
    /// `total`.
    #[inline]
    pub fn finish(&mut self) {
        if !self.sampling {
            return;
        }
        self.sampling = false;
        let Some(clock) = &self.clock else {
            return;
        };
        let t = clock();
        self.stages[STAGE_RESPOND].record(t.saturating_sub(self.t_last));
        self.stages[STAGE_TOTAL].record(t.saturating_sub(self.t_start));
    }

    /// Number of samples recorded for `stage` (tests and benches).
    pub fn stage_count(&self, stage: usize) -> u64 {
        self.stages[stage].count()
    }
}

#[cfg(feature = "stage-profiling")]
impl Default for StageProf {
    fn default() -> Self {
        StageProf::new()
    }
}

/// The compiled-out profiler (feature `stage-profiling` off): a zero-sized
/// type with the same API, every method an empty inline body.
#[cfg(not(feature = "stage-profiling"))]
#[derive(Default)]
pub struct StageProf;

#[cfg(not(feature = "stage-profiling"))]
impl StageProf {
    /// An unarmed profiler (no-op build).
    pub fn new() -> StageProf {
        StageProf
    }

    /// No-op: the clock is dropped, nothing is ever measured.
    pub fn set_clock(&mut self, clock: StageClock) {
        let _ = clock;
    }

    /// No-op: no histograms exist to adopt.
    pub fn adopt_into(&self, registry: &Registry) {
        let _ = registry;
    }

    /// No-op.
    #[inline(always)]
    pub fn begin(&mut self) {}

    /// No-op.
    #[inline(always)]
    pub fn lap(&mut self, stage: usize) {
        let _ = stage;
    }

    /// No-op.
    #[inline(always)]
    pub fn finish(&mut self) {}

    /// Always zero in a no-op build.
    pub fn stage_count(&self, stage: usize) -> u64 {
        let _ = stage;
        0
    }
}

#[cfg(all(test, feature = "stage-profiling"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic clock advancing 100 ns per read.
    fn ticking_clock() -> (StageClock, Arc<AtomicU64>) {
        let t = Arc::new(AtomicU64::new(0));
        let tc = t.clone();
        (
            // lint: relaxed-ok — single monotonic test-clock cell, no
            // cross-cell ordering contract.
            Arc::new(move || tc.fetch_add(100, Ordering::Relaxed)),
            t,
        )
    }

    #[test]
    fn samples_one_in_period_and_stage_laps_sum_to_total() {
        let mut prof = StageProf::new();
        let (clock, _) = ticking_clock();
        prof.set_clock(clock);

        for _ in 0..(SAMPLE_PERIOD * 4) {
            prof.begin();
            prof.lap(STAGE_DECODE);
            prof.lap(STAGE_VERIFY);
            prof.lap(STAGE_ADMIT);
            prof.finish();
        }
        assert_eq!(prof.stage_count(STAGE_TOTAL), 4);
        assert_eq!(prof.stage_count(STAGE_DECODE), 4);
        assert_eq!(prof.stage_count(STAGE_RESPOND), 4);
        // Each clock read advances 100 ns: begin + 3 laps + finish = 5
        // reads, so total spans 400 ns and each segment 100 ns.
        let reg = Registry::new();
        prof.adopt_into(&reg);
        let snapshot = reg.snapshot();
        assert_eq!(snapshot.len(), STAGE_NAMES.len());
        let total = snapshot
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "total"))
            .unwrap();
        match &total.value {
            obs::metrics::SampleValue::Histogram { count, sum, .. } => {
                assert_eq!(*count, 4);
                assert_eq!(*sum, 4 * 400);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn unarmed_profiler_records_nothing() {
        let mut prof = StageProf::new();
        for _ in 0..100 {
            prof.begin();
            prof.lap(STAGE_DECODE);
            prof.finish();
        }
        assert_eq!(prof.stage_count(STAGE_TOTAL), 0);
    }
}
