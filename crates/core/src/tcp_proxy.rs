//! The guard's transparent TCP proxy (section III.C).
//!
//! After the guard redirects a requester to TCP with a truncation response,
//! the requester's connection terminates *here*, not at the ANS: the proxy
//! completes the handshake (with SYN cookies, so a SYN flood leaves no
//! state), converts each framed DNS request into a UDP query toward the
//! ANS, and frames the UDP response back onto the connection. The ANS never
//! does TCP work — in the paper this lived in the Linux kernel to avoid
//! context switches; here the savings appear as the calibrated
//! [`netsim::cost::tcp_conn_cost`] instead of BIND's much larger
//! per-TCP-request cost.
//!
//! Security hardening from the paper, all implemented:
//! * SYN cookies (stateless until the handshake completes);
//! * connection lifetime cap — state is reaped once a connection has lived
//!   5× the link RTT;
//! * per-source token buckets on connection initiation.

use crate::ratelimit::SourceRateLimiter;
use dnswire::message::Message;
use netsim::packet::Packet;
use netsim::tcp::{ConnKey, Segment, TcpEvent, TcpHost};
use netsim::time::SimTime;
use obs::metrics::{Counter, Registry};
use std::collections::HashMap;

/// Counters for the proxy (a snapshot; see [`TcpProxy::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Connections accepted (handshake completed).
    pub accepted: u64,
    /// SYNs rejected by the connection-rate limiter.
    pub syn_rejected: u64,
    /// DNS requests relayed to the ANS.
    pub requests_relayed: u64,
    /// DNS responses returned to clients.
    pub responses_returned: u64,
    /// Connections reaped by the lifetime cap.
    pub reaped: u64,
}

/// Live proxy counters: detached registry handles, adopted by
/// [`TcpProxy::adopt_into`].
#[derive(Debug, Default)]
struct ProxyMetrics {
    accepted: Counter,
    syn_rejected: Counter,
    requests_relayed: Counter,
    responses_returned: Counter,
    reaped: Counter,
}

/// What the proxy wants its host (the guard node) to do.
#[derive(Debug)]
pub enum ProxyAction {
    /// Send this packet (TCP segment back to a client).
    Send(Packet),
    /// Forward this decoded DNS query to the ANS; remember `token` to route
    /// the answer back via [`TcpProxy::on_ans_response`].
    ForwardQuery {
        /// Correlation token.
        token: u64,
        /// The query to forward.
        query: Message,
    },
}

#[derive(Debug)]
struct ConnState {
    opened: SimTime,
    buf: Vec<u8>,
}

/// The TCP proxy module embedded in the remote guard.
#[derive(Debug)]
pub struct TcpProxy {
    tcp: TcpHost,
    conns: HashMap<ConnKey, ConnState>,
    tokens: HashMap<u64, ConnKey>,
    next_token: u64,
    conn_limiter: SourceRateLimiter,
    lifetime: SimTime,
    metrics: ProxyMetrics,
}

impl TcpProxy {
    /// Creates a proxy that accepts DNS-over-TCP on port 53.
    ///
    /// `conn_rate` is the per-source new-connection rate; `lifetime` the
    /// 5×RTT reaping horizon.
    pub fn new(secret: u64, conn_rate: f64, lifetime: SimTime) -> Self {
        let mut tcp = TcpHost::new(secret);
        tcp.listen(netsim::packet::DNS_PORT);
        tcp.enable_syn_cookies();
        TcpProxy {
            tcp,
            conns: HashMap::new(),
            tokens: HashMap::new(),
            next_token: 1,
            conn_limiter: SourceRateLimiter::per_source_only(conn_rate),
            lifetime,
            metrics: ProxyMetrics::default(),
        }
    }

    /// Number of connections holding proxy state.
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// A snapshot of the proxy counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            accepted: self.metrics.accepted.get(),
            syn_rejected: self.metrics.syn_rejected.get(),
            requests_relayed: self.metrics.requests_relayed.get(),
            responses_returned: self.metrics.responses_returned.get(),
            reaped: self.metrics.reaped.get(),
        }
    }

    /// Registers the proxy's counters (and its connection limiter) in
    /// `registry` under component `proxy`.
    pub fn adopt_into(&self, registry: &Registry) {
        let m = &self.metrics;
        registry.adopt_counter("proxy", "accepted", &[], &m.accepted);
        registry.adopt_counter("proxy", "syn_rejected", &[], &m.syn_rejected);
        registry.adopt_counter("proxy", "requests_relayed", &[], &m.requests_relayed);
        registry.adopt_counter("proxy", "responses_returned", &[], &m.responses_returned);
        registry.adopt_counter("proxy", "reaped", &[], &m.reaped);
        self.conn_limiter.adopt_into(registry, "proxy", "conn");
    }

    /// Handles an inbound TCP packet addressed to the guarded server.
    pub fn on_segment(&mut self, now: SimTime, pkt: &Packet) -> Vec<ProxyAction> {
        // Connection-rate limiting happens on the SYN, before any TCP
        // processing, so a flood from one source is cheap to shed.
        if let Some(seg) = Segment::decode(&pkt.payload) {
            if seg.flags.syn && !seg.flags.ack && !self.conn_limiter.admit(now, pkt.src.ip) {
                self.metrics.syn_rejected.inc();
                return Vec::new();
            }
        }

        let mut out = Vec::new();
        let events = self.tcp.on_segment(pkt, &mut out);
        let mut actions: Vec<ProxyAction> = out.into_iter().map(ProxyAction::Send).collect();

        for ev in events {
            match ev {
                TcpEvent::Accepted(key) => {
                    self.metrics.accepted.inc();
                    self.conns.insert(
                        key,
                        ConnState {
                            opened: now,
                            buf: Vec::new(),
                        },
                    );
                }
                TcpEvent::Data(key, bytes) => {
                    let Some(state) = self.conns.get_mut(&key) else {
                        continue;
                    };
                    state.buf.extend_from_slice(&bytes);
                    // Drain every complete frame (pipelined requests are
                    // legal on DNS TCP connections).
                    while let Some(&[hi, lo]) = state.buf.get(..2) {
                        let need = u16::from_be_bytes([hi, lo]) as usize;
                        if state.buf.len() < 2 + need {
                            break;
                        }
                        let frame: Vec<u8> = state.buf.drain(..2 + need).skip(2).collect();
                        let Ok(query) = Message::decode(&frame) else {
                            continue;
                        };
                        let token = self.next_token;
                        self.next_token += 1;
                        self.tokens.insert(token, key);
                        self.metrics.requests_relayed.inc();
                        actions.push(ProxyAction::ForwardQuery { token, query });
                    }
                }
                TcpEvent::Closed(key) | TcpEvent::Reset(key) => {
                    self.conns.remove(&key);
                }
                TcpEvent::Connected(_) => {}
            }
        }
        actions
    }

    /// Routes a UDP response from the ANS back onto its TCP connection.
    pub fn on_ans_response(&mut self, token: u64, response: &Message) -> Option<Packet> {
        let key = self.tokens.remove(&token)?;
        if !self.conns.contains_key(&key) {
            return None; // reaped or closed meanwhile
        }
        let wire = response.encode();
        let mut framed = Vec::with_capacity(wire.len() + 2);
        framed.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        framed.extend_from_slice(&wire);
        let pkt = self.tcp.send(key, framed)?;
        self.metrics.responses_returned.inc();
        Some(pkt)
    }

    /// Reaps connections older than the lifetime cap. Call periodically.
    pub fn reap(&mut self, now: SimTime) -> usize {
        let stale: Vec<ConnKey> = self
            .conns
            .iter()
            .filter(|(_, s)| now.saturating_sub(s.opened) > self.lifetime)
            .map(|(k, _)| *k)
            .collect();
        let count = stale.len();
        for key in stale {
            self.conns.remove(&key);
            self.tcp.abort(&key);
            self.metrics.reaped.inc();
        }
        // Also drop orphaned tokens whose connection is gone.
        self.tokens.retain(|_, k| self.conns.contains_key(k));
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::types::RrType;
    use netsim::packet::{Endpoint, DNS_PORT};
    use std::net::Ipv4Addr;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    fn guard_ep() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(1, 2, 3, 4), DNS_PORT)
    }

    /// Drives a client handshake against the proxy and returns the
    /// established key from the client's perspective.
    fn handshake(proxy: &mut TcpProxy, client: &mut TcpHost, now: SimTime) -> ConnKey {
        let (key, syn) = client.connect(ep(9, 5555), guard_ep());
        let mut inflight = vec![syn];
        let mut rounds = 0;
        while let Some(pkt) = inflight.pop() {
            rounds += 1;
            assert!(rounds < 20);
            if pkt.dst == guard_ep() {
                for a in proxy.on_segment(now, &pkt) {
                    if let ProxyAction::Send(p) = a {
                        inflight.push(p);
                    }
                }
            } else {
                let mut out = Vec::new();
                client.on_segment(&pkt, &mut out);
                inflight.extend(out);
            }
        }
        assert!(client.is_established(&key));
        key
    }

    #[test]
    fn handshake_and_relay() {
        let mut proxy = TcpProxy::new(7, 100.0, SimTime::from_millis(2));
        let mut client = TcpHost::new(8);
        let key = handshake(&mut proxy, &mut client, SimTime::ZERO);
        assert_eq!(proxy.open_connections(), 1);

        // Send a framed DNS query.
        let q = Message::iterative_query(3, "www.foo.com".parse().unwrap(), RrType::A);
        let wire = q.encode();
        let mut framed = Vec::new();
        framed.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        framed.extend_from_slice(&wire);
        let data = client.send(key, framed).unwrap();
        let actions = proxy.on_segment(SimTime::ZERO, &data);
        let forwarded = actions.iter().find_map(|a| match a {
            ProxyAction::ForwardQuery { token, query } => Some((*token, query.clone())),
            _ => None,
        });
        let (token, query) = forwarded.expect("query forwarded toward ANS");
        assert_eq!(query.question().unwrap().name.to_string(), "www.foo.com.");

        // ANS answers: the proxy frames it back onto the connection.
        let resp = query.response();
        let back = proxy.on_ans_response(token, &resp).expect("response relayed");
        let mut out = Vec::new();
        let events = client.on_segment(&back, &mut out);
        assert!(events
            .iter()
            .any(|e| matches!(e, TcpEvent::Data(_, d) if d.len() > 2)));
        assert_eq!(proxy.stats().requests_relayed, 1);
        assert_eq!(proxy.stats().responses_returned, 1);
    }

    #[test]
    fn syn_rate_limit_sheds_flood() {
        let mut proxy = TcpProxy::new(9, 10.0, SimTime::from_millis(2));
        let now = SimTime::from_secs(1);
        let syn = Segment {
            flags: netsim::tcp::Flags {
                syn: true,
                ack: false,
                fin: false,
                rst: false,
            },
            seq: 1,
            ack: 0,
            data: vec![],
        };
        let mut rejected = 0;
        for i in 0..100 {
            let pkt = Packet::tcp(ep(9, 6000 + i), guard_ep(), syn.encode());
            let before = proxy.stats().syn_rejected;
            let _ = proxy.on_segment(now, &pkt);
            if proxy.stats().syn_rejected > before {
                rejected += 1;
            }
        }
        assert!(rejected > 80, "rejected {rejected}");
        assert_eq!(proxy.open_connections(), 0, "SYN cookies: no state either way");
    }

    #[test]
    fn reaper_removes_stale_connections() {
        let mut proxy = TcpProxy::new(10, 1_000.0, SimTime::from_millis(2));
        let mut client = TcpHost::new(11);
        handshake(&mut proxy, &mut client, SimTime::ZERO);
        assert_eq!(proxy.open_connections(), 1);
        assert_eq!(proxy.reap(SimTime::from_millis(1)), 0, "young connection kept");
        assert_eq!(proxy.reap(SimTime::from_millis(3)), 1, "stale connection reaped");
        assert_eq!(proxy.open_connections(), 0);
        assert_eq!(proxy.stats().reaped, 1);
    }

    #[test]
    fn response_after_reap_dropped() {
        let mut proxy = TcpProxy::new(12, 1_000.0, SimTime::from_millis(2));
        let mut client = TcpHost::new(13);
        let key = handshake(&mut proxy, &mut client, SimTime::ZERO);
        let q = Message::iterative_query(4, "x.y".parse().unwrap(), RrType::A);
        let wire = q.encode();
        let mut framed = Vec::new();
        framed.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        framed.extend_from_slice(&wire);
        let data = client.send(key, framed).unwrap();
        let actions = proxy.on_segment(SimTime::ZERO, &data);
        let token = actions
            .iter()
            .find_map(|a| match a {
                ProxyAction::ForwardQuery { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        proxy.reap(SimTime::from_secs(1));
        assert!(proxy.on_ans_response(token, &q.response()).is_none());
    }
}
