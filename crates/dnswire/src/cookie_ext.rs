//! The modified-DNS cookie extension (paper Figure 3(b)).
//!
//! A cookie rides in the additional section as a TXT record owned by the
//! root name, class IN, whose RDATA is a single 16-byte character-string.
//! A request carrying the **all-zero cookie** asks the remote guard to grant
//! a fresh cookie (message 2/3 of Figure 3(a)); grant and request are the
//! same size, so the exchange amplifies nothing.

use crate::message::Message;
use crate::name::Name;
use crate::rdata::RData;
use crate::record::Record;
use crate::types::RrType;

/// Size of the cookie carried by the extension.
pub const EXT_COOKIE_LEN: usize = 16;

/// The all-zero cookie that requests a cookie grant.
pub const ZERO_COOKIE: [u8; EXT_COOKIE_LEN] = [0u8; EXT_COOKIE_LEN];

/// A cookie extracted from (or destined for) the extension record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CookieExt {
    /// The 16-byte cookie value.
    pub cookie: [u8; EXT_COOKIE_LEN],
    /// The TTL of the carrying record — how long the local guard may cache
    /// the cookie.
    pub ttl: u32,
}

impl CookieExt {
    /// True when this is the all-zero "please grant me a cookie" value.
    pub fn is_request(&self) -> bool {
        self.cookie == ZERO_COOKIE
    }
}

/// Appends the cookie extension record to `msg`'s additional section.
///
/// Mirrors Figure 3(b): name = root, type = TXT, class = IN, RDATA = one
/// 16-byte character-string (RDLENGTH 0x0011).
pub fn attach_cookie(msg: &mut Message, cookie: [u8; EXT_COOKIE_LEN], ttl: u32) {
    msg.additionals
        .push(Record::new(Name::root(), ttl, RData::Txt(vec![cookie.to_vec()])));
}

/// Finds the cookie extension in `msg`, if present and well-formed.
pub fn find_cookie(msg: &Message) -> Option<CookieExt> {
    msg.additionals.iter().find_map(as_cookie_record)
}

/// Removes the cookie extension from `msg` and returns it. The remote guard
/// strips cookies before forwarding, so the ANS never sees the extension.
pub fn strip_cookie(msg: &mut Message) -> Option<CookieExt> {
    let idx = msg
        .additionals
        .iter()
        .position(|r| as_cookie_record(r).is_some())?;
    let record = msg.additionals.remove(idx);
    as_cookie_record(&record)
}

/// True when `msg` carries a cookie extension (valid or request).
pub fn has_cookie(msg: &Message) -> bool {
    find_cookie(msg).is_some()
}

fn as_cookie_record(r: &Record) -> Option<CookieExt> {
    if r.rtype != RrType::Txt || !r.name.is_root() {
        return None;
    }
    let RData::Txt(strings) = &r.rdata else {
        return None;
    };
    let [first] = strings.as_slice() else {
        return None;
    };
    let bytes: [u8; EXT_COOKIE_LEN] = first.as_slice().try_into().ok()?;
    Some(CookieExt {
        cookie: bytes,
        ttl: r.ttl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RrType;

    fn query() -> Message {
        Message::query(42, "www.foo.com".parse().unwrap(), RrType::A)
    }

    #[test]
    fn attach_find_strip_round_trip() {
        let mut msg = query();
        assert!(!has_cookie(&msg));
        let cookie = [7u8; 16];
        attach_cookie(&mut msg, cookie, 604_800);
        let found = find_cookie(&msg).unwrap();
        assert_eq!(found.cookie, cookie);
        assert_eq!(found.ttl, 604_800);
        assert!(!found.is_request());

        let stripped = strip_cookie(&mut msg).unwrap();
        assert_eq!(stripped.cookie, cookie);
        assert!(!has_cookie(&msg));
        assert_eq!(msg, query(), "stripping restores the original message");
    }

    #[test]
    fn survives_wire_round_trip() {
        let mut msg = query();
        attach_cookie(&mut msg, [0xAB; 16], 300);
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(find_cookie(&decoded).unwrap().cookie, [0xAB; 16]);
    }

    #[test]
    fn zero_cookie_is_request() {
        let mut msg = query();
        attach_cookie(&mut msg, ZERO_COOKIE, 0);
        assert!(find_cookie(&msg).unwrap().is_request());
    }

    #[test]
    fn wrong_shapes_ignored() {
        let mut msg = query();
        // TXT not at root.
        msg.additionals.push(Record::txt(
            "foo.com".parse().unwrap(),
            vec![1; 16],
            0,
        ));
        // Root TXT with wrong length.
        msg.additionals
            .push(Record::txt(Name::root(), vec![1; 15], 0));
        // Root TXT with two strings.
        msg.additionals.push(Record::new(
            Name::root(),
            0,
            RData::Txt(vec![vec![1; 16], vec![2; 16]]),
        ));
        assert!(!has_cookie(&msg));
        assert!(strip_cookie(&mut msg).is_none());
        assert_eq!(msg.additionals.len(), 3);
    }

    #[test]
    fn request_and_grant_same_size() {
        // Paper: "Message 2 and message 3 are designed to have the same size
        // so that there is no traffic amplification."
        let mut request = query();
        attach_cookie(&mut request, ZERO_COOKIE, 0);
        let mut grant = request.response();
        attach_cookie(&mut grant, [0x5A; 16], 604_800);
        assert_eq!(request.encode().len(), grant.encode().len());
    }

    #[test]
    fn rdlength_matches_figure_3b() {
        // RDLength must be 0x0011: one length byte + 16 cookie bytes.
        let mut msg = query();
        attach_cookie(&mut msg, [1; 16], 0);
        let wire = msg.encode();
        // The record is last: ...root(0x00) TXT(0x0010) IN(0x0001) TTL(4B) RDLEN(2B) 0x10 cookie
        let tail = &wire[wire.len() - (1 + 2 + 2 + 4 + 2 + 1 + 16)..];
        assert_eq!(tail[0], 0x00, "root name");
        assert_eq!(&tail[1..3], &[0x00, 0x10], "TYPE TXT");
        assert_eq!(&tail[3..5], &[0x00, 0x01], "CLASS IN");
        assert_eq!(&tail[9..11], &[0x00, 0x11], "RDLENGTH 17");
        assert_eq!(tail[11], 0x10, "character-string length 16");
    }
}
