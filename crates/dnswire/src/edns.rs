//! EDNS(0) (RFC 6891) OPT pseudo-records and the COOKIE option (RFC 7873).
//!
//! The paper's modified-DNS scheme predates EDNS adoption and carries its
//! cookie in a TXT record ([`crate::cookie_ext`]). The idea was later
//! standardised as DNS Cookies using an EDNS option; this module provides
//! the wire plumbing for that modern form so the reproduction can bridge
//! both generations.
//!
//! An OPT pseudo-record overloads its fixed fields (RFC 6891 §6.1.2):
//! owner = root, TYPE = 41, CLASS = requester's UDP payload size,
//! TTL = `[ext-rcode:8][version:8][DO:1][zeros:15]`, RDATA = a sequence of
//! `{code: u16, len: u16, data}` options.

use crate::message::Message;
use crate::name::Name;
use crate::rdata::RData;
use crate::record::Record;
use crate::types::{RrClass, RrType};

/// The EDNS option code for DNS Cookies (RFC 7873).
pub const OPTION_COOKIE: u16 = 10;

/// The extended RCODE value BADCOOKIE (RFC 7873 §8).
pub const EXT_RCODE_BADCOOKIE: u16 = 23;

/// A decoded EDNS option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdnsOption {
    /// Option code.
    pub code: u16,
    /// Option payload.
    pub data: Vec<u8>,
}

/// A decoded OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Requester's maximum UDP payload size (the CLASS field).
    pub udp_payload_size: u16,
    /// Upper 8 bits of the extended RCODE (TTL byte 0).
    pub ext_rcode_hi: u8,
    /// EDNS version (TTL byte 1); 0 for EDNS(0).
    pub version: u8,
    /// Options carried in the RDATA.
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: 1232,
            ext_rcode_hi: 0,
            version: 0,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// The full 12-bit extended RCODE, combining the message header's
    /// 4-bit RCODE with this record's high bits.
    pub fn extended_rcode(&self, header_rcode: u8) -> u16 {
        ((self.ext_rcode_hi as u16) << 4) | (header_rcode as u16 & 0x0F)
    }

    /// Finds the first option with `code`.
    pub fn option(&self, code: u16) -> Option<&EdnsOption> {
        self.options.iter().find(|o| o.code == code)
    }

    /// Renders this EDNS data as an OPT [`Record`].
    pub fn to_record(&self) -> Record {
        let mut rdata = Vec::new();
        for opt in &self.options {
            rdata.extend_from_slice(&opt.code.to_be_bytes());
            rdata.extend_from_slice(&(opt.data.len() as u16).to_be_bytes());
            rdata.extend_from_slice(&opt.data);
        }
        let ttl = ((self.ext_rcode_hi as u32) << 24) | ((self.version as u32) << 16);
        Record {
            name: Name::root(),
            rtype: RrType::Opt,
            class: RrClass::Other(self.udp_payload_size),
            ttl,
            rdata: RData::Unknown(rdata),
        }
    }

    /// Parses an OPT [`Record`] back into EDNS data. Returns `None` when
    /// the record is not a well-formed OPT.
    pub fn from_record(record: &Record) -> Option<Edns> {
        if record.rtype != RrType::Opt || !record.name.is_root() {
            return None;
        }
        let RData::Unknown(rdata) = &record.rdata else {
            return None;
        };
        let mut options = Vec::new();
        let mut pos = 0usize;
        while pos < rdata.len() {
            let Some(&[c0, c1, l0, l1]) = rdata.get(pos..pos + 4) else {
                return None;
            };
            let code = u16::from_be_bytes([c0, c1]);
            let len = u16::from_be_bytes([l0, l1]) as usize;
            pos += 4;
            let data = rdata.get(pos..pos + len)?;
            options.push(EdnsOption {
                code,
                data: data.to_vec(),
            });
            pos += len;
        }
        Some(Edns {
            udp_payload_size: record.class.code(),
            ext_rcode_hi: (record.ttl >> 24) as u8,
            version: (record.ttl >> 16) as u8,
            options,
        })
    }
}

/// A DNS Cookie as carried in the COOKIE option (RFC 7873 §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsCookie {
    /// The 8-byte client cookie.
    pub client: [u8; 8],
    /// The 8–32-byte server cookie, absent on a client's first contact.
    pub server: Option<Vec<u8>>,
}

impl DnsCookie {
    /// A client-only cookie (first contact).
    pub fn client_only(client: [u8; 8]) -> Self {
        DnsCookie {
            client,
            server: None,
        }
    }

    /// Serialises into COOKIE option data.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.client.to_vec();
        if let Some(s) = &self.server {
            debug_assert!((8..=32).contains(&s.len()), "server cookie length");
            out.extend_from_slice(s);
        }
        out
    }

    /// Parses COOKIE option data. Returns `None` on invalid lengths
    /// (RFC 7873 §5.2.2: FORMERR).
    pub fn decode(data: &[u8]) -> Option<DnsCookie> {
        match data.len() {
            8 => Some(DnsCookie {
                client: data.try_into().ok()?,
                server: None,
            }),
            16..=40 => {
                let (client, server) = data.split_at(8);
                Some(DnsCookie {
                    client: client.try_into().ok()?,
                    server: Some(server.to_vec()),
                })
            }
            _ => None,
        }
    }
}

/// Finds the OPT record in a message's additional section.
pub fn find_edns(msg: &Message) -> Option<Edns> {
    msg.additionals.iter().find_map(Edns::from_record)
}

/// Extracts the DNS Cookie from a message, if present and well-formed.
pub fn find_dns_cookie(msg: &Message) -> Option<DnsCookie> {
    let edns = find_edns(msg)?;
    let opt = edns.option(OPTION_COOKIE)?;
    DnsCookie::decode(&opt.data)
}

/// Attaches (or replaces) an OPT record carrying `cookie` to `msg`.
pub fn set_dns_cookie(msg: &mut Message, cookie: &DnsCookie) {
    msg.additionals.retain(|r| r.rtype != RrType::Opt);
    let edns = Edns {
        options: vec![EdnsOption {
            code: OPTION_COOKIE,
            data: cookie.encode(),
        }],
        ..Edns::default()
    };
    msg.additionals.push(edns.to_record());
}

/// Removes any OPT record from `msg`, returning the cookie it carried.
pub fn strip_dns_cookie(msg: &mut Message) -> Option<DnsCookie> {
    let cookie = find_dns_cookie(msg);
    msg.additionals.retain(|r| r.rtype != RrType::Opt);
    cookie
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RrType;

    fn msg() -> Message {
        Message::query(5, "www.foo.com".parse().unwrap(), RrType::A)
    }

    #[test]
    fn opt_record_round_trip() {
        let edns = Edns {
            udp_payload_size: 4096,
            ext_rcode_hi: 1,
            version: 0,
            options: vec![
                EdnsOption {
                    code: OPTION_COOKIE,
                    data: vec![1; 16],
                },
                EdnsOption {
                    code: 9,
                    data: vec![],
                },
            ],
        };
        let rec = edns.to_record();
        assert_eq!(Edns::from_record(&rec), Some(edns));
    }

    #[test]
    fn opt_survives_wire() {
        let mut m = msg();
        set_dns_cookie(&mut m, &DnsCookie::client_only([7; 8]));
        let decoded = Message::decode(&m.encode()).unwrap();
        assert_eq!(
            find_dns_cookie(&decoded),
            Some(DnsCookie::client_only([7; 8]))
        );
    }

    #[test]
    fn cookie_encode_decode() {
        let c = DnsCookie {
            client: [1, 2, 3, 4, 5, 6, 7, 8],
            server: Some(vec![9; 16]),
        };
        assert_eq!(DnsCookie::decode(&c.encode()), Some(c));
        let only = DnsCookie::client_only([3; 8]);
        assert_eq!(DnsCookie::decode(&only.encode()), Some(only));
        assert_eq!(DnsCookie::decode(&[1; 7]), None, "short");
        assert_eq!(DnsCookie::decode(&[1; 12]), None, "server cookie < 8");
        assert_eq!(DnsCookie::decode(&[1; 41]), None, "too long");
    }

    #[test]
    fn extended_rcode_combines() {
        let edns = Edns {
            ext_rcode_hi: 1,
            ..Edns::default()
        };
        // BADCOOKIE = 23 = (1 << 4) | 7.
        assert_eq!(edns.extended_rcode(7), EXT_RCODE_BADCOOKIE);
    }

    #[test]
    fn set_replaces_existing_opt() {
        let mut m = msg();
        set_dns_cookie(&mut m, &DnsCookie::client_only([1; 8]));
        set_dns_cookie(&mut m, &DnsCookie::client_only([2; 8]));
        let opts: Vec<_> = m.additionals.iter().filter(|r| r.rtype == RrType::Opt).collect();
        assert_eq!(opts.len(), 1);
        assert_eq!(find_dns_cookie(&m).unwrap().client, [2; 8]);
    }

    #[test]
    fn strip_removes_opt() {
        let mut m = msg();
        set_dns_cookie(&mut m, &DnsCookie::client_only([4; 8]));
        let taken = strip_dns_cookie(&mut m).unwrap();
        assert_eq!(taken.client, [4; 8]);
        assert!(find_edns(&m).is_none());
        assert_eq!(m, msg());
    }

    #[test]
    fn malformed_options_rejected() {
        // Truncated option header.
        let rec = Record {
            name: Name::root(),
            rtype: RrType::Opt,
            class: RrClass::Other(512),
            ttl: 0,
            rdata: RData::Unknown(vec![0, 10, 0]),
        };
        assert_eq!(Edns::from_record(&rec), None);
        // Declared length overruns.
        let rec = Record {
            name: Name::root(),
            rtype: RrType::Opt,
            class: RrClass::Other(512),
            ttl: 0,
            rdata: RData::Unknown(vec![0, 10, 0, 4, 1]),
        };
        assert_eq!(Edns::from_record(&rec), None);
    }
}
