//! Error types for DNS wire encoding and decoding.

use std::error::Error;
use std::fmt;

/// Errors raised while parsing or serialising DNS wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before a complete field could be read.
    UnexpectedEnd {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// A domain-name label exceeded 63 bytes.
    LabelTooLong(usize),
    /// A domain name exceeded 255 bytes on the wire.
    NameTooLong(usize),
    /// A label length octet used the reserved `0x40`/`0x80` prefix bits.
    BadLabelType(u8),
    /// A compression pointer pointed at or after its own position, or the
    /// pointer chain exceeded the jump budget.
    BadPointer {
        /// Pointer target offset.
        target: usize,
        /// Offset of the pointer itself.
        at: usize,
    },
    /// Too many compression pointer jumps (loop suspected).
    PointerLoop,
    /// A resource record's RDLENGTH did not match its RDATA encoding.
    RdataLengthMismatch {
        /// Declared RDLENGTH.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// A character-string inside RDATA overran the record boundary.
    BadCharacterString,
    /// Trailing bytes remained after the counts in the header were satisfied.
    TrailingBytes(usize),
    /// A name contained non-ASCII or otherwise unrepresentable characters
    /// when parsed from text.
    InvalidText(String),
    /// The message would exceed the encoder's size budget and cannot be
    /// truncated safely (e.g. a single question larger than the limit).
    TooLarge {
        /// Size the message needed.
        needed: usize,
        /// Configured limit.
        limit: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            WireError::LabelTooLong(len) => write!(f, "label of {len} bytes exceeds 63"),
            WireError::NameTooLong(len) => write!(f, "name of {len} bytes exceeds 255"),
            WireError::BadLabelType(octet) => {
                write!(f, "reserved label type in length octet {octet:#04x}")
            }
            WireError::BadPointer { target, at } => {
                write!(f, "compression pointer at {at} targets invalid offset {target}")
            }
            WireError::PointerLoop => write!(f, "compression pointer loop detected"),
            WireError::RdataLengthMismatch { declared, consumed } => write!(
                f,
                "rdata length mismatch: declared {declared}, consumed {consumed}"
            ),
            WireError::BadCharacterString => write!(f, "character-string overruns rdata"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::InvalidText(s) => write!(f, "invalid name text: {s}"),
            WireError::TooLarge { needed, limit } => {
                write!(f, "message needs {needed} bytes, limit is {limit}")
            }
        }
    }
}

impl Error for WireError {}

/// Convenient alias for wire-format results.
pub type WireResult<T> = Result<T, WireError>;
