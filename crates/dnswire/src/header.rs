//! The 12-byte DNS message header.

use crate::error::{WireError, WireResult};
use crate::question::read_u16;
use crate::types::{Opcode, Rcode};

/// Wire length of a DNS header.
pub const HEADER_LEN: usize = 12;

/// A decoded DNS message header (RFC 1035 section 4.1.1).
///
/// The four count fields are not stored here; `Message` derives them from its
/// section vectors when encoding and verifies them when decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction identifier, echoed by responses.
    pub id: u16,
    /// `true` for responses, `false` for queries (QR bit).
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer (AA).
    pub authoritative: bool,
    /// Truncation (TC) — the signal the TCP-based guard scheme relies on.
    pub truncated: bool,
    /// Recursion desired (RD).
    pub recursion_desired: bool,
    /// Recursion available (RA).
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

/// The section counts carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionCounts {
    /// QDCOUNT — questions.
    pub questions: u16,
    /// ANCOUNT — answer records.
    pub answers: u16,
    /// NSCOUNT — authority records.
    pub authorities: u16,
    /// ARCOUNT — additional records.
    pub additionals: u16,
}

impl Header {
    /// Creates a query header with the given transaction id and RD set —
    /// the shape stub resolvers send.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            recursion_desired: true,
            ..Header::default()
        }
    }

    /// Creates an iterative (non-recursive) query header, as an LRS sends to
    /// authoritative servers.
    pub fn iterative_query(id: u16) -> Self {
        Header {
            id,
            ..Header::default()
        }
    }

    /// Creates the response header matching this query: same id/opcode/RD,
    /// QR set.
    pub fn response_to(&self) -> Self {
        Header {
            id: self.id,
            response: true,
            opcode: self.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: self.recursion_desired,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    /// Encodes the header plus explicit section counts.
    pub fn encode(&self, counts: SectionCounts, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.response {
            flags |= 0x8000;
        }
        flags |= (self.opcode.code() as u16) << 11;
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.truncated {
            flags |= 0x0200;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.recursion_available {
            flags |= 0x0080;
        }
        flags |= self.rcode.code() as u16;
        buf.extend_from_slice(&flags.to_be_bytes());
        buf.extend_from_slice(&counts.questions.to_be_bytes());
        buf.extend_from_slice(&counts.answers.to_be_bytes());
        buf.extend_from_slice(&counts.authorities.to_be_bytes());
        buf.extend_from_slice(&counts.additionals.to_be_bytes());
    }

    /// Decodes a header and its section counts from the front of `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] when fewer than 12 bytes remain.
    pub fn decode(msg: &[u8]) -> WireResult<(Header, SectionCounts)> {
        if msg.len() < HEADER_LEN {
            return Err(WireError::UnexpectedEnd { offset: msg.len() });
        }
        let id = read_u16(msg, 0)?;
        let flags = read_u16(msg, 2)?;
        let header = Header {
            id,
            response: flags & 0x8000 != 0,
            opcode: Opcode::from(((flags >> 11) & 0x0F) as u8),
            authoritative: flags & 0x0400 != 0,
            truncated: flags & 0x0200 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode: Rcode::from((flags & 0x0F) as u8),
        };
        let counts = SectionCounts {
            questions: read_u16(msg, 4)?,
            answers: read_u16(msg, 6)?,
            authorities: read_u16(msg, 8)?,
            additionals: read_u16(msg, 10)?,
        };
        Ok((header, counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let header = Header {
            id: 0xBEEF,
            response: true,
            opcode: Opcode::Status,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            rcode: Rcode::Refused,
        };
        let counts = SectionCounts {
            questions: 1,
            answers: 2,
            authorities: 3,
            additionals: 4,
        };
        let mut buf = Vec::new();
        header.encode(counts, &mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (decoded, decoded_counts) = Header::decode(&buf).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded_counts, counts);
    }

    #[test]
    fn all_flag_bits_independent() {
        for bit in 0..5 {
            let mut h = Header::query(1);
            match bit {
                0 => h.response = true,
                1 => h.authoritative = true,
                2 => h.truncated = true,
                3 => h.recursion_desired = false,
                _ => h.recursion_available = true,
            }
            let mut buf = Vec::new();
            h.encode(SectionCounts::default(), &mut buf);
            let (d, _) = Header::decode(&buf).unwrap();
            assert_eq!(d, h, "bit {bit}");
        }
    }

    #[test]
    fn response_to_echoes_id_and_rd() {
        let q = Header::query(77);
        let r = q.response_to();
        assert_eq!(r.id, 77);
        assert!(r.response);
        assert!(r.recursion_desired);
        assert!(!r.truncated);
    }

    #[test]
    fn short_input_rejected() {
        assert!(matches!(
            Header::decode(&[0u8; 11]),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn truncation_bit_is_0x0200() {
        // The TC bit position matters for interop; pin it explicitly.
        let mut h = Header::query(0);
        h.truncated = true;
        let mut buf = Vec::new();
        h.encode(SectionCounts::default(), &mut buf);
        assert_eq!(buf[2] & 0x02, 0x02);
    }
}
