//! DNS wire format, implemented from scratch for the DNS Guard reproduction.
//!
//! The crate covers everything the paper's traffic needs:
//!
//! * [`name`] — domain names with RFC 1035 limits, text escapes, wire
//!   encoding and compression-pointer decoding;
//! * [`header`] / [`question`] / [`record`] / [`rdata`] — the message
//!   sections and the record types used by DNS delegation (A, NS, CNAME,
//!   SOA, PTR, MX, TXT, AAAA, OPT-as-opaque);
//! * [`message`] — whole messages with suffix-compressing encoder, strict
//!   decoder, and the 512-byte UDP truncation rule (TC bit) that the
//!   TCP-based guard scheme exploits;
//! * [`cookie_ext`] — the modified-DNS cookie extension of Figure 3(b): a
//!   root-owned TXT record in the additional section carrying a 16-byte
//!   cookie.
//!
//! # Examples
//!
//! ```
//! use dnswire::message::Message;
//! use dnswire::record::Record;
//! use dnswire::types::RrType;
//! use std::net::Ipv4Addr;
//!
//! let query = Message::iterative_query(1, "www.foo.com".parse()?, RrType::A);
//! let mut referral = query.response();
//! referral.authorities.push(Record::ns("com".parse()?, "a.gtld-servers.net".parse()?, 172_800));
//! referral.additionals.push(Record::a("a.gtld-servers.net".parse()?, Ipv4Addr::new(192, 5, 6, 30), 172_800));
//! assert!(referral.is_referral());
//! let wire = referral.encode();
//! assert_eq!(Message::decode(&wire)?, referral);
//! # Ok::<(), dnswire::error::WireError>(())
//! ```

#![forbid(unsafe_code)]

pub mod cookie_ext;
pub mod edns;
pub mod error;
pub mod header;
pub mod message;
pub mod name;
pub mod question;
pub mod rdata;
pub mod record;
pub mod types;

pub use error::{WireError, WireResult};
pub use message::Message;
pub use name::Name;
pub use question::Question;
pub use rdata::RData;
pub use record::Record;
pub use types::{Opcode, Rcode, RrClass, RrType};


#[cfg(test)]
mod proptests {
    use crate::message::Message;
    use crate::name::Name;
    use crate::rdata::{RData, Soa};
    use crate::record::Record;
    use crate::types::{Rcode, RrType};
    use proptest::prelude::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn arb_label() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            any::<u8>().prop_filter("printable", |b| (0x21..=0x7e).contains(b)),
            1..16,
        )
    }

    fn arb_name() -> impl Strategy<Value = Name> {
        proptest::collection::vec(arb_label(), 0..5)
            .prop_map(|labels| Name::from_labels(labels).unwrap_or_else(|_| Name::root()))
    }

    fn arb_rdata() -> impl Strategy<Value = RData> {
        prop_oneof![
            any::<u32>().prop_map(|v| RData::A(Ipv4Addr::from(v))),
            any::<u128>().prop_map(|v| RData::Aaaa(Ipv6Addr::from(v))),
            arb_name().prop_map(RData::Ns),
            arb_name().prop_map(RData::Cname),
            arb_name().prop_map(RData::Ptr),
            (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
                preference,
                exchange
            }),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..4)
                .prop_map(RData::Txt),
            (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
                |(mname, rname, serial, t)| RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh: t,
                    retry: t / 2,
                    expire: t.wrapping_mul(3),
                    minimum: 300,
                })
            ),
        ]
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        (arb_name(), any::<u32>(), arb_rdata())
            .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
    }

    fn arb_message() -> impl Strategy<Value = Message> {
        (
            any::<u16>(),
            arb_name(),
            proptest::collection::vec(arb_record(), 0..4),
            proptest::collection::vec(arb_record(), 0..3),
            proptest::collection::vec(arb_record(), 0..3),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(id, qname, ans, auth, add, aa, response)| {
                let mut m = Message::query(id, qname, RrType::A);
                m.header.response = response;
                m.header.authoritative = aa;
                m.header.rcode = if aa { Rcode::NoError } else { Rcode::NxDomain };
                m.answers = ans;
                m.authorities = auth;
                m.additionals = add;
                m
            })
    }

    proptest! {
        /// Encode→decode round-trips arbitrary well-formed messages,
        /// including the compression pass.
        #[test]
        fn message_round_trip(msg in arb_message()) {
            let wire = msg.encode();
            let decoded = Message::decode(&wire);
            prop_assert_eq!(decoded.as_ref().ok(), Some(&msg));
        }

        /// The decoder never panics on arbitrary bytes.
        #[test]
        fn decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = Message::decode(&bytes);
        }

        /// The decoder never panics on *corrupted* encodings of valid
        /// messages: random bit flips in real wire images reach structured
        /// paths (compression pointers, section counts, rdata lengths) that
        /// purely random bytes rarely hit. Decode may succeed or fail — it
        /// must only be total.
        #[test]
        fn decoder_total_under_bit_flips(
            msg in arb_message(),
            flips in proptest::collection::vec((any::<u16>(), 0u32..8), 1..8),
        ) {
            let mut wire = msg.encode();
            for (pos, bit) in flips {
                let i = pos as usize % wire.len();
                wire[i] ^= 1 << bit;
            }
            let _ = Message::decode(&wire);
        }

        /// Fragment-substitution splices never panic the decode path: a
        /// reassembled datagram an attacker tampered with is an honest
        /// prefix up to the fragmentation cut plus an attacker-controlled
        /// second fragment — truncated, overlapping, oversized, or pure
        /// garbage. Decode may succeed or fail; it must only be total.
        #[test]
        fn decoder_total_under_fragment_splices(
            msg in arb_message(),
            cut in any::<u16>(),
            tail in proptest::collection::vec(any::<u8>(), 0..600),
        ) {
            let wire = msg.encode();
            let cut = cut as usize % (wire.len() + 1);
            let mut spliced = wire[..cut].to_vec();
            spliced.extend_from_slice(&tail);
            let _ = Message::decode(&spliced);
        }

        /// A second fragment copied from the *same* response but at the
        /// wrong offset (the overlap/shift case real reassemblers hit)
        /// never panics the decoder either.
        #[test]
        fn decoder_total_under_shifted_self_splices(
            msg in arb_message(),
            cut in any::<u16>(),
            shift in any::<u16>(),
        ) {
            let wire = msg.encode();
            let cut = cut as usize % (wire.len() + 1);
            let shift = shift as usize % (wire.len() + 1);
            let mut spliced = wire[..cut].to_vec();
            spliced.extend_from_slice(&wire[shift..]);
            let _ = Message::decode(&spliced);
        }

        /// Truncated encodes stay within the limit, keep the question intact
        /// and set TC when records were dropped.
        #[test]
        fn truncation_respects_limit(msg in arb_message()) {
            let (wire, truncated) = msg.encode_with_limit(512).unwrap();
            prop_assert!(wire.len() <= 512);
            let decoded = Message::decode(&wire).unwrap();
            prop_assert_eq!(&decoded.questions, &msg.questions);
            prop_assert_eq!(decoded.header.truncated, truncated || msg.header.truncated);
        }

        /// Name text render→parse round-trips (Display is a faithful,
        /// escape-aware serialisation).
        #[test]
        fn name_text_round_trip(name in arb_name()) {
            let text = name.to_string();
            let parsed: Name = text.parse().unwrap();
            prop_assert_eq!(parsed, name);
        }

        /// Compression is transparent: decoding re-encoded output yields the
        /// same message again (idempotent round-trip).
        #[test]
        fn reencode_stable(msg in arb_message()) {
            let once = Message::decode(&msg.encode()).unwrap();
            let twice = Message::decode(&once.encode()).unwrap();
            prop_assert_eq!(once, twice);
        }
    }
}
