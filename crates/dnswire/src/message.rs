//! Whole DNS messages: sections, compression-aware encoding, decoding and
//! the 512-byte UDP truncation rule that the TCP-based guard scheme exploits.

use crate::error::{WireError, WireResult};
use crate::header::{Header, SectionCounts};
use crate::name::Name;
use crate::question::Question;
use crate::record::Record;
use crate::types::{RrType, Rcode};
use std::collections::HashMap;
use std::fmt;

/// Classic maximum UDP DNS payload (RFC 1035); larger answers set TC.
pub const MAX_UDP_PAYLOAD: usize = 512;

/// A DNS message: header plus the four sections.
///
/// # Examples
///
/// ```
/// use dnswire::message::Message;
/// use dnswire::types::RrType;
///
/// let query = Message::query(0x1234, "www.foo.com".parse()?, RrType::A);
/// let wire = query.encode();
/// let back = Message::decode(&wire)?;
/// assert_eq!(back, query);
/// # Ok::<(), dnswire::error::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// The header (counts are derived from the vectors below).
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section — where referral NS records live.
    pub authorities: Vec<Record>,
    /// Additional section — glue A records and the cookie TXT extension.
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a recursive query (RD set) for `name`/`rtype`.
    pub fn query(id: u16, name: Name, rtype: RrType) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(name, rtype)],
            ..Message::default()
        }
    }

    /// Builds an iterative query (RD clear), as an LRS sends to an ANS.
    pub fn iterative_query(id: u16, name: Name, rtype: RrType) -> Self {
        Message {
            header: Header::iterative_query(id),
            questions: vec![Question::new(name, rtype)],
            ..Message::default()
        }
    }

    /// Starts a response to this query: header echoed, question copied,
    /// sections empty.
    pub fn response(&self) -> Self {
        Message {
            header: self.header.response_to(),
            questions: self.questions.clone(),
            ..Message::default()
        }
    }

    /// Starts an error response with the given rcode.
    pub fn error_response(&self, rcode: Rcode) -> Self {
        let mut r = self.response();
        r.header.rcode = rcode;
        r
    }

    /// A truncation response: question echoed, TC set, all sections empty.
    /// This is what the guard sends to push a requester onto TCP; it is the
    /// same size as the request, so there is no amplification.
    pub fn truncated_response(&self) -> Self {
        let mut r = self.response();
        r.header.truncated = true;
        r
    }

    /// The first question, if any — the common single-question case.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// True when this message is a response carrying *referral* information:
    /// no answers, but NS records in the authority section (or, for guard
    /// purposes, NS in answers with no terminal records).
    pub fn is_referral(&self) -> bool {
        if !self.header.response {
            return false;
        }
        let ns_in_authority = self.authorities.iter().any(|r| r.rtype == RrType::Ns);
        self.answers.is_empty() && ns_in_authority
    }

    /// Encodes with name compression, no size limit.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_limit(usize::MAX)
            .expect("unlimited encode cannot fail")
            .0
    }

    /// Encodes with name compression, truncating at `limit` bytes.
    ///
    /// When the full message does not fit, records are dropped
    /// (additional → authority → answer, whole records at a time), the TC
    /// bit is set, and the shortened message is returned with `true`.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] if even header + questions exceed `limit`.
    pub fn encode_with_limit(&self, limit: usize) -> WireResult<(Vec<u8>, bool)> {
        let full = self.encode_all();
        if full.len() <= limit {
            return Ok((full, false));
        }
        // Drop whole records until the message fits.
        let mut m = self.clone();
        m.header.truncated = true;
        while !(m.additionals.is_empty() && m.authorities.is_empty() && m.answers.is_empty()) {
            if !m.additionals.is_empty() {
                m.additionals.pop();
            } else if !m.authorities.is_empty() {
                m.authorities.pop();
            } else {
                m.answers.pop();
            }
            let enc = m.encode_all();
            if enc.len() <= limit {
                return Ok((enc, true));
            }
        }
        let enc = m.encode_all();
        if enc.len() <= limit {
            Ok((enc, true))
        } else {
            Err(WireError::TooLarge {
                needed: enc.len(),
                limit,
            })
        }
    }

    /// The wire size of the fully-encoded message (with compression).
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    fn encode_all(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        let counts = SectionCounts {
            questions: self.questions.len() as u16,
            answers: self.answers.len() as u16,
            authorities: self.authorities.len() as u16,
            additionals: self.additionals.len() as u16,
        };
        self.header.encode(counts, &mut buf);
        let mut compressor = Compressor::default();
        for q in &self.questions {
            compressor.encode_name(&q.name, &mut buf);
            buf.extend_from_slice(&q.qtype.code().to_be_bytes());
            buf.extend_from_slice(&q.qclass.code().to_be_bytes());
        }
        for r in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            compressor.encode_name(&r.name, &mut buf);
            buf.extend_from_slice(&r.rtype.code().to_be_bytes());
            buf.extend_from_slice(&r.class.code().to_be_bytes());
            buf.extend_from_slice(&r.ttl.to_be_bytes());
            let rdlen_at = buf.len();
            buf.extend_from_slice(&[0, 0]);
            r.rdata.encode(&mut buf);
            let rdlen = (buf.len() - rdlen_at - 2) as u16;
            // lint: index-ok — encode path patching a placeholder we pushed
            // into our own buffer two statements above; rdlen_at+2 <= buf.len().
            buf[rdlen_at..rdlen_at + 2].copy_from_slice(&rdlen.to_be_bytes());
        }
        buf
    }

    /// Decodes a full message.
    ///
    /// # Errors
    ///
    /// Any structural error, including trailing bytes after the counted
    /// records.
    pub fn decode(msg: &[u8]) -> WireResult<Message> {
        let (header, counts) = Header::decode(msg)?;
        let mut pos = crate::header::HEADER_LEN;
        let mut questions = Vec::with_capacity(counts.questions as usize);
        for _ in 0..counts.questions {
            let (q, next) = Question::decode(msg, pos)?;
            questions.push(q);
            pos = next;
        }
        let decode_section = |count: u16, pos: &mut usize| -> WireResult<Vec<Record>> {
            let mut records = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (r, next) = Record::decode(msg, *pos)?;
                records.push(r);
                *pos = next;
            }
            Ok(records)
        };
        let answers = decode_section(counts.answers, &mut pos)?;
        let authorities = decode_section(counts.authorities, &mut pos)?;
        let additionals = decode_section(counts.additionals, &mut pos)?;
        if pos != msg.len() {
            return Err(WireError::TrailingBytes(msg.len() - pos));
        }
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ";; id {} {} {} {}{}",
            self.header.id,
            if self.header.response { "response" } else { "query" },
            self.header.rcode,
            if self.header.authoritative { "aa " } else { "" },
            if self.header.truncated { "tc" } else { "" },
        )?;
        for q in &self.questions {
            writeln!(f, ";; question: {q}")?;
        }
        for (label, section) in [
            ("answer", &self.answers),
            ("authority", &self.authorities),
            ("additional", &self.additionals),
        ] {
            for r in section {
                writeln!(f, ";; {label}: {r}")?;
            }
        }
        Ok(())
    }
}

/// Suffix-sharing name compressor. Remembers the offset of every name suffix
/// written so far and emits a pointer to the longest known suffix.
#[derive(Default)]
struct Compressor {
    offsets: HashMap<Vec<Vec<u8>>, u16>,
}

impl Compressor {
    fn encode_name(&mut self, name: &Name, buf: &mut Vec<u8>) {
        let labels: Vec<Vec<u8>> = name.labels().map(|l| l.to_vec()).collect();
        // Find the longest suffix already in the map.
        let mut emit_until = labels.len(); // labels[..emit_until] written literally
        let mut pointer: Option<u16> = None;
        for start in 0..labels.len() {
            // lint: index-ok — encode path over our own label vector;
            // `start` ranges over 0..labels.len() so the slice is in bounds.
            if let Some(&off) = self.offsets.get(&labels[start..]) {
                emit_until = start;
                pointer = Some(off);
                break;
            }
        }
        // Register the new suffixes that will be written literally.
        for start in 0..emit_until {
            // lint: index-ok — same owned vector; emit_until <= labels.len().
            let here = buf.len() + labels[..start].iter().map(|l| l.len() + 1).sum::<usize>();
            if here < 0x4000 {
                // lint: index-ok — same owned vector, start < emit_until.
                self.offsets.entry(labels[start..].to_vec()).or_insert(here as u16);
            }
        }
        // lint: index-ok — emit_until <= labels.len() by construction above.
        for label in &labels[..emit_until] {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
        }
        match pointer {
            Some(off) => {
                buf.push(0xC0 | (off >> 8) as u8);
                buf.push((off & 0xFF) as u8);
            }
            None => buf.push(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let query = Message::query(7, n("www.foo.com"), RrType::A);
        let mut resp = query.response();
        resp.header.authoritative = true;
        resp.answers.push(Record::a(n("www.foo.com"), Ipv4Addr::new(192, 0, 2, 10), 300));
        resp.authorities.push(Record::ns(n("foo.com"), n("ns1.foo.com"), 3600));
        resp.authorities.push(Record::ns(n("foo.com"), n("ns2.foo.com"), 3600));
        resp.additionals.push(Record::a(n("ns1.foo.com"), Ipv4Addr::new(192, 0, 2, 1), 3600));
        resp.additionals.push(Record::a(n("ns2.foo.com"), Ipv4Addr::new(192, 0, 2, 2), 3600));
        resp
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0x1234, n("example.org"), RrType::Aaaa);
        let wire = q.encode();
        assert_eq!(Message::decode(&wire).unwrap(), q);
    }

    #[test]
    fn response_round_trip_with_all_sections() {
        let resp = sample_response();
        let wire = resp.encode();
        assert_eq!(Message::decode(&wire).unwrap(), resp);
    }

    #[test]
    fn compression_shrinks_output() {
        let resp = sample_response();
        let compressed = resp.encode();
        // Rough uncompressed size: encode each record standalone.
        let mut uncompressed = 12usize;
        for q in &resp.questions {
            let mut b = Vec::new();
            q.encode(&mut b);
            uncompressed += b.len();
        }
        for r in resp.answers.iter().chain(&resp.authorities).chain(&resp.additionals) {
            let mut b = Vec::new();
            r.name.encode_uncompressed(&mut b);
            b.extend_from_slice(&[0u8; 10]);
            r.rdata.encode(&mut b);
            uncompressed += b.len();
        }
        assert!(
            compressed.len() < uncompressed,
            "compressed {} >= uncompressed {}",
            compressed.len(),
            uncompressed
        );
    }

    #[test]
    fn pointers_resolve_to_original_names() {
        // Decoding the compressed form must reproduce identical names.
        let resp = sample_response();
        let decoded = Message::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.authorities[0].name, n("foo.com"));
        assert_eq!(decoded.additionals[1].name, n("ns2.foo.com"));
    }

    #[test]
    fn truncation_drops_records_and_sets_tc() {
        let mut resp = sample_response();
        // Inflate with many answers so it cannot fit in 512 bytes.
        for i in 0..60u8 {
            resp.answers.push(Record::a(
                n(&format!("host{i}.foo.com")),
                Ipv4Addr::new(10, 0, 0, i),
                60,
            ));
        }
        let full = resp.encode();
        assert!(full.len() > MAX_UDP_PAYLOAD);
        let (wire, truncated) = resp.encode_with_limit(MAX_UDP_PAYLOAD).unwrap();
        assert!(truncated);
        assert!(wire.len() <= MAX_UDP_PAYLOAD);
        let decoded = Message::decode(&wire).unwrap();
        assert!(decoded.header.truncated);
        assert_eq!(decoded.questions, resp.questions);
    }

    #[test]
    fn no_truncation_when_it_fits() {
        let resp = sample_response();
        let (wire, truncated) = resp.encode_with_limit(MAX_UDP_PAYLOAD).unwrap();
        assert!(!truncated);
        assert!(!Message::decode(&wire).unwrap().header.truncated);
    }

    #[test]
    fn too_large_when_question_alone_exceeds_limit() {
        let q = Message::query(1, n("a-rather-long-domain-name.example.org"), RrType::A);
        assert!(matches!(
            q.encode_with_limit(20),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = Message::query(9, n("x.y"), RrType::A).encode();
        wire.push(0);
        assert!(matches!(
            Message::decode(&wire),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn is_referral_detects_delegation() {
        let query = Message::iterative_query(3, n("www.foo.com"), RrType::A);
        let mut referral = query.response();
        referral.authorities.push(Record::ns(n("com"), n("a.gtld-servers.net"), 172800));
        referral.additionals.push(Record::a(n("a.gtld-servers.net"), Ipv4Addr::new(192, 5, 6, 30), 172800));
        assert!(referral.is_referral());

        let mut answer = query.response();
        answer.answers.push(Record::a(n("www.foo.com"), Ipv4Addr::new(1, 2, 3, 4), 60));
        assert!(!answer.is_referral());
        assert!(!query.is_referral(), "queries are never referrals");
    }

    #[test]
    fn truncated_response_same_size_as_request() {
        let query = Message::query(5, n("www.foo.com"), RrType::A);
        let tc = query.truncated_response();
        assert_eq!(tc.encode().len(), query.encode().len());
        assert!(tc.header.truncated);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[0u8; 5]).is_err());
        // Header claiming one question but no question bytes.
        let mut buf = Vec::new();
        Header::query(1).encode(
            SectionCounts {
                questions: 1,
                ..SectionCounts::default()
            },
            &mut buf,
        );
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn decoder_never_panics_on_fuzzed_mutations() {
        let wire = sample_response().encode();
        for i in 0..wire.len() {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[i] ^= 1 << bit;
                let _ = Message::decode(&mutated); // must not panic
            }
        }
    }
}
