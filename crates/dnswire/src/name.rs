//! Domain names: text parsing, wire encoding with compression, decoding with
//! pointer chasing, and the hierarchy operations the resolver and guard need.

use crate::error::{WireError, WireResult};
use std::fmt;
use std::str::FromStr;

/// Maximum length of a single label in bytes (RFC 1035 section 2.3.4).
pub const MAX_LABEL_LEN: usize = 63;

/// Maximum length of a name on the wire, including length octets.
pub const MAX_NAME_LEN: usize = 255;

/// Maximum number of compression-pointer jumps tolerated while decoding one
/// name. Real names never need more than a handful; this bounds malicious
/// pointer chains.
const MAX_POINTER_JUMPS: usize = 64;

/// A fully-qualified domain name, stored as a sequence of labels (without the
/// trailing root label, which is implicit).
///
/// Comparison and hashing are ASCII case-insensitive, per RFC 1035 /
/// RFC 4343, but the original label bytes are preserved: a resolver doing
/// 0x20 case randomization needs its MiXeD-cAsE query name echoed back
/// byte-for-byte, which [`Name::eq_case_sensitive`] checks.
///
/// # Examples
///
/// ```
/// use dnswire::name::Name;
///
/// let name: Name = "www.Foo.COM".parse()?;
/// assert_eq!(name.to_string(), "www.Foo.COM.");
/// assert_eq!(name, "WWW.foo.com".parse()?);
/// assert!(!name.eq_case_sensitive(&"www.foo.com".parse()?));
/// assert_eq!(name.label_count(), 3);
/// assert!(name.is_subdomain_of(&"com".parse()?));
/// # Ok::<(), dnswire::error::WireError>(())
/// ```
#[derive(Clone, Default)]
pub struct Name {
    /// Labels in query order (leftmost first), case preserved. All
    /// comparisons fold ASCII case except [`Name::eq_case_sensitive`].
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from label byte-slices.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LabelTooLong`] / [`WireError::NameTooLong`] when
    /// RFC 1035 limits are violated, and [`WireError::InvalidText`] for empty
    /// labels.
    pub fn from_labels<I, L>(labels: I) -> WireResult<Self>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::InvalidText("empty label".into()));
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            out.push(l.to_vec());
        }
        let name = Name { labels: out };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels (the root name has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over the labels, leftmost (most specific) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels.first().map(|l| l.as_slice())
    }

    /// The leftmost label as UTF-8 text, if it is valid UTF-8.
    pub fn first_label_str(&self) -> Option<&str> {
        self.first_label().and_then(|l| std::str::from_utf8(l).ok())
    }

    /// Length of this name on the wire (length octets + labels + root octet).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The parent name (this name minus its leftmost label). The parent of
    /// the root is the root.
    pub fn parent(&self) -> Name {
        Name {
            labels: self.labels.get(1..).unwrap_or_default().to_vec(),
        }
    }

    /// Returns the suffix of this name with `count` labels (e.g. for
    /// `www.foo.com`, `suffix(2)` is `foo.com`). `count` larger than the
    /// label count returns the whole name.
    pub fn suffix(&self, count: usize) -> Name {
        let skip = self.labels.len().saturating_sub(count);
        Name {
            labels: self.labels.iter().skip(skip).cloned().collect(),
        }
    }

    /// True when `self` is `other` or a descendant of `other`, comparing
    /// labels case-insensitively. Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        // lint: index-ok — the early return above guarantees
        // other.labels.len() <= self.labels.len(), so the start bound
        // never underflows and never exceeds the slice length.
        let tail = &self.labels[self.labels.len() - other.labels.len()..];
        tail.iter()
            .zip(other.labels.iter())
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Byte-exact equality, including ASCII case — the check a 0x20
    /// resolver runs on the echoed question name. Regular `==` stays
    /// case-insensitive per RFC 1035.
    pub fn eq_case_sensitive(&self, other: &Name) -> bool {
        self.labels == other.labels
    }

    /// Returns a copy with each ASCII letter's case chosen by `coin`
    /// (`true` = uppercase), called once per letter in wire order — the
    /// 0x20 query-name encoding. Non-letter bytes pass through.
    pub fn with_case<F: FnMut() -> bool>(&self, mut coin: F) -> Name {
        let labels = self
            .labels
            .iter()
            .map(|l| {
                l.iter()
                    .map(|&b| {
                        if b.is_ascii_alphabetic() {
                            if coin() {
                                b.to_ascii_uppercase()
                            } else {
                                b.to_ascii_lowercase()
                            }
                        } else {
                            b
                        }
                    })
                    .collect()
            })
            .collect();
        Name { labels }
    }

    /// Creates a child name by prepending `label`.
    ///
    /// # Errors
    ///
    /// Fails when the label or the resulting name exceeds RFC limits.
    pub fn child<L: AsRef<[u8]>>(&self, label: L) -> WireResult<Name> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_ref().to_vec());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Concatenates `self` with `suffix` (self's labels first).
    ///
    /// # Errors
    ///
    /// Fails when the combined name exceeds the 255-byte wire limit.
    pub fn concat(&self, suffix: &Name) -> WireResult<Name> {
        Name::from_labels(self.labels.iter().chain(suffix.labels.iter()))
    }

    /// Replaces the leftmost label with `label` (used by the guard to swap a
    /// real NS label for a fabricated cookie label and back).
    ///
    /// # Errors
    ///
    /// Fails on RFC limit violations; on the root name this is equivalent to
    /// [`Name::child`].
    pub fn with_first_label<L: AsRef<[u8]>>(&self, label: L) -> WireResult<Name> {
        if self.labels.is_empty() {
            return self.child(label);
        }
        let mut labels = self.labels.clone();
        if let Some(first) = labels.first_mut() {
            *first = label.as_ref().to_vec();
        }
        Name::from_labels(labels)
    }

    /// Encodes the name without compression, appending to `buf`.
    pub fn encode_uncompressed(&self, buf: &mut Vec<u8>) {
        for l in &self.labels {
            buf.push(l.len() as u8);
            buf.extend_from_slice(l);
        }
        buf.push(0);
    }

    /// Decodes a name starting at `offset` in `msg`, following compression
    /// pointers. Returns the name and the offset just past the name's
    /// in-place encoding (pointers do not advance past their two bytes).
    ///
    /// # Errors
    ///
    /// Rejects forward-pointing or looping pointers, reserved label types,
    /// over-long labels/names and truncated input.
    pub fn decode(msg: &[u8], offset: usize) -> WireResult<(Name, usize)> {
        let mut labels = Vec::new();
        let mut pos = offset;
        let mut end_after: Option<usize> = None;
        let mut jumps = 0usize;
        let mut wire_len = 1usize; // trailing root octet

        loop {
            let len_octet = *msg.get(pos).ok_or(WireError::UnexpectedEnd { offset: pos })?;
            match len_octet {
                0 => {
                    let end = end_after.unwrap_or(pos + 1);
                    let name = Name { labels };
                    return Ok((name, end));
                }
                l if l & 0xC0 == 0xC0 => {
                    let next = *msg
                        .get(pos + 1)
                        .ok_or(WireError::UnexpectedEnd { offset: pos + 1 })?;
                    let target = (((l & 0x3F) as usize) << 8) | next as usize;
                    if target >= pos {
                        return Err(WireError::BadPointer { target, at: pos });
                    }
                    jumps += 1;
                    if jumps > MAX_POINTER_JUMPS {
                        return Err(WireError::PointerLoop);
                    }
                    if end_after.is_none() {
                        end_after = Some(pos + 2);
                    }
                    pos = target;
                }
                l if l & 0xC0 != 0 => return Err(WireError::BadLabelType(l)),
                l => {
                    let len = l as usize;
                    let start = pos + 1;
                    let end = start + len;
                    let label = msg
                        .get(start..end)
                        .ok_or(WireError::UnexpectedEnd { offset: end })?;
                    wire_len += len + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire_len));
                    }
                    labels.push(label.to_vec());
                    pos = end;
                }
            }
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    /// Hashes the case-folded labels so `Hash` stays consistent with the
    /// case-insensitive `Eq` (folds per byte, no allocation).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            state.write_usize(l.len());
            for &b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
        state.write_usize(self.labels.len());
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering: compare label sequences right-to-left
    /// (hierarchical order) with ASCII case folded, so a zone sorts before
    /// its children and ordering agrees with the case-insensitive `Eq`.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.labels.iter().rev().map(|l| Fold(l));
        let b = other.labels.iter().rev().map(|l| Fold(l));
        a.cmp(b)
    }
}

/// A label viewed through ASCII case folding, for ordering.
struct Fold<'a>(&'a [u8]);

impl PartialEq for Fold<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(other.0)
    }
}
impl Eq for Fold<'_> {}
impl PartialOrd for Fold<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Fold<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.0.iter().map(u8::to_ascii_lowercase);
        let b = other.0.iter().map(u8::to_ascii_lowercase);
        a.cmp(b)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for l in &self.labels {
            for &b in l {
                // Escape dots and non-printables inside labels per RFC 4343.
                match b {
                    b'.' => f.write_str("\\.")?,
                    b'\\' => f.write_str("\\\\")?,
                    0x21..=0x7E => write!(f, "{}", b as char)?,
                    other => write!(f, "\\{:03}", other)?,
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl FromStr for Name {
    type Err = WireError;

    /// Parses dotted text (`www.foo.com`, trailing dot optional, `.` or empty
    /// string for the root). Supports `\.`/`\\`/`\DDD` escapes.
    fn from_str(s: &str) -> WireResult<Self> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        let mut chars = s.bytes().peekable();
        while let Some(b) = chars.next() {
            match b {
                b'\\' => match chars.next() {
                    Some(d @ b'0'..=b'9') => {
                        let d2 = chars
                            .next()
                            .filter(u8::is_ascii_digit)
                            .ok_or_else(|| WireError::InvalidText(s.into()))?;
                        let d3 = chars
                            .next()
                            .filter(u8::is_ascii_digit)
                            .ok_or_else(|| WireError::InvalidText(s.into()))?;
                        let value = (d - b'0') as u16 * 100 + (d2 - b'0') as u16 * 10 + (d3 - b'0') as u16;
                        if value > 255 {
                            return Err(WireError::InvalidText(s.into()));
                        }
                        current.push(value as u8);
                    }
                    Some(escaped) => current.push(escaped),
                    None => return Err(WireError::InvalidText(s.into())),
                },
                b'.' => {
                    labels.push(std::mem::take(&mut current));
                    // Empty labels (consecutive dots) are invalid; caught by
                    // from_labels below.
                }
                other => current.push(other),
            }
        }
        labels.push(current);
        Name::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("www.foo.com").to_string(), "www.foo.com.");
        assert_eq!(n("www.foo.com.").to_string(), "www.foo.com.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
        assert_eq!(n("COM").to_string(), "COM.", "case is preserved for display");
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(n("WWW.Foo.Com"), n("www.foo.com"));
        let mut set = std::collections::HashSet::new();
        set.insert(n("Example.ORG"));
        assert!(set.contains(&n("example.org")));
    }

    #[test]
    fn case_sensitive_compare_and_0x20() {
        assert!(n("www.foo.com").eq_case_sensitive(&n("www.foo.com")));
        assert!(!n("wWw.foo.com").eq_case_sensitive(&n("www.foo.com")));
        // 0x20: flip every other letter; round-trips through the wire.
        let mut i = 0u32;
        let mixed = n("www.foo.com").with_case(|| {
            i += 1;
            i.is_multiple_of(2)
        });
        assert_eq!(mixed, n("www.foo.com"), "still equal case-insensitively");
        assert!(!mixed.eq_case_sensitive(&n("www.foo.com")));
        let mut buf = Vec::new();
        mixed.encode_uncompressed(&mut buf);
        let (decoded, _) = Name::decode(&buf, 0).unwrap();
        assert!(decoded.eq_case_sensitive(&mixed), "wire preserves case");
        assert!(n("WWW.FOO.COM").is_subdomain_of(&n("foo.com")));
    }

    #[test]
    fn hash_and_ord_fold_case() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |name: &Name| {
            let mut s = DefaultHasher::new();
            name.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&n("WWW.Foo.Com")), h(&n("www.foo.com")));
        assert_eq!(n("A.COM").cmp(&n("a.com")), std::cmp::Ordering::Equal);
        assert!(n("A.com") < n("b.COM"));
    }

    #[test]
    fn rejects_empty_label() {
        assert!("a..b".parse::<Name>().is_err());
        assert!(Name::from_labels(["a", "", "b"]).is_err());
    }

    #[test]
    fn rejects_long_label_and_name() {
        let long_label = "x".repeat(64);
        assert!(long_label.parse::<Name>().is_err());
        let ok_label = "x".repeat(63);
        assert!(ok_label.parse::<Name>().is_ok());

        let long_name = (0..32).map(|_| "abcdefg").collect::<Vec<_>>().join(".");
        assert!(long_name.parse::<Name>().is_err());
    }

    #[test]
    fn hierarchy_ops() {
        let name = n("www.foo.com");
        assert_eq!(name.parent(), n("foo.com"));
        assert_eq!(name.parent().parent(), n("com"));
        assert_eq!(name.parent().parent().parent(), Name::root());
        assert_eq!(Name::root().parent(), Name::root());

        assert!(name.is_subdomain_of(&n("foo.com")));
        assert!(name.is_subdomain_of(&n("com")));
        assert!(name.is_subdomain_of(&Name::root()));
        assert!(name.is_subdomain_of(&name));
        assert!(!n("foo.com").is_subdomain_of(&name));
        assert!(!n("barfoo.com").is_subdomain_of(&n("foo.com")));

        assert_eq!(name.suffix(2), n("foo.com"));
        assert_eq!(name.suffix(0), Name::root());
        assert_eq!(name.suffix(99), name);
    }

    #[test]
    fn child_and_concat() {
        assert_eq!(n("foo.com").child("www").unwrap(), n("www.foo.com"));
        assert_eq!(Name::root().child("com").unwrap(), n("com"));
        assert_eq!(n("www").concat(&n("foo.com")).unwrap(), n("www.foo.com"));
        assert_eq!(n("a.b").concat(&Name::root()).unwrap(), n("a.b"));
    }

    #[test]
    fn with_first_label_swaps() {
        let original = n("ns1.foo.com");
        let fabricated = original.with_first_label("PRdeadbeef").unwrap();
        assert_eq!(fabricated, n("PRdeadbeef.foo.com"));
        assert_eq!(fabricated.with_first_label("ns1").unwrap(), original);
        assert_eq!(Name::root().with_first_label("x").unwrap(), n("x"));
    }

    #[test]
    fn wire_round_trip_uncompressed() {
        for s in ["www.foo.com", "a", ".", "x.y.z.w.v.u"] {
            let name = n(s);
            let mut buf = Vec::new();
            name.encode_uncompressed(&mut buf);
            let (decoded, used) = Name::decode(&buf, 0).unwrap();
            assert_eq!(decoded, name);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn wire_len_matches_encoding() {
        for s in ["www.foo.com", "a", "."] {
            let name = n(s);
            let mut buf = Vec::new();
            name.encode_uncompressed(&mut buf);
            assert_eq!(buf.len(), name.wire_len());
        }
    }

    #[test]
    fn decode_follows_pointer() {
        // "foo.com" at offset 0; "www" + pointer to offset 0 at offset 9.
        let mut buf = Vec::new();
        n("foo.com").encode_uncompressed(&mut buf);
        let ptr_at = buf.len();
        buf.push(3);
        buf.extend_from_slice(b"www");
        buf.push(0xC0);
        buf.push(0);
        let (decoded, used) = Name::decode(&buf, ptr_at).unwrap();
        assert_eq!(decoded, n("www.foo.com"));
        assert_eq!(used, buf.len());
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        let buf = [0xC0u8, 0x02, 0x00];
        assert!(matches!(
            Name::decode(&buf, 0),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_self_pointer() {
        let buf = [0xC0u8, 0x00];
        assert!(matches!(
            Name::decode(&buf, 0),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        assert!(matches!(Name::decode(&[0x40, 0x00], 0), Err(WireError::BadLabelType(_))));
        assert!(matches!(Name::decode(&[0x80, 0x00], 0), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn decode_rejects_truncation() {
        assert!(matches!(Name::decode(&[], 0), Err(WireError::UnexpectedEnd { .. })));
        assert!(matches!(Name::decode(&[3, b'w'], 0), Err(WireError::UnexpectedEnd { .. })));
        assert!(matches!(Name::decode(&[0xC0], 0), Err(WireError::UnexpectedEnd { .. })));
    }

    #[test]
    fn escapes_in_display_and_parse() {
        let name = Name::from_labels([b"a.b".as_slice(), b"c".as_slice()]).unwrap();
        let text = name.to_string();
        assert_eq!(text, "a\\.b.c.");
        assert_eq!(text.parse::<Name>().unwrap(), name);

        let weird = Name::from_labels([&[0x07u8, b'x'][..]]).unwrap();
        let round = weird.to_string().parse::<Name>().unwrap();
        assert_eq!(round, weird);
    }

    #[test]
    fn canonical_ordering_groups_zones() {
        let mut names = vec![n("b.com"), n("a.com"), n("com"), n("www.a.com"), n("org")];
        names.sort();
        assert_eq!(
            names,
            vec![n("com"), n("a.com"), n("www.a.com"), n("b.com"), n("org")]
        );
    }

    #[test]
    fn max_pointer_jumps_bounded() {
        // Build a chain of pointers each pointing 2 bytes back; 100 jumps.
        let mut buf = vec![0u8]; // root name at offset 0
        for i in 0..100u16 {
            // Each pointer points to the previous pointer (or the root).
            let target = if i == 0 { 0 } else { 1 + (i - 1) * 2 };
            buf.push(0xC0 | ((target >> 8) as u8));
            buf.push((target & 0xFF) as u8);
        }
        let start = buf.len() - 2;
        assert!(matches!(Name::decode(&buf, start), Err(WireError::PointerLoop)));
    }
}
