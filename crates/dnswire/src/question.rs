//! The question section entry.

use crate::error::WireResult;
use crate::name::Name;
use crate::types::{RrClass, RrType};
use std::fmt;

/// A single question: QNAME, QTYPE, QCLASS.
///
/// # Examples
///
/// ```
/// use dnswire::{question::Question, types::RrType};
///
/// let q = Question::new("www.foo.com".parse()?, RrType::A);
/// assert_eq!(q.to_string(), "www.foo.com. IN A");
/// # Ok::<(), dnswire::error::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// The name being queried.
    pub name: Name,
    /// The record type requested.
    pub qtype: RrType,
    /// The class (practically always `IN`).
    pub qclass: RrClass,
}

impl Question {
    /// Creates an `IN`-class question.
    pub fn new(name: Name, qtype: RrType) -> Self {
        Question {
            name,
            qtype,
            qclass: RrClass::In,
        }
    }

    /// Encodes into `buf` without name compression (questions come first, so
    /// there is rarely anything to point at; the message encoder still adds
    /// this name to its compression map for later sections).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode_uncompressed(buf);
        buf.extend_from_slice(&self.qtype.code().to_be_bytes());
        buf.extend_from_slice(&self.qclass.code().to_be_bytes());
    }

    /// Decodes a question at `offset`, returning it and the next offset.
    pub fn decode(msg: &[u8], offset: usize) -> WireResult<(Question, usize)> {
        let (name, mut pos) = Name::decode(msg, offset)?;
        let qtype = read_u16(msg, pos)?;
        pos += 2;
        let qclass = read_u16(msg, pos)?;
        pos += 2;
        Ok((
            Question {
                name,
                qtype: RrType::from(qtype),
                qclass: RrClass::from(qclass),
            },
            pos,
        ))
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.qclass, self.qtype)
    }
}

pub(crate) fn read_u16(msg: &[u8], offset: usize) -> WireResult<u16> {
    match msg.get(offset..offset + 2) {
        Some(&[hi, lo]) => Ok(u16::from_be_bytes([hi, lo])),
        _ => Err(crate::error::WireError::UnexpectedEnd { offset }),
    }
}

pub(crate) fn read_u32(msg: &[u8], offset: usize) -> WireResult<u32> {
    match msg.get(offset..offset + 4) {
        Some(&[b0, b1, b2, b3]) => Ok(u32::from_be_bytes([b0, b1, b2, b3])),
        _ => Err(crate::error::WireError::UnexpectedEnd { offset }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let q = Question::new("example.org".parse().unwrap(), RrType::Mx);
        let mut buf = Vec::new();
        q.encode(&mut buf);
        let (decoded, used) = Question::decode(&buf, 0).unwrap();
        assert_eq!(decoded, q);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn truncated_input_rejected() {
        let q = Question::new("a.b".parse().unwrap(), RrType::A);
        let mut buf = Vec::new();
        q.encode(&mut buf);
        for len in 0..buf.len() {
            assert!(Question::decode(&buf[..len], 0).is_err(), "len {len}");
        }
    }

    #[test]
    fn display_format() {
        let q = Question::new("x.y".parse().unwrap(), RrType::Txt);
        assert_eq!(q.to_string(), "x.y. IN TXT");
    }
}
