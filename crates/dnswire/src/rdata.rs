//! RDATA payloads for the record types the reproduction uses.

use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::question::{read_u16, read_u32};
use crate::types::RrType;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Decoded RDATA, by record type.
///
/// Names inside RDATA are encoded *without* compression pointers (as modern
/// practice requires for anything cached or DNSSEC-signed); the decoder still
/// accepts compressed names for robustness.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Authoritative server name — the carrier of the NS-name cookie.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Start of authority.
    Soa(Soa),
    /// Reverse-mapping pointer.
    Ptr(Name),
    /// Mail exchange.
    Mx {
        /// Lower is more preferred.
        preference: u16,
        /// Exchange host name.
        exchange: Name,
    },
    /// One or more character-strings — the carrier of the modified-DNS
    /// cookie extension.
    Txt(Vec<Vec<u8>>),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Anything else, carried opaquely.
    Unknown(Vec<u8>),
}

/// SOA RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master name.
    pub mname: Name,
    /// Responsible mailbox.
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Secondary refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expiry (seconds).
    pub expire: u32,
    /// Negative-caching TTL (seconds).
    pub minimum: u32,
}

impl RData {
    /// The record type this payload belongs with.
    pub fn rtype(&self) -> Option<RrType> {
        Some(match self {
            RData::A(_) => RrType::A,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Soa(_) => RrType::Soa,
            RData::Ptr(_) => RrType::Ptr,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Unknown(_) => return None,
        })
    }

    /// Encodes the RDATA (without the RDLENGTH prefix) into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RData::A(ip) => buf.extend_from_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_uncompressed(buf),
            RData::Soa(soa) => {
                soa.mname.encode_uncompressed(buf);
                soa.rname.encode_uncompressed(buf);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    buf.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Mx { preference, exchange } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode_uncompressed(buf);
            }
            RData::Txt(strings) => {
                // A TXT record must contain at least one character-string;
                // encode an empty string when none were supplied.
                if strings.is_empty() {
                    buf.push(0);
                }
                for s in strings {
                    debug_assert!(s.len() <= 255, "character-string too long");
                    buf.push(s.len().min(255) as u8);
                    // lint: index-ok — encode path over our own data, and the
                    // range end is clamped to s.len() on the previous line.
                    buf.extend_from_slice(&s[..s.len().min(255)]);
                }
            }
            RData::Aaaa(ip) => buf.extend_from_slice(&ip.octets()),
            RData::Unknown(bytes) => buf.extend_from_slice(bytes),
        }
    }

    /// Decodes RDATA of `rtype` occupying `msg[offset..offset+rdlen]`.
    ///
    /// # Errors
    ///
    /// Fails when the payload is malformed or does not fill `rdlen` exactly.
    pub fn decode(msg: &[u8], offset: usize, rdlen: usize, rtype: RrType) -> WireResult<RData> {
        let end = offset + rdlen;
        if msg.len() < end {
            return Err(WireError::UnexpectedEnd { offset: end });
        }
        let exact = |consumed: usize| -> WireResult<()> {
            if consumed == end {
                Ok(())
            } else {
                Err(WireError::RdataLengthMismatch {
                    declared: rdlen,
                    consumed: consumed - offset,
                })
            }
        };
        match rtype {
            RrType::A => {
                if rdlen != 4 {
                    return Err(WireError::RdataLengthMismatch {
                        declared: rdlen,
                        consumed: 4,
                    });
                }
                match msg.get(offset..end) {
                    Some(&[a, b, c, d]) => Ok(RData::A(Ipv4Addr::new(a, b, c, d))),
                    _ => Err(WireError::UnexpectedEnd { offset }),
                }
            }
            RrType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::RdataLengthMismatch {
                        declared: rdlen,
                        consumed: 16,
                    });
                }
                let bytes = msg
                    .get(offset..end)
                    .ok_or(WireError::UnexpectedEnd { offset })?;
                let octets: [u8; 16] =
                    bytes.try_into().map_err(|_| WireError::UnexpectedEnd { offset })?;
                Ok(RData::Aaaa(Ipv6Addr::from(octets)))
            }
            RrType::Ns | RrType::Cname | RrType::Ptr => {
                let (name, used) = Name::decode(msg, offset)?;
                exact(used)?;
                Ok(match rtype {
                    RrType::Ns => RData::Ns(name),
                    RrType::Cname => RData::Cname(name),
                    _ => RData::Ptr(name),
                })
            }
            RrType::Soa => {
                let (mname, pos) = Name::decode(msg, offset)?;
                let (rname, pos) = Name::decode(msg, pos)?;
                let serial = read_u32(msg, pos)?;
                let refresh = read_u32(msg, pos + 4)?;
                let retry = read_u32(msg, pos + 8)?;
                let expire = read_u32(msg, pos + 12)?;
                let minimum = read_u32(msg, pos + 16)?;
                exact(pos + 20)?;
                Ok(RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                }))
            }
            RrType::Mx => {
                let preference = read_u16(msg, offset)?;
                let (exchange, used) = Name::decode(msg, offset + 2)?;
                exact(used)?;
                Ok(RData::Mx { preference, exchange })
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                let mut pos = offset;
                while pos < end {
                    let len = *msg.get(pos).ok_or(WireError::UnexpectedEnd { offset: pos })?
                        as usize;
                    pos += 1;
                    if pos + len > end {
                        return Err(WireError::BadCharacterString);
                    }
                    let s = msg
                        .get(pos..pos + len)
                        .ok_or(WireError::UnexpectedEnd { offset: pos })?;
                    strings.push(s.to_vec());
                    pos += len;
                }
                Ok(RData::Txt(strings))
            }
            RrType::Opt | RrType::Other(_) => {
                let bytes = msg
                    .get(offset..end)
                    .ok_or(WireError::UnexpectedEnd { offset })?;
                Ok(RData::Unknown(bytes.to_vec()))
            }
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Soa(soa) => write!(
                f,
                "{} {} {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx { preference, exchange } => write!(f, "{preference} {exchange}"),
            RData::Txt(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "\"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Unknown(bytes) => write!(f, "\\# {} (opaque)", bytes.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rdata: RData, rtype: RrType) {
        let mut buf = Vec::new();
        rdata.encode(&mut buf);
        let decoded = RData::decode(&buf, 0, buf.len(), rtype).unwrap();
        assert_eq!(decoded, rdata);
    }

    #[test]
    fn a_round_trip() {
        round_trip(RData::A(Ipv4Addr::new(1, 2, 3, 4)), RrType::A);
    }

    #[test]
    fn aaaa_round_trip() {
        round_trip(RData::Aaaa("2001:db8::1".parse().unwrap()), RrType::Aaaa);
    }

    #[test]
    fn ns_cname_ptr_round_trip() {
        round_trip(RData::Ns("ns1.foo.com".parse().unwrap()), RrType::Ns);
        round_trip(RData::Cname("alias.foo.com".parse().unwrap()), RrType::Cname);
        round_trip(RData::Ptr("host.example".parse().unwrap()), RrType::Ptr);
    }

    #[test]
    fn soa_round_trip() {
        round_trip(
            RData::Soa(Soa {
                mname: "ns1.foo.com".parse().unwrap(),
                rname: "hostmaster.foo.com".parse().unwrap(),
                serial: 20_060_101,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
            RrType::Soa,
        );
    }

    #[test]
    fn mx_round_trip() {
        round_trip(
            RData::Mx {
                preference: 10,
                exchange: "mail.foo.com".parse().unwrap(),
            },
            RrType::Mx,
        );
    }

    #[test]
    fn txt_round_trip_multi_string() {
        round_trip(
            RData::Txt(vec![b"hello".to_vec(), vec![0u8; 16], b"".to_vec()]),
            RrType::Txt,
        );
    }

    #[test]
    fn txt_empty_encodes_one_empty_string() {
        let mut buf = Vec::new();
        RData::Txt(vec![]).encode(&mut buf);
        assert_eq!(buf, vec![0u8]);
        let decoded = RData::decode(&buf, 0, 1, RrType::Txt).unwrap();
        assert_eq!(decoded, RData::Txt(vec![vec![]]));
    }

    #[test]
    fn unknown_round_trip() {
        round_trip(RData::Unknown(vec![1, 2, 3, 4, 5]), RrType::Other(999));
    }

    #[test]
    fn a_wrong_length_rejected() {
        assert!(matches!(
            RData::decode(&[1, 2, 3], 0, 3, RrType::A),
            Err(WireError::RdataLengthMismatch { .. })
        ));
    }

    #[test]
    fn txt_overrun_rejected() {
        // Declares a 10-byte string but only 2 bytes remain.
        let buf = [10u8, b'a', b'b'];
        assert!(matches!(
            RData::decode(&buf, 0, 3, RrType::Txt),
            Err(WireError::BadCharacterString)
        ));
    }

    #[test]
    fn ns_with_trailing_garbage_rejected() {
        let mut buf = Vec::new();
        RData::Ns("a.b".parse().unwrap()).encode(&mut buf);
        buf.push(0xFF);
        assert!(matches!(
            RData::decode(&buf, 0, buf.len(), RrType::Ns),
            Err(WireError::RdataLengthMismatch { .. })
        ));
    }

    #[test]
    fn rtype_accessor() {
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).rtype(), Some(RrType::A));
        assert_eq!(RData::Unknown(vec![]).rtype(), None);
    }
}
