//! Resource records: owner name, type, class, TTL and RDATA.

use crate::error::WireResult;
use crate::name::Name;
use crate::question::{read_u16, read_u32};
use crate::rdata::RData;
use crate::types::{RrClass, RrType};
use std::fmt;
use std::net::Ipv4Addr;

/// A resource record.
///
/// # Examples
///
/// ```
/// use dnswire::record::Record;
/// use std::net::Ipv4Addr;
///
/// let rr = Record::a("www.foo.com".parse()?, Ipv4Addr::new(192, 0, 2, 1), 3600);
/// assert_eq!(rr.to_string(), "www.foo.com. 3600 IN A 192.0.2.1");
/// # Ok::<(), dnswire::error::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record type (kept explicit so unknown types survive round-trips).
    pub rtype: RrType,
    /// Class.
    pub class: RrClass,
    /// Time to live, seconds. The guard manipulates this: fabricated NS
    /// records get long TTLs so cookies stay cached.
    pub ttl: u32,
    /// The payload.
    pub rdata: RData,
}

impl Record {
    /// Creates an `IN`-class record, deriving `rtype` from the RDATA.
    ///
    /// # Panics
    ///
    /// Panics if `rdata` is [`RData::Unknown`]; use [`Record::with_type`]
    /// for opaque payloads.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        let rtype = rdata
            .rtype()
            .expect("RData::Unknown needs Record::with_type");
        Record {
            name,
            rtype,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Creates a record with an explicit type (for opaque RDATA).
    pub fn with_type(name: Name, rtype: RrType, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            rtype,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Convenience: an A record.
    pub fn a(name: Name, addr: Ipv4Addr, ttl: u32) -> Self {
        Record::new(name, ttl, RData::A(addr))
    }

    /// Convenience: an NS record.
    pub fn ns(name: Name, nsdname: Name, ttl: u32) -> Self {
        Record::new(name, ttl, RData::Ns(nsdname))
    }

    /// Convenience: a single-string TXT record.
    pub fn txt(name: Name, data: Vec<u8>, ttl: u32) -> Self {
        Record::new(name, ttl, RData::Txt(vec![data]))
    }

    /// Decodes one record at `offset`, returning it and the next offset.
    pub fn decode(msg: &[u8], offset: usize) -> WireResult<(Record, usize)> {
        let (name, pos) = Name::decode(msg, offset)?;
        let rtype = RrType::from(read_u16(msg, pos)?);
        let class = RrClass::from(read_u16(msg, pos + 2)?);
        let ttl = read_u32(msg, pos + 4)?;
        let rdlen = read_u16(msg, pos + 8)? as usize;
        let rdata_at = pos + 10;
        let rdata = RData::decode(msg, rdata_at, rdlen, rtype)?;
        Ok((
            Record {
                name,
                rtype,
                class,
                ttl,
                rdata,
            },
            rdata_at + rdlen,
        ))
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name, self.ttl, self.class, self.rtype, self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_type() {
        let a = Record::a("h.example".parse().unwrap(), Ipv4Addr::new(10, 0, 0, 1), 60);
        assert_eq!(a.rtype, RrType::A);
        let ns = Record::ns("example".parse().unwrap(), "ns.example".parse().unwrap(), 60);
        assert_eq!(ns.rtype, RrType::Ns);
        let txt = Record::txt("example".parse().unwrap(), b"hi".to_vec(), 0);
        assert_eq!(txt.rtype, RrType::Txt);
    }

    #[test]
    #[should_panic(expected = "with_type")]
    fn unknown_rdata_needs_with_type() {
        Record::new("x".parse().unwrap(), 0, RData::Unknown(vec![1]));
    }

    #[test]
    fn with_type_allows_opaque() {
        let r = Record::with_type("x".parse().unwrap(), RrType::Other(7), 0, RData::Unknown(vec![1]));
        assert_eq!(r.rtype, RrType::Other(7));
    }

    #[test]
    fn display_matches_zone_format() {
        let r = Record::ns("com".parse().unwrap(), "a.gtld-servers.net".parse().unwrap(), 172800);
        assert_eq!(r.to_string(), "com. 172800 IN NS a.gtld-servers.net.");
    }
}
