//! Resource-record types, classes, opcodes and response codes.

use std::fmt;

/// DNS resource-record TYPE values (RFC 1035 and successors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse mapping).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings — also the carrier of the DNS Guard cookie extension.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// EDNS(0) pseudo-record.
    Opt,
    /// Any other type, preserved numerically.
    Other(u16),
}

impl RrType {
    /// The numeric TYPE code.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Other(code) => code,
        }
    }
}

impl From<u16> for RrType {
    fn from(code: u16) -> Self {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            other => RrType::Other(other),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => f.write_str("A"),
            RrType::Ns => f.write_str("NS"),
            RrType::Cname => f.write_str("CNAME"),
            RrType::Soa => f.write_str("SOA"),
            RrType::Ptr => f.write_str("PTR"),
            RrType::Mx => f.write_str("MX"),
            RrType::Txt => f.write_str("TXT"),
            RrType::Aaaa => f.write_str("AAAA"),
            RrType::Opt => f.write_str("OPT"),
            RrType::Other(code) => write!(f, "TYPE{code}"),
        }
    }
}

/// DNS CLASS values. Practically always [`RrClass::In`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrClass {
    /// The Internet.
    In,
    /// CHAOS (used by some diagnostics).
    Ch,
    /// QCLASS `*` (any).
    Any,
    /// Any other class, preserved numerically.
    Other(u16),
}

impl RrClass {
    /// The numeric CLASS code.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Ch => 3,
            RrClass::Any => 255,
            RrClass::Other(code) => code,
        }
    }
}

impl From<u16> for RrClass {
    fn from(code: u16) -> Self {
        match code {
            1 => RrClass::In,
            3 => RrClass::Ch,
            255 => RrClass::Any,
            other => RrClass::Other(other),
        }
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => f.write_str("IN"),
            RrClass::Ch => f.write_str("CH"),
            RrClass::Any => f.write_str("ANY"),
            RrClass::Other(code) => write!(f, "CLASS{code}"),
        }
    }
}

/// Header OPCODE values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Anything else, preserved numerically (4 bits).
    Other(u8),
}

impl Opcode {
    /// The numeric opcode (4 bits).
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(code) => code & 0x0F,
        }
    }
}

impl From<u8> for Opcode {
    fn from(code: u8) -> Self {
        match code & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Other(other),
        }
    }
}

/// Header RCODE values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Anything else, preserved numerically (4 bits).
    Other(u8),
}

impl Rcode {
    /// The numeric rcode (4 bits).
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(code) => code & 0x0F,
        }
    }
}

impl From<u8> for Rcode {
    fn from(code: u8) -> Self {
        match code & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => f.write_str("NOERROR"),
            Rcode::FormErr => f.write_str("FORMERR"),
            Rcode::ServFail => f.write_str("SERVFAIL"),
            Rcode::NxDomain => f.write_str("NXDOMAIN"),
            Rcode::NotImp => f.write_str("NOTIMP"),
            Rcode::Refused => f.write_str("REFUSED"),
            Rcode::Other(code) => write!(f, "RCODE{code}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
            RrType::Other(999),
        ] {
            assert_eq!(RrType::from(t.code()), t);
        }
    }

    #[test]
    fn known_codes_decode_to_named_variants() {
        assert_eq!(RrType::from(1), RrType::A);
        assert_eq!(RrType::from(16), RrType::Txt);
        assert_eq!(RrClass::from(1), RrClass::In);
        assert_eq!(Rcode::from(3), Rcode::NxDomain);
        assert_eq!(Opcode::from(0), Opcode::Query);
    }

    #[test]
    fn other_preserves_code() {
        assert_eq!(RrType::Other(12345).code(), 12345);
        assert_eq!(RrType::from(12345), RrType::Other(12345));
        assert_eq!(RrClass::from(7).code(), 7);
    }

    #[test]
    fn four_bit_fields_masked() {
        assert_eq!(Opcode::Other(0xFF).code(), 0x0F);
        assert_eq!(Rcode::Other(0xFF).code(), 0x0F);
        assert_eq!(Opcode::from(0x13), Opcode::Other(3));
    }

    #[test]
    fn display_strings() {
        assert_eq!(RrType::Ns.to_string(), "NS");
        assert_eq!(RrType::Other(300).to_string(), "TYPE300");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(RrClass::In.to_string(), "IN");
    }
}
