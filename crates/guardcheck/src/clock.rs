//! Vector clocks for happens-before tracking.
//!
//! A [`VClock`] maps model-thread ids (small dense `usize` indices
//! assigned per execution) to logical timestamps. The partial order
//! `a ≤ b` (every component of `a` is ≤ the matching component of `b`)
//! is exactly the happens-before relation the checker reasons with:
//! an access with clock `a` happens before one with clock `b` iff
//! `a ≤ b` at the accessing thread's component — see `sync.rs` for the
//! per-location race predicates built on top.

/// A grow-on-demand vector clock. Missing components read as 0, so
/// clocks for executions with different thread counts compare cleanly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    /// The zero clock (happens before everything).
    pub fn new() -> Self {
        VClock { slots: Vec::new() }
    }

    /// Component for thread `tid` (0 if never ticked).
    pub fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Set thread `tid`'s component to `val`, growing as needed.
    pub fn set(&mut self, tid: usize, val: u32) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] = val;
    }

    /// Advance thread `tid`'s own component by one.
    pub fn tick(&mut self, tid: usize) {
        let v = self.get(tid);
        self.set(tid, v + 1);
    }

    /// Component-wise maximum: after `a.join(&b)`, `a` is the least
    /// clock that is ≥ both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, v) in other.slots.iter().enumerate() {
            if *v > self.slots[i] {
                self.slots[i] = *v;
            }
        }
    }

    /// Partial-order comparison: true iff every component of `self`
    /// is ≤ the matching component of `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, v)| *v <= other.get(i))
    }

    /// Neither `self ≤ other` nor `other ≤ self`: the two clocks
    /// belong to concurrent (racing, if conflicting) accesses.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// True iff every component is zero.
    pub fn is_zero(&self) -> bool {
        self.slots.iter().all(|v| *v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(parts: &[(usize, u32)]) -> VClock {
        let mut c = VClock::new();
        for &(t, v) in parts {
            c.set(t, v);
        }
        c
    }

    #[test]
    fn zero_clock_leq_everything() {
        let z = VClock::new();
        assert!(z.leq(&z));
        assert!(z.leq(&vc(&[(0, 3), (2, 1)])));
        assert!(z.is_zero());
    }

    #[test]
    fn join_is_commutative() {
        let a = vc(&[(0, 3), (1, 1)]);
        let b = vc(&[(1, 4), (2, 2)]);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn join_is_associative() {
        let a = vc(&[(0, 1)]);
        let b = vc(&[(1, 2), (3, 1)]);
        let c = vc(&[(0, 5), (2, 9)]);
        let mut ab_c = a.clone();
        ab_c.join(&b);
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn join_is_idempotent_and_upper_bound() {
        let a = vc(&[(0, 2), (1, 7)]);
        let b = vc(&[(0, 4)]);
        let mut j = a.clone();
        j.join(&b);
        let mut jj = j.clone();
        jj.join(&b);
        assert_eq!(j, jj, "join idempotent");
        assert!(a.leq(&j) && b.leq(&j), "join is an upper bound");
        // Least upper bound: any other upper bound dominates the join.
        let ub = vc(&[(0, 9), (1, 9), (2, 9)]);
        assert!(j.leq(&ub));
    }

    #[test]
    fn leq_is_a_partial_order() {
        let a = vc(&[(0, 1), (1, 2)]);
        let b = vc(&[(0, 2), (1, 2)]);
        let c = vc(&[(0, 3), (1, 5)]);
        // reflexive, antisymmetric, transitive
        assert!(a.leq(&a));
        assert!(a.leq(&b) && !b.leq(&a));
        assert!(a.leq(&b) && b.leq(&c) && a.leq(&c));
    }

    #[test]
    fn concurrent_detection() {
        let a = vc(&[(0, 2), (1, 0)]);
        let b = vc(&[(0, 0), (1, 3)]);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
        let mut joined = a.clone();
        joined.join(&b);
        assert!(!a.concurrent_with(&joined), "join orders both inputs");
    }

    #[test]
    fn tick_only_moves_own_component() {
        let mut a = vc(&[(0, 1), (1, 1)]);
        let before = a.clone();
        a.tick(1);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 2);
        assert!(before.leq(&a) && !a.leq(&before));
    }

    #[test]
    fn missing_components_read_as_zero() {
        let short = vc(&[(0, 1)]);
        let long = vc(&[(0, 1), (5, 0)]);
        assert!(short.leq(&long) && long.leq(&short));
        assert_eq!(long.get(9), 0);
    }
}
