//! guardcheck — deterministic interleaving model checker for the
//! guard data plane, plus the cfg-swappable concurrency facade the
//! data-plane crates build on.
//!
//! The checker is loom-style: a checked closure constructs its shared
//! state, spawns model threads ([`model::spawn`]), and asserts its
//! invariants; [`model::Checker::check`] re-runs it under every thread
//! interleaving up to a bounded preemption depth, tracking
//! happens-before with vector clocks per memory location. Data races,
//! lost updates, deadlocks, and failed assertions come back as
//! [`Counterexample`]s carrying a replayable [`ScheduleTrace`]
//! (`seed=N;decisions=...`) that [`model::Checker::replay`] reproduces
//! exactly.
//!
//! Production code never sees the model: it imports atomics and
//! mutexes from [`sync`], which re-exports `std::sync::atomic` unless
//! the build sets `--cfg guardcheck` (the ci.sh `guardcheck` stage
//! does), in which case the same names resolve to the modeled
//! primitives and the harnesses in `tests/harnesses.rs` drive the real
//! data-plane types through the checker.

#![forbid(unsafe_code)]

mod clock;
mod primitives;
mod report;
mod sched;
pub mod sync;

pub use clock::VClock;
pub use report::{CexKind, Counterexample, Report, ScheduleTrace};

/// Upper bound on thread ids scanned when naming the offending thread
/// in a race report; matches the scheduler's thread cap.
pub(crate) const MAX_REPORT_THREADS: usize = 16;

/// The model checker and modeled primitives for writing harnesses.
pub mod model {
    pub use crate::primitives::{
        ModelAtomicBool, ModelAtomicU64, ModelAtomicU8, ModelAtomicUsize, ModelCell, ModelMutex,
        ModelMutexGuard,
    };
    pub use crate::sched::{spawn, Checker, JoinHandle};
}
