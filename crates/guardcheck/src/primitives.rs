//! Modeled concurrency primitives.
//!
//! Each primitive carries its own metadata (value + vector clocks)
//! behind an internal `std::sync::Mutex`. That mutex is uncontended in
//! practice — the scheduler serializes model threads — and is stamped
//! with the execution id so a primitive that outlives one execution
//! starts the next with clean clocks.
//!
//! Memory-model subset (documented in DESIGN.md): values are
//! sequentially consistent (a load observes the latest store), while
//! `Ordering` controls only the happens-before edges used for race
//! detection. A `Release` store publishes the storing thread's clock
//! on the location; an `Acquire` load joins it. A `Relaxed` store
//! clears the published clock (it heads no release sequence); a
//! `Relaxed` RMW preserves it (it continues one). Plain data lives in
//! [`ModelCell`], where any pair of conflicting accesses not ordered
//! by happens-before is reported as a data race / lost update.
//!
//! Outside a checker execution every primitive degrades to plain
//! sequential behavior, so types built on the facade stay usable in
//! ordinary unit tests compiled with `--cfg guardcheck`.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::VClock;
use crate::report::CexKind;
use crate::sched::{current, Inner};

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Modeled atomics
// ---------------------------------------------------------------------------

struct AtomMeta {
    exec_id: u64,
    value: u64,
    /// Clock published by the last release store (joined by RMWs in
    /// the release sequence); empty after a relaxed plain store.
    sync: VClock,
}

/// Shared implementation for all modeled atomic widths: storage is a
/// `u64`, the typed wrappers truncate/extend at the edges.
struct AtomCore {
    meta: Mutex<AtomMeta>,
}

impl AtomCore {
    fn new(value: u64) -> AtomCore {
        AtomCore {
            meta: Mutex::new(AtomMeta { exec_id: 0, value, sync: VClock::new() }),
        }
    }

    fn meta_for(&self, inner: &Inner) -> MutexGuard<'_, AtomMeta> {
        let mut m = relock(&self.meta);
        if m.exec_id != inner.exec_id {
            m.exec_id = inner.exec_id;
            m.sync = VClock::new();
        }
        m
    }

    fn load(&self, ord: Ordering) -> u64 {
        match current() {
            Some((inner, tid)) => {
                inner.yield_now(tid);
                let m = self.meta_for(&inner);
                let v = m.value;
                let sync = m.sync.clone();
                drop(m);
                inner.with_clock(tid, |c| {
                    if is_acquire(ord) {
                        c.join(&sync);
                    }
                    c.tick(tid);
                });
                v
            }
            None => relock(&self.meta).value,
        }
    }

    fn store(&self, v: u64, ord: Ordering) {
        match current() {
            Some((inner, tid)) => {
                inner.yield_now(tid);
                let clock = inner.with_clock(tid, |c| {
                    let snap = c.clone();
                    c.tick(tid);
                    snap
                });
                let mut m = self.meta_for(&inner);
                m.value = v;
                // A release store heads a new release sequence and
                // publishes the storing thread's clock; a relaxed
                // store publishes nothing (acquire loads that read it
                // synchronize with nobody).
                m.sync = if is_release(ord) { clock } else { VClock::new() };
            }
            None => relock(&self.meta).value = v,
        }
    }

    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        match current() {
            Some((inner, tid)) => {
                inner.yield_now(tid);
                let mut m = self.meta_for(&inner);
                let sync = m.sync.clone();
                let clock = inner.with_clock(tid, |c| {
                    if is_acquire(ord) {
                        c.join(&sync);
                    }
                    let snap = c.clone();
                    c.tick(tid);
                    snap
                });
                let old = m.value;
                m.value = f(old);
                // Even a relaxed RMW continues the release sequence,
                // so `sync` is preserved; a release RMW additionally
                // merges this thread's clock in.
                if is_release(ord) {
                    m.sync.join(&clock);
                }
                old
            }
            None => {
                let mut m = relock(&self.meta);
                let old = m.value;
                m.value = f(old);
                old
            }
        }
    }

    fn compare_exchange(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match current() {
            Some((inner, tid)) => {
                inner.yield_now(tid);
                let mut m = self.meta_for(&inner);
                let sync = m.sync.clone();
                if m.value == expected {
                    let clock = inner.with_clock(tid, |c| {
                        if is_acquire(success) {
                            c.join(&sync);
                        }
                        let snap = c.clone();
                        c.tick(tid);
                        snap
                    });
                    m.value = new;
                    if is_release(success) {
                        m.sync.join(&clock);
                    }
                    Ok(expected)
                } else {
                    inner.with_clock(tid, |c| {
                        if is_acquire(failure) {
                            c.join(&sync);
                        }
                        c.tick(tid);
                    });
                    Err(m.value)
                }
            }
            None => {
                let mut m = relock(&self.meta);
                if m.value == expected {
                    m.value = new;
                    Ok(expected)
                } else {
                    Err(m.value)
                }
            }
        }
    }
}

macro_rules! model_atomic_int {
    ($name:ident, $ty:ty) => {
        /// Modeled atomic integer with the full `Ordering` surface.
        pub struct $name {
            core: AtomCore,
        }

        impl $name {
            pub fn new(v: $ty) -> Self {
                $name { core: AtomCore::new(v as u64) }
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                self.core.load(ord) as $ty
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                self.core.store(v as u64, ord)
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |_| v as u64) as $ty
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |old| (old as $ty).wrapping_add(v) as u64) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |old| (old as $ty).wrapping_sub(v) as u64) as $ty
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |old| (old as $ty).max(v) as u64) as $ty
            }

            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.core
                    .compare_exchange(expected as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(..)"))
            }
        }
    };
}

model_atomic_int!(ModelAtomicU64, u64);
model_atomic_int!(ModelAtomicUsize, usize);
model_atomic_int!(ModelAtomicU8, u8);

/// Modeled `AtomicBool`.
pub struct ModelAtomicBool {
    core: AtomCore,
}

impl ModelAtomicBool {
    pub fn new(v: bool) -> Self {
        ModelAtomicBool { core: AtomCore::new(v as u64) }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.core.load(ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        self.core.store(v as u64, ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.core.rmw(ord, |_| v as u64) != 0
    }

    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        self.core.rmw(ord, |old| old | (v as u64)) != 0
    }

    pub fn compare_exchange(
        &self,
        expected: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.core
            .compare_exchange(expected as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl Default for ModelAtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for ModelAtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelAtomicBool(..)")
    }
}

// ---------------------------------------------------------------------------
// Plain data with race detection
// ---------------------------------------------------------------------------

struct CellMeta<T> {
    exec_id: u64,
    value: T,
    /// Per-thread clocks of the last write / read by each thread.
    writes: VClock,
    reads: VClock,
}

/// A plain (non-atomic) shared memory location. Any conflicting pair
/// of accesses without a happens-before edge between them is reported:
/// unordered write/write as a *lost update*, unordered read/write as a
/// *data race*. This is the modeled stand-in for ordinary fields that
/// threads share without synchronization.
pub struct ModelCell<T> {
    name: &'static str,
    meta: Arc<Mutex<CellMeta<T>>>,
}

impl<T> Clone for ModelCell<T> {
    fn clone(&self) -> Self {
        ModelCell { name: self.name, meta: Arc::clone(&self.meta) }
    }
}

impl<T: Copy> ModelCell<T> {
    pub fn new(value: T) -> Self {
        Self::named("cell", value)
    }

    /// Name shows up in race reports; use it to tell locations apart.
    pub fn named(name: &'static str, value: T) -> Self {
        ModelCell {
            name,
            meta: Arc::new(Mutex::new(CellMeta {
                exec_id: 0,
                value,
                writes: VClock::new(),
                reads: VClock::new(),
            })),
        }
    }

    fn meta_for(&self, inner: &Inner) -> MutexGuard<'_, CellMeta<T>> {
        let mut m = relock(&self.meta);
        if m.exec_id != inner.exec_id {
            m.exec_id = inner.exec_id;
            m.writes = VClock::new();
            m.reads = VClock::new();
        }
        m
    }

    /// Which thread's recorded access is not ordered before `clock`.
    fn offender(access: &VClock, clock: &VClock) -> usize {
        (0..crate::MAX_REPORT_THREADS)
            .find(|&u| access.get(u) > clock.get(u))
            .unwrap_or(0)
    }

    pub fn get(&self) -> T {
        match current() {
            Some((inner, tid)) => {
                inner.yield_now(tid);
                let clock = inner.with_clock(tid, |c| {
                    let snap = c.clone();
                    c.tick(tid);
                    snap
                });
                let mut m = self.meta_for(&inner);
                if !m.writes.leq(&clock) {
                    let u = Self::offender(&m.writes, &clock);
                    inner.report_failure(
                        CexKind::DataRace,
                        format!(
                            "plain location '{}': write by t{} not ordered before read by t{} \
                             (missing happens-before edge)",
                            self.name, u, tid
                        ),
                    );
                }
                m.reads.set(tid, clock.get(tid));
                m.value
            }
            None => relock(&self.meta).value,
        }
    }

    pub fn set(&self, value: T) {
        match current() {
            Some((inner, tid)) => {
                inner.yield_now(tid);
                let clock = inner.with_clock(tid, |c| {
                    let snap = c.clone();
                    c.tick(tid);
                    snap
                });
                let mut m = self.meta_for(&inner);
                if !m.writes.leq(&clock) {
                    let u = Self::offender(&m.writes, &clock);
                    inner.report_failure(
                        CexKind::LostUpdate,
                        format!(
                            "plain location '{}': unordered writes by t{} and t{} \
                             (one update can be lost)",
                            self.name, u, tid
                        ),
                    );
                } else if !m.reads.leq(&clock) {
                    let u = Self::offender(&m.reads, &clock);
                    inner.report_failure(
                        CexKind::DataRace,
                        format!(
                            "plain location '{}': read by t{} not ordered before write by t{} \
                             (missing happens-before edge)",
                            self.name, u, tid
                        ),
                    );
                }
                m.writes.set(tid, clock.get(tid));
                m.value = value;
            }
            None => relock(&self.meta).value = value,
        }
    }
}

// ---------------------------------------------------------------------------
// Modeled mutex
// ---------------------------------------------------------------------------

struct MutexMeta {
    exec_id: u64,
    /// Per-execution lock id used for block/wake bookkeeping.
    id: u64,
    holder: Option<usize>,
    /// Clock of the last unlock; acquirers join it (lock-release edge).
    clock: VClock,
}

/// Modeled mutual-exclusion lock with `parking_lot`-style API
/// (`lock()` returns the guard directly). Contended acquisition is a
/// scheduling decision point; unordered-acquisition deadlocks surface
/// as deadlock counterexamples.
pub struct ModelMutex<T: ?Sized> {
    meta: Mutex<MutexMeta>,
    data: Mutex<T>,
}

impl<T> ModelMutex<T> {
    pub fn new(value: T) -> Self {
        ModelMutex {
            meta: Mutex::new(MutexMeta {
                exec_id: 0,
                id: 0,
                holder: None,
                clock: VClock::new(),
            }),
            data: Mutex::new(value),
        }
    }

    pub fn lock(&self) -> ModelMutexGuard<'_, T> {
        match current() {
            Some((inner, tid)) => loop {
                inner.yield_now(tid);
                let mut m = relock(&self.meta);
                if m.exec_id != inner.exec_id {
                    m.exec_id = inner.exec_id;
                    m.id = inner.fresh_lock_id();
                    m.holder = None;
                    m.clock = VClock::new();
                }
                if m.holder.is_none() {
                    m.holder = Some(tid);
                    let lock_clock = m.clock.clone();
                    let id = m.id;
                    drop(m);
                    inner.with_clock(tid, |c| {
                        c.join(&lock_clock);
                        c.tick(tid);
                    });
                    return ModelMutexGuard {
                        mutex: self,
                        guard: Some(relock(&self.data)),
                        ctx: Some((inner, tid, id)),
                    };
                }
                let id = m.id;
                drop(m);
                inner.block_on_mutex(tid, id);
            },
            None => ModelMutexGuard { mutex: self, guard: Some(relock(&self.data)), ctx: None },
        }
    }
}

impl<T: Default> Default for ModelMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for ModelMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelMutex(..)")
    }
}

/// Guard for [`ModelMutex`]; releases the model lock (and publishes
/// the unlock clock) on drop.
pub struct ModelMutexGuard<'a, T: ?Sized> {
    mutex: &'a ModelMutex<T>,
    guard: Option<MutexGuard<'a, T>>,
    ctx: Option<(Arc<Inner>, usize, u64)>,
}

impl<T: ?Sized> std::ops::Deref for ModelMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for ModelMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for ModelMutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((inner, tid, id)) = self.ctx.take() {
            let clock = inner.with_clock(tid, |c| {
                let snap = c.clone();
                c.tick(tid);
                snap
            });
            let mut m = relock(&self.mutex.meta);
            m.holder = None;
            m.clock = clock;
            drop(m);
            inner.unblock_mutex_waiters(id);
        }
        // `self.guard` (the data lock) drops after this body.
    }
}
