//! Checker output: exploration statistics, counterexamples, and the
//! replayable schedule trace that pins a failing interleaving.

use std::fmt;

/// What kind of defect a counterexample demonstrates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CexKind {
    /// Conflicting read/write on plain data with no happens-before edge.
    DataRace,
    /// Two unordered writes to the same plain location: one of them
    /// can be silently overwritten.
    LostUpdate,
    /// No thread is runnable but some are unfinished.
    Deadlock,
    /// A model thread panicked (failed `assert!` = violated invariant).
    InvariantViolation,
}

impl fmt::Display for CexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CexKind::DataRace => "data race",
            CexKind::LostUpdate => "lost update",
            CexKind::Deadlock => "deadlock",
            CexKind::InvariantViolation => "invariant violation",
        };
        f.write_str(s)
    }
}

/// A replayable schedule: the exploration seed plus the sequence of
/// scheduling decisions (chosen thread id at each branching yield
/// point). Feed it back through [`crate::model::Checker::replay`] to
/// reproduce the exact interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleTrace {
    pub seed: u64,
    pub decisions: Vec<usize>,
}

impl fmt::Display for ScheduleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={};decisions=", self.seed)?;
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl ScheduleTrace {
    /// Parse the `Display` form back (`seed=N;decisions=a,b,c`).
    /// Returns `None` on any malformed input — never panics, so traces
    /// pasted from CI logs are safe to feed through.
    pub fn parse(s: &str) -> Option<ScheduleTrace> {
        let rest = s.strip_prefix("seed=")?;
        let (seed_str, dec_str) = rest.split_once(";decisions=")?;
        let seed = seed_str.parse().ok()?;
        let mut decisions = Vec::new();
        if !dec_str.is_empty() {
            for part in dec_str.split(',') {
                decisions.push(part.parse().ok()?);
            }
        }
        Some(ScheduleTrace { seed, decisions })
    }
}

/// A concrete failing execution found by the checker.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub kind: CexKind,
    /// Human-oriented description: which location, which threads,
    /// which operations conflicted.
    pub message: String,
    /// Schedule that reproduces the failure deterministically.
    pub trace: ScheduleTrace,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [replay: {}]", self.kind, self.message, self.trace)
    }
}

impl Counterexample {
    /// GitHub Actions annotation form (`::error ::...`), used by the
    /// CI `guardcheck` stage so failures surface on the PR directly.
    pub fn render_github(&self, harness: &str) -> String {
        // Annotation messages are single-line; the trace rides along so
        // the failure can be replayed locally from the annotation alone.
        format!(
            "::error title=guardcheck {}::harness {}: {} [replay: {}]",
            self.kind, harness, self.message, self.trace
        )
    }
}

/// Result of a [`crate::model::Checker::check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of complete executions (distinct schedules) explored.
    pub schedules: u64,
    /// Total scheduling decision points visited across all executions —
    /// a proxy for distinct interleaving states.
    pub states: u64,
    /// First failure found, if any. Exploration stops at the first
    /// counterexample (its trace is already minimal-prefix for replay).
    pub counterexample: Option<Counterexample>,
    /// True when the bounded search space was exhausted (no schedule
    /// or preemption budget cut the search short).
    pub complete: bool,
}

impl Report {
    /// Panic with a replayable trace if the run found a counterexample.
    /// Harness tests call this so failures print the schedule string.
    pub fn assert_ok(&self, harness: &str) {
        if let Some(cex) = &self.counterexample {
            panic!("guardcheck harness {harness} failed: {cex}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_display() {
        let t = ScheduleTrace { seed: 7, decisions: vec![0, 1, 1, 2, 0] };
        let s = t.to_string();
        assert_eq!(s, "seed=7;decisions=0,1,1,2,0");
        assert_eq!(ScheduleTrace::parse(&s), Some(t));
    }

    #[test]
    fn empty_decisions_roundtrip() {
        let t = ScheduleTrace { seed: 0, decisions: vec![] };
        assert_eq!(ScheduleTrace::parse(&t.to_string()), Some(t));
    }

    #[test]
    fn malformed_traces_parse_to_none() {
        for bad in ["", "seed=x;decisions=1", "seed=1", "decisions=1", "seed=1;decisions=1,b"] {
            assert!(ScheduleTrace::parse(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn github_annotation_shape() {
        let cex = Counterexample {
            kind: CexKind::DataRace,
            message: "plain cell written by t1 read by t0".into(),
            trace: ScheduleTrace { seed: 1, decisions: vec![1, 0] },
        };
        let line = cex.render_github("stop_flag");
        assert!(line.starts_with("::error title=guardcheck data race::"));
        assert!(line.contains("seed=1;decisions=1,0"));
        assert!(!line.contains('\n'));
    }
}
