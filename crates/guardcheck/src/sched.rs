//! Deterministic interleaving scheduler.
//!
//! Model threads are real OS threads serialized by a baton: exactly one
//! model thread runs between scheduling decisions, so every operation
//! between two yield points is atomic with respect to the model. Each
//! modeled operation (atomic access, mutex acquisition, cell access,
//! spawn, join) is a yield point; when more than one thread is runnable
//! the scheduler consults the DFS tape to decide who continues.
//!
//! Exploration is depth-first over the tree of scheduling decisions,
//! bounded by a preemption budget (a decision counts as a preemption
//! when the previously running thread was still runnable but a
//! different one was chosen). The search is fully deterministic given
//! the seed, and every execution's decision string replays exactly —
//! that is what makes counterexample traces reproducible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;
use crate::report::{CexKind, Counterexample, Report, ScheduleTrace};

/// Hard cap on model threads per execution; keeps vector clocks small
/// and the schedule space sane. Harnesses use 2–4 threads.
const MAX_THREADS: usize = 16;

/// Global execution-id source. Model primitives stamp their metadata
/// with the execution id and lazily reset when it changes, so types
/// that outlive one execution (statics, reused fixtures) start clean.
static EXEC_IDS: AtomicU64 = AtomicU64::new(1);

/// Payload used to unwind model threads during teardown (deadlock or
/// early stop). Recognized by the thread trampoline so it is not
/// reported as an invariant violation.
struct AbortPanic;

fn abort_unwind() -> ! {
    std::panic::panic_any(AbortPanic)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Run {
    Runnable,
    BlockedMutex(u64),
    BlockedJoin(usize),
    Finished,
}

struct TState {
    run: Run,
    clock: VClock,
}

/// One branching decision point: the seed-ordered enabled set, which
/// index was chosen, and who held the baton when the choice was made.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub(crate) ordered: Vec<usize>,
    pub(crate) chosen_idx: usize,
    pub(crate) running_before: usize,
}

struct SchedState {
    threads: Vec<TState>,
    current: usize,
    live: usize,
    forced: Vec<usize>,
    decisions: Vec<usize>,
    frames: Vec<Frame>,
    failure: Option<Counterexample>,
    abort: bool,
    states: u64,
}

/// Shared per-execution scheduler state. Model primitives reach it via
/// the thread-local set up by the trampoline.
pub(crate) struct Inner {
    state: Mutex<SchedState>,
    cv: Condvar,
    pub(crate) exec_id: u64,
    seed: u64,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_lock_id: AtomicU64,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Inner>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing model thread's scheduler handle, if any. Model
/// primitives fall back to plain sequential behavior when `None`
/// (i.e. when used outside a checker run).
pub(crate) fn current() -> Option<(Arc<Inner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic ordering of the enabled set at one decision point:
/// the currently running thread first (so choice 0 never preempts),
/// remaining threads in a seed-rotated order so different seeds walk
/// the tree differently while staying reproducible.
fn order_enabled(enabled: &[usize], current: usize, seed: u64, depth: usize) -> Vec<usize> {
    let mut rest: Vec<usize> = enabled.iter().copied().filter(|&t| t != current).collect();
    if rest.len() > 1 {
        let r = (splitmix64(seed ^ depth as u64) as usize) % rest.len();
        rest.rotate_left(r);
    }
    if enabled.contains(&current) {
        let mut out = Vec::with_capacity(enabled.len());
        out.push(current);
        out.extend(rest);
        out
    } else {
        rest
    }
}

impl Inner {
    fn new(seed: u64, forced: Vec<usize>) -> Inner {
        let mut main = TState { run: Run::Runnable, clock: VClock::new() };
        main.clock.tick(0);
        Inner {
            state: Mutex::new(SchedState {
                threads: vec![main],
                current: 0,
                live: 1,
                forced,
                decisions: Vec::new(),
                frames: Vec::new(),
                failure: None,
                abort: false,
                states: 0,
            }),
            cv: Condvar::new(),
            exec_id: EXEC_IDS.fetch_add(1, Ordering::Relaxed),
            seed,
            os_handles: Mutex::new(Vec::new()),
            next_lock_id: AtomicU64::new(1),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn fresh_lock_id(&self) -> u64 {
        self.next_lock_id.fetch_add(1, Ordering::Relaxed)
    }

    fn trace_of(&self, st: &SchedState) -> ScheduleTrace {
        ScheduleTrace { seed: self.seed, decisions: st.decisions.clone() }
    }

    /// Record a failure (first one wins) with the schedule so far.
    pub(crate) fn report_failure(&self, kind: CexKind, message: String) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            let trace = self.trace_of(&st);
            st.failure = Some(Counterexample { kind, message, trace });
        }
    }

    /// Run `f` against the calling model thread's vector clock.
    pub(crate) fn with_clock<R>(&self, tid: usize, f: impl FnOnce(&mut VClock) -> R) -> R {
        let mut st = self.lock_state();
        f(&mut st.threads[tid].clock)
    }

    /// Pick who runs next. Called with the state lock held, by the
    /// thread that currently holds the baton (or is giving it up).
    fn pick_next(&self, st: &mut SchedState) {
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.live > 0 {
                // Every unfinished thread is blocked: deadlock.
                if st.failure.is_none() {
                    let blocked: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter_map(|(i, t)| match t.run {
                            Run::BlockedMutex(m) => Some(format!("t{i} on mutex#{m}")),
                            Run::BlockedJoin(j) => Some(format!("t{i} joining t{j}")),
                            _ => None,
                        })
                        .collect();
                    let trace = self.trace_of(st);
                    st.failure = Some(Counterexample {
                        kind: CexKind::Deadlock,
                        message: format!("deadlock: {}", blocked.join(", ")),
                        trace,
                    });
                }
                st.abort = true;
            }
            // live == 0: execution complete; wake the controller.
            self.cv.notify_all();
            return;
        }
        let next = if enabled.len() == 1 {
            enabled[0]
        } else {
            st.states += 1;
            let depth = st.frames.len();
            let ordered = order_enabled(&enabled, st.current, self.seed, depth);
            let pos = st.decisions.len();
            let chosen_idx = if pos < st.forced.len() {
                let want = st.forced[pos];
                ordered.iter().position(|&t| t == want).unwrap_or(0)
            } else {
                0
            };
            let chosen = ordered[chosen_idx];
            st.frames.push(Frame { ordered, chosen_idx, running_before: st.current });
            st.decisions.push(chosen);
            chosen
        };
        st.current = next;
        self.cv.notify_all();
    }

    /// Yield point: optionally move self into a blocked state, choose
    /// the next runner, then wait until rescheduled.
    pub(crate) fn reschedule(&self, my: usize, block: Option<Run>) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        if let Some(b) = block {
            st.threads[my].run = b;
        }
        self.pick_next(&mut st);
        while !(st.current == my && st.threads[my].run == Run::Runnable) {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Plain yield point (no state change).
    pub(crate) fn yield_now(&self, my: usize) {
        self.reschedule(my, None);
    }

    /// Block until this freshly spawned thread is scheduled for the
    /// first time.
    fn first_schedule(&self, my: usize) {
        let mut st = self.lock_state();
        while !(st.current == my && st.threads[my].run == Run::Runnable) {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Register a child thread: child inherits the parent clock
    /// (spawn edge), both tick so their subsequent ops are ordered
    /// only through that edge.
    fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        assert!(tid < MAX_THREADS, "guardcheck: more than {MAX_THREADS} model threads");
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        st.threads[parent].clock.tick(parent);
        st.threads.push(TState { run: Run::Runnable, clock });
        st.live += 1;
        tid
    }

    /// Mark `my` finished, wake joiners, hand the baton on.
    fn finish(&self, my: usize) {
        let mut st = self.lock_state();
        st.threads[my].run = Run::Finished;
        st.live -= 1;
        for i in 0..st.threads.len() {
            if st.threads[i].run == Run::BlockedJoin(my) {
                st.threads[i].run = Run::Runnable;
            }
        }
        self.pick_next(&mut st);
    }

    /// Join edge: wait for `target` to finish, then absorb its clock.
    fn join_thread(&self, my: usize, target: usize) {
        loop {
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.threads[target].run == Run::Finished {
                let tc = st.threads[target].clock.clone();
                st.threads[my].clock.join(&tc);
                st.threads[my].clock.tick(my);
                return;
            }
            st.threads[my].run = Run::BlockedJoin(target);
            self.pick_next(&mut st);
            while !(st.current == my && st.threads[my].run == Run::Runnable) {
                if st.abort {
                    drop(st);
                    abort_unwind();
                }
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Wake every thread blocked on mutex `id` (they re-contend).
    pub(crate) fn unblock_mutex_waiters(&self, id: u64) {
        let mut st = self.lock_state();
        for t in st.threads.iter_mut() {
            if t.run == Run::BlockedMutex(id) {
                t.run = Run::Runnable;
            }
        }
    }

    /// Block the caller on mutex `id` and yield. Returns when the
    /// caller has been woken *and* rescheduled; the caller re-checks
    /// the lock state itself.
    pub(crate) fn block_on_mutex(&self, my: usize, id: u64) {
        self.reschedule(my, Some(Run::BlockedMutex(id)));
    }
}

/// Handle to a model-spawned thread. `join` returns `None` if the
/// child panicked (the panic is reported as an invariant violation).
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
    inner: Arc<Inner>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> Option<T> {
        let (inner, my) = current().expect("guardcheck: join outside a model execution");
        assert!(Arc::ptr_eq(&inner, &self.inner), "guardcheck: cross-execution join");
        inner.yield_now(my);
        inner.join_thread(my, self.tid);
        self.result.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// Spawn a model thread inside a checker execution. Must be called
/// from model-managed code (the checked closure or one of its spawns).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (inner, my) = current().expect("guardcheck: spawn outside a model execution");
    let tid = inner.register_thread(my);
    let result = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let inner2 = Arc::clone(&inner);
    let os = std::thread::Builder::new()
        .name(format!("guardcheck-t{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner2), tid)));
            inner2.first_schedule(tid);
            let out = catch_unwind(AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                }
                Err(payload) => {
                    if !payload.is::<AbortPanic>() {
                        inner2.report_failure(
                            CexKind::InvariantViolation,
                            format!("thread t{tid} panicked: {}", panic_message(payload.as_ref())),
                        );
                    }
                }
            }
            inner2.finish(tid);
            CURRENT.with(|c| *c.borrow_mut() = None);
        })
        .expect("guardcheck: OS thread spawn failed");
    inner.os_handles.lock().unwrap_or_else(|e| e.into_inner()).push(os);
    // Decision point: the child is now enabled alongside the parent.
    inner.yield_now(my);
    JoinHandle { tid, result, inner }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ExecResult {
    frames: Vec<Frame>,
    states: u64,
    failure: Option<Counterexample>,
}

fn count_preemptions(frames: &[Frame]) -> usize {
    frames
        .iter()
        .filter(|f| {
            let chosen = f.ordered[f.chosen_idx];
            chosen != f.running_before && f.ordered.contains(&f.running_before)
        })
        .count()
}

/// Deterministic bounded model checker. Configure, then [`Checker::check`]
/// a closure that builds its shared state and spawns model threads.
pub struct Checker {
    preemption_bound: usize,
    max_schedules: u64,
    seed: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    pub fn new() -> Checker {
        Checker { preemption_bound: 2, max_schedules: 100_000, seed: 0 }
    }

    /// Max context switches away from a still-runnable thread per
    /// schedule. Empirically 2–3 finds almost all real bugs while
    /// keeping the schedule space tractable.
    pub fn preemption_bound(mut self, n: usize) -> Checker {
        self.preemption_bound = n;
        self
    }

    /// Hard budget on explored schedules; `Report::complete` is false
    /// if the budget stops the search early.
    pub fn max_schedules(mut self, n: u64) -> Checker {
        self.max_schedules = n;
        self
    }

    /// Perturbs the deterministic ordering of scheduling alternatives.
    pub fn seed(mut self, seed: u64) -> Checker {
        self.seed = seed;
        self
    }

    fn run_one<F>(&self, f: &Arc<F>, forced: Vec<usize>) -> ExecResult
    where
        F: Fn() + Send + Sync + 'static,
    {
        let inner = Arc::new(Inner::new(self.seed, forced));
        let inner_main = Arc::clone(&inner);
        let body = Arc::clone(f);
        let main = std::thread::Builder::new()
            .name("guardcheck-t0".into())
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner_main), 0)));
                let out = catch_unwind(AssertUnwindSafe(|| body()));
                if let Err(payload) = out {
                    if !payload.is::<AbortPanic>() {
                        inner_main.report_failure(
                            CexKind::InvariantViolation,
                            format!("thread t0 panicked: {}", panic_message(payload.as_ref())),
                        );
                    }
                }
                inner_main.finish(0);
                CURRENT.with(|c| *c.borrow_mut() = None);
            })
            .expect("guardcheck: OS thread spawn failed");

        // Wait for the execution to drain (all model threads finished,
        // normally or via abort teardown).
        {
            let mut st = inner.lock_state();
            while st.live > 0 {
                st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        main.join().ok();
        let handles: Vec<_> =
            std::mem::take(&mut *inner.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            h.join().ok();
        }
        let st = inner.lock_state();
        ExecResult { frames: st.frames.clone(), states: st.states, failure: st.failure.clone() }
    }

    /// Exhaustively explore interleavings of `f` up to the preemption
    /// bound. `f` runs once per schedule; it must construct its shared
    /// state internally and join every thread it spawns.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut report =
            Report { schedules: 0, states: 0, counterexample: None, complete: false };
        let mut forced: Vec<usize> = Vec::new();
        loop {
            let res = self.run_one(&f, forced.clone());
            report.schedules += 1;
            report.states += res.states;
            if res.failure.is_some() {
                report.counterexample = res.failure;
                return report;
            }
            if report.schedules >= self.max_schedules {
                return report;
            }
            // DFS backtrack: deepest frame with an untried, in-budget
            // alternative becomes the new forced prefix.
            let frames = res.frames;
            let mut next: Option<Vec<usize>> = None;
            'scan: for i in (0..frames.len()).rev() {
                let budget_used = count_preemptions(&frames[..i]);
                let fr = &frames[i];
                for idx in fr.chosen_idx + 1..fr.ordered.len() {
                    let alt = fr.ordered[idx];
                    let preempts = alt != fr.running_before
                        && fr.ordered.contains(&fr.running_before);
                    if preempts && budget_used + 1 > self.preemption_bound {
                        continue;
                    }
                    let mut pfx: Vec<usize> =
                        frames[..i].iter().map(|f| f.ordered[f.chosen_idx]).collect();
                    pfx.push(alt);
                    next = Some(pfx);
                    break 'scan;
                }
            }
            match next {
                Some(pfx) => forced = pfx,
                None => {
                    report.complete = true;
                    return report;
                }
            }
        }
    }

    /// Re-run exactly one schedule from a counterexample trace.
    /// Deterministic: the same forced decisions reproduce the same
    /// interleaving, so the same failure fires again.
    pub fn replay<F>(trace: &ScheduleTrace, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let checker = Checker::new().seed(trace.seed);
        let res = checker.run_one(&Arc::new(f), trace.decisions.clone());
        Report {
            schedules: 1,
            states: res.states,
            counterexample: res.failure,
            complete: false,
        }
    }
}
