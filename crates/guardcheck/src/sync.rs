//! cfg-swappable concurrency facade.
//!
//! Data-plane crates import their atomics and mutexes from here
//! instead of `std::sync` / `parking_lot`:
//!
//! ```ignore
//! use guardcheck::sync::{AtomicU64, Mutex, Ordering};
//! ```
//!
//! In a normal build (`cfg(not(guardcheck))`) these are the real
//! `std::sync::atomic` types plus a thin poison-recovering mutex
//! wrapper — zero overhead, zero behavior change. Under
//! `RUSTFLAGS="--cfg guardcheck"` they swap to the modeled primitives,
//! so the *production types themselves* (Counter, Tracer, TokenBucket,
//! CheckpointStore, StopFlag) run under the interleaving checker with
//! no test doubles.

pub use std::sync::atomic::Ordering;

#[cfg(not(guardcheck))]
mod real {
    /// Poison-recovering mutex with the `parking_lot`-style `lock()`
    /// API the workspace already uses (a panicked holder does not
    /// wedge the lock — same recovery the vendored shim performs).
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Mutex(..)")
        }
    }
}

#[cfg(not(guardcheck))]
pub use real::{Mutex, MutexGuard};

#[cfg(not(guardcheck))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

#[cfg(guardcheck)]
pub use crate::primitives::{
    ModelAtomicBool as AtomicBool, ModelAtomicU64 as AtomicU64, ModelAtomicU8 as AtomicU8,
    ModelAtomicUsize as AtomicUsize, ModelMutex as Mutex, ModelMutexGuard as MutexGuard,
};
