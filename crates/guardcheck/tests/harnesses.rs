//! Model-checked harnesses over the *real* data-plane types.
//!
//! Compiled only under `RUSTFLAGS="--cfg guardcheck"` (the ci.sh
//! `guardcheck` stage): in that configuration `guardcheck::sync`
//! resolves to the modeled primitives, so the production
//! Counter/Histogram/Tracer/AtomicTokenBucket/CheckpointStore/StopFlag
//! implementations — not test doubles — run under the interleaving
//! checker. These five shared structures are exactly the future
//! per-core hot-path state of the sharded guard data plane.
//!
//! The aggregate test asserts the whole suite explores ≥ 10 000
//! distinct schedules with zero counterexamples; the mutation test
//! proves the checker's teeth by demoting the stop flag's Release
//! store to Relaxed and demanding a replayable data-race trace.
#![cfg(guardcheck)]

use guardcheck::model::{spawn, Checker, ModelCell};
use guardcheck::{CexKind, Report, ScheduleTrace};
use std::sync::Arc;

/// Harness 1: the obs metrics record path. Counter increments and
/// histogram records are relaxed RMWs; no interleaving may lose one,
/// and count/sum must agree after both recorders are joined.
fn run_metrics() -> Report {
    Checker::new().preemption_bound(3).check(|| {
        let c = obs::metrics::Counter::new();
        let h = obs::metrics::Histogram::new();
        let (c1, h1) = (c.clone(), h.clone());
        let (c2, h2) = (c.clone(), h.clone());
        let t1 = spawn(move || {
            c1.inc();
            h1.record(3);
        });
        let t2 = spawn(move || {
            c2.inc_release();
            h2.record(300);
        });
        t1.join();
        t2.join();
        assert_eq!(c.get(), 2, "no increment may be lost");
        assert_eq!(h.count(), 2, "histogram count matches records");
        assert_eq!(h.sum(), 303, "histogram sum matches records");
    })
}

/// Harness 2: the lock-free token bucket. Three competitors race for a
/// burst of two tokens; exactly two may win, in every interleaving —
/// the single-CAS commit may never over- or under-admit.
fn run_token_bucket() -> Report {
    use netsim::time::SimTime;
    use netsim::tokenbucket::AtomicTokenBucket;
    Checker::new().preemption_bound(3).check(|| {
        let tb = Arc::new(AtomicTokenBucket::new(10.0, 2.0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let tb = Arc::clone(&tb);
                spawn(move || tb.try_take(SimTime::ZERO))
            })
            .collect();
        let mut admitted = 0;
        for h in handles {
            if h.join().expect("consumer finished without panic") {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2, "exactly the burst is admitted, never more or fewer");
        assert_eq!(tb.available(SimTime::ZERO), 0, "no tokens conjured or leaked");
    })
}

/// Harness 3: the runtime stop flag. Work published before `stop()`
/// must be visible to any observer of `should_stop()` — the
/// Release/Acquire pair the four runtime components rely on for their
/// final drain.
fn run_stop_flag() -> Report {
    use runtime::stopflag::StopFlag;
    Checker::new().preemption_bound(3).check(|| {
        let flag = StopFlag::new();
        let work = ModelCell::named("pre_stop_work", 0u64);
        let (f, w) = (flag.clone(), work.clone());
        let owner = spawn(move || {
            w.set(42); // plain write published by the Release store
            f.stop();
        });
        if flag.should_stop() {
            assert_eq!(work.get(), 42, "stop observed implies work visible");
        }
        owner.join();
    })
}

/// Harness 4: the tracer ring drain. Two components record while the
/// main thread drains mid-stream; every event is accounted for exactly
/// once (drained now, drained later, or counted dropped).
fn run_tracer_ring() -> Report {
    use obs::trace::{Level, Tracer};
    Checker::new().preemption_bound(3).check(|| {
        let tracer = Tracer::new(2);
        tracer.set_default_level(Level::Debug);
        let ct1 = tracer.component("guard");
        let ct2 = tracer.component("ans");
        let t1 = spawn(move || {
            ct1.event(1, "e", &[]);
            ct1.event(2, "e", &[]);
        });
        let t2 = spawn(move || {
            ct2.event(3, "e", &[]);
        });
        let (mid, mid_dropped) = tracer.drain();
        t1.join();
        t2.join();
        let (rest, rest_dropped) = tracer.drain();
        let accounted = mid.len() as u64 + rest.len() as u64 + mid_dropped + rest_dropped;
        assert_eq!(accounted, 3, "every recorded event drained or counted dropped");
    })
}

/// Harness 5: the HA checkpoint handoff. A writer snapshots twice
/// while a reader clones `latest`; the reader must see a coherent
/// checkpoint (never a torn mix) and `taken` must end at exactly 2.
fn run_checkpoint_handoff() -> Report {
    Checker::new().preemption_bound(3).check(|| {
        let store = dnsguard::checkpoint::shared_store();
        let writer_store = Arc::clone(&store);
        let writer = spawn(move || {
            writer_store.lock().put(mini_checkpoint(1));
            writer_store.lock().put(mini_checkpoint(2));
        });
        let observed = store.lock().latest_cloned();
        if let Some(cp) = &observed {
            assert!(
                cp == &mini_checkpoint(cp.seq),
                "reader saw a torn checkpoint at seq {}",
                cp.seq
            );
            assert!(cp.seq == 1 || cp.seq == 2);
        }
        writer.join();
        let store = store.lock();
        assert_eq!(store.taken(), 2);
        assert_eq!(store.latest().map(|c| c.seq), Some(2), "last write wins");
    })
}

/// A small but complete checkpoint; `seq` varies the payload so a torn
/// read would be distinguishable.
fn mini_checkpoint(seq: u64) -> dnsguard::checkpoint::GuardCheckpoint {
    use dnsguard::checkpoint::{GuardCheckpoint, KeyState, LimiterState, CHECKPOINT_VERSION};
    use guardhash::cookie::SecretKey;
    GuardCheckpoint {
        version: CHECKPOINT_VERSION,
        seq,
        taken_at_nanos: seq * 1_000,
        key: KeyState {
            current: SecretKey::from_seed(seq),
            previous: None,
            generation: seq,
            seed: 2006,
        },
        rl1: LimiterState::default(),
        rl2: LimiterState::default(),
        next_txid: seq as u16,
        next_qid: seq,
        active: true,
        last_rotation_nanos: 0,
        fwd: Vec::new(),
        stash: Vec::new(),
    }
}

fn show(name: &str, r: &Report) {
    println!(
        "guardcheck harness {name}: schedules={} states={} complete={} result={}",
        r.schedules,
        r.states,
        r.complete,
        match &r.counterexample {
            None => "race-free".to_string(),
            Some(cex) => cex.to_string(),
        }
    );
}

/// The acceptance gate: all five harnesses race-free, search space
/// exhausted, and ≥ 10 000 distinct schedules explored in total. The
/// per-harness counts print so the CI stage can surface them.
#[test]
fn five_harnesses_race_free_within_budget() {
    let start = std::time::Instant::now();
    let runs: [(&str, Report); 5] = [
        ("metrics_record_path", run_metrics()),
        ("token_bucket", run_token_bucket()),
        ("stop_flag", run_stop_flag()),
        ("tracer_ring", run_tracer_ring()),
        ("checkpoint_handoff", run_checkpoint_handoff()),
    ];
    let mut total_schedules = 0u64;
    let mut total_states = 0u64;
    for (name, report) in &runs {
        show(name, report);
        if let Some(cex) = &report.counterexample {
            // GitHub annotation so the failure lands on the PR line.
            println!("{}", cex.render_github(name));
            panic!("guardcheck harness {name} failed: {cex}");
        }
        assert!(report.complete, "harness {name} must exhaust its bounded search space");
        total_schedules += report.schedules;
        total_states += report.states;
    }
    println!(
        "guardcheck total: schedules={} states={} wall={:?}",
        total_schedules,
        total_states,
        start.elapsed()
    );
    assert!(
        total_schedules >= 10_000,
        "need >= 10000 schedules across harnesses, got {total_schedules}"
    );
}

/// Mutation self-test: demote the stop flag's Release store to Relaxed
/// (via the cfg(guardcheck)-only hook) and the checker must find the
/// data race on the pre-stop work, with a trace that replays to the
/// same failure. This pins that the zero-race verdict above has teeth.
#[test]
fn stop_flag_release_demotion_detected_with_replayable_trace() {
    use runtime::stopflag::StopFlag;
    let body = || {
        let flag = StopFlag::new();
        let work = ModelCell::named("pre_stop_work", 0u64);
        let (f, w) = (flag.clone(), work.clone());
        let owner = spawn(move || {
            w.set(42);
            f.stop_relaxed_for_mutation_test(); // seeded Release→Relaxed demotion
        });
        if flag.should_stop() {
            let _ = work.get();
        }
        owner.join();
    };
    let report = Checker::new().preemption_bound(3).check(body);
    let cex = report
        .counterexample
        .expect("demoted Release store must produce a detectable race");
    assert_eq!(cex.kind, CexKind::DataRace, "got {cex}");
    assert!(cex.message.contains("pre_stop_work"), "names the location: {}", cex.message);

    // The trace replays — through its printed string form, as a CI log
    // consumer would — to the same race.
    let parsed = ScheduleTrace::parse(&cex.trace.to_string()).expect("trace string parses");
    let replay = Checker::replay(&parsed, body);
    let replayed = replay.counterexample.expect("replay reproduces the failure");
    assert_eq!(replayed.kind, CexKind::DataRace);
    assert_eq!(replay.schedules, 1, "replay runs exactly the pinned schedule");
    println!("mutation counterexample: {cex}");
}

/// The un-mutated stop flag is race-free under the same checker
/// configuration as the mutation test — the two together form the
/// detect/no-false-positive pair.
#[test]
fn stop_flag_release_acquire_pair_race_free() {
    let report = run_stop_flag();
    report.assert_ok("stop_flag");
    assert!(report.complete);
}
