//! Checker self-tests over the modeled primitives alone (no facade,
//! no `--cfg guardcheck` needed): these pin the detector semantics —
//! what counts as a race, what Release/Acquire buys, that traces
//! replay — under plain `cargo test`.

use guardcheck::model::{spawn, Checker, ModelAtomicBool, ModelAtomicU64, ModelCell, ModelMutex};
use guardcheck::sync::Ordering;
use guardcheck::{CexKind, ScheduleTrace};
use std::sync::Arc;

#[test]
fn relaxed_counter_increments_never_lost() {
    let report = Checker::new().check(|| {
        let c = Arc::new(ModelAtomicU64::new(0));
        let c1 = Arc::clone(&c);
        let c2 = Arc::clone(&c);
        let t1 = spawn(move || {
            c1.fetch_add(1, Ordering::Relaxed);
        });
        let t2 = spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        t1.join();
        t2.join();
        assert_eq!(c.load(Ordering::Relaxed), 2, "atomic RMW must not lose updates");
    });
    report.assert_ok("relaxed_counter");
    assert!(report.complete, "search space should be exhausted");
    assert!(report.schedules >= 2, "at least two interleavings exist");
}

#[test]
fn unsynchronized_cell_read_is_a_data_race() {
    let report = Checker::new().check(|| {
        let cell = ModelCell::named("payload", 0u64);
        let w = cell.clone();
        let t = spawn(move || {
            w.set(42);
        });
        // Racing read: no ordering between the spawned write and this.
        let _ = cell.get();
        t.join();
    });
    let cex = report.counterexample.expect("race must be detected");
    assert!(
        matches!(cex.kind, CexKind::DataRace | CexKind::LostUpdate),
        "got {:?}",
        cex.kind
    );
    assert!(cex.message.contains("payload"), "message names the location: {}", cex.message);
}

#[test]
fn unordered_writes_are_a_lost_update() {
    let report = Checker::new().check(|| {
        let cell = ModelCell::named("twice_written", 0u64);
        let a = cell.clone();
        let b = cell.clone();
        let t1 = spawn(move || a.set(1));
        let t2 = spawn(move || b.set(2));
        t1.join();
        t2.join();
    });
    let cex = report.counterexample.expect("write-write race must be detected");
    assert_eq!(cex.kind, CexKind::LostUpdate);
}

/// The paper-critical pattern: publish data, then raise a flag with
/// Release; consumer checks the flag with Acquire before reading.
/// Correctly ordered, the checker proves every interleaving race-free.
#[test]
fn release_acquire_publication_is_race_free() {
    let report = Checker::new().check(|| {
        let data = ModelCell::named("published", 0u64);
        let flag = Arc::new(ModelAtomicBool::new(false));
        let (d, f) = (data.clone(), Arc::clone(&flag));
        let t = spawn(move || {
            d.set(42);
            f.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.get(), 42, "flag set implies data visible");
        }
        t.join();
    });
    report.assert_ok("release_acquire_publication");
    assert!(report.complete);
}

/// Demoting the Release store to Relaxed severs the happens-before
/// edge: the checker must find the race and the trace must replay to
/// the same failure. This is the detector's own mutation test; the
/// facade-level stop-flag mutation lives in the harness suite.
#[test]
fn relaxed_publication_race_found_and_replayable() {
    let body = || {
        let data = ModelCell::named("published", 0u64);
        let flag = Arc::new(ModelAtomicBool::new(false));
        let (d, f) = (data.clone(), Arc::clone(&flag));
        let t = spawn(move || {
            d.set(42);
            f.store(true, Ordering::Relaxed); // seeded demotion
        });
        if flag.load(Ordering::Acquire) {
            let _ = data.get();
        }
        t.join();
    };
    let report = Checker::new().check(body);
    let cex = report.counterexample.expect("demoted store must race");
    assert_eq!(cex.kind, CexKind::DataRace);
    assert!(cex.message.contains("published"));

    // Round-trip the trace through its string form, as CI logs would.
    let parsed = ScheduleTrace::parse(&cex.trace.to_string()).expect("trace parses");
    assert_eq!(parsed, cex.trace);
    let replay = Checker::replay(&parsed, body);
    let rcex = replay.counterexample.expect("replay reproduces the race");
    assert_eq!(rcex.kind, CexKind::DataRace);
    assert_eq!(replay.schedules, 1, "replay runs exactly one schedule");
}

#[test]
fn mutex_guards_plain_data() {
    let report = Checker::new().check(|| {
        let m = Arc::new(ModelMutex::new(0u64));
        let m1 = Arc::clone(&m);
        let m2 = Arc::clone(&m);
        let t1 = spawn(move || {
            let mut g = m1.lock();
            *g += 1;
        });
        let t2 = spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        t1.join();
        t2.join();
        assert_eq!(*m.lock(), 2);
    });
    report.assert_ok("mutex_guards_plain_data");
    assert!(report.complete);
}

#[test]
fn opposite_lock_order_deadlocks() {
    let report = Checker::new().check(|| {
        let a = Arc::new(ModelMutex::new(()));
        let b = Arc::new(ModelMutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        });
        let t2 = spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        t1.join();
        t2.join();
    });
    let cex = report.counterexample.expect("AB/BA ordering must deadlock");
    assert_eq!(cex.kind, CexKind::Deadlock);
    // The deadlock schedule replays too.
    let _ = cex.trace.to_string();
}

#[test]
fn failed_assertion_reported_as_invariant_violation() {
    let report = Checker::new().check(|| {
        let c = Arc::new(ModelAtomicU64::new(0));
        let c1 = Arc::clone(&c);
        let t = spawn(move || {
            c1.store(1, Ordering::Relaxed);
        });
        // Wrong in schedules where the store lands first.
        assert_eq!(c.load(Ordering::Relaxed), 0, "stale read expected");
        t.join();
    });
    let cex = report.counterexample.expect("some schedule violates the assert");
    assert_eq!(cex.kind, CexKind::InvariantViolation);
    assert!(cex.message.contains("stale read expected"));
}

#[test]
fn exploration_is_deterministic_per_seed() {
    let run = |seed| {
        Checker::new().seed(seed).check(|| {
            let c = Arc::new(ModelAtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(c.load(Ordering::Relaxed), 3);
        })
    };
    let (a1, a2, b) = (run(7), run(7), run(13));
    assert_eq!(a1.schedules, a2.schedules, "same seed, same exploration");
    assert_eq!(a1.states, a2.states);
    assert!(a1.counterexample.is_none() && b.counterexample.is_none());
    assert!(a1.schedules > 1);
}

#[test]
fn schedule_budget_cuts_search_and_flags_incomplete() {
    let report = Checker::new().max_schedules(3).check(|| {
        let c = Arc::new(ModelAtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    });
    assert_eq!(report.schedules, 3);
    assert!(!report.complete);
    assert!(report.counterexample.is_none());
}
