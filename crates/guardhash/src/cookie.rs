//! The DNS Guard cookie construction (paper section III.E).
//!
//! A guard holds a 76-byte secret key. For a request whose source address is
//! `source_ip`, the cookie is `c = MD5(source_ip || key)` — 80 bytes of input
//! producing a 16-byte cookie. Three encodings of `c` are used by the three
//! spoof detection schemes:
//!
//! * **NS-name encoding** — a 2-byte prefix (`PR`) plus the first 4 bytes of
//!   `c` in hex, yielding a 10-byte DNS label such as `PRa1b2c3d4`
//!   (cookie range 2^32);
//! * **subnet-IP encoding** — `y = first_4_bytes(c) mod R_y`, placed in the
//!   host part of the guarded subnet (cookie range `R_y`);
//! * **full encoding** — all 16 bytes, carried in the TXT RData of the
//!   modified-DNS scheme (cookie range 2^128).
//!
//! Weekly key rotation overwrites the first bit of `c` with a generation
//! indicator so each verification needs exactly one MD5 (section III.E).

use crate::md5::{to_hex, Digest, Md5};
use crate::siphash::siphash24;
use std::fmt;
use std::net::Ipv4Addr;

/// Length in bytes of a guard secret key (fixed by the paper: 76 bytes, so
/// that key ‖ IPv4 address is exactly 80 bytes).
pub const KEY_LEN: usize = 76;

/// Length in bytes of a full cookie (one MD5 digest).
pub const COOKIE_LEN: usize = 16;

/// The label prefix that marks a fabricated, cookie-carrying NS name.
pub const NS_PREFIX: &str = "PR";

/// Number of cookie bytes hex-encoded into a fabricated NS name.
pub const NS_COOKIE_BYTES: usize = 4;

/// The keyed hash a guard derives its cookies with.
///
/// [`CookieAlg::Md5`] is the paper's vendor-specific construction
/// (`MD5(ip || 76-byte key)`); [`CookieAlg::SipHash24`] is the
/// interoperable keyed PRF selected by draft-sury-toorop / RFC 9018, so
/// that any fleet site holding the same 128-bit key validates the same
/// cookies. Both feed the same three encodings (NS-label, subnet-IP,
/// full) and the same generation-bit rotation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CookieAlg {
    /// The paper's `MD5(source_ip || key)` cookie.
    #[default]
    Md5,
    /// SipHash-2-4 over `source_ip` keyed by the leading 16 key bytes.
    SipHash24,
}

impl CookieAlg {
    /// Stable one-byte wire/checkpoint discriminant.
    pub fn to_wire(self) -> u8 {
        match self {
            CookieAlg::Md5 => 0,
            CookieAlg::SipHash24 => 1,
        }
    }

    /// Inverse of [`CookieAlg::to_wire`].
    pub fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(CookieAlg::Md5),
            1 => Some(CookieAlg::SipHash24),
            _ => None,
        }
    }
}

/// A 16-byte spoof-detection cookie.
///
/// # Examples
///
/// ```
/// use guardhash::cookie::{Cookie, SecretKey};
/// use std::net::Ipv4Addr;
///
/// let key = SecretKey::from_seed(7);
/// let c = Cookie::compute(&key, Ipv4Addr::new(10, 0, 0, 1));
/// assert!(c.matches_prefix(&c.ns_label_suffix()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cookie(pub [u8; COOKIE_LEN]);

impl fmt::Debug for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cookie({})", to_hex(&self.0))
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_hex(&self.0))
    }
}

impl Cookie {
    /// Computes `MD5(source_ip || key)` — the raw cookie for `ip`.
    pub fn compute(key: &SecretKey, ip: Ipv4Addr) -> Self {
        let mut h = Md5::new();
        h.update(&ip.octets());
        h.update(key.as_bytes());
        Cookie(h.finalize())
    }

    /// Computes the raw cookie for `ip` under the selected algorithm.
    ///
    /// The SipHash variant keys SipHash-2-4 with the leading 16 bytes of
    /// the guard secret and expands two domain-separated tags
    /// (`ip || 0` and `ip || 1`) into the 16-byte cookie, so all three
    /// paper encodings keep their full width.
    pub fn compute_with(alg: CookieAlg, key: &SecretKey, ip: Ipv4Addr) -> Self {
        match alg {
            CookieAlg::Md5 => Cookie::compute(key, ip),
            CookieAlg::SipHash24 => {
                let k: [u8; 16] = key.as_bytes()[..16].try_into().expect("16-byte sip key");
                let mut msg = [0u8; 5];
                msg[..4].copy_from_slice(&ip.octets());
                let mut out = [0u8; COOKIE_LEN];
                msg[4] = 0;
                out[..8].copy_from_slice(&siphash24(&k, &msg).to_le_bytes());
                msg[4] = 1;
                out[8..].copy_from_slice(&siphash24(&k, &msg).to_le_bytes());
                Cookie(out)
            }
        }
    }

    /// The first 4 cookie bytes as a big-endian integer; the quantity the
    /// paper calls "the first 4 bytes of cookie c".
    pub fn head(&self) -> u32 {
        u32::from_be_bytes([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// Hex-encodes the first [`NS_COOKIE_BYTES`] bytes — the variable part of
    /// a fabricated NS label (`a1b2c3d4` in `PRa1b2c3d4`).
    pub fn ns_label_suffix(&self) -> String {
        to_hex(&self.0[..NS_COOKIE_BYTES])
    }

    /// Full fabricated NS label, prefix included: e.g. `PRa1b2c3d4`.
    pub fn ns_label(&self) -> String {
        format!("{NS_PREFIX}{}", self.ns_label_suffix())
    }

    /// Checks a hex suffix (as extracted from an incoming NS-name label)
    /// against this cookie. Comparison is over the encoded prefix only,
    /// mirroring the truncated 2^32 cookie range of the NS-name scheme.
    pub fn matches_prefix(&self, hex_suffix: &str) -> bool {
        hex_suffix.eq_ignore_ascii_case(&self.ns_label_suffix())
    }

    /// Subnet-IP encoding: `y = head mod range`, returned as the host offset
    /// used to build `COOKIE2` (e.g. `1.2.3.y` in a /24).
    ///
    /// # Panics
    ///
    /// Panics if `range` is zero.
    pub fn subnet_offset(&self, range: u32) -> u32 {
        assert!(range > 0, "subnet cookie range must be non-zero");
        self.head() % range
    }

    /// Builds the `COOKIE2` address inside the guarded subnet: `base + y`.
    pub fn subnet_ip(&self, base: Ipv4Addr, range: u32) -> Ipv4Addr {
        let y = self.subnet_offset(range);
        Ipv4Addr::from(u32::from(base).wrapping_add(y))
    }

    /// Returns a copy with the most significant bit of byte 0 forced to
    /// `generation & 1` — the rotation indicator of section III.E.
    pub fn with_generation_bit(mut self, generation: u64) -> Self {
        if generation & 1 == 1 {
            self.0[0] |= 0x80;
        } else {
            self.0[0] &= 0x7f;
        }
        self
    }

    /// Reads the generation indicator bit.
    pub fn generation_bit(&self) -> u8 {
        self.0[0] >> 7
    }
}

impl AsRef<[u8]> for Cookie {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Digest> for Cookie {
    fn from(d: Digest) -> Self {
        Cookie(d)
    }
}

/// A 76-byte guard secret key.
///
/// Only the guard itself ever needs the key; there is no distribution
/// problem. Construct one from explicit bytes or deterministically from a
/// seed (useful for reproducible simulations).
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey([u8; KEY_LEN]);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(redacted, {KEY_LEN} bytes)")
    }
}

impl SecretKey {
    /// Wraps explicit key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SecretKey(bytes)
    }

    /// Derives a key deterministically from `seed` using splitmix64. Suitable
    /// for simulations and tests; a production deployment would draw from the
    /// OS entropy pool instead.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut bytes = [0u8; KEY_LEN];
        for chunk in bytes.chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let le = z.to_le_bytes();
            chunk.copy_from_slice(&le[..chunk.len()]);
        }
        SecretKey(bytes)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

/// Cookie generator/verifier with the paper's weekly key-rotation protocol.
///
/// Cookies issued under generation *g* carry `g mod 2` in their first bit.
/// While generation *g+1* is current, cookies bearing the previous parity are
/// verified against the previous key, so every verification costs exactly one
/// MD5. After a further rotation the old generation expires naturally with
/// the cookie TTL.
///
/// # Examples
///
/// ```
/// use guardhash::cookie::CookieFactory;
/// use std::net::Ipv4Addr;
///
/// let mut f = CookieFactory::from_seed(1);
/// let ip = Ipv4Addr::new(192, 0, 2, 7);
/// let c = f.generate(ip);
/// assert!(f.verify(ip, &c));
/// f.rotate();
/// assert!(f.verify(ip, &c), "previous-generation cookie still valid");
/// f.rotate();
/// assert!(!f.verify(ip, &c), "two rotations expire the cookie");
/// ```
#[derive(Debug, Clone)]
pub struct CookieFactory {
    current: SecretKey,
    previous: Option<SecretKey>,
    generation: u64,
    seed: u64,
    alg: CookieAlg,
}

impl CookieFactory {
    /// Creates a factory whose generation-0 key derives from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        CookieFactory {
            current: SecretKey::from_seed(seed),
            previous: None,
            generation: 0,
            seed,
            alg: CookieAlg::Md5,
        }
    }

    /// Selects the cookie algorithm (builder style; default MD5).
    pub fn with_alg(mut self, alg: CookieAlg) -> Self {
        self.alg = alg;
        self
    }

    /// The algorithm this factory derives cookies with.
    pub fn alg(&self) -> CookieAlg {
        self.alg
    }

    /// Creates a factory from an explicit initial key. Rotation keys derive
    /// from the supplied `rotation_seed`.
    pub fn with_key(key: SecretKey, rotation_seed: u64) -> Self {
        CookieFactory {
            current: key,
            previous: None,
            generation: 0,
            seed: rotation_seed,
            alg: CookieAlg::Md5,
        }
    }

    /// Rebuilds a factory from checkpointed parts, preserving the rotation
    /// state exactly: the generation counter keeps the generation-bit
    /// dispatch consistent, and the previous key (when present) keeps
    /// pre-rotation cookies verifying through their grace window.
    pub fn from_parts(
        current: SecretKey,
        previous: Option<SecretKey>,
        generation: u64,
        rotation_seed: u64,
    ) -> Self {
        CookieFactory {
            current,
            previous,
            generation,
            seed: rotation_seed,
            alg: CookieAlg::Md5,
        }
    }

    /// Current key generation (increments on [`CookieFactory::rotate`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current secret key (checkpointing only — handle with care).
    pub fn current_key(&self) -> &SecretKey {
        &self.current
    }

    /// The previous secret key, if a rotation grace window is live.
    pub fn previous_key(&self) -> Option<&SecretKey> {
        self.previous.as_ref()
    }

    /// The seed future rotations derive from.
    pub fn rotation_seed(&self) -> u64 {
        self.seed
    }

    /// Issues the cookie for `ip` under the current key, generation bit set.
    pub fn generate(&self, ip: Ipv4Addr) -> Cookie {
        Cookie::compute_with(self.alg, &self.current, ip).with_generation_bit(self.generation)
    }

    /// Verifies a presented 16-byte cookie for `ip`.
    ///
    /// The generation bit selects which key to check against, so exactly one
    /// hash is computed per verification regardless of rotation state.
    pub fn verify(&self, ip: Ipv4Addr, presented: &Cookie) -> bool {
        match self.key_for_bit(presented.generation_bit()) {
            Some((key, generation)) => {
                Cookie::compute_with(self.alg, key, ip).with_generation_bit(generation)
                    == *presented
            }
            None => false,
        }
    }

    /// Verifies the truncated hex form used in fabricated NS names.
    pub fn verify_ns_suffix(&self, ip: Ipv4Addr, hex_suffix: &str) -> bool {
        // The generation bit lives in the first hex digit, which is part of
        // the suffix, so the same bit-dispatch applies.
        let Some(first) = hex_suffix.chars().next() else {
            return false;
        };
        let Some(digit) = first.to_digit(16) else {
            return false;
        };
        let bit = (digit >> 3) as u8;
        match self.key_for_bit(bit) {
            Some((key, generation)) => Cookie::compute_with(self.alg, key, ip)
                .with_generation_bit(generation)
                .matches_prefix(hex_suffix),
            None => false,
        }
    }

    /// Verifies the subnet-IP form (`COOKIE2`): does `presented_offset` equal
    /// `head(c) mod range` under either live key?
    ///
    /// The subnet form cannot carry a generation bit (it is folded by the
    /// modulo), so both live keys are tried — the paper accepts this because
    /// the fabricated-IP variant is already the weakest encoding.
    pub fn verify_subnet_offset(&self, ip: Ipv4Addr, presented_offset: u32, range: u32) -> bool {
        if Cookie::compute_with(self.alg, &self.current, ip).subnet_offset(range)
            == presented_offset
        {
            return true;
        }
        if let Some(prev) = &self.previous {
            return Cookie::compute_with(self.alg, prev, ip).subnet_offset(range)
                == presented_offset;
        }
        false
    }

    /// Issues the subnet-IP cookie offset for `ip` under the current key.
    ///
    /// The offset derives from the *raw* cookie (no generation bit — the
    /// modulo would fold it away anyway), matching what
    /// [`CookieFactory::verify_subnet_offset`] checks.
    pub fn generate_subnet_offset(&self, ip: Ipv4Addr, range: u32) -> u32 {
        Cookie::compute_with(self.alg, &self.current, ip).subnet_offset(range)
    }

    /// Rotates to a fresh key, retaining the previous one for the grace
    /// window.
    pub fn rotate(&mut self) {
        let next_gen = self.generation + 1;
        let next = SecretKey::from_seed(self.seed ^ (next_gen.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        self.previous = Some(std::mem::replace(&mut self.current, next));
        self.generation = next_gen;
    }

    fn key_for_bit(&self, bit: u8) -> Option<(&SecretKey, u64)> {
        let current_bit = (self.generation & 1) as u8;
        if bit == current_bit {
            Some((&self.current, self.generation))
        } else {
            self.previous
                .as_ref()
                .map(|k| (k, self.generation.wrapping_sub(1)))
        }
    }
}

/// Extracts the hex cookie suffix from a DNS label if it is a fabricated
/// cookie label (`PRa1b2c3d4...` → `a1b2c3d4...`).
///
/// Returns `None` when the label does not start with [`NS_PREFIX`] or the
/// remainder is not plain hex of the expected length.
pub fn parse_ns_label(label: &str) -> Option<&str> {
    let suffix = label.strip_prefix(NS_PREFIX)?;
    if suffix.len() != NS_COOKIE_BYTES * 2 {
        return None;
    }
    if !suffix.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(suffix)
}

/// Convenience: the raw (un-rotated) cookie for `ip` under `key`, as the
/// paper's formula `c = MD5(source_ip, key)`.
pub fn raw_cookie(key: &SecretKey, ip: Ipv4Addr) -> Cookie {
    Cookie::compute(key, ip)
}

/// Verifies that the 80-byte MD5 input layout matches the paper (76-byte key
/// plus 4-byte address). Exposed for documentation tests and audits.
pub fn cookie_input_len() -> usize {
    KEY_LEN + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::md5;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn input_is_80_bytes() {
        assert_eq!(cookie_input_len(), 80);
    }

    #[test]
    fn cookie_matches_direct_md5() {
        let key = SecretKey::from_seed(42);
        let addr = ip(1, 2, 3, 4);
        let mut input = Vec::new();
        input.extend_from_slice(&addr.octets());
        input.extend_from_slice(key.as_bytes());
        assert_eq!(Cookie::compute(&key, addr).0, md5(&input));
    }

    #[test]
    fn cookies_differ_per_ip_and_per_key() {
        let k1 = SecretKey::from_seed(1);
        let k2 = SecretKey::from_seed(2);
        let a = ip(10, 0, 0, 1);
        let b = ip(10, 0, 0, 2);
        assert_ne!(Cookie::compute(&k1, a), Cookie::compute(&k1, b));
        assert_ne!(Cookie::compute(&k1, a), Cookie::compute(&k2, a));
    }

    #[test]
    fn ns_label_format() {
        let key = SecretKey::from_seed(3);
        let c = Cookie::compute(&key, ip(8, 8, 8, 8));
        let label = c.ns_label();
        assert_eq!(label.len(), 10, "paper: COOKIE is encoded in 10 bytes");
        assert!(label.starts_with("PR"));
        assert!(label[2..].bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn parse_ns_label_accepts_valid_rejects_invalid() {
        let key = SecretKey::from_seed(4);
        let c = Cookie::compute(&key, ip(9, 9, 9, 9));
        let label = c.ns_label();
        assert_eq!(parse_ns_label(&label), Some(c.ns_label_suffix().as_str()));
        assert_eq!(parse_ns_label("www"), None);
        assert_eq!(parse_ns_label("PRzzzzzzzz"), None);
        assert_eq!(parse_ns_label("PRa1b2c3"), None, "too short");
        assert_eq!(parse_ns_label("PRa1b2c3d4e5"), None, "too long");
        assert_eq!(parse_ns_label(""), None);
    }

    #[test]
    fn subnet_offset_in_range() {
        let key = SecretKey::from_seed(5);
        for host in 1..100u8 {
            let c = Cookie::compute(&key, ip(172, 16, 0, host));
            assert!(c.subnet_offset(254) < 254);
        }
    }

    #[test]
    fn subnet_ip_is_base_plus_offset() {
        let key = SecretKey::from_seed(6);
        let c = Cookie::compute(&key, ip(4, 4, 4, 4));
        let base = ip(1, 2, 3, 0);
        let got = c.subnet_ip(base, 254);
        assert_eq!(u32::from(got), u32::from(base) + c.subnet_offset(254));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn subnet_offset_zero_range_panics() {
        let key = SecretKey::from_seed(7);
        Cookie::compute(&key, ip(1, 1, 1, 1)).subnet_offset(0);
    }

    #[test]
    fn generation_bit_round_trip() {
        let key = SecretKey::from_seed(8);
        let c = Cookie::compute(&key, ip(2, 2, 2, 2));
        assert_eq!(c.with_generation_bit(0).generation_bit(), 0);
        assert_eq!(c.with_generation_bit(1).generation_bit(), 1);
        assert_eq!(c.with_generation_bit(2).generation_bit(), 0);
        assert_eq!(c.with_generation_bit(3).generation_bit(), 1);
    }

    #[test]
    fn factory_generate_verify() {
        let f = CookieFactory::from_seed(9);
        let addr = ip(198, 51, 100, 23);
        let c = f.generate(addr);
        assert!(f.verify(addr, &c));
        assert!(!f.verify(ip(198, 51, 100, 24), &c), "cookie bound to source ip");
    }

    #[test]
    fn factory_rejects_flipped_bit() {
        let f = CookieFactory::from_seed(10);
        let addr = ip(203, 0, 113, 5);
        let mut c = f.generate(addr);
        c.0[5] ^= 0x01;
        assert!(!f.verify(addr, &c));
    }

    #[test]
    fn rotation_grace_window() {
        let mut f = CookieFactory::from_seed(11);
        let addr = ip(10, 1, 2, 3);
        let week0 = f.generate(addr);
        assert_eq!(week0.generation_bit(), 0);

        f.rotate();
        let week1 = f.generate(addr);
        assert_eq!(week1.generation_bit(), 1);
        assert!(f.verify(addr, &week0), "week-0 cookie valid during week 1");
        assert!(f.verify(addr, &week1));

        f.rotate();
        let week2 = f.generate(addr);
        assert_eq!(week2.generation_bit(), 0);
        assert!(!f.verify(addr, &week0), "week-0 cookie expired in week 2");
        assert!(f.verify(addr, &week1), "week-1 cookie still in grace window");
        assert!(f.verify(addr, &week2));
    }

    #[test]
    fn ns_suffix_verification_across_rotation() {
        let mut f = CookieFactory::from_seed(12);
        let addr = ip(10, 9, 8, 7);
        let suffix0 = f.generate(addr).ns_label_suffix();
        assert!(f.verify_ns_suffix(addr, &suffix0));
        f.rotate();
        assert!(f.verify_ns_suffix(addr, &suffix0));
        let suffix1 = f.generate(addr).ns_label_suffix();
        assert!(f.verify_ns_suffix(addr, &suffix1));
        f.rotate();
        assert!(!f.verify_ns_suffix(addr, &suffix0));
        assert!(f.verify_ns_suffix(addr, &suffix1));
    }

    #[test]
    fn ns_suffix_rejects_garbage() {
        let f = CookieFactory::from_seed(13);
        assert!(!f.verify_ns_suffix(ip(1, 1, 1, 1), ""));
        assert!(!f.verify_ns_suffix(ip(1, 1, 1, 1), "nothex!!"));
        assert!(!f.verify_ns_suffix(ip(1, 1, 1, 1), "00000000"));
    }

    #[test]
    fn subnet_verification_across_rotation() {
        let mut f = CookieFactory::from_seed(14);
        let addr = ip(10, 20, 30, 40);
        let range = 254;
        let y0 = f.generate_subnet_offset(addr, range);
        assert!(f.verify_subnet_offset(addr, y0, range));
        f.rotate();
        assert!(f.verify_subnet_offset(addr, y0, range), "grace window");
        let y1 = f.generate_subnet_offset(addr, range);
        assert!(f.verify_subnet_offset(addr, y1, range));
    }

    #[test]
    fn subnet_verification_rejects_wrong_offset() {
        let f = CookieFactory::from_seed(15);
        let addr = ip(10, 20, 30, 41);
        let range = 254;
        let y = f.generate_subnet_offset(addr, range);
        assert!(!f.verify_subnet_offset(addr, (y + 1) % range, range));
    }

    #[test]
    fn from_parts_round_trip_preserves_rotation_state() {
        let mut f = CookieFactory::from_seed(44);
        let addr = ip(192, 0, 2, 99);
        let week0 = f.generate(addr);
        f.rotate();
        let week1 = f.generate(addr);

        let g = CookieFactory::from_parts(
            f.current_key().clone(),
            f.previous_key().cloned(),
            f.generation(),
            f.rotation_seed(),
        );
        assert_eq!(g.generation(), f.generation());
        assert!(g.verify(addr, &week0), "pre-rotation cookie survives restore");
        assert!(g.verify(addr, &week1));
        assert_eq!(g.generate(addr), f.generate(addr));

        // Future rotations derive identically from the restored seed.
        let mut f2 = f.clone();
        let mut g2 = g.clone();
        f2.rotate();
        g2.rotate();
        assert_eq!(f2.generate(addr), g2.generate(addr));
    }

    #[test]
    fn siphash_cookie_is_interoperable_across_factories() {
        // Two fleet sites holding the same key validate each other's
        // cookies; the MD5 construction with a different key does not.
        let site_a = CookieFactory::from_seed(2006).with_alg(CookieAlg::SipHash24);
        let site_b = CookieFactory::from_seed(2006).with_alg(CookieAlg::SipHash24);
        let foreign = CookieFactory::from_seed(4242).with_alg(CookieAlg::SipHash24);
        let addr = ip(10, 0, 3, 9);
        let c = site_a.generate(addr);
        assert!(site_b.verify(addr, &c), "same key, same alg → interoperable");
        assert!(site_b.verify_ns_suffix(addr, &c.ns_label_suffix()));
        assert!(!foreign.verify(addr, &c), "different key must reject");
    }

    #[test]
    fn siphash_and_md5_cookies_differ() {
        let md5 = CookieFactory::from_seed(16);
        let sip = CookieFactory::from_seed(16).with_alg(CookieAlg::SipHash24);
        let addr = ip(192, 0, 2, 8);
        assert_ne!(md5.generate(addr).0, sip.generate(addr).0);
        assert!(!md5.verify(addr, &sip.generate(addr)));
    }

    #[test]
    fn siphash_rotation_grace_window() {
        let mut f = CookieFactory::from_seed(17).with_alg(CookieAlg::SipHash24);
        let addr = ip(10, 1, 2, 4);
        let week0 = f.generate(addr);
        f.rotate();
        assert!(f.verify(addr, &week0), "grace window under SipHash");
        assert!(f.verify_ns_suffix(addr, &week0.ns_label_suffix()));
        f.rotate();
        assert!(!f.verify(addr, &week0), "two rotations expire the cookie");
    }

    #[test]
    fn siphash_subnet_offset_round_trip() {
        let f = CookieFactory::from_seed(18).with_alg(CookieAlg::SipHash24);
        let addr = ip(10, 7, 7, 7);
        let y = f.generate_subnet_offset(addr, 254);
        assert!(y < 254);
        assert!(f.verify_subnet_offset(addr, y, 254));
        assert!(!f.verify_subnet_offset(addr, (y + 1) % 254, 254));
    }

    #[test]
    fn cookie_alg_wire_round_trip() {
        for alg in [CookieAlg::Md5, CookieAlg::SipHash24] {
            assert_eq!(CookieAlg::from_wire(alg.to_wire()), Some(alg));
        }
        assert_eq!(CookieAlg::from_wire(9), None);
    }

    #[test]
    fn secret_key_debug_redacts() {
        let key = SecretKey::from_seed(99);
        let dbg = format!("{key:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains(&to_hex(key.as_bytes())));
    }

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        assert_eq!(SecretKey::from_seed(5).as_bytes(), SecretKey::from_seed(5).as_bytes());
        assert_ne!(SecretKey::from_seed(5).as_bytes(), SecretKey::from_seed(6).as_bytes());
    }
}
