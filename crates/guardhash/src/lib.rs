//! Hash primitives for the DNS Guard reproduction.
//!
//! Three modules:
//!
//! * [`md5`](mod@md5) — the MD5 message digest (RFC 1321), implemented from scratch so
//!   the reproduction carries no external crypto dependency;
//! * [`siphash`] — SipHash-2-4, the keyed PRF behind the interoperable
//!   (draft-sury-toorop / RFC 9018) server-cookie algorithm, so anycast
//!   fleet sites sharing a 128-bit key validate each other's cookies;
//! * [`cookie`] — the DNS Guard cookie construction from the paper's section
//!   III.E: `c = MD5(source_ip || 76-byte key)`, with the NS-name (hex),
//!   subnet-IP (modulo) and full (16-byte) encodings plus generation-bit key
//!   rotation; [`cookie::CookieAlg`] selects MD5 or SipHash-2-4 derivation.
//!
//! # Examples
//!
//! ```
//! use guardhash::cookie::CookieFactory;
//! use std::net::Ipv4Addr;
//!
//! let factory = CookieFactory::from_seed(2006);
//! let requester = Ipv4Addr::new(192, 0, 2, 53);
//! let cookie = factory.generate(requester);
//! assert!(factory.verify(requester, &cookie));
//! assert!(!factory.verify(Ipv4Addr::new(192, 0, 2, 54), &cookie));
//! ```

#![forbid(unsafe_code)]

pub mod cookie;
pub mod md5;
pub mod siphash;

pub use cookie::{Cookie, CookieAlg, CookieFactory, SecretKey};
pub use md5::{md5, Md5};
pub use siphash::siphash24;

#[cfg(test)]
mod proptests {
    use crate::cookie::{parse_ns_label, CookieAlg, CookieFactory};
    use crate::md5::{from_hex, md5, to_hex, Md5};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    proptest! {
        /// Streaming and one-shot MD5 agree for arbitrary data and splits.
        #[test]
        fn md5_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                        split in 0usize..512) {
            let split = split.min(data.len());
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), md5(&data));
        }

        /// Hex encode/decode round-trips arbitrary bytes.
        #[test]
        fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        }

        /// Every issued cookie verifies, for any source address — the
        /// "no false positives" claim of the paper.
        #[test]
        fn every_issued_cookie_verifies(ip_bits in any::<u32>(), seed in any::<u64>()) {
            let f = CookieFactory::from_seed(seed);
            let ip = Ipv4Addr::from(ip_bits);
            let c = f.generate(ip);
            prop_assert!(f.verify(ip, &c));
            prop_assert!(f.verify_ns_suffix(ip, &c.ns_label_suffix()));
        }

        /// A cookie issued for one address never verifies for another.
        #[test]
        fn cookie_bound_to_address(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
            prop_assume!(a != b);
            let f = CookieFactory::from_seed(seed);
            let c = f.generate(Ipv4Addr::from(a));
            prop_assert!(!f.verify(Ipv4Addr::from(b), &c));
        }

        /// NS labels produced by a cookie always parse back to their suffix.
        #[test]
        fn ns_label_parses(ip_bits in any::<u32>(), seed in any::<u64>()) {
            let f = CookieFactory::from_seed(seed);
            let c = f.generate(Ipv4Addr::from(ip_bits));
            let label = c.ns_label();
            let suffix = c.ns_label_suffix();
            prop_assert_eq!(parse_ns_label(&label), Some(suffix.as_str()));
        }

        /// Rotation grace window: one rotation keeps a cookie valid, two
        /// expire it — for any address and seed.
        #[test]
        fn rotation_window(ip_bits in any::<u32>(), seed in any::<u64>()) {
            let mut f = CookieFactory::from_seed(seed);
            let ip = Ipv4Addr::from(ip_bits);
            let c = f.generate(ip);
            f.rotate();
            prop_assert!(f.verify(ip, &c));
            f.rotate();
            prop_assert!(!f.verify(ip, &c));
        }

        /// Subnet offsets always stay inside the configured range.
        #[test]
        fn subnet_offset_in_range(ip_bits in any::<u32>(), seed in any::<u64>(), range in 1u32..10_000) {
            let f = CookieFactory::from_seed(seed);
            let y = f.generate_subnet_offset(Ipv4Addr::from(ip_bits), range);
            prop_assert!(y < range);
        }

        /// The interoperability contract: under SipHash-2-4, any factory
        /// built from the same seed verifies cookies minted elsewhere,
        /// across every encoding and through one rotation.
        #[test]
        fn siphash_cookies_verify_at_any_same_key_site(ip_bits in any::<u32>(), seed in any::<u64>()) {
            let minter = CookieFactory::from_seed(seed).with_alg(CookieAlg::SipHash24);
            let mut peer = CookieFactory::from_seed(seed).with_alg(CookieAlg::SipHash24);
            let ip = Ipv4Addr::from(ip_bits);
            let c = minter.generate(ip);
            prop_assert!(peer.verify(ip, &c));
            prop_assert!(peer.verify_ns_suffix(ip, &c.ns_label_suffix()));
            peer.rotate();
            prop_assert!(peer.verify(ip, &c), "one rotation keeps the grace window");
            peer.rotate();
            prop_assert!(!peer.verify(ip, &c), "two rotations expire it");
        }
    }
}
