//! MD5 message digest, implemented from scratch per RFC 1321.
//!
//! The DNS Guard paper computes each cookie as `MD5(source_ip || key)`; this
//! module provides the hash primitive. The implementation is a streaming
//! digest ([`Md5`]) plus a one-shot convenience ([`md5`]).
//!
//! # Examples
//!
//! ```
//! use guardhash::md5::md5;
//!
//! let digest = md5(b"abc");
//! assert_eq!(guardhash::md5::to_hex(&digest), "900150983cd24fb0d6963f7d28e17f72");
//! ```

/// Length in bytes of an MD5 digest.
pub const DIGEST_LEN: usize = 16;

/// Length in bytes of an MD5 block.
pub const BLOCK_LEN: usize = 64;

/// A 16-byte MD5 digest.
pub type Digest = [u8; DIGEST_LEN];

/// Per-round left-rotation amounts (RFC 1321 section 3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived additive constants: `K[i] = floor(2^32 * |sin(i + 1)|)`.
const K: [u32; 64] = [
    0xd76a_a478, 0xe8c7_b756, 0x2420_70db, 0xc1bd_ceee, 0xf57c_0faf, 0x4787_c62a, 0xa830_4613,
    0xfd46_9501, 0x6980_98d8, 0x8b44_f7af, 0xffff_5bb1, 0x895c_d7be, 0x6b90_1122, 0xfd98_7193,
    0xa679_438e, 0x49b4_0821, 0xf61e_2562, 0xc040_b340, 0x265e_5a51, 0xe9b6_c7aa, 0xd62f_105d,
    0x0244_1453, 0xd8a1_e681, 0xe7d3_fbc8, 0x21e1_cde6, 0xc337_07d6, 0xf4d5_0d87, 0x455a_14ed,
    0xa9e3_e905, 0xfcef_a3f8, 0x676f_02d9, 0x8d2a_4c8a, 0xfffa_3942, 0x8771_f681, 0x6d9d_6122,
    0xfde5_380c, 0xa4be_ea44, 0x4bde_cfa9, 0xf6bb_4b60, 0xbebf_bc70, 0x289b_7ec6, 0xeaa1_27fa,
    0xd4ef_3085, 0x0488_1d05, 0xd9d4_d039, 0xe6db_99e5, 0x1fa2_7cf8, 0xc4ac_5665, 0xf429_2244,
    0x432a_ff97, 0xab94_23a7, 0xfc93_a039, 0x655b_59c3, 0x8f0c_cc92, 0xffef_f47d, 0x8584_5dd1,
    0x6fa8_7e4f, 0xfe2c_e6e0, 0xa301_4314, 0x4e08_11a1, 0xf753_7e82, 0xbd3a_f235, 0x2ad7_d2bb,
    0xeb86_d391,
];

/// Streaming MD5 digest state.
///
/// Feed data with [`Md5::update`] and obtain the digest with
/// [`Md5::finalize`].
///
/// # Examples
///
/// ```
/// use guardhash::md5::Md5;
///
/// let mut h = Md5::new();
/// h.update(b"mess");
/// h.update(b"age digest");
/// assert_eq!(guardhash::md5::to_hex(&h.finalize()), "f96b697d7cb7938d525a2f31aaf161d0");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes, modulo 2^64.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a digest initialised with the RFC 1321 chaining values.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Applies RFC 1321 padding and returns the final digest, consuming the
    /// state.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: a single 0x80 byte, then zeros until 8 bytes short of a
        // block boundary, then the 64-bit little-endian message bit length.
        self.update(&[0x80]);
        while self.buf_len != BLOCK_LEN - 8 {
            self.update(&[0x00]);
        }
        // Splice the length in directly: update() would double-count it.
        self.buf[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// One 64-byte block of the MD5 compression function.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Computes the MD5 digest of `data` in one shot.
///
/// # Examples
///
/// ```
/// let d = guardhash::md5::md5(b"");
/// assert_eq!(guardhash::md5::to_hex(&d), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
pub fn md5(data: &[u8]) -> Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Renders a digest (or any byte slice) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0x0f) as usize] as char);
    }
    s
}

/// Parses lowercase/uppercase hex into bytes. Returns `None` on odd length or
/// non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Option<Vec<u8>> = s.bytes().map(|b| (b as char).to_digit(16).map(|d| d as u8)).collect();
    let digits = digits?;
    Some(digits.chunks_exact(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(to_hex(&md5(input.as_bytes())), *want, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data = b"The quick brown fox jumps over the lazy dog, repeatedly, \
                     until the message spans several MD5 blocks of sixty-four bytes each.";
        let want = md5(data);
        for split in 0..=data.len() {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let want = md5(&data);
        let mut h = Md5::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), want);
    }

    #[test]
    fn exact_block_boundaries() {
        // Lengths around the 64-byte block and 56-byte padding boundary are
        // the classic off-by-one sites in MD5 implementations.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 121, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Md5::new();
            h.update(&data);
            let a = h.finalize();
            let b = md5(&data);
            assert_eq!(a, b, "len {len}");
            // Not comparing to a fixed vector here; the property is internal
            // consistency plus the RFC vectors above pinning correctness.
        }
    }

    #[test]
    fn paper_input_shape_80_bytes() {
        // The paper feeds exactly 80 bytes (76-byte key + 4-byte IP); make
        // sure that length is handled (it spans two blocks after padding).
        let data = [0x42u8; 80];
        let d = md5(&data);
        assert_eq!(d.len(), DIGEST_LEN);
        assert_ne!(d, md5(&[0x42u8; 79]));
    }

    #[test]
    fn hex_round_trip() {
        let d = md5(b"round trip");
        let h = to_hex(&d);
        assert_eq!(from_hex(&h).unwrap(), d.to_vec());
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex("abc"), None);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(md5(b"10.0.0.1"), md5(b"10.0.0.2"));
    }
}
