//! SipHash-2-4 (Aumasson & Bernstein), implemented from scratch so the
//! reproduction carries no external crypto dependency.
//!
//! This is the keyed PRF that draft-sury-toorop (now RFC 9018) selects for
//! interoperable DNS server cookies: unlike the paper's vendor-specific
//! `MD5(ip || key)` construction, any implementation holding the same
//! 128-bit key computes the same cookie, so an anycast fleet of guard
//! sites can validate each other's cookies.
//!
//! The implementation is the standard 2 compression / 4 finalization round
//! variant over 8-byte little-endian blocks, with the message length folded
//! into the top byte of the final block.
//!
//! # Examples
//!
//! ```
//! use guardhash::siphash::siphash24;
//!
//! let key = [0u8; 16];
//! assert_ne!(siphash24(&key, b"a"), siphash24(&key, b"b"));
//! ```

/// One SipRound over the four lanes of internal state.
#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under the 128-bit `key`, as a 64-bit tag.
///
/// Wire encodings (RFC 9018 cookies) serialize the tag little-endian:
/// `siphash24(k, m).to_le_bytes()` reproduces the reference test vectors.
pub fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[0..8].try_into().unwrap());
    let k1 = u64::from_le_bytes(key[8..16].try_into().unwrap());
    let mut v = [
        0x736f_6d65_7073_6575 ^ k0,
        0x646f_7261_6e64_6f6d ^ k1,
        0x6c79_6765_6e65_7261 ^ k0,
        0x7465_6462_7974_6573 ^ k1,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v[3] ^= m;
        sip_round(&mut v);
        sip_round(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes little-endian, length in the top byte.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sip_round(&mut v);
    sip_round(&mut v);
    v[0] ^= m;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// SipHash-2-4 tag in the little-endian wire form used by cookie encodings.
pub fn siphash24_bytes(key: &[u8; 16], data: &[u8]) -> [u8; 8] {
    siphash24(key, data).to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key `00 01 02 ... 0f` from the SipHash paper, Appendix A.
    fn reference_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    /// The canonical test vectors: `vectors[i]` is SipHash-2-4 of the
    /// message `00 01 ... (i-1)` under the reference key, little-endian.
    /// These are the published values every interoperable implementation
    /// (including the RFC 9018 cookie generators) must reproduce.
    #[test]
    fn reference_vectors() {
        let key = reference_key();
        let expected: [(usize, [u8; 8]); 10] = [
            (0, [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]),
            (1, [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74]),
            (2, [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d]),
            (3, [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85]),
            (4, [0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf]),
            (5, [0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18]),
            (6, [0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb]),
            (7, [0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab]),
            (8, [0x62, 0x24, 0x93, 0x9a, 0x79, 0xf5, 0xf5, 0x93]),
            (15, [0xe5, 0x45, 0xbe, 0x49, 0x61, 0xca, 0x29, 0xa1]),
        ];
        for (len, want) in expected {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(
                siphash24_bytes(&key, &msg),
                want,
                "vector mismatch for {len}-byte message"
            );
        }
    }

    #[test]
    fn paper_appendix_vector() {
        // The worked example from the SipHash paper: 15-byte message,
        // result 0xa129ca6149be45e5 (shown big-endian in the paper).
        let key = reference_key();
        let msg: Vec<u8> = (0..15).collect();
        assert_eq!(siphash24(&key, &msg), 0xa129_ca61_49be_45e5);
    }

    #[test]
    fn key_and_message_sensitivity() {
        let k1 = reference_key();
        let mut k2 = k1;
        k2[0] ^= 1;
        assert_ne!(siphash24(&k1, b"dns"), siphash24(&k2, b"dns"));
        assert_ne!(siphash24(&k1, b"dns"), siphash24(&k1, b"dn"));
        assert_ne!(siphash24(&k1, b""), siphash24(&k1, b"\0"));
    }

    #[test]
    fn block_boundaries() {
        // Exercise the exact-block and straddling-length paths; the tag
        // must depend on the length byte even when content bytes agree.
        let key = reference_key();
        for len in [7usize, 8, 9, 15, 16, 17, 64] {
            let msg = vec![0xabu8; len];
            let mut longer = msg.clone();
            longer.push(0);
            assert_ne!(siphash24(&key, &msg), siphash24(&key, &longer), "len {len}");
        }
    }
}
