//! The `Lint.toml` allowlist: explicit, justified exemptions.
//!
//! Every suppression is an auditable record — a `[[allow]]` entry must
//! carry a non-empty `justification`, and entries that no longer match any
//! finding surface as warnings so the file cannot silently rot.
//!
//! The parser is a deliberately small TOML subset (zero dependencies, like
//! everything else in this crate): `[[allow]]` array-of-table headers,
//! `key = "string"` / `key = integer` pairs, `#` comments. That subset is
//! the whole grammar `Lint.toml` needs.

use crate::findings::{Finding, Severity};

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path the exemption applies to.
    pub path: String,
    /// Specific 1-based line; `None` allows the lint anywhere in `path`.
    pub line: Option<usize>,
    /// Lint family id (`L1`..`L5`).
    pub lint: String,
    /// Mandatory reason; empty justifications are themselves findings.
    pub justification: String,
    /// Line of the entry header in `Lint.toml` (for diagnostics).
    pub at_line: usize,
}

/// The parsed allowlist plus any parse/validation findings.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Valid entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Problems found while parsing/validating the file itself.
    pub problems: Vec<Finding>,
}

fn problem(file: &str, line: usize, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        lint: "ALLOW",
        severity: Severity::Error,
        message,
    }
}

/// Parses `Lint.toml` content. `file` is the path used in diagnostics.
pub fn parse(content: &str, file: &str) -> Allowlist {
    let mut list = Allowlist::default();
    let mut current: Option<AllowEntry> = None;

    let finish = |entry: Option<AllowEntry>, problems: &mut Vec<Finding>| {
        let e = entry?;
        if e.path.is_empty() {
            problems.push(problem(file, e.at_line, "allow entry missing `path`".into()));
        } else if e.lint.is_empty() {
            problems.push(problem(file, e.at_line, "allow entry missing `lint`".into()));
        } else if e.justification.trim().len() < 10 {
            problems.push(problem(
                file,
                e.at_line,
                format!(
                    "allow entry for {} needs a real `justification` (≥10 chars), got {:?}",
                    e.path, e.justification
                ),
            ));
        } else {
            return Some(e);
        }
        None
    };

    for (i, raw) in content.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = finish(current.take(), &mut list.problems) {
                list.entries.push(done);
            }
            current = Some(AllowEntry {
                path: String::new(),
                line: None,
                lint: String::new(),
                justification: String::new(),
                at_line: line_no,
            });
            continue;
        }
        if line.starts_with('[') {
            list.problems.push(problem(
                file,
                line_no,
                format!("unsupported table {line:?}; only [[allow]] entries are recognised"),
            ));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            list.problems
                .push(problem(file, line_no, format!("unparseable line {line:?}")));
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let Some(entry) = current.as_mut() else {
            list.problems.push(problem(
                file,
                line_no,
                format!("`{key}` outside any [[allow]] entry"),
            ));
            continue;
        };
        match key {
            "path" => match parse_string(value) {
                Some(s) => entry.path = s,
                None => list.problems.push(problem(
                    file,
                    line_no,
                    format!("`path` must be a quoted string, got {value:?}"),
                )),
            },
            "lint" => match parse_string(value) {
                Some(s) => entry.lint = s,
                None => list.problems.push(problem(
                    file,
                    line_no,
                    format!("`lint` must be a quoted string, got {value:?}"),
                )),
            },
            "justification" => match parse_string(value) {
                Some(s) => entry.justification = s,
                None => list.problems.push(problem(
                    file,
                    line_no,
                    format!("`justification` must be a quoted string, got {value:?}"),
                )),
            },
            "line" => match value.parse::<usize>() {
                Ok(n) => entry.line = Some(n),
                Err(_) => list.problems.push(problem(
                    file,
                    line_no,
                    format!("`line` must be an integer, got {value:?}"),
                )),
            },
            other => list.problems.push(problem(
                file,
                line_no,
                format!("unknown key `{other}` in [[allow]] entry"),
            )),
        }
    }
    if let Some(done) = finish(current.take(), &mut list.problems) {
        list.entries.push(done);
    }
    list
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

impl Allowlist {
    /// Applies the allowlist: suppressed findings are removed, and every
    /// entry that suppressed nothing becomes a *stale-entry* finding.
    /// Stale entries are warnings in advisory runs but hard errors when
    /// `strict` (the `--deny` gate): a suppression that no longer matches
    /// anything is dead wood hiding the next real finding at that site,
    /// so CI refuses to carry it.
    pub fn apply(&self, findings: Vec<Finding>, toml_path: &str, strict: bool) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        let mut kept: Vec<Finding> = Vec::new();
        for f in findings {
            let hit = self.entries.iter().enumerate().find(|(_, e)| {
                e.lint == f.lint && e.path == f.file && e.line.is_none_or(|l| l == f.line)
            });
            match hit {
                Some((i, _)) => used[i] = true,
                None => kept.push(f),
            }
        }
        for (e, used) in self.entries.iter().zip(used) {
            if !used {
                kept.push(Finding {
                    file: toml_path.to_string(),
                    line: e.at_line,
                    lint: "ALLOW",
                    severity: if strict { Severity::Error } else { Severity::Warning },
                    message: format!(
                        "stale allow entry: no {} finding at {}{} — remove it",
                        e.lint,
                        e.path,
                        e.line.map(|l| format!(":{l}")).unwrap_or_default()
                    ),
                });
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# exemptions
[[allow]]
path = "crates/dnswire/src/message.rs"
line = 108
lint = "L1"
justification = "encode with an unlimited budget cannot return TooLarge"
"#;

    #[test]
    fn parses_entries() {
        let list = parse(GOOD, "Lint.toml");
        assert!(list.problems.is_empty(), "{:?}", list.problems);
        assert_eq!(list.entries.len(), 1);
        let e = &list.entries[0];
        assert_eq!(e.line, Some(108));
        assert_eq!(e.lint, "L1");
    }

    #[test]
    fn missing_justification_is_a_problem() {
        let src = "[[allow]]\npath = \"a.rs\"\nlint = \"L2\"\njustification = \"\"\n";
        let list = parse(src, "Lint.toml");
        assert_eq!(list.entries.len(), 0);
        assert!(list.problems.iter().any(|p| p.message.contains("justification")));
    }

    #[test]
    fn unknown_key_is_a_problem() {
        let src = "[[allow]]\npath = \"a.rs\"\nlint = \"L2\"\nreason = \"x\"\njustification = \"long enough here\"\n";
        let list = parse(src, "Lint.toml");
        assert!(list.problems.iter().any(|p| p.message.contains("unknown key")));
    }

    #[test]
    fn apply_suppresses_and_flags_stale() {
        let list = parse(GOOD, "Lint.toml");
        let hit = Finding {
            file: "crates/dnswire/src/message.rs".into(),
            line: 108,
            lint: "L1",
            severity: Severity::Error,
            message: "x".into(),
        };
        let kept = list.apply(vec![hit], "Lint.toml", false);
        assert!(kept.is_empty(), "{kept:?}");
        let kept = list.apply(vec![], "Lint.toml", false);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("stale allow entry"));
        assert_eq!(kept[0].severity, Severity::Warning);
    }

    #[test]
    fn stale_entry_is_a_hard_error_under_deny() {
        let list = parse(GOOD, "Lint.toml");
        // Strict (--deny): the same stale entry must gate the build.
        let kept = list.apply(vec![], "Lint.toml", true);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].severity, Severity::Error, "{kept:?}");
        assert_eq!(kept[0].lint, "ALLOW");
        assert!(kept[0].message.contains("stale allow entry"));
        // A matching finding keeps the entry live in strict mode too.
        let hit = Finding {
            file: "crates/dnswire/src/message.rs".into(),
            line: 108,
            lint: "L1",
            severity: Severity::Error,
            message: "x".into(),
        };
        assert!(list.apply(vec![hit], "Lint.toml", true).is_empty());
    }
}
