//! Finding model and output formatting (text and JSON).

use std::fmt;

/// Finding severity. `--deny` fails the run on any [`Severity::Error`];
/// warnings are advisory (unused allowlist entries, unobserved telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails the gate.
    Warning,
    /// Violates a repo invariant; fails the gate under `--deny`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Lint family id: `L1`..`L5`, or `ALLOW` for allowlist meta-errors.
    pub lint: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-oriented description.
    pub message: String,
}

impl Finding {
    /// Renders the canonical `file:line [lint] message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{} [{}] {}: {}",
            self.file, self.line, self.lint, self.severity, self.message
        )
    }

    /// Renders a GitHub Actions workflow annotation
    /// (`::error file=…,line=…,title=…::message`) so the finding lands
    /// directly on the offending line of the PR diff.
    pub fn render_github(&self) -> String {
        format!(
            "::{} file={},line={},title=guardlint {}::{}",
            self.severity,
            gh_property(&self.file),
            self.line,
            self.lint,
            gh_message(&self.message)
        )
    }
}

/// Escapes an annotation *message* per the workflow-command grammar.
fn gh_message(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes an annotation *property* value (`file=`, `title=`), which
/// additionally reserves `:` and `,`.
fn gh_property(s: &str) -> String {
    gh_message(s).replace(':', "%3A").replace(',', "%2C")
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, sorted input).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}{}\n",
            json_escape(&f.file),
            f.line,
            f.lint,
            f.severity,
            json_escape(&f.message),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// Sorts findings into the canonical report order: errors first, then by
/// file, line and lint id.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.lint.cmp(b.lint))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_json() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            lint: "L1",
            severity: Severity::Error,
            message: "`.unwrap()` on a wire-input path".into(),
        };
        assert_eq!(
            f.render(),
            "crates/x/src/lib.rs:7 [L1] error: `.unwrap()` on a wire-input path"
        );
        let json = to_json(&[f]);
        assert!(json.contains("\"lint\":\"L1\""));
        assert!(json.contains("\\u") || json.contains("unwrap"));
    }

    #[test]
    fn github_annotations_escape_and_point_at_the_line() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            lint: "L6",
            severity: Severity::Error,
            message: "captured `x` is mutated, 100% wrong\nsecond line".into(),
        };
        assert_eq!(
            f.render_github(),
            "::error file=crates/x/src/lib.rs,line=7,title=guardlint L6::captured `x` \
             is mutated, 100%25 wrong%0Asecond line"
        );
        let w = Finding { severity: Severity::Warning, ..f };
        assert!(w.render_github().starts_with("::warning "));
    }

    #[test]
    fn sort_errors_first() {
        let mut v = vec![
            Finding {
                file: "a.rs".into(),
                line: 1,
                lint: "L5",
                severity: Severity::Warning,
                message: String::new(),
            },
            Finding {
                file: "b.rs".into(),
                line: 2,
                lint: "L2",
                severity: Severity::Error,
                message: String::new(),
            },
        ];
        sort(&mut v);
        assert_eq!(v[0].lint, "L2");
    }
}
