//! A comment- and string-aware lexer for Rust sources.
//!
//! guardlint's lint families are token-level, so they do not need a full
//! parser — but they *do* need to know whether `unwrap()` appears in code,
//! in a string literal, or in a comment, and whether a line sits inside a
//! `#[cfg(test)]` module. This module produces a [`Scrubbed`] view of a
//! source file that answers exactly those questions:
//!
//! * per-line **masked code** (string/char contents blanked, comments
//!   removed) for token scans,
//! * per-line **comment text** for inline `// lint: ...-ok — ...`
//!   justifications,
//! * a **flat stream** of the whole file with each string literal replaced
//!   by an indexed placeholder, for cross-line call-argument extraction,
//! * the **string literals** themselves (unescaped) with line numbers,
//! * a per-line **test flag** covering `#[cfg(test)]`/`#[test]` items.
//!
//! The lexer understands line and (nested) block comments, plain and raw
//! strings (`r"…"`, `r#"…"#`, any hash depth), byte strings, char and
//! byte-char literals, and distinguishes lifetimes (`'a`) from char
//! literals (`'a'`).

/// One string literal found in the file.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// Unescaped content (common escapes resolved; exotic ones kept raw).
    pub content: String,
}

/// One scrubbed source line.
#[derive(Debug, Clone)]
pub struct ScrubbedLine {
    /// Code with comments removed and string/char contents blanked to
    /// spaces (delimiters kept), safe for token searches.
    pub code: String,
    /// Comment text on this line (markers stripped), for justifications.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// Placeholder marker opening a string reference in [`Scrubbed::flat`].
pub const STR_OPEN: char = '\u{1}';
/// Placeholder marker closing a string reference in [`Scrubbed::flat`].
pub const STR_CLOSE: char = '\u{2}';

/// The scrubbed view of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Per-line views (index 0 = line 1).
    pub lines: Vec<ScrubbedLine>,
    /// Whole-file masked code with newlines kept and each string literal
    /// replaced by `STR_OPEN index STR_CLOSE`.
    pub flat: String,
    /// All string literals, in source order.
    pub strings: Vec<StrLit>,
}

impl Scrubbed {
    /// 1-based line number of a byte offset into [`Scrubbed::flat`].
    pub fn line_of(&self, offset: usize) -> usize {
        self.flat[..offset].bytes().filter(|&b| b == b'\n').count() + 1
    }

    /// Whether 1-based `line` lies in test code (out-of-range → false).
    pub fn is_test_line(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .is_some_and(|l| l.in_test)
    }
}

#[derive(PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    CharLit,
}

/// Lexes `src` into its scrubbed view.
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<ScrubbedLine> = Vec::new();
    let mut strings: Vec<StrLit> = Vec::new();
    let mut flat = String::new();

    let mut code = String::new();
    let mut comment = String::new();
    let mut line_no = 1usize;
    let mut state = State::Normal;
    let mut lit = String::new(); // content of the in-flight string/char
    let mut lit_line = 1usize;
    let mut prev_code_char = '\n';

    let mut i = 0usize;
    let n = chars.len();
    let mut end_line = |code: &mut String, comment: &mut String, flat: &mut String| {
        lines.push(ScrubbedLine {
            code: std::mem::take(code),
            comment: std::mem::take(comment),
            in_test: false,
        });
        flat.push('\n');
    };

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '\n' => {
                    end_line(&mut code, &mut comment, &mut flat);
                    line_no += 1;
                    i += 1;
                }
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    state = State::Str { raw_hashes: None };
                    lit.clear();
                    lit_line = line_no;
                    code.push('"');
                    prev_code_char = '"';
                    i += 1;
                }
                'r' | 'b' if !is_ident(prev_code_char) => {
                    // Possible raw/byte string or byte-char prefix.
                    let (consumed, started) = try_string_prefix(&chars, i);
                    if let Some(hashes) = started {
                        state = State::Str { raw_hashes: hashes };
                        lit.clear();
                        lit_line = line_no;
                        code.push('"');
                        prev_code_char = '"';
                        i += consumed;
                    } else if consumed > 0 {
                        // b'..' byte-char literal.
                        state = State::CharLit;
                        code.push('\'');
                        prev_code_char = '\'';
                        i += consumed;
                    } else {
                        code.push(c);
                        flat.push(c);
                        prev_code_char = c;
                        i += 1;
                    }
                }
                '\'' => {
                    if is_char_literal(&chars, i) {
                        state = State::CharLit;
                        code.push('\'');
                        prev_code_char = '\'';
                        i += 1;
                    } else {
                        // A lifetime: keep the tick and the label as code.
                        code.push('\'');
                        flat.push('\'');
                        prev_code_char = '\'';
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    flat.push(c);
                    prev_code_char = c;
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    end_line(&mut code, &mut comment, &mut flat);
                    line_no += 1;
                } else {
                    comment.push(c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    end_line(&mut code, &mut comment, &mut flat);
                    line_no += 1;
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => match c {
                    '\\' => {
                        if let Some(nc) = next {
                            lit.push(unescape(nc));
                            code.push(' ');
                            code.push(' ');
                        }
                        i += 2;
                    }
                    '"' => {
                        strings.push(StrLit { line: lit_line, content: std::mem::take(&mut lit) });
                        push_str_ref(&mut flat, strings.len() - 1);
                        code.push('"');
                        state = State::Normal;
                        i += 1;
                    }
                    '\n' => {
                        lit.push('\n');
                        end_line(&mut code, &mut comment, &mut flat);
                        line_no += 1;
                        i += 1;
                    }
                    _ => {
                        lit.push(c);
                        code.push(' ');
                        i += 1;
                    }
                },
                Some(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        strings.push(StrLit { line: lit_line, content: std::mem::take(&mut lit) });
                        push_str_ref(&mut flat, strings.len() - 1);
                        code.push('"');
                        state = State::Normal;
                        i += 1 + hashes as usize;
                    } else if c == '\n' {
                        lit.push('\n');
                        end_line(&mut code, &mut comment, &mut flat);
                        line_no += 1;
                        i += 1;
                    } else {
                        lit.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
            },
            State::CharLit => match c {
                '\\' => {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                '\'' => {
                    code.push('\'');
                    state = State::Normal;
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
        }
    }
    // Final (possibly unterminated) line.
    if !code.is_empty() || !comment.is_empty() || lines.is_empty() {
        lines.push(ScrubbedLine { code, comment, in_test: false });
    }

    let mut scrubbed = Scrubbed { lines, flat, strings };
    mark_test_regions(&mut scrubbed);
    scrubbed
}

fn push_str_ref(flat: &mut String, idx: usize) {
    flat.push(STR_OPEN);
    flat.push_str(&idx.to_string());
    flat.push(STR_CLOSE);
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \", \\, \' and exotic escapes keep the marker char
    }
}

/// At `chars[i]` sitting on `r` or `b`: if a raw/byte string opens here,
/// returns (chars consumed through the opening quote, Some(raw hash count;
/// `None` inside means a *non-raw* byte string)). For `b'` returns
/// (2, None-as-char-lit) signalled by `(2, None)` with consumed > 0 and
/// `started == None` — see call site. Returns `(0, None)` when this is
/// just an identifier character.
fn try_string_prefix(chars: &[char], i: usize) -> (usize, Option<Option<u32>>) {
    let c = chars[i];
    let rest = &chars[i..];
    let peek = |k: usize| rest.get(k).copied();
    if c == 'r' || (c == 'b' && peek(1) == Some('r')) {
        let base = if c == 'r' { 1 } else { 2 };
        let mut hashes = 0u32;
        let mut k = base;
        while peek(k) == Some('#') {
            hashes += 1;
            k += 1;
        }
        if peek(k) == Some('"') {
            return (k + 1, Some(Some(hashes)));
        }
        return (0, None);
    }
    if c == 'b' {
        if peek(1) == Some('"') {
            return (2, Some(None));
        }
        if peek(1) == Some('\'') {
            return (2, None); // byte-char literal: consumed=2, no string
        }
    }
    (0, None)
}

/// Whether the `"` at `chars[i]` is followed by `hashes` `#`s.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// `'x'`-style char literal vs `'a` lifetime, decided by lookahead.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items by brace matching
/// on the flat (string-free) stream.
fn mark_test_regions(s: &mut Scrubbed) {
    let flat: Vec<char> = s.flat.chars().collect();
    let text: String = s.flat.clone();
    let mut search_from = 0usize;
    loop {
        let hit = ["#[cfg(test)]", "#[test]"]
            .iter()
            .filter_map(|pat| text[search_from..].find(pat).map(|p| (search_from + p, pat.len())))
            .min();
        let Some((at, pat_len)) = hit else { break };
        // Find the item's opening brace (or a terminating `;` first).
        let mut j = char_index_of_byte(&text, at + pat_len);
        let mut open = None;
        while j < flat.len() {
            match flat[j] {
                '{' => {
                    open = Some(j);
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        let start_line = byte_line(&text, at);
        let Some(open_idx) = open else {
            // `#[cfg(test)] mod x;` or malformed: mark just the item line.
            set_test(s, start_line, start_line);
            search_from = at + pat_len;
            continue;
        };
        let mut depth = 0i32;
        let mut k = open_idx;
        while k < flat.len() {
            match flat[k] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end_byte = byte_of_char_index(&text, k.min(flat.len().saturating_sub(1)));
        let end_line = byte_line(&text, end_byte);
        set_test(s, start_line, end_line);
        search_from = end_byte.max(at + pat_len);
    }
}

fn set_test(s: &mut Scrubbed, from_line: usize, to_line: usize) {
    for line in from_line..=to_line {
        if let Some(l) = s.lines.get_mut(line - 1) {
            l.in_test = true;
        }
    }
}

fn byte_line(text: &str, byte: usize) -> usize {
    text[..byte].bytes().filter(|&b| b == b'\n').count() + 1
}

fn char_index_of_byte(text: &str, byte: usize) -> usize {
    text[..byte].chars().count()
}

fn byte_of_char_index(text: &str, idx: usize) -> usize {
    text.char_indices().nth(idx).map_or(text.len(), |(b, _)| b)
}

/// Iterates string-literal references embedded in a `flat` slice: yields
/// `(byte_offset_of_marker, string_index)`.
pub fn str_refs(flat: &str) -> impl Iterator<Item = (usize, usize)> + '_ {
    let bytes = flat.as_bytes();
    let mut pos = 0usize;
    std::iter::from_fn(move || {
        while pos < bytes.len() {
            if bytes[pos] == 1 {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != 2 {
                    end += 1;
                }
                let idx: usize = flat[start..end].parse().ok()?;
                let at = pos;
                pos = end + 1;
                return Some((at, idx));
            }
            pos += 1;
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let s = scrub("let x = \"unwrap() // not code\"; // c1 unwrap()\nlet y = 1;");
        assert!(!s.lines[0].code.contains("unwrap"));
        assert!(s.lines[0].comment.contains("c1 unwrap()"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, "unwrap() // not code");
        assert!(s.lines[1].code.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = scrub("let a = r#\"he \"quoted\" panic!()\"#; let b = \"\\\"name\\\":\\\"x\\\"\";");
        assert_eq!(s.strings[0].content, "he \"quoted\" panic!()");
        assert_eq!(s.strings[1].content, "\"name\":\"x\"");
        assert!(!s.lines[0].code.contains("panic"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'z'; 'q' }");
        let code = &s.lines[0].code;
        assert!(code.contains("<'a>"));
        assert!(code.contains("&'a str"));
        assert!(!code.contains('z'));
    }

    #[test]
    fn block_comments_nest() {
        let s = scrub("a /* one /* two */ still */ b\nc");
        assert!(s.lines[0].code.contains('a'));
        assert!(s.lines[0].code.contains('b'));
        assert!(!s.lines[0].code.contains("one"));
        assert!(!s.lines[0].code.contains("still"));
    }

    #[test]
    fn cfg_test_regions_marked() {
        let src = "fn live() { x[0]; }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\nfn after() {}\n";
        let s = scrub(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn test_attr_fn_marked() {
        let src = "fn a() {}\n#[test]\nfn prop() {\n    body();\n}\nfn b() {}\n";
        let s = scrub(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn flat_str_refs_enumerate() {
        let s = scrub("f(\"one\", 2, \"two\")");
        let refs: Vec<_> = str_refs(&s.flat).collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(s.strings[refs[0].1].content, "one");
        assert_eq!(s.strings[refs[1].1].content, "two");
    }

    #[test]
    fn braces_in_strings_do_not_break_test_regions() {
        let src = "#[cfg(test)]\nmod t {\n    const S: &str = \"}\";\n    fn x() {}\n}\nfn live() {}\n";
        let s = scrub(src);
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }
}
