#![forbid(unsafe_code)]
//! guardlint — workspace-native static analysis for the DNS-guard repo.
//!
//! The guard's value proposition is surviving adversarial wire input in
//! front of the ANS, and the chaos/failover suites depend on simulated
//! time being the only clock. Those invariants were previously enforced
//! by review convention; guardlint machine-checks them on every run:
//!
//! * **L1** — no panic on wire input (`unwrap`/`expect`/`panic!`-family /
//!   slice indexing) in `dnswire` and the guard rx modules;
//! * **L2** — determinism: no wall clock or ambient RNG in the sim-domain
//!   crates (`core`, `netsim`, `server`, `attack`, `obs`);
//! * **L3** — `Ordering::Relaxed` outside the obs record path requires an
//!   inline `// lint: relaxed-ok — <why>` justification;
//! * **L4** — metric/alert names referenced by `telemetry_check` and the
//!   alert rules must exist at a registry definition site;
//! * **L5** — trace coverage: the export contract's kinds have emit
//!   sites, and guard-emitted kinds are observed somewhere;
//! * **L6** — shared-state escape: a variable captured by a spawned
//!   closure and mutated inside it must go through a `guardcheck::sync`
//!   atomic/lock (so the model checker covers it) or carry an inline
//!   `// lint: shared-ok — <why>`;
//! * **L7** — lock ordering: the hold-while-acquiring graph built from
//!   every function's `.lock()` sites must be acyclic (AB/BA cycles and
//!   re-acquiring a held lock are deadlock recipes under the
//!   non-reentrant facade mutex).
//!
//! Findings print as `file:line [lint-id] severity: message`; `Lint.toml`
//! holds justified exemptions (see [`allowlist`]) — entries that stop
//! matching become hard errors under `--deny` so the file cannot rot;
//! `--deny` turns errors into a non-zero exit for CI and `--github`
//! re-renders findings as Actions annotations. Zero dependencies by
//! design: the crate carries its own comment/string-aware lexer
//! ([`lexer`]) and brace matcher ([`scopes`]) instead of a Rust parser,
//! because every invariant here is token-, scope- or
//! string-cross-reference-shaped. guardlint is the static front line of
//! the concurrency toolchain; the `guardcheck` crate's interleaving
//! model checker is the dynamic back line.

pub mod allowlist;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod scopes;

use findings::{Finding, Severity};
use lints::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Result of one full lint run.
pub struct RunResult {
    /// Surviving findings (allowlist applied), canonical order.
    pub findings: Vec<Finding>,
    /// Number of files in the lint set.
    pub files_scanned: usize,
}

impl RunResult {
    /// Count of error-severity findings (what `--deny` gates on).
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Count of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warning).count()
    }
}

/// Collects `.rs` files under `dir` recursively, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "vendor" || name == "target" || name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn load(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        files.push(SourceFile { rel: rel_of(root, p), scrub: lexer::scrub(&src) });
    }
    Ok(files)
}

/// The lint set: every non-vendor workspace source (`crates/*/src`, the
/// umbrella `src/`).
fn lint_set_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut out)?;
        }
    }
    collect_rs(&root.join("src"), &mut out)?;
    Ok(out)
}

/// The L5 reference corpus: the lint set plus integration tests, benches
/// and examples — anywhere a trace kind may legitimately be observed.
fn corpus_extra_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_rs(&root.join("tests"), &mut out)?;
    collect_rs(&root.join("examples"), &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("tests"), &mut out)?;
            collect_rs(&m.join("benches"), &mut out)?;
        }
    }
    Ok(out)
}

/// Runs the full lint pass over the workspace at `root`, applying the
/// allowlist at `allowlist_path` (skipped when the file does not exist).
/// With `deny` set (the CI gate), stale allowlist entries are promoted
/// from advisory warnings to hard errors.
pub fn run(root: &Path, allowlist_path: &Path, deny: bool) -> io::Result<RunResult> {
    let lint_paths = lint_set_paths(root)?;
    let files = load(root, &lint_paths)?;
    let mut corpus = load(root, &corpus_extra_paths(root)?)?;
    // The corpus also contains the lint set itself (re-lexed views are
    // cheap relative to one workspace build).
    corpus.extend(load(root, &lint_paths)?);

    let mut findings = lints::run_all(&files, &corpus);

    let toml_rel = rel_of(root, allowlist_path);
    if allowlist_path.is_file() {
        let content = std::fs::read_to_string(allowlist_path)?;
        let list = allowlist::parse(&content, &toml_rel);
        findings = list.apply(findings, &toml_rel, deny);
        findings.extend(list.problems);
    }
    findings::sort(&mut findings);
    Ok(RunResult { findings, files_scanned: files.len() })
}
