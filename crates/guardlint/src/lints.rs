//! The five guardlint families.
//!
//! | id | invariant |
//! |----|-----------|
//! | L1 | no panic on wire input: `unwrap`/`expect`/`panic!`-family macros and slice indexing are forbidden in `dnswire` and the guard rx modules |
//! | L2 | determinism: wall clocks and ambient RNG are forbidden in the sim-domain crates (`core`, `netsim`, `server`, `attack`, `obs`) |
//! | L3 | atomic-ordering discipline: `Ordering::Relaxed` outside the obs record path needs a `// lint: relaxed-ok — ...` justification |
//! | L4 | metric/alert names referenced by `telemetry_check` and the alert rules (per-node `RULES`, fleet `FLEET_RULES`) must exist at a registry definition site |
//! | L5 | trace coverage: contract kinds (`REQUIRED_KINDS`, `STITCH_KINDS`, `ANALYTICS_KINDS`) must have emit sites, and guard/analytics-emitted kinds must be observed somewhere |
//!
//! L1–L3 are per-line token lints over scrubbed code (see [`crate::lexer`]);
//! L4/L5 are cross-file consistency checks over extracted call arguments.

use crate::findings::{Finding, Severity};
use crate::lexer::{str_refs, Scrubbed, STR_OPEN};
use std::collections::{BTreeMap, BTreeSet};

/// One lexed source file, addressed by workspace-relative path.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Scrubbed view (see [`crate::lexer::scrub`]).
    pub scrub: Scrubbed,
}

// ---------------------------------------------------------------- scopes

/// L1 scope: the modules that parse adversarial wire input.
fn in_l1_scope(rel: &str) -> bool {
    rel.starts_with("crates/dnswire/src/")
        || rel == "crates/core/src/guard.rs"
        || rel == "crates/core/src/tcp_proxy.rs"
}

/// L2 scope: sim-domain crates where all time/randomness must come from
/// the simulator (wall clock is allowed only in `runtime` and tooling).
fn in_l2_scope(rel: &str) -> bool {
    ["core", "netsim", "server", "attack", "obs"]
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// L3 exemption: the lock-free metrics/trace record path is the one place
/// plain relaxed counters are the design (single monotonic cells, no
/// cross-cell ordering contract).
fn l3_exempt(rel: &str) -> bool {
    rel == "crates/obs/src/metrics.rs" || rel == "crates/obs/src/trace.rs"
}

// ------------------------------------------------------------- utilities

/// Finds `token` in `code` at an identifier boundary; returns the byte
/// offset of the first hit.
fn find_token(code: &str, token: &str) -> Option<usize> {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let first_ident = token.chars().next().is_some_and(ident);
    let last_ident = token.chars().next_back().is_some_and(ident);
    let mut from = 0;
    while let Some(p) = code[from..].find(token) {
        let at = from + p;
        let pre_ok = !first_ident
            || !code[..at].chars().next_back().is_some_and(ident);
        let post_ok = !last_ident
            || !code[at + token.len()..].chars().next().is_some_and(ident);
        if pre_ok && post_ok {
            return Some(at);
        }
        from = at + token.len();
    }
    None
}

/// Whether the line comment carries `lint: <tag> — <justification>` with a
/// non-trivial justification.
fn has_justification(comment: &str, tag: &str) -> bool {
    let needle = format!("lint: {tag}");
    let Some(p) = comment.find(&needle) else {
        return false;
    };
    let rest = comment[p + needle.len()..]
        .trim_start_matches([' ', '—', '–', '-', ':']);
    rest.trim().len() >= 3
}

/// Whether line `i` carries a `lint: <tag>` justification, either in its
/// trailing comment or in the comment-only lines directly above it (a
/// justification usually wants more room than the end of the line).
fn justified(lines: &[crate::lexer::ScrubbedLine], i: usize, tag: &str) -> bool {
    if has_justification(&lines[i].comment, tag) {
        return true;
    }
    lines[..i]
        .iter()
        .rev()
        .take_while(|l| l.code.trim().is_empty() && !l.comment.trim().is_empty())
        .any(|l| has_justification(&l.comment, tag))
}

/// Byte positions of index-expression brackets: `[` directly preceded by
/// an identifier char, `)` or `]` (i.e. `buf[…]`, `f(x)[…]`, `a[0][1]`),
/// which excludes array literals/types, slice patterns and attributes.
fn index_brackets(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    (1..bytes.len())
        .filter(|&i| {
            bytes[i] == b'['
                && (bytes[i - 1].is_ascii_alphanumeric()
                    || bytes[i - 1] == b'_'
                    || bytes[i - 1] == b')'
                    || bytes[i - 1] == b']')
        })
        .collect()
}

// --------------------------------------------------------------- L1 – L3

/// L1: no panic on wire input.
pub fn l1(file: &SourceFile) -> Vec<Finding> {
    if !in_l1_scope(&file.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    const PANICS: &[(&str, &str)] = &[
        (".unwrap()", "`unwrap()` can panic on adversarial wire input; propagate a typed error"),
        (".expect(", "`expect()` can panic on adversarial wire input; propagate a typed error"),
        ("panic!(", "`panic!` on a wire-input path; return a typed error instead"),
        ("unreachable!(", "`unreachable!` on a wire-input path; make the state unrepresentable or return a typed error"),
        ("todo!(", "`todo!` placeholder on a wire-input path"),
        ("unimplemented!(", "`unimplemented!` placeholder on a wire-input path"),
    ];
    for (i, line) in file.scrub.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, msg) in PANICS {
            if find_token(&line.code, tok).is_some() {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: i + 1,
                    lint: "L1",
                    severity: Severity::Error,
                    message: (*msg).to_string(),
                });
            }
        }
        if !index_brackets(&line.code).is_empty()
            && !justified(&file.scrub.lines, i, "index-ok")
        {
            out.push(Finding {
                file: file.rel.clone(),
                line: i + 1,
                lint: "L1",
                severity: Severity::Error,
                message: "slice/array index can panic on wire input; use `get()`-style \
                          access with a typed error, or justify with `// lint: index-ok — <why>`"
                    .to_string(),
            });
        }
    }
    out
}

/// L2: determinism — no wall clock or ambient RNG in sim-domain crates.
pub fn l2(file: &SourceFile) -> Vec<Finding> {
    if !in_l2_scope(&file.rel) {
        return Vec::new();
    }
    const CLOCKS: &[(&str, &str)] = &[
        ("Instant::now", "wall-clock `Instant::now()` in a sim-domain crate; take time from the simulator context"),
        ("SystemTime", "`SystemTime` in a sim-domain crate; sim time is the only clock here"),
        ("UNIX_EPOCH", "`UNIX_EPOCH` in a sim-domain crate; sim time is the only clock here"),
        ("thread_rng", "ambient `thread_rng()` breaks run reproducibility; use a seeded RNG threaded from the scenario"),
        ("from_entropy", "entropy-seeded RNG breaks run reproducibility; use a seeded RNG threaded from the scenario"),
        ("rand::random", "ambient `rand::random` breaks run reproducibility; use a seeded RNG threaded from the scenario"),
    ];
    let mut out = Vec::new();
    for (i, line) in file.scrub.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, msg) in CLOCKS {
            if find_token(&line.code, tok).is_some() {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: i + 1,
                    lint: "L2",
                    severity: Severity::Error,
                    message: (*msg).to_string(),
                });
            }
        }
    }
    out
}

/// L3: every `Ordering::Relaxed` outside the obs record path needs an
/// inline justification; boolean flags published with `Relaxed` get a
/// pairing-specific message.
pub fn l3(file: &SourceFile) -> Vec<Finding> {
    if l3_exempt(&file.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.scrub.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if find_token(&line.code, "Ordering::Relaxed").is_none() {
            continue;
        }
        if justified(&file.scrub.lines, i, "relaxed-ok") {
            continue;
        }
        let flag_store = line.code.contains(".store(")
            && (line.code.contains("true") || line.code.contains("false"));
        let message = if flag_store {
            "cross-thread flag stored with `Ordering::Relaxed`; pair Release (store) with \
             Acquire (load), or justify with `// lint: relaxed-ok — <why>`"
        } else {
            "`Ordering::Relaxed` outside the obs record path; justify with \
             `// lint: relaxed-ok — <why>` or use an Acquire/Release pair"
        };
        out.push(Finding {
            file: file.rel.clone(),
            line: i + 1,
            lint: "L3",
            severity: Severity::Error,
            message: message.to_string(),
        });
    }
    out
}

// ------------------------------------------------ flat-stream extraction

/// A string argument extracted from the flat stream.
#[derive(Debug, Clone)]
struct ArgStr {
    line: usize,
    content: String,
}

/// Extracts, for every non-test call of `.method(`, up to `max` string
/// literals appearing among its arguments (balanced-paren scan).
fn call_string_args(file: &SourceFile, method: &str, max: usize) -> Vec<(usize, Vec<ArgStr>)> {
    let flat = &file.scrub.flat;
    let needle = format!(".{method}(");
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = flat[from..].find(&needle) {
        let at = from + p;
        from = at + needle.len();
        // Reject `.method_longer(` lookalikes: char before the dot-name
        // match is irrelevant (the dot anchors it), but the name must end
        // exactly at `(` which the needle guarantees.
        let call_line = file.scrub.line_of(at);
        if file.scrub.is_test_line(call_line) {
            continue;
        }
        let mut args = Vec::new();
        let mut depth = 1i32;
        let bytes = flat.as_bytes();
        let mut i = at + needle.len();
        while i < bytes.len() && depth > 0 {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                1 => {
                    let tail = &flat[i..];
                    if let Some((_, idx)) = str_refs(tail).next() {
                        if args.len() < max {
                            let lit = &file.scrub.strings[idx];
                            args.push(ArgStr { line: lit.line, content: lit.content.clone() });
                        }
                    }
                    while i < bytes.len() && bytes[i] != 2 {
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out.push((call_line, args));
    }
    out
}

/// Extracts the string literals of an array declaration `NAME… = &[ … ]`.
fn array_literals(file: &SourceFile, name: &str) -> Option<(usize, Vec<ArgStr>)> {
    let flat = &file.scrub.flat;
    let at = find_token(flat, name)?;
    // Skip past the `=` so the `&[&str]` type annotation's bracket is not
    // mistaken for the literal's.
    let eq = at + flat[at..].find('=')?;
    let open = eq + flat[eq..].find('[')?;
    let decl_line = file.scrub.line_of(at);
    let bytes = flat.as_bytes();
    let mut depth = 0i32;
    let mut i = open;
    let mut lits = Vec::new();
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            1 => {
                if let Some((_, idx)) = str_refs(&flat[i..]).next() {
                    let lit = &file.scrub.strings[idx];
                    lits.push(ArgStr { line: lit.line, content: lit.content.clone() });
                }
                while i < bytes.len() && bytes[i] != 2 {
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((decl_line, lits))
}

/// All non-test string literals of a file.
fn nontest_strings(file: &SourceFile) -> Vec<ArgStr> {
    file.scrub
        .strings
        .iter()
        .filter(|s| !file.scrub.is_test_line(s.line))
        .map(|s| ArgStr { line: s.line, content: s.content.clone() })
        .collect()
}

// -------------------------------------------------------------------- L4

const TELEMETRY_CHECK: &str = "crates/bench/src/bin/telemetry_check.rs";
const ALERT_RS: &str = "crates/obs/src/alert.rs";
const FLEET_RS: &str = "crates/obs/src/fleet.rs";

/// Rule engines checked by L4 legs B/C: `(file, rule-table const)`. The
/// per-node engine declares `RULES`, the fleet aggregator `FLEET_RULES`;
/// both read metrics through match arms and fire through `set_state`.
const RULE_ENGINES: &[(&str, &str)] = &[(ALERT_RS, "RULES"), (FLEET_RS, "FLEET_RULES")];

/// Registry definition sites: `(component, name)` pairs registered by any
/// non-test `.counter( / .gauge( / .histogram( / .adopt_*(` call.
fn metric_definitions(files: &[SourceFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut defs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    const METHODS: &[&str] = &[
        "counter",
        "gauge",
        "histogram",
        "adopt_counter",
        "adopt_gauge",
        "adopt_histogram",
    ];
    for f in files {
        for m in METHODS {
            for (_, args) in call_string_args(f, m, 2) {
                if let [comp, name] = args.as_slice() {
                    defs.entry(name.content.clone())
                        .or_default()
                        .insert(comp.content.clone());
                }
            }
        }
    }
    defs
}

/// Match-arm tuple references `("comp", "name") =>` / `(_, "name") if` in
/// the alert rules. Returns `(line, Option<component>, name)`.
fn alert_metric_refs(file: &SourceFile) -> Vec<(usize, Option<String>, String)> {
    let flat = &file.scrub.flat;
    let bytes = flat.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'(' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let skip_ws = |j: &mut usize| {
            while *j < bytes.len() && (bytes[*j] as char).is_whitespace() {
                *j += 1;
            }
        };
        let read_str = |j: &mut usize| -> Option<usize> {
            if bytes.get(*j) != Some(&1) {
                return None;
            }
            let (_, idx) = str_refs(&flat[*j..]).next()?;
            while *j < bytes.len() && bytes[*j] != 2 {
                *j += 1;
            }
            *j += 1;
            Some(idx)
        };
        skip_ws(&mut j);
        let comp = if bytes.get(j) == Some(&b'_') {
            j += 1;
            None
        } else if let Some(idx) = read_str(&mut j) {
            Some(idx)
        } else {
            i += 1;
            continue;
        };
        skip_ws(&mut j);
        if bytes.get(j) != Some(&b',') {
            i += 1;
            continue;
        }
        j += 1;
        skip_ws(&mut j);
        let Some(name_idx) = read_str(&mut j) else {
            i += 1;
            continue;
        };
        skip_ws(&mut j);
        if bytes.get(j) != Some(&b')') {
            i += 1;
            continue;
        }
        j += 1;
        skip_ws(&mut j);
        let arm = flat[j..].starts_with("=>") || flat[j..].starts_with("if ");
        if arm {
            let name = &file.scrub.strings[name_idx];
            if !file.scrub.is_test_line(name.line) {
                out.push((
                    name.line,
                    comp.map(|c| file.scrub.strings[c].content.clone()),
                    name.content.clone(),
                ));
            }
        }
        i = j;
    }
    out
}

/// L4: metric/alert-name cross-check.
pub fn l4(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let defs = metric_definitions(files);
    let components: BTreeSet<&String> = defs.values().flatten().collect();

    // Leg A — telemetry_check's snapshot keys name real metrics.
    if let Some(tc) = files.iter().find(|f| f.rel == TELEMETRY_CHECK) {
        for s in nontest_strings(tc) {
            for (key, is_name) in [("\"name\":\"", true), ("\"component\":\"", false)] {
                let mut from = 0usize;
                while let Some(p) = s.content[from..].find(key) {
                    let start = from + p + key.len();
                    let Some(end) = s.content[start..].find('"') else { break };
                    let token = &s.content[start..start + end];
                    let ok = if is_name {
                        defs.contains_key(token)
                    } else {
                        components.iter().any(|c| c.as_str() == token)
                    };
                    if !ok {
                        out.push(Finding {
                            file: tc.rel.clone(),
                            line: s.line,
                            lint: "L4",
                            severity: Severity::Error,
                            message: format!(
                                "telemetry_check expects {} {token:?}, but no registry \
                                 definition site registers it",
                                if is_name { "metric" } else { "component" }
                            ),
                        });
                    }
                    from = start + end;
                }
            }
        }
    }

    // Legs B/C — every rule engine (per-node alert.rs, fleet aggregator)
    // reads real metrics and evaluates every declared rule.
    for &(engine_rel, table) in RULE_ENGINES {
        let Some(engine) = files.iter().find(|f| f.rel == engine_rel) else { continue };
        for (line, comp, name) in alert_metric_refs(engine) {
            match (&comp, defs.get(&name)) {
                (_, None) => out.push(Finding {
                    file: engine.rel.clone(),
                    line,
                    lint: "L4",
                    severity: Severity::Error,
                    message: format!(
                        "alert rule reads metric {name:?}, but no registry definition \
                         site registers it"
                    ),
                }),
                (Some(c), Some(comps)) if !comps.contains(c) => out.push(Finding {
                    file: engine.rel.clone(),
                    line,
                    lint: "L4",
                    severity: Severity::Error,
                    message: format!(
                        "alert rule reads metric {name:?} of component {c:?}, but it is \
                         only registered under {comps:?}"
                    ),
                }),
                _ => {}
            }
        }
        if let Some((decl_line, rules)) = array_literals(engine, table) {
            let evaluated: BTreeSet<String> = call_string_args(engine, "set_state", 1)
                .into_iter()
                .filter_map(|(_, args)| args.first().map(|a| a.content.clone()))
                .collect();
            for r in &rules {
                if !evaluated.contains(&r.content) {
                    out.push(Finding {
                        file: engine.rel.clone(),
                        line: decl_line,
                        lint: "L4",
                        severity: Severity::Error,
                        message: format!(
                            "alert rule {:?} is declared in {table} but never evaluated \
                             (no set_state site)",
                            r.content
                        ),
                    });
                }
            }
            let declared: BTreeSet<&str> = rules.iter().map(|r| r.content.as_str()).collect();
            for (line, args) in call_string_args(engine, "set_state", 1) {
                if let Some(rule) = args.first() {
                    if !declared.contains(rule.content.as_str()) {
                        out.push(Finding {
                            file: engine.rel.clone(),
                            line,
                            lint: "L4",
                            severity: Severity::Error,
                            message: format!(
                                "set_state fires rule {:?} which is not declared in {table}",
                                rule.content
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

// -------------------------------------------------------------------- L5

const OBS_EXPORT: &str = "crates/bench/src/obs_export.rs";
const GUARD_RS: &str = "crates/core/src/guard.rs";
const ANALYTICS_RS: &str = "crates/core/src/analytics.rs";
const POISON_RS: &str = "crates/bench/src/poison.rs";

/// Trace-kind contracts checked by L5: `(file, kind-table const)`. The
/// export contract promises `REQUIRED_KINDS`; the fleet aggregator
/// promises the `STITCH_KINDS` it synthesises during stitching; the
/// traffic-analytics pipeline promises the `ANALYTICS_KINDS` it emits
/// on each sketch refresh; the poisoning bench promises the
/// `POISON_KINDS` the resolver hardening and fragmentation faults emit
/// during the success-probability sweep.
const KIND_CONTRACTS: &[(&str, &str)] = &[
    (OBS_EXPORT, "REQUIRED_KINDS"),
    (FLEET_RS, "STITCH_KINDS"),
    (ANALYTICS_RS, "ANALYTICS_KINDS"),
    (POISON_RS, "POISON_KINDS"),
];

/// Files whose emitted kinds must be observed elsewhere in the corpus:
/// the guard's per-decision events, and the analytics pipeline's
/// per-refresh population events (both feed dashboards and alerts, so an
/// unreferenced kind is dead telemetry).
const OBSERVED_EMITTERS: &[&str] = &[GUARD_RS, ANALYTICS_RS];

/// Trace emit sites: `(kind, file, line)` for every non-test
/// `.event( / .debug(` call (the kind is the first string argument).
fn emit_sites(files: &[SourceFile]) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for f in files {
        for m in ["event", "debug"] {
            for (line, args) in call_string_args(f, m, 1) {
                if let Some(kind) = args.first() {
                    out.push((kind.content.clone(), f.rel.clone(), line));
                }
            }
        }
    }
    out
}

/// L5: trace coverage.
///
/// * every kind in a declared contract table (`REQUIRED_KINDS` in the
///   export, `STITCH_KINDS` in the fleet aggregator, `ANALYTICS_KINDS`
///   in the traffic-analytics pipeline) has an emit site;
/// * every kind emitted by an `OBSERVED_EMITTERS` file (`core::guard`,
///   `core::analytics`) is referenced (as a string literal) somewhere
///   else in the workspace — journey assembly, alert rules, the fleet
///   collector vocabulary, benches or tests — so no decision or
///   population event is unobserved.
///
/// `corpus` is the wider reference set (lint files plus tests/examples),
/// searched including test code.
pub fn l5(files: &[SourceFile], corpus: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let emits = emit_sites(files);
    let emitted: BTreeSet<&str> = emits.iter().map(|(k, _, _)| k.as_str()).collect();

    for &(contract_rel, table) in KIND_CONTRACTS {
        let Some(exp) = files.iter().find(|f| f.rel == contract_rel) else { continue };
        if let Some((_, kinds)) = array_literals(exp, table) {
            for k in &kinds {
                if !emitted.contains(k.content.as_str()) {
                    out.push(Finding {
                        file: exp.rel.clone(),
                        line: k.line,
                        lint: "L5",
                        severity: Severity::Error,
                        message: format!(
                            "required trace kind {:?} ({table}) has no \
                             `.event()`/`.debug()` emit site in the workspace",
                            k.content
                        ),
                    });
                }
            }
        }
    }

    // Kinds emitted by the observed-emitter files (guard decisions,
    // analytics refreshes) must be referenced somewhere outside them.
    for &emitter in OBSERVED_EMITTERS {
        let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
        for (k, file, line) in &emits {
            if file == emitter {
                kinds.entry(k).or_insert(*line);
            }
        }
        for (kind, line) in kinds {
            let observed = corpus.iter().any(|f| {
                f.rel != emitter && f.scrub.strings.iter().any(|s| s.content == kind)
            });
            if !observed {
                out.push(Finding {
                    file: emitter.to_string(),
                    line,
                    lint: "L5",
                    severity: Severity::Error,
                    message: format!(
                        "emitted trace kind {kind:?} is referenced nowhere else \
                         (journeys, alerts, benches or tests) — unobserved telemetry"
                    ),
                });
            }
        }
    }
    out
}

/// Runs every family over the lint set, with `corpus` as the L5 reference
/// universe.
pub fn run_all(files: &[SourceFile], corpus: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        out.extend(l1(f));
        out.extend(l2(f));
        out.extend(l3(f));
    }
    out.extend(l4(files));
    out.extend(l5(files, corpus));
    out
}

// Keep the placeholder byte referenced so the lexer contract is explicit.
const _: () = assert!(STR_OPEN as u32 == 1);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), scrub: scrub(src) }
    }

    #[test]
    fn l1_flags_unwrap_in_scope_only() {
        let bad = file("crates/dnswire/src/name.rs", "fn f(v: Option<u8>) { v.unwrap(); }\n");
        assert_eq!(l1(&bad).len(), 1);
        let out_of_scope = file("crates/bench/src/report.rs", "fn f(v: Option<u8>) { v.unwrap(); }\n");
        assert!(l1(&out_of_scope).is_empty());
    }

    #[test]
    fn l1_ignores_strings_comments_and_tests() {
        let src = "const S: &str = \"x.unwrap()\"; // unwrap() in comment\n#[cfg(test)]\nmod t { fn f(v: Option<u8>) { v.unwrap(); } }\n";
        let f = file("crates/dnswire/src/name.rs", src);
        assert!(l1(&f).is_empty(), "{:?}", l1(&f));
    }

    #[test]
    fn l1_indexing_needs_justification() {
        let f = file("crates/dnswire/src/header.rs", "fn f(b: &[u8]) -> u8 { b[0] }\n");
        assert_eq!(l1(&f).len(), 1);
        let ok = file(
            "crates/dnswire/src/header.rs",
            "fn f(b: &[u8]) -> u8 { b[0] } // lint: index-ok — length checked by caller\n",
        );
        assert!(l1(&ok).is_empty());
    }

    #[test]
    fn l1_unwrap_or_is_fine() {
        let f = file("crates/dnswire/src/name.rs", "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }\n");
        assert!(l1(&f).is_empty());
    }

    #[test]
    fn l2_flags_wall_clock_in_sim_domain() {
        let f = file("crates/core/src/guard.rs", "fn f() { let t = std::time::Instant::now(); }\n");
        let findings = l2(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "L2");
        let rt = file("crates/runtime/src/telemetry.rs", "fn f() { let t = std::time::Instant::now(); }\n");
        assert!(l2(&rt).is_empty(), "wall clock is allowed in runtime");
    }

    #[test]
    fn l3_requires_justification_outside_record_path() {
        let bare = file("crates/runtime/src/ans.rs", "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(l3(&bare).len(), 1);
        let just = file(
            "crates/runtime/src/ans.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // lint: relaxed-ok — monotonic counter\n",
        );
        assert!(l3(&just).is_empty());
        let exempt = file("crates/obs/src/metrics.rs", "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert!(l3(&exempt).is_empty());
    }

    #[test]
    fn l3_flag_store_gets_pairing_message() {
        let f = file("crates/runtime/src/ans.rs", "fn f(s: &AtomicBool) { s.store(true, Ordering::Relaxed); }\n");
        let findings = l3(&f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("Release"));
    }

    #[test]
    fn l4_detects_phantom_metric() {
        let defs = file(
            "crates/core/src/guard.rs",
            "fn a(r: &Registry) { r.adopt_counter(\"guard\", \"verify\", &[], &c); }\n",
        );
        let tc = file(
            TELEMETRY_CHECK,
            "const K: &[&str] = &[\"\\\"name\\\":\\\"verify\\\"\", \"\\\"name\\\":\\\"no_such\\\"\"];\n",
        );
        let findings = l4(&[defs, tc]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no_such"));
    }

    #[test]
    fn l4_alert_match_arm_checked() {
        let defs = file(
            "crates/core/src/guard.rs",
            "fn a(r: &Registry) { r.adopt_counter(\"guard\", \"verify\", &[], &c); }\n",
        );
        let alert = file(
            ALERT_RS,
            "fn e(s: &S) { match (s.component, s.name) { (_, \"verify\") => {}, (\"guard\", \"ghost\") => {}, _ => {} } }\n",
        );
        let findings = l4(&[defs, alert]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ghost"));
    }

    #[test]
    fn l4_unevaluated_rule_flagged() {
        let alert = file(
            ALERT_RS,
            "pub const RULES: &[&str] = &[\"live_rule\", \"dead_rule\"];\nfn e(&mut self, t: u64) { self.set_state(t, \"live_rule\", true, 0.0, 0.0); }\n",
        );
        let findings = l4(&[alert]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("dead_rule"));
    }

    #[test]
    fn l4_fleet_rule_table_checked() {
        let fleet = file(
            FLEET_RS,
            "pub const FLEET_RULES: &[&str] = &[\"fleet_spoof_surge\", \"dead_fleet_rule\"];\nfn e(&mut self, t: u64) { self.set_state(t, \"fleet_spoof_surge\", true, 0.0, 0.0); }\n",
        );
        let findings = l4(&[fleet]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("dead_fleet_rule"));
        assert!(findings[0].message.contains("FLEET_RULES"));
    }

    #[test]
    fn l4_fleet_match_arm_checked() {
        let defs = file(
            "crates/core/src/guard.rs",
            "fn a(r: &Registry) { r.adopt_counter(\"guard\", \"verify\", &[], &c); }\n",
        );
        let fleet = file(
            FLEET_RS,
            "fn e(s: &S) { match (s.component, s.name) { (_, \"verify\") => {}, (\"guard_server\", \"phantom\") => {}, _ => {} } }\n",
        );
        let findings = l4(&[defs, fleet]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("phantom"));
        assert_eq!(findings[0].file, FLEET_RS);
    }

    #[test]
    fn l5_stitch_kind_without_emitter() {
        let fleet = file(
            FLEET_RS,
            "pub const STITCH_KINDS: &[&str] = &[\"journey_stitch\", \"ghost_stitch\"];\nfn s(&self, t: u64) { self.trace.event(t, \"journey_stitch\", &[]); }\n",
        );
        let findings = l5(std::slice::from_ref(&fleet), &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ghost_stitch"));
        assert!(findings[0].message.contains("STITCH_KINDS"));
    }

    #[test]
    fn l5_required_kind_without_emitter() {
        let exp = file(
            OBS_EXPORT,
            "pub const REQUIRED_KINDS: &[&str] = &[\"grant\", \"ghost_kind\"];\n",
        );
        let guard = file(
            GUARD_RS,
            "fn f(&self, t: u64) { self.metrics.trace.event(t, \"grant\", &[]); }\n",
        );
        let refs = file("tests/journeys.rs", "const K: &str = \"grant\";\n");
        let all = [exp, guard];
        let corpus = [refs];
        let findings = l5(&all, &corpus);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ghost_kind"));
    }

    #[test]
    fn l4_analytics_rules_need_set_state_sites() {
        // The discriminator rules ride the same RULES contract as every
        // other alert: declared + evaluated is clean, declared-only is not.
        let both = file(
            ALERT_RS,
            "pub const RULES: &[&str] = &[\"spoof_flood\", \"flash_crowd\"];\n\
             fn e(&mut self, t: u64) { self.set_state(t, \"spoof_flood\", true, 0.0, 0.0); \
             self.set_state(t, \"flash_crowd\", false, 0.0, 0.0); }\n",
        );
        assert!(l4(std::slice::from_ref(&both)).is_empty());
        let missing = file(
            ALERT_RS,
            "pub const RULES: &[&str] = &[\"spoof_flood\", \"flash_crowd\"];\n\
             fn e(&mut self, t: u64) { self.set_state(t, \"spoof_flood\", true, 0.0, 0.0); }\n",
        );
        let findings = l4(std::slice::from_ref(&missing));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("flash_crowd"));
    }

    #[test]
    fn l5_analytics_kind_without_emitter() {
        let analytics = file(
            ANALYTICS_RS,
            "pub const ANALYTICS_KINDS: &[&str] = &[\"analytics_topk\", \"ghost_topk\"];\n\
             fn r(&self, t: u64) { self.trace.event(t, \"analytics_topk\", &[]); }\n",
        );
        let findings = l5(std::slice::from_ref(&analytics), &[]);
        // `ghost_topk` has no emit site; `analytics_topk` is emitted but
        // unobserved — both legs must fire.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("ghost_topk")
            && f.message.contains("ANALYTICS_KINDS")));
        assert!(findings.iter().any(|f| f.message.contains("analytics_topk")
            && f.message.contains("unobserved")));
    }

    #[test]
    fn l5_observed_analytics_kind_is_clean() {
        let analytics = file(
            ANALYTICS_RS,
            "pub const ANALYTICS_KINDS: &[&str] = &[\"analytics_topk\"];\n\
             fn r(&self, t: u64) { self.trace.event(t, \"analytics_topk\", &[]); }\n",
        );
        let witness = file(
            "crates/runtime/src/fleet_collector.rs",
            "const VOCAB: &[&str] = &[\"analytics_topk\"];\n",
        );
        let findings = l5(std::slice::from_ref(&analytics), &[witness]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn l5_unobserved_guard_kind() {
        let guard = file(
            GUARD_RS,
            "fn f(&self, t: u64) { self.metrics.trace.event(t, \"lonely_kind\", &[]); }\n",
        );
        let findings = l5(std::slice::from_ref(&guard), &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lonely_kind"));
        let witness = file("tests/x.rs", "const K: &str = \"lonely_kind\";\n");
        let findings = l5(std::slice::from_ref(&guard), &[witness]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
