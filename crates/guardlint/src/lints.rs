//! The five guardlint families.
//!
//! | id | invariant |
//! |----|-----------|
//! | L1 | no panic on wire input: `unwrap`/`expect`/`panic!`-family macros and slice indexing are forbidden in `dnswire` and the guard rx modules |
//! | L2 | determinism: wall clocks and ambient RNG are forbidden in the sim-domain crates (`core`, `netsim`, `server`, `attack`, `obs`) |
//! | L3 | atomic-ordering discipline: `Ordering::Relaxed` outside the obs record path needs a `// lint: relaxed-ok — ...` justification |
//! | L4 | metric/alert names referenced by `telemetry_check` and the alert rules (per-node `RULES`, fleet `FLEET_RULES`) must exist at a registry definition site |
//! | L5 | trace coverage: contract kinds (`REQUIRED_KINDS`, `STITCH_KINDS`, `ANALYTICS_KINDS`) must have emit sites, and guard/analytics-emitted kinds must be observed somewhere |
//! | L6 | shared-state escape: a variable captured by a spawned closure and mutated inside it must go through an atomic/lock (`guardcheck::sync`) or carry `// lint: shared-ok — <why>` |
//! | L7 | lock ordering: the per-function lock-acquisition graph must be acyclic — an A→B hold-while-acquiring edge with a B→A edge elsewhere is a deadlock recipe |
//!
//! L1–L3 are per-line token lints over scrubbed code (see [`crate::lexer`]);
//! L4/L5 are cross-file consistency checks over extracted call arguments;
//! L6/L7 are brace-aware structural lints (see [`crate::scopes`]) feeding
//! the guardcheck model checker's static front line.

use crate::findings::{Finding, Severity};
use crate::lexer::{str_refs, Scrubbed, STR_OPEN};
use crate::scopes::{functions, ScopeMap};
use std::collections::{BTreeMap, BTreeSet};

/// One lexed source file, addressed by workspace-relative path.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Scrubbed view (see [`crate::lexer::scrub`]).
    pub scrub: Scrubbed,
}

// ---------------------------------------------------------------- scopes

/// L1 scope: the modules that parse adversarial wire input.
fn in_l1_scope(rel: &str) -> bool {
    rel.starts_with("crates/dnswire/src/")
        || rel == "crates/core/src/guard.rs"
        || rel == "crates/core/src/tcp_proxy.rs"
}

/// L2 scope: sim-domain crates where all time/randomness must come from
/// the simulator (wall clock is allowed only in `runtime` and tooling).
fn in_l2_scope(rel: &str) -> bool {
    ["core", "netsim", "server", "attack", "obs"]
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// L3 exemption: the lock-free metrics/trace record path is the one place
/// plain relaxed counters are the design (single monotonic cells, no
/// cross-cell ordering contract); the guardcheck crate *implements* the
/// ordering semantics, so it necessarily names every `Ordering` variant.
fn l3_exempt(rel: &str) -> bool {
    rel == "crates/obs/src/metrics.rs"
        || rel == "crates/obs/src/trace.rs"
        || rel.starts_with("crates/guardcheck/src/")
}

// ------------------------------------------------------------- utilities

/// Finds `token` in `code` at an identifier boundary; returns the byte
/// offset of the first hit.
fn find_token(code: &str, token: &str) -> Option<usize> {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let first_ident = token.chars().next().is_some_and(ident);
    let last_ident = token.chars().next_back().is_some_and(ident);
    let mut from = 0;
    while let Some(p) = code[from..].find(token) {
        let at = from + p;
        let pre_ok = !first_ident
            || !code[..at].chars().next_back().is_some_and(ident);
        let post_ok = !last_ident
            || !code[at + token.len()..].chars().next().is_some_and(ident);
        if pre_ok && post_ok {
            return Some(at);
        }
        from = at + token.len();
    }
    None
}

/// Whether the line comment carries `lint: <tag> — <justification>` with a
/// non-trivial justification.
fn has_justification(comment: &str, tag: &str) -> bool {
    let needle = format!("lint: {tag}");
    let Some(p) = comment.find(&needle) else {
        return false;
    };
    let rest = comment[p + needle.len()..]
        .trim_start_matches([' ', '—', '–', '-', ':']);
    rest.trim().len() >= 3
}

/// Whether line `i` carries a `lint: <tag>` justification, either in its
/// trailing comment or in the comment-only lines directly above it (a
/// justification usually wants more room than the end of the line).
fn justified(lines: &[crate::lexer::ScrubbedLine], i: usize, tag: &str) -> bool {
    if has_justification(&lines[i].comment, tag) {
        return true;
    }
    lines[..i]
        .iter()
        .rev()
        .take_while(|l| l.code.trim().is_empty() && !l.comment.trim().is_empty())
        .any(|l| has_justification(&l.comment, tag))
}

/// Byte positions of index-expression brackets: `[` directly preceded by
/// an identifier char, `)` or `]` (i.e. `buf[…]`, `f(x)[…]`, `a[0][1]`),
/// which excludes array literals/types, slice patterns and attributes.
fn index_brackets(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    (1..bytes.len())
        .filter(|&i| {
            bytes[i] == b'['
                && (bytes[i - 1].is_ascii_alphanumeric()
                    || bytes[i - 1] == b'_'
                    || bytes[i - 1] == b')'
                    || bytes[i - 1] == b']')
        })
        .collect()
}

// --------------------------------------------------------------- L1 – L3

/// L1: no panic on wire input.
pub fn l1(file: &SourceFile) -> Vec<Finding> {
    if !in_l1_scope(&file.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    const PANICS: &[(&str, &str)] = &[
        (".unwrap()", "`unwrap()` can panic on adversarial wire input; propagate a typed error"),
        (".expect(", "`expect()` can panic on adversarial wire input; propagate a typed error"),
        ("panic!(", "`panic!` on a wire-input path; return a typed error instead"),
        ("unreachable!(", "`unreachable!` on a wire-input path; make the state unrepresentable or return a typed error"),
        ("todo!(", "`todo!` placeholder on a wire-input path"),
        ("unimplemented!(", "`unimplemented!` placeholder on a wire-input path"),
    ];
    for (i, line) in file.scrub.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, msg) in PANICS {
            if find_token(&line.code, tok).is_some() {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: i + 1,
                    lint: "L1",
                    severity: Severity::Error,
                    message: (*msg).to_string(),
                });
            }
        }
        if !index_brackets(&line.code).is_empty()
            && !justified(&file.scrub.lines, i, "index-ok")
        {
            out.push(Finding {
                file: file.rel.clone(),
                line: i + 1,
                lint: "L1",
                severity: Severity::Error,
                message: "slice/array index can panic on wire input; use `get()`-style \
                          access with a typed error, or justify with `// lint: index-ok — <why>`"
                    .to_string(),
            });
        }
    }
    out
}

/// L2: determinism — no wall clock or ambient RNG in sim-domain crates.
pub fn l2(file: &SourceFile) -> Vec<Finding> {
    if !in_l2_scope(&file.rel) {
        return Vec::new();
    }
    const CLOCKS: &[(&str, &str)] = &[
        ("Instant::now", "wall-clock `Instant::now()` in a sim-domain crate; take time from the simulator context"),
        ("SystemTime", "`SystemTime` in a sim-domain crate; sim time is the only clock here"),
        ("UNIX_EPOCH", "`UNIX_EPOCH` in a sim-domain crate; sim time is the only clock here"),
        ("thread_rng", "ambient `thread_rng()` breaks run reproducibility; use a seeded RNG threaded from the scenario"),
        ("from_entropy", "entropy-seeded RNG breaks run reproducibility; use a seeded RNG threaded from the scenario"),
        ("rand::random", "ambient `rand::random` breaks run reproducibility; use a seeded RNG threaded from the scenario"),
    ];
    let mut out = Vec::new();
    for (i, line) in file.scrub.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, msg) in CLOCKS {
            if find_token(&line.code, tok).is_some() {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: i + 1,
                    lint: "L2",
                    severity: Severity::Error,
                    message: (*msg).to_string(),
                });
            }
        }
    }
    out
}

/// L3: every `Ordering::Relaxed` outside the obs record path needs an
/// inline justification; boolean flags published with `Relaxed` get a
/// pairing-specific message.
pub fn l3(file: &SourceFile) -> Vec<Finding> {
    if l3_exempt(&file.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.scrub.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if find_token(&line.code, "Ordering::Relaxed").is_none() {
            continue;
        }
        if justified(&file.scrub.lines, i, "relaxed-ok") {
            continue;
        }
        let flag_store = line.code.contains(".store(")
            && (line.code.contains("true") || line.code.contains("false"));
        let message = if flag_store {
            "cross-thread flag stored with `Ordering::Relaxed`; pair Release (store) with \
             Acquire (load), or justify with `// lint: relaxed-ok — <why>`"
        } else {
            "`Ordering::Relaxed` outside the obs record path; justify with \
             `// lint: relaxed-ok — <why>` or use an Acquire/Release pair"
        };
        out.push(Finding {
            file: file.rel.clone(),
            line: i + 1,
            lint: "L3",
            severity: Severity::Error,
            message: message.to_string(),
        });
    }
    out
}

// --------------------------------------------------------------- L6 / L7

/// Matching `)` of the `(` at `open` (byte offsets); `None` if unbalanced.
fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the token ending just before `at` (skipping whitespace) is `kw`.
fn preceded_by_kw(flat: &str, at: usize, kw: &str) -> bool {
    let head = flat[..at].trim_end();
    head.ends_with(kw)
        && !head[..head.len() - kw.len()]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Byte offsets in `code` where an assignment's left-hand side ends:
/// plain `=` and every compound `op=`, excluding `==`, `!=`, `<=`, `>=`
/// and `=>`.
fn assignment_sites(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for i in 0..b.len() {
        if b[i] != b'=' {
            continue;
        }
        if matches!(b.get(i + 1), Some(b'=') | Some(b'>')) {
            continue; // `==` / `=>`
        }
        let prev = i.checked_sub(1).map(|k| b[k]);
        let prev2 = i.checked_sub(2).map(|k| b[k]);
        match prev {
            Some(b'=') | Some(b'!') => {} // second `=` of `==`, or `!=`
            Some(b'<') => {
                if prev2 == Some(b'<') {
                    out.push(i - 2); // `<<=`
                }
            }
            Some(b'>') => {
                if prev2 == Some(b'>') {
                    out.push(i - 2); // `>>=`
                }
            }
            Some(op) if b"+-*/%&|^".contains(&op) => out.push(i - 1),
            _ => out.push(i),
        }
    }
    out
}

/// Walks backwards from `end` over a place expression — identifiers,
/// `.` / `::` separators and balanced `(…)` / `[…]` groups — returning
/// `(full path text, root identifier)`. The root is the leftmost plain
/// identifier (`self.shared.ring` → `shared.ring` path, root `shared`
/// after the `self.` strip; `*m.lock()` → path `m.lock()`, root `m`).
fn path_before(flat: &str, end: usize) -> (String, String) {
    let b = flat.as_bytes();
    let mut i = end;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let stop = i;
    loop {
        if i == 0 {
            break;
        }
        let c = b[i - 1];
        if c == b')' || c == b']' {
            // Skip the balanced group backwards.
            let (open, close) = if c == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0i32;
            let mut k = i;
            while k > 0 {
                let cc = b[k - 1];
                if cc == close {
                    depth += 1;
                } else if cc == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k == 0 {
                break;
            }
            i = k - 1;
        } else if is_ident_byte(c) || c == b'.' || c == b':' {
            i -= 1;
        } else {
            break;
        }
    }
    let mut path = flat[i..stop].trim_start_matches(':').to_string();
    if let Some(rest) = path.strip_prefix("self.") {
        path = rest.to_string();
    }
    let root: String = path
        .chars()
        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
        .collect();
    (path, root)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parameter identifiers of closures nested in `text`: a `|` opening a
/// parameter list follows `(`, `,`, `=`, `{`, `;` or the `move` keyword
/// (a binary `|` always follows an operand). Everything up to the
/// closing `|` is parsed as patterns.
fn collect_closure_params(text: &str, into: &mut BTreeSet<String>) {
    let b = text.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'|' {
            continue;
        }
        let head = text[..i].trim_end();
        let opens = head.is_empty()
            || head.ends_with(['(', ',', '=', '{', ';'])
            || preceded_by_kw(text, i, "move");
        if !opens || b.get(i + 1) == Some(&b'|') {
            continue; // operand `|`, or `||` (no params)
        }
        let Some(close) = text[i + 1..].find('|') else { continue };
        let params = &text[i + 1..i + 1 + close];
        if params.contains(';') || params.contains('{') {
            continue; // ran past a statement boundary: not a param list
        }
        for param in params.split(',') {
            let pat = param.split(':').next().unwrap_or("");
            for word in pat.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                if !word.is_empty() && !matches!(word, "mut" | "ref") {
                    into.insert(word.to_string());
                }
            }
        }
    }
}

/// Identifiers bound inside a closure body (or parameter list): `let`
/// patterns, `for` loop variables, closure parameters. Over-collects
/// pattern constructor names (`Some`), which is harmless — they are
/// never assignment roots.
fn collect_bindings(text: &str, into: &mut BTreeSet<String>) {
    let b = text.as_bytes();
    for kw in ["let", "for"] {
        let mut from = 0usize;
        while let Some(p) = find_token(&text[from..], kw) {
            let at = from + p;
            from = at + kw.len();
            // Idents up to the terminator: `=` for let, `in` for for.
            let mut j = from;
            while j < b.len() && b[j] != b'=' && b[j] != b';' && b[j] != b'{' {
                if is_ident_byte(b[j]) {
                    let s = j;
                    while j < b.len() && is_ident_byte(b[j]) {
                        j += 1;
                    }
                    let ident = &text[s..j];
                    if kw == "for" && ident == "in" {
                        break;
                    }
                    if !matches!(ident, "mut" | "ref" | "in") {
                        into.insert(ident.to_string());
                    }
                } else {
                    j += 1;
                }
            }
        }
    }
}

/// L6: shared-state escape. A variable captured by a spawned closure and
/// mutated inside it bypasses the repo's concurrency discipline: every
/// cross-thread cell must be an atomic or lock from `guardcheck::sync`
/// (so the model checker can exercise it) or carry an explicit
/// `// lint: shared-ok — <why>` (e.g. the value is moved, not shared).
/// The lexer cannot see ownership, so moved-and-mutated locals need the
/// justification too — that note is the audit trail the lint wants.
pub fn l6(file: &SourceFile) -> Vec<Finding> {
    let flat = &file.scrub.flat;
    let bytes = flat.as_bytes();
    let scopes = ScopeMap::build(flat);
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = find_token(&flat[from..], "spawn") {
        let at = from + p;
        from = at + "spawn".len();
        if preceded_by_kw(flat, at, "fn") {
            continue; // a `fn spawn(…)` definition, not a call
        }
        let mut i = from;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        let Some(call_close) = matching_paren(bytes, i) else { continue };
        let args = &flat[i + 1..call_close];
        // The closure literal: `move |params| body` / `|| body`. Calls
        // without one (`GuardServer::spawn(addr, seed)`) are not spawns
        // of interest.
        let Some(bar) = args.find('|') else { continue };
        let (params, body_rel) = if args[bar + 1..].starts_with('|') {
            ("", bar + 2)
        } else {
            match args[bar + 1..].find('|') {
                Some(q) => (&args[bar + 1..bar + 1 + q], bar + 2 + q),
                None => continue,
            }
        };
        // Body extent: a brace block (matched via the scope map) or a
        // bare expression running to the call's closing paren.
        let body_abs = i + 1 + body_rel;
        let mut k = body_abs;
        while k < call_close && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        let (body_start, body_end) = if bytes.get(k) == Some(&b'{') {
            match scopes.close_of(k) {
                Some(c) => (k + 1, c),
                None => (k + 1, call_close),
            }
        } else {
            (k, call_close)
        };
        let body = &flat[body_start..body_end];

        let mut locals: BTreeSet<String> = BTreeSet::new();
        for param in params.split(',') {
            // Pattern idents before any `: Type` annotation.
            let pat = param.split(':').next().unwrap_or("");
            for word in pat.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                if !word.is_empty() && !matches!(word, "mut" | "ref") {
                    locals.insert(word.to_string());
                }
            }
        }
        collect_bindings(body, &mut locals);
        collect_closure_params(body, &mut locals);

        for lhs_end in assignment_sites(body) {
            let (path, root) = path_before(flat, body_start + lhs_end);
            if root.is_empty()
                || root == "self"
                || root.chars().next().is_some_and(|c| c.is_ascii_digit())
                || locals.contains(&root)
                || path.contains("lock(")
            {
                continue;
            }
            let line = file.scrub.line_of(body_start + lhs_end);
            if file.scrub.is_test_line(line) || justified(&file.scrub.lines, line - 1, "shared-ok")
            {
                continue;
            }
            out.push(Finding {
                file: file.rel.clone(),
                line,
                lint: "L6",
                severity: Severity::Error,
                message: format!(
                    "captured `{root}` is mutated inside a spawned closure; share it \
                     through a guardcheck::sync atomic or lock (so the model checker \
                     covers it), or justify with `// lint: shared-ok — <why>`"
                ),
            });
        }
    }
    out
}

/// One hold-while-acquiring edge: lock `from` was (plausibly) held when
/// lock `to` was acquired.
struct LockEdge {
    from: String,
    to: String,
    file: String,
    /// Line of the `to` acquisition (the finding anchor).
    line: usize,
    /// Line of the `from` acquisition (context in the message).
    held_line: usize,
}

/// Lock acquisitions of one function body, with liveness extents:
/// `let g = x.lock()` guards live to the end of their enclosing scope
/// (or an explicit `drop(g)`); bare `x.lock().f()` temporaries live to
/// the end of their statement.
fn lock_sites(
    file: &SourceFile,
    scopes: &ScopeMap,
    body: (usize, usize),
) -> Vec<(usize, String, usize, usize)> {
    let flat = &file.scrub.flat;
    let bytes = flat.as_bytes();
    let (bo, bc) = body;
    let mut sites = Vec::new();
    let mut from = bo;
    while let Some(p) = flat[from..bc].find(".lock()") {
        let at = from + p;
        from = at + ".lock()".len();
        let line = file.scrub.line_of(at);
        if file.scrub.is_test_line(line) {
            continue;
        }
        let (path, root) = path_before(flat, at);
        if root.is_empty() {
            continue;
        }
        // Statement start: the last `;`/`{`/`}` before the receiver.
        let recv_start = at - path.len();
        let stmt_start = flat[bo..recv_start]
            .rfind([';', '{', '}'])
            .map_or(bo, |q| bo + q + 1);
        let let_bound = find_token(&flat[stmt_start..recv_start], "let").is_some();
        let live_until = if let_bound {
            let scope_end = scopes.enclosing(at).map_or(bc, |(_, c)| c).min(bc);
            // An explicit `drop(guard)` releases early.
            let guard = flat[stmt_start..recv_start]
                .split_whitespace()
                .filter(|w| !matches!(*w, "let" | "mut"))
                .find_map(|w| {
                    let id: String =
                        w.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                    (!id.is_empty()).then_some(id)
                });
            match guard.and_then(|g| {
                let needle = format!("drop({g})");
                flat[at..scope_end].find(&needle).map(|q| at + q)
            }) {
                Some(dropped) => dropped,
                None => scope_end,
            }
        } else {
            flat[at..bc]
                .find(';')
                .map_or_else(|| bc.min(bytes.len()), |q| at + q)
        };
        sites.push((at, path, live_until, line));
    }
    sites
}

/// L7: lock-ordering. Builds the hold-while-acquiring graph across the
/// whole lint set (edges keyed by receiver path, `self.` stripped) and
/// flags every acquisition participating in a cycle — the classic
/// AB/BA deadlock recipe — plus re-acquisition of a lock already held
/// (a self-deadlock with the non-reentrant `guardcheck::sync::Mutex`).
/// `// lint: lockorder-ok — <why>` on the inner acquisition exempts it.
pub fn l7(files: &[SourceFile]) -> Vec<Finding> {
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut selfs: Vec<LockEdge> = Vec::new();
    for f in files {
        let flat = &f.scrub.flat;
        let scopes = ScopeMap::build(flat);
        for func in functions(flat, &scopes) {
            let sites = lock_sites(f, &scopes, func.body);
            for (i, (at, path, _until, line)) in sites.iter().enumerate() {
                for (_pat, ppath, puntil, pline) in &sites[..i] {
                    if puntil <= at {
                        continue; // earlier guard already dead here
                    }
                    let edge = LockEdge {
                        from: ppath.clone(),
                        to: path.clone(),
                        file: f.rel.clone(),
                        line: *line,
                        held_line: *pline,
                    };
                    if ppath == path {
                        selfs.push(edge);
                    } else {
                        edges.push(edge);
                    }
                }
            }
        }
    }

    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |start: &str, goal: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if n == goal {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };

    let mut out = Vec::new();
    for e in &selfs {
        let file = files.iter().find(|f| f.rel == e.file);
        if file.is_some_and(|f| justified(&f.scrub.lines, e.line - 1, "lockorder-ok")) {
            continue;
        }
        out.push(Finding {
            file: e.file.clone(),
            line: e.line,
            lint: "L7",
            severity: Severity::Error,
            message: format!(
                "lock `{}` re-acquired while the guard from line {} is still live — \
                 self-deadlock with a non-reentrant mutex; drop the first guard, or \
                 justify with `// lint: lockorder-ok — <why>`",
                e.to, e.held_line
            ),
        });
    }
    for e in &edges {
        if !reaches(&e.to, &e.from) {
            continue;
        }
        let file = files.iter().find(|f| f.rel == e.file);
        if file.is_some_and(|f| justified(&f.scrub.lines, e.line - 1, "lockorder-ok")) {
            continue;
        }
        let witness = edges
            .iter()
            .find(|w| w.from == e.to && reaches(&w.to, &e.from))
            .map(|w| format!(" (reverse path starts at {}:{})", w.file, w.line))
            .unwrap_or_default();
        out.push(Finding {
            file: e.file.clone(),
            line: e.line,
            lint: "L7",
            severity: Severity::Error,
            message: format!(
                "lock-order cycle: `{}` (held since line {}) → `{}` here, but the \
                 reverse order also exists{witness}; pick one global order or justify \
                 with `// lint: lockorder-ok — <why>`",
                e.from, e.held_line, e.to
            ),
        });
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

// ------------------------------------------------ flat-stream extraction

/// A string argument extracted from the flat stream.
#[derive(Debug, Clone)]
struct ArgStr {
    line: usize,
    content: String,
}

/// Extracts, for every non-test call of `.method(`, up to `max` string
/// literals appearing among its arguments (balanced-paren scan).
fn call_string_args(file: &SourceFile, method: &str, max: usize) -> Vec<(usize, Vec<ArgStr>)> {
    let flat = &file.scrub.flat;
    let needle = format!(".{method}(");
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = flat[from..].find(&needle) {
        let at = from + p;
        from = at + needle.len();
        // Reject `.method_longer(` lookalikes: char before the dot-name
        // match is irrelevant (the dot anchors it), but the name must end
        // exactly at `(` which the needle guarantees.
        let call_line = file.scrub.line_of(at);
        if file.scrub.is_test_line(call_line) {
            continue;
        }
        let mut args = Vec::new();
        let mut depth = 1i32;
        let bytes = flat.as_bytes();
        let mut i = at + needle.len();
        while i < bytes.len() && depth > 0 {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                1 => {
                    let tail = &flat[i..];
                    if let Some((_, idx)) = str_refs(tail).next() {
                        if args.len() < max {
                            let lit = &file.scrub.strings[idx];
                            args.push(ArgStr { line: lit.line, content: lit.content.clone() });
                        }
                    }
                    while i < bytes.len() && bytes[i] != 2 {
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out.push((call_line, args));
    }
    out
}

/// Extracts the string literals of an array declaration `NAME… = &[ … ]`.
fn array_literals(file: &SourceFile, name: &str) -> Option<(usize, Vec<ArgStr>)> {
    let flat = &file.scrub.flat;
    let at = find_token(flat, name)?;
    // Skip past the `=` so the `&[&str]` type annotation's bracket is not
    // mistaken for the literal's.
    let eq = at + flat[at..].find('=')?;
    let open = eq + flat[eq..].find('[')?;
    let decl_line = file.scrub.line_of(at);
    let bytes = flat.as_bytes();
    let mut depth = 0i32;
    let mut i = open;
    let mut lits = Vec::new();
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            1 => {
                if let Some((_, idx)) = str_refs(&flat[i..]).next() {
                    let lit = &file.scrub.strings[idx];
                    lits.push(ArgStr { line: lit.line, content: lit.content.clone() });
                }
                while i < bytes.len() && bytes[i] != 2 {
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((decl_line, lits))
}

/// All non-test string literals of a file.
fn nontest_strings(file: &SourceFile) -> Vec<ArgStr> {
    file.scrub
        .strings
        .iter()
        .filter(|s| !file.scrub.is_test_line(s.line))
        .map(|s| ArgStr { line: s.line, content: s.content.clone() })
        .collect()
}

// -------------------------------------------------------------------- L4

const TELEMETRY_CHECK: &str = "crates/bench/src/bin/telemetry_check.rs";
const ALERT_RS: &str = "crates/obs/src/alert.rs";
const FLEET_RS: &str = "crates/obs/src/fleet.rs";

/// Rule engines checked by L4 legs B/C: `(file, rule-table const)`. The
/// per-node engine declares `RULES`, the fleet aggregator `FLEET_RULES`;
/// both read metrics through match arms and fire through `set_state`.
const RULE_ENGINES: &[(&str, &str)] = &[(ALERT_RS, "RULES"), (FLEET_RS, "FLEET_RULES")];

/// Registry definition sites: `(component, name)` pairs registered by any
/// non-test `.counter( / .gauge( / .histogram( / .adopt_*(` call.
fn metric_definitions(files: &[SourceFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut defs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    const METHODS: &[&str] = &[
        "counter",
        "gauge",
        "histogram",
        "adopt_counter",
        "adopt_gauge",
        "adopt_histogram",
    ];
    for f in files {
        for m in METHODS {
            for (_, args) in call_string_args(f, m, 2) {
                if let [comp, name] = args.as_slice() {
                    defs.entry(name.content.clone())
                        .or_default()
                        .insert(comp.content.clone());
                }
            }
        }
    }
    defs
}

/// Match-arm tuple references `("comp", "name") =>` / `(_, "name") if` in
/// the alert rules. Returns `(line, Option<component>, name)`.
fn alert_metric_refs(file: &SourceFile) -> Vec<(usize, Option<String>, String)> {
    let flat = &file.scrub.flat;
    let bytes = flat.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'(' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let skip_ws = |j: &mut usize| {
            while *j < bytes.len() && (bytes[*j] as char).is_whitespace() {
                *j += 1;
            }
        };
        let read_str = |j: &mut usize| -> Option<usize> {
            if bytes.get(*j) != Some(&1) {
                return None;
            }
            let (_, idx) = str_refs(&flat[*j..]).next()?;
            while *j < bytes.len() && bytes[*j] != 2 {
                *j += 1;
            }
            *j += 1;
            Some(idx)
        };
        skip_ws(&mut j);
        let comp = if bytes.get(j) == Some(&b'_') {
            j += 1;
            None
        } else if let Some(idx) = read_str(&mut j) {
            Some(idx)
        } else {
            i += 1;
            continue;
        };
        skip_ws(&mut j);
        if bytes.get(j) != Some(&b',') {
            i += 1;
            continue;
        }
        j += 1;
        skip_ws(&mut j);
        let Some(name_idx) = read_str(&mut j) else {
            i += 1;
            continue;
        };
        skip_ws(&mut j);
        if bytes.get(j) != Some(&b')') {
            i += 1;
            continue;
        }
        j += 1;
        skip_ws(&mut j);
        let arm = flat[j..].starts_with("=>") || flat[j..].starts_with("if ");
        if arm {
            let name = &file.scrub.strings[name_idx];
            if !file.scrub.is_test_line(name.line) {
                out.push((
                    name.line,
                    comp.map(|c| file.scrub.strings[c].content.clone()),
                    name.content.clone(),
                ));
            }
        }
        i = j;
    }
    out
}

/// L4: metric/alert-name cross-check.
pub fn l4(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let defs = metric_definitions(files);
    let components: BTreeSet<&String> = defs.values().flatten().collect();

    // Leg A — telemetry_check's snapshot keys name real metrics.
    if let Some(tc) = files.iter().find(|f| f.rel == TELEMETRY_CHECK) {
        for s in nontest_strings(tc) {
            for (key, is_name) in [("\"name\":\"", true), ("\"component\":\"", false)] {
                let mut from = 0usize;
                while let Some(p) = s.content[from..].find(key) {
                    let start = from + p + key.len();
                    let Some(end) = s.content[start..].find('"') else { break };
                    let token = &s.content[start..start + end];
                    let ok = if is_name {
                        defs.contains_key(token)
                    } else {
                        components.iter().any(|c| c.as_str() == token)
                    };
                    if !ok {
                        out.push(Finding {
                            file: tc.rel.clone(),
                            line: s.line,
                            lint: "L4",
                            severity: Severity::Error,
                            message: format!(
                                "telemetry_check expects {} {token:?}, but no registry \
                                 definition site registers it",
                                if is_name { "metric" } else { "component" }
                            ),
                        });
                    }
                    from = start + end;
                }
            }
        }
    }

    // Legs B/C — every rule engine (per-node alert.rs, fleet aggregator)
    // reads real metrics and evaluates every declared rule.
    for &(engine_rel, table) in RULE_ENGINES {
        let Some(engine) = files.iter().find(|f| f.rel == engine_rel) else { continue };
        for (line, comp, name) in alert_metric_refs(engine) {
            match (&comp, defs.get(&name)) {
                (_, None) => out.push(Finding {
                    file: engine.rel.clone(),
                    line,
                    lint: "L4",
                    severity: Severity::Error,
                    message: format!(
                        "alert rule reads metric {name:?}, but no registry definition \
                         site registers it"
                    ),
                }),
                (Some(c), Some(comps)) if !comps.contains(c) => out.push(Finding {
                    file: engine.rel.clone(),
                    line,
                    lint: "L4",
                    severity: Severity::Error,
                    message: format!(
                        "alert rule reads metric {name:?} of component {c:?}, but it is \
                         only registered under {comps:?}"
                    ),
                }),
                _ => {}
            }
        }
        if let Some((decl_line, rules)) = array_literals(engine, table) {
            let evaluated: BTreeSet<String> = call_string_args(engine, "set_state", 1)
                .into_iter()
                .filter_map(|(_, args)| args.first().map(|a| a.content.clone()))
                .collect();
            for r in &rules {
                if !evaluated.contains(&r.content) {
                    out.push(Finding {
                        file: engine.rel.clone(),
                        line: decl_line,
                        lint: "L4",
                        severity: Severity::Error,
                        message: format!(
                            "alert rule {:?} is declared in {table} but never evaluated \
                             (no set_state site)",
                            r.content
                        ),
                    });
                }
            }
            let declared: BTreeSet<&str> = rules.iter().map(|r| r.content.as_str()).collect();
            for (line, args) in call_string_args(engine, "set_state", 1) {
                if let Some(rule) = args.first() {
                    if !declared.contains(rule.content.as_str()) {
                        out.push(Finding {
                            file: engine.rel.clone(),
                            line,
                            lint: "L4",
                            severity: Severity::Error,
                            message: format!(
                                "set_state fires rule {:?} which is not declared in {table}",
                                rule.content
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

// -------------------------------------------------------------------- L5

const OBS_EXPORT: &str = "crates/bench/src/obs_export.rs";
const GUARD_RS: &str = "crates/core/src/guard.rs";
const ANALYTICS_RS: &str = "crates/core/src/analytics.rs";
const POISON_RS: &str = "crates/bench/src/poison.rs";

/// Trace-kind contracts checked by L5: `(file, kind-table const)`. The
/// export contract promises `REQUIRED_KINDS`; the fleet aggregator
/// promises the `STITCH_KINDS` it synthesises during stitching; the
/// traffic-analytics pipeline promises the `ANALYTICS_KINDS` it emits
/// on each sketch refresh; the poisoning bench promises the
/// `POISON_KINDS` the resolver hardening and fragmentation faults emit
/// during the success-probability sweep.
const KIND_CONTRACTS: &[(&str, &str)] = &[
    (OBS_EXPORT, "REQUIRED_KINDS"),
    (FLEET_RS, "STITCH_KINDS"),
    (ANALYTICS_RS, "ANALYTICS_KINDS"),
    (POISON_RS, "POISON_KINDS"),
];

/// Files whose emitted kinds must be observed elsewhere in the corpus:
/// the guard's per-decision events, and the analytics pipeline's
/// per-refresh population events (both feed dashboards and alerts, so an
/// unreferenced kind is dead telemetry).
const OBSERVED_EMITTERS: &[&str] = &[GUARD_RS, ANALYTICS_RS];

/// Trace emit sites: `(kind, file, line)` for every non-test
/// `.event( / .debug(` call (the kind is the first string argument).
fn emit_sites(files: &[SourceFile]) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for f in files {
        for m in ["event", "debug"] {
            for (line, args) in call_string_args(f, m, 1) {
                if let Some(kind) = args.first() {
                    out.push((kind.content.clone(), f.rel.clone(), line));
                }
            }
        }
    }
    out
}

/// L5: trace coverage.
///
/// * every kind in a declared contract table (`REQUIRED_KINDS` in the
///   export, `STITCH_KINDS` in the fleet aggregator, `ANALYTICS_KINDS`
///   in the traffic-analytics pipeline) has an emit site;
/// * every kind emitted by an `OBSERVED_EMITTERS` file (`core::guard`,
///   `core::analytics`) is referenced (as a string literal) somewhere
///   else in the workspace — journey assembly, alert rules, the fleet
///   collector vocabulary, benches or tests — so no decision or
///   population event is unobserved.
///
/// `corpus` is the wider reference set (lint files plus tests/examples),
/// searched including test code.
pub fn l5(files: &[SourceFile], corpus: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let emits = emit_sites(files);
    let emitted: BTreeSet<&str> = emits.iter().map(|(k, _, _)| k.as_str()).collect();

    for &(contract_rel, table) in KIND_CONTRACTS {
        let Some(exp) = files.iter().find(|f| f.rel == contract_rel) else { continue };
        if let Some((_, kinds)) = array_literals(exp, table) {
            for k in &kinds {
                if !emitted.contains(k.content.as_str()) {
                    out.push(Finding {
                        file: exp.rel.clone(),
                        line: k.line,
                        lint: "L5",
                        severity: Severity::Error,
                        message: format!(
                            "required trace kind {:?} ({table}) has no \
                             `.event()`/`.debug()` emit site in the workspace",
                            k.content
                        ),
                    });
                }
            }
        }
    }

    // Kinds emitted by the observed-emitter files (guard decisions,
    // analytics refreshes) must be referenced somewhere outside them.
    for &emitter in OBSERVED_EMITTERS {
        let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
        for (k, file, line) in &emits {
            if file == emitter {
                kinds.entry(k).or_insert(*line);
            }
        }
        for (kind, line) in kinds {
            let observed = corpus.iter().any(|f| {
                f.rel != emitter && f.scrub.strings.iter().any(|s| s.content == kind)
            });
            if !observed {
                out.push(Finding {
                    file: emitter.to_string(),
                    line,
                    lint: "L5",
                    severity: Severity::Error,
                    message: format!(
                        "emitted trace kind {kind:?} is referenced nowhere else \
                         (journeys, alerts, benches or tests) — unobserved telemetry"
                    ),
                });
            }
        }
    }
    out
}

/// Runs every family over the lint set, with `corpus` as the L5 reference
/// universe.
pub fn run_all(files: &[SourceFile], corpus: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        out.extend(l1(f));
        out.extend(l2(f));
        out.extend(l3(f));
        out.extend(l6(f));
    }
    out.extend(l4(files));
    out.extend(l5(files, corpus));
    out.extend(l7(files));
    out
}

// Keep the placeholder byte referenced so the lexer contract is explicit.
const _: () = assert!(STR_OPEN as u32 == 1);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), scrub: scrub(src) }
    }

    #[test]
    fn l1_flags_unwrap_in_scope_only() {
        let bad = file("crates/dnswire/src/name.rs", "fn f(v: Option<u8>) { v.unwrap(); }\n");
        assert_eq!(l1(&bad).len(), 1);
        let out_of_scope = file("crates/bench/src/report.rs", "fn f(v: Option<u8>) { v.unwrap(); }\n");
        assert!(l1(&out_of_scope).is_empty());
    }

    #[test]
    fn l1_ignores_strings_comments_and_tests() {
        let src = "const S: &str = \"x.unwrap()\"; // unwrap() in comment\n#[cfg(test)]\nmod t { fn f(v: Option<u8>) { v.unwrap(); } }\n";
        let f = file("crates/dnswire/src/name.rs", src);
        assert!(l1(&f).is_empty(), "{:?}", l1(&f));
    }

    #[test]
    fn l1_indexing_needs_justification() {
        let f = file("crates/dnswire/src/header.rs", "fn f(b: &[u8]) -> u8 { b[0] }\n");
        assert_eq!(l1(&f).len(), 1);
        let ok = file(
            "crates/dnswire/src/header.rs",
            "fn f(b: &[u8]) -> u8 { b[0] } // lint: index-ok — length checked by caller\n",
        );
        assert!(l1(&ok).is_empty());
    }

    #[test]
    fn l1_unwrap_or_is_fine() {
        let f = file("crates/dnswire/src/name.rs", "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }\n");
        assert!(l1(&f).is_empty());
    }

    #[test]
    fn l2_flags_wall_clock_in_sim_domain() {
        let f = file("crates/core/src/guard.rs", "fn f() { let t = std::time::Instant::now(); }\n");
        let findings = l2(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "L2");
        let rt = file("crates/runtime/src/telemetry.rs", "fn f() { let t = std::time::Instant::now(); }\n");
        assert!(l2(&rt).is_empty(), "wall clock is allowed in runtime");
    }

    #[test]
    fn l3_requires_justification_outside_record_path() {
        let bare = file("crates/runtime/src/ans.rs", "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(l3(&bare).len(), 1);
        let just = file(
            "crates/runtime/src/ans.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // lint: relaxed-ok — monotonic counter\n",
        );
        assert!(l3(&just).is_empty());
        let exempt = file("crates/obs/src/metrics.rs", "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert!(l3(&exempt).is_empty());
    }

    #[test]
    fn l3_flag_store_gets_pairing_message() {
        let f = file("crates/runtime/src/ans.rs", "fn f(s: &AtomicBool) { s.store(true, Ordering::Relaxed); }\n");
        let findings = l3(&f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("Release"));
    }

    #[test]
    fn l4_detects_phantom_metric() {
        let defs = file(
            "crates/core/src/guard.rs",
            "fn a(r: &Registry) { r.adopt_counter(\"guard\", \"verify\", &[], &c); }\n",
        );
        let tc = file(
            TELEMETRY_CHECK,
            "const K: &[&str] = &[\"\\\"name\\\":\\\"verify\\\"\", \"\\\"name\\\":\\\"no_such\\\"\"];\n",
        );
        let findings = l4(&[defs, tc]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no_such"));
    }

    #[test]
    fn l4_alert_match_arm_checked() {
        let defs = file(
            "crates/core/src/guard.rs",
            "fn a(r: &Registry) { r.adopt_counter(\"guard\", \"verify\", &[], &c); }\n",
        );
        let alert = file(
            ALERT_RS,
            "fn e(s: &S) { match (s.component, s.name) { (_, \"verify\") => {}, (\"guard\", \"ghost\") => {}, _ => {} } }\n",
        );
        let findings = l4(&[defs, alert]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ghost"));
    }

    #[test]
    fn l4_unevaluated_rule_flagged() {
        let alert = file(
            ALERT_RS,
            "pub const RULES: &[&str] = &[\"live_rule\", \"dead_rule\"];\nfn e(&mut self, t: u64) { self.set_state(t, \"live_rule\", true, 0.0, 0.0); }\n",
        );
        let findings = l4(&[alert]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("dead_rule"));
    }

    #[test]
    fn l4_fleet_rule_table_checked() {
        let fleet = file(
            FLEET_RS,
            "pub const FLEET_RULES: &[&str] = &[\"fleet_spoof_surge\", \"dead_fleet_rule\"];\nfn e(&mut self, t: u64) { self.set_state(t, \"fleet_spoof_surge\", true, 0.0, 0.0); }\n",
        );
        let findings = l4(&[fleet]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("dead_fleet_rule"));
        assert!(findings[0].message.contains("FLEET_RULES"));
    }

    #[test]
    fn l4_fleet_match_arm_checked() {
        let defs = file(
            "crates/core/src/guard.rs",
            "fn a(r: &Registry) { r.adopt_counter(\"guard\", \"verify\", &[], &c); }\n",
        );
        let fleet = file(
            FLEET_RS,
            "fn e(s: &S) { match (s.component, s.name) { (_, \"verify\") => {}, (\"guard_server\", \"phantom\") => {}, _ => {} } }\n",
        );
        let findings = l4(&[defs, fleet]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("phantom"));
        assert_eq!(findings[0].file, FLEET_RS);
    }

    #[test]
    fn l5_stitch_kind_without_emitter() {
        let fleet = file(
            FLEET_RS,
            "pub const STITCH_KINDS: &[&str] = &[\"journey_stitch\", \"ghost_stitch\"];\nfn s(&self, t: u64) { self.trace.event(t, \"journey_stitch\", &[]); }\n",
        );
        let findings = l5(std::slice::from_ref(&fleet), &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ghost_stitch"));
        assert!(findings[0].message.contains("STITCH_KINDS"));
    }

    #[test]
    fn l5_required_kind_without_emitter() {
        let exp = file(
            OBS_EXPORT,
            "pub const REQUIRED_KINDS: &[&str] = &[\"grant\", \"ghost_kind\"];\n",
        );
        let guard = file(
            GUARD_RS,
            "fn f(&self, t: u64) { self.metrics.trace.event(t, \"grant\", &[]); }\n",
        );
        let refs = file("tests/journeys.rs", "const K: &str = \"grant\";\n");
        let all = [exp, guard];
        let corpus = [refs];
        let findings = l5(&all, &corpus);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ghost_kind"));
    }

    #[test]
    fn l4_analytics_rules_need_set_state_sites() {
        // The discriminator rules ride the same RULES contract as every
        // other alert: declared + evaluated is clean, declared-only is not.
        let both = file(
            ALERT_RS,
            "pub const RULES: &[&str] = &[\"spoof_flood\", \"flash_crowd\"];\n\
             fn e(&mut self, t: u64) { self.set_state(t, \"spoof_flood\", true, 0.0, 0.0); \
             self.set_state(t, \"flash_crowd\", false, 0.0, 0.0); }\n",
        );
        assert!(l4(std::slice::from_ref(&both)).is_empty());
        let missing = file(
            ALERT_RS,
            "pub const RULES: &[&str] = &[\"spoof_flood\", \"flash_crowd\"];\n\
             fn e(&mut self, t: u64) { self.set_state(t, \"spoof_flood\", true, 0.0, 0.0); }\n",
        );
        let findings = l4(std::slice::from_ref(&missing));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("flash_crowd"));
    }

    #[test]
    fn l5_analytics_kind_without_emitter() {
        let analytics = file(
            ANALYTICS_RS,
            "pub const ANALYTICS_KINDS: &[&str] = &[\"analytics_topk\", \"ghost_topk\"];\n\
             fn r(&self, t: u64) { self.trace.event(t, \"analytics_topk\", &[]); }\n",
        );
        let findings = l5(std::slice::from_ref(&analytics), &[]);
        // `ghost_topk` has no emit site; `analytics_topk` is emitted but
        // unobserved — both legs must fire.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("ghost_topk")
            && f.message.contains("ANALYTICS_KINDS")));
        assert!(findings.iter().any(|f| f.message.contains("analytics_topk")
            && f.message.contains("unobserved")));
    }

    #[test]
    fn l5_observed_analytics_kind_is_clean() {
        let analytics = file(
            ANALYTICS_RS,
            "pub const ANALYTICS_KINDS: &[&str] = &[\"analytics_topk\"];\n\
             fn r(&self, t: u64) { self.trace.event(t, \"analytics_topk\", &[]); }\n",
        );
        let witness = file(
            "crates/runtime/src/fleet_collector.rs",
            "const VOCAB: &[&str] = &[\"analytics_topk\"];\n",
        );
        let findings = l5(std::slice::from_ref(&analytics), &[witness]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn l6_flags_captured_mutation_in_spawned_closure() {
        let f = file(
            "crates/runtime/src/worker.rs",
            "fn f() { let mut shared = 0u64; std::thread::spawn(move || { shared += 1; }); }\n",
        );
        let found = l6(&f);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`shared`"), "{}", found[0].message);
    }

    #[test]
    fn l6_locals_locks_and_justifications_are_clean() {
        let local = file(
            "crates/runtime/src/worker.rs",
            "fn f() { std::thread::spawn(move || { let mut n = 0; n += 1; }); }\n",
        );
        assert!(l6(&local).is_empty(), "{:?}", l6(&local));
        let locked = file(
            "crates/runtime/src/worker.rs",
            "fn f() { std::thread::spawn(move || { *snap.lock() = fresh(); }); }\n",
        );
        assert!(l6(&locked).is_empty(), "{:?}", l6(&locked));
        let just = file(
            "crates/runtime/src/worker.rs",
            "fn f() { std::thread::spawn(move || {\n    total += 1; // lint: shared-ok — moved accumulator, returned via join\n}); }\n",
        );
        assert!(l6(&just).is_empty(), "{:?}", l6(&just));
    }

    #[test]
    fn l6_skips_definitions_and_non_closure_spawn_calls() {
        let f = file(
            "crates/runtime/src/worker.rs",
            "pub fn spawn(x: u8) { total = x; }\nfn g() { GuardServer::spawn(addr, seed); }\n",
        );
        assert!(l6(&f).is_empty(), "{:?}", l6(&f));
    }

    #[test]
    fn l6_closure_params_and_for_bindings_are_local() {
        let f = file(
            "crates/runtime/src/worker.rs",
            "fn f() { pool.spawn(move |mut acc: u64| { for x in 0..3 { acc += x; } acc }); }\n",
        );
        assert!(l6(&f).is_empty(), "{:?}", l6(&f));
    }

    #[test]
    fn l6_nested_closure_params_are_local() {
        // `CURRENT.with(|c| *c.borrow_mut() = …)` inside a spawn: `c` is a
        // nested-closure parameter, not a capture.
        let f = file(
            "crates/runtime/src/worker.rs",
            "fn f() { std::thread::spawn(move || { CURRENT.with(|c| *c.borrow_mut() = Some(1)); }); }\n",
        );
        assert!(l6(&f).is_empty(), "{:?}", l6(&f));
    }

    #[test]
    fn l7_detects_ab_ba_cycle_across_functions() {
        let f = file(
            "crates/core/src/shards.rs",
            "fn a(&self) { let g = self.m1.lock(); self.m2.lock().poke(); }\n\
             fn b(&self) { let g = self.m2.lock(); self.m1.lock().poke(); }\n",
        );
        let found = l7(std::slice::from_ref(&f));
        assert_eq!(found.len(), 2, "both directions flagged: {found:?}");
        assert!(found[0].message.contains("m1") && found[0].message.contains("m2"));
        assert!(found.iter().any(|x| x.message.contains("reverse path starts at")));
    }

    #[test]
    fn l7_temporary_guards_make_no_edges() {
        let f = file(
            "crates/core/src/shards.rs",
            "fn a(&self) { self.m1.lock().poke(); self.m2.lock().poke(); }\n\
             fn b(&self) { self.m2.lock().poke(); self.m1.lock().poke(); }\n",
        );
        assert!(l7(std::slice::from_ref(&f)).is_empty(), "{:?}", l7(std::slice::from_ref(&f)));
    }

    #[test]
    fn l7_self_double_lock_flagged_and_drop_releases() {
        let double = file(
            "crates/core/src/shards.rs",
            "fn a(&self) { let g = self.m.lock(); self.m.lock().poke(); }\n",
        );
        let found = l7(std::slice::from_ref(&double));
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("self-deadlock"), "{}", found[0].message);
        let dropped = file(
            "crates/core/src/shards.rs",
            "fn a(&self) { let g = self.m.lock(); drop(g); self.m.lock().poke(); }\n",
        );
        assert!(l7(std::slice::from_ref(&dropped)).is_empty());
    }

    #[test]
    fn l7_consistent_order_is_clean_and_justification_respected() {
        let consistent = file(
            "crates/core/src/shards.rs",
            "fn a(&self) { let g = self.m1.lock(); self.m2.lock().poke(); }\n\
             fn b(&self) { let g = self.m1.lock(); self.m2.lock().poke(); }\n",
        );
        assert!(l7(std::slice::from_ref(&consistent)).is_empty());
        let justified = file(
            "crates/core/src/shards.rs",
            "fn a(&self) { let g = self.m1.lock(); self.m2.lock().poke(); } // lint: lockorder-ok — m2 is a leaf lock\n\
             fn b(&self) { let g = self.m2.lock(); self.m1.lock().poke(); } // lint: lockorder-ok — never concurrent with a()\n",
        );
        assert!(l7(std::slice::from_ref(&justified)).is_empty());
    }

    #[test]
    fn l5_unobserved_guard_kind() {
        let guard = file(
            GUARD_RS,
            "fn f(&self, t: u64) { self.metrics.trace.event(t, \"lonely_kind\", &[]); }\n",
        );
        let findings = l5(std::slice::from_ref(&guard), &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lonely_kind"));
        let witness = file("tests/x.rs", "const K: &str = \"lonely_kind\";\n");
        let findings = l5(std::slice::from_ref(&guard), &[witness]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
