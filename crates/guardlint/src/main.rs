#![forbid(unsafe_code)]
//! The `guardlint` CLI: walks the workspace, prints findings, and (with
//! `--deny`) fails on any error-severity finding.

use guardlint::findings::to_json;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
guardlint — workspace-native static analysis for the DNS-guard repo

USAGE: guardlint [--root <dir>] [--allowlist <Lint.toml>] [--json] [--github] [--deny]

  --root <dir>        workspace root (default: current directory)
  --allowlist <file>  allowlist path (default: <root>/Lint.toml)
  --json              emit findings as a JSON array on stdout
  --github            emit findings as GitHub Actions ::error/::warning
                      annotations (for PR-line placement in CI)
  --deny              exit non-zero when any error-severity finding
                      remains; stale allowlist entries become errors

Lint families: L1 no-panic-on-wire-input, L2 determinism, L3 relaxed-
ordering justification, L4 metric-name cross-check, L5 trace coverage,
L6 shared-state escape, L7 lock-ordering cycles.";

fn main() {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut json = false;
    let mut github = false;
    let mut deny = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => usage_error("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => usage_error("--allowlist needs a value"),
            },
            "--json" => json = true,
            "--github" => github = true,
            "--deny" => deny = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let allowlist = allowlist.unwrap_or_else(|| root.join("Lint.toml"));
    let result = match guardlint::run(&root, &allowlist, deny) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("guardlint: {}: {e}", root.display());
            exit(2);
        }
    };

    if json {
        print!("{}", to_json(&result.findings));
    } else {
        for f in &result.findings {
            println!("{}", if github { f.render_github() } else { f.render() });
        }
    }
    let (errors, warnings) = (result.errors(), result.warnings());
    eprintln!(
        "guardlint: {} file(s), {errors} error(s), {warnings} warning(s)",
        result.files_scanned
    );
    if deny && errors > 0 {
        exit(1);
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("guardlint: {msg}\n\n{USAGE}");
    exit(2)
}
