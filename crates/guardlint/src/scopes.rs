//! Brace-aware scope tracking over the scrubbed flat stream.
//!
//! The per-line token families (L1–L3) never need structure, but the
//! concurrency families do: L6 must know where a spawned closure's body
//! ends, and L7 must know which function a lock acquisition belongs to
//! and how long a `let`-bound guard lives. [`ScopeMap`] matches every
//! brace pair in a [`crate::lexer::Scrubbed::flat`] stream — strings,
//! chars and comments are already gone from that view, so every brace
//! it sees is a real delimiter — and [`functions`] lists the `fn` items
//! with their body extents.

/// Matched `{`/`}` pairs of one flat stream, addressed by byte offset.
#[derive(Debug, Default)]
pub struct ScopeMap {
    /// `(open, close)` byte offsets, sorted by `open`.
    pairs: Vec<(usize, usize)>,
}

impl ScopeMap {
    /// Matches every brace pair in `flat`. Unbalanced braces (truncated
    /// input) simply produce no pair, never a panic.
    pub fn build(flat: &str) -> ScopeMap {
        let mut pairs = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (i, b) in flat.bytes().enumerate() {
            match b {
                b'{' => stack.push(i),
                b'}' => {
                    if let Some(open) = stack.pop() {
                        pairs.push((open, i));
                    }
                }
                _ => {}
            }
        }
        pairs.sort_unstable();
        ScopeMap { pairs }
    }

    /// The matching `}` offset of the `{` at `open`.
    pub fn close_of(&self, open: usize) -> Option<usize> {
        self.pairs
            .binary_search_by_key(&open, |p| p.0)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// The innermost brace pair strictly containing `offset`.
    pub fn enclosing(&self, offset: usize) -> Option<(usize, usize)> {
        self.pairs
            .iter()
            .filter(|&&(o, c)| o < offset && offset < c)
            .min_by_key(|&&(o, c)| c - o)
            .copied()
    }
}

/// One `fn` item with a brace body.
#[derive(Debug)]
pub struct FnSpan {
    /// The function's name (empty only for pathological input).
    pub name: String,
    /// Byte offset of the `fn` keyword in the flat stream.
    pub decl: usize,
    /// `(open, close)` byte offsets of the body braces.
    pub body: (usize, usize),
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All `fn` items with bodies — free functions, methods, nested fns,
/// test fns. Bodyless trait declarations (`fn f(…);`) and `fn`-pointer
/// type positions are skipped. Closures are *not* listed; their extents
/// belong to the enclosing function.
pub fn functions(flat: &str, scopes: &ScopeMap) -> Vec<FnSpan> {
    let bytes = flat.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(p) = flat[i..].find("fn") {
        let at = i + p;
        i = at + 2;
        let pre_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let post_ok = !bytes.get(at + 2).copied().is_some_and(is_ident_byte);
        if !pre_ok || !post_ok {
            continue;
        }
        // Name: the identifier after the keyword (absent for `fn(` types).
        let mut j = at + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(` pointer type, not an item
        }
        let name = flat[name_start..j].to_string();
        // Scan to the body `{` at paren depth 0; `;` or `=` first means a
        // bodyless declaration (trait method, `type F = fn()` alias).
        let mut depth = 0i32;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' | b'=' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let Some(close) = scopes.close_of(open) else { continue };
        out.push(FnSpan { name, decl: at, body: (open, close) });
        // Continue *inside* the body so nested fns are found too.
        i = open + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    #[test]
    fn braces_match_and_nest() {
        let s = scrub("fn a() { if x { y(); } }");
        let m = ScopeMap::build(&s.flat);
        let outer = s.flat.find('{').expect("outer open");
        let close = m.close_of(outer).expect("outer close");
        assert_eq!(&s.flat[close..=close], "}");
        assert_eq!(close, s.flat.rfind('}').expect("last brace"));
        let inner_open = s.flat[outer + 1..].find('{').map(|p| outer + 1 + p).expect("inner");
        let (eo, ec) = m.enclosing(inner_open + 1).expect("enclosing pair");
        assert_eq!(eo, inner_open);
        assert!(ec < close);
    }

    #[test]
    fn braces_inside_strings_are_invisible() {
        let s = scrub("fn a() { let x = \"}{\"; }");
        let m = ScopeMap::build(&s.flat);
        let open = s.flat.find('{').expect("open");
        assert_eq!(m.close_of(open), Some(s.flat.rfind('}').expect("close")));
    }

    #[test]
    fn functions_found_with_bodies() {
        let src = "fn a() { inner(); }\ntrait T { fn decl(&self); }\nimpl S { fn b(&self) -> u8 { 0 } }\n";
        let s = scrub(src);
        let m = ScopeMap::build(&s.flat);
        let fns = functions(&s.flat, &m);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "bodyless trait decl skipped: {names:?}");
    }

    #[test]
    fn nested_fn_and_fn_pointer_type() {
        let src = "fn outer() { fn inner() {} let f: fn() = inner; }\n";
        let s = scrub(src);
        let m = ScopeMap::build(&s.flat);
        let names: Vec<String> = functions(&s.flat, &m).into_iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["outer".to_string(), "inner".to_string()]);
    }

    #[test]
    fn unbalanced_input_never_panics() {
        let s = scrub("fn a() { { { \n");
        let m = ScopeMap::build(&s.flat);
        assert!(functions(&s.flat, &m).is_empty());
        assert!(m.enclosing(3).is_none());
    }
}
